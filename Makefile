# Convenience targets for the CompDiff reproduction.

PYTHON ?= python

.PHONY: install test test-fast test-faults test-passes test-generative test-sanval test-verified smoke-generate sancheck sancheck-baseline chaos bench bench-quick bench-scaling bench-passes bench-throughput precision analyze examples clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

# Quick lane: skip the long-running end-to-end, interprocedural,
# generative-pipeline, and sanitizer-validation tests.
test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow and not interproc and not generative and not sanval"

# Robustness lane: fault injection + checkpoint/resume round trips.
test-faults:
	$(PYTHON) -m pytest tests/ -m faults

# Pass-manager lane: pipeline shape, golden IR digests, bisection.
test-passes:
	$(PYTHON) -m pytest tests/ -m passes

# Generative lane: program generator properties, reducer invariants, and
# the generate->diff->reduce->bank campaign end-to-end.
test-generative:
	$(PYTHON) -m pytest tests/ -m generative

# Sanitizer-validation lane: relocation transformer, verdict engine,
# campaign driver, and the scoreboard regression gate.  docs/SANVAL.md.
test-sanval:
	$(PYTHON) -m pytest tests/ benchmarks/bench_sanval.py -m sanval

# Smoke campaign: a seeded known-divergent configuration must bank at
# least one reduced repro (exit 1 otherwise).  docs/GENERATIVE.md.
smoke-generate:
	rm -rf /tmp/repro-smoke-corpus
	$(PYTHON) -m repro generate --corpus /tmp/repro-smoke-corpus \
	    --seed 0 --budget 5 --profile ub --min-banked 1

# Sancheck smoke: the planted fixture corpus must surface at least one
# sanitizer FN and one FP, with banked reduced repros (exit 1 otherwise).
sancheck:
	rm -rf /tmp/repro-sanval-bank
	timeout 300 $(PYTHON) -m repro sancheck --fixtures tests/fixtures/sanval \
	    --bank /tmp/repro-sanval-bank --min-fn 1 --min-fp 1

# Refresh the committed sanitizer-validation scoreboard baseline.
sancheck-baseline:
	cd benchmarks && $(PYTHON) bench_sanval.py

# Chaos smoke: sharded campaigns under injected shard faults (crash,
# hang, checkpoint corruption, poison seed) must merge a corpus
# byte-identical to a fault-free serial run, quarantining only the
# poison seed.  The hard timeout is part of the contract: a watchdog
# regression fails by timeout instead of stalling.  docs/ROBUSTNESS.md.
chaos:
	timeout 600 $(PYTHON) benchmarks/chaos_smoke.py

# Same suite with IR verification enabled after every compile (and,
# with the pass manager, after every individual pass application).
test-verified:
	REPRO_VERIFY_IR=1 $(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-quick:
	REPRO_BENCH_SCALE=0.008 REPRO_BENCH_EXECS=1200 \
	    $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Parallel-engine speedup curve (1/2/4/8 workers) + verdict-equality check.
bench-scaling:
	$(PYTHON) benchmarks/bench_parallel_scaling.py

# Per-config/per-pass compile-cost breakdown; refreshes BENCH_passes.json.
bench-passes:
	$(PYTHON) benchmarks/bench_passes.py

# Substrate throughput (lockstep executor, oracle step, batched
# submission); refreshes BENCH_throughput.json.  The hard timeout is
# part of the contract: an executor regression that hangs or crawls
# fails by timeout instead of stalling the pipeline (docs/PERFORMANCE.md).
bench-throughput:
	timeout 600 $(PYTHON) benchmarks/bench_vm_throughput.py

# Oracle-validated per-checker scoreboard; refreshes BENCH_precision.json.
precision:
	$(PYTHON) benchmarks/bench_precision.py

# UB-oracle triage precision (Juliet + real-world) and analysis-boost curve.
analyze:
	$(PYTHON) benchmarks/bench_analysis_triage.py

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/unstable_code_gallery.py
	$(PYTHON) examples/fuzz_tcpdump_sim.py 3000
	$(PYTHON) examples/subset_selection.py 0.005
	$(PYTHON) examples/triage_workflow.py

clean:
	rm -rf benchmarks/results .pytest_cache build *.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
