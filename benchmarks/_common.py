"""Shared, cached experiment state for the benchmark harnesses.

The expensive artifacts (the Juliet evaluation, the real-world campaigns)
are computed once per pytest session and reused by every bench that needs
them, mirroring how the paper's artifact scripts stage results.

Scale knobs (environment variables):

* ``REPRO_BENCH_SCALE``  — Juliet suite scale (default 0.02 ≈ 367 tests).
* ``REPRO_BENCH_EXECS``  — fuzzer executions per campaign (default 2500).
* ``REPRO_BENCH_STRIDE`` — CompDiff oracle stride in campaigns (default 4).
* ``REPRO_BENCH_WORKERS`` — worker processes for the differential hot
  path (default 1 = serial; verdicts are identical at any setting).
"""

from __future__ import annotations

import functools
import os
import pathlib

from repro.evaluation import evaluate_juliet, evaluate_realworld
from repro.juliet import build_suite
from repro.targets import build_all_targets

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

JULIET_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))
CAMPAIGN_EXECS = int(os.environ.get("REPRO_BENCH_EXECS", "2500"))
CAMPAIGN_STRIDE = int(os.environ.get("REPRO_BENCH_STRIDE", "4"))
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


def write_result(name: str, text: str) -> None:
    """Persist a rendered table/figure for EXPERIMENTS.md bookkeeping."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n")


@functools.lru_cache(maxsize=1)
def juliet_suite():
    return build_suite(scale=JULIET_SCALE)


@functools.lru_cache(maxsize=1)
def juliet_evaluation():
    return evaluate_juliet(juliet_suite(), fuel=200_000, workers=BENCH_WORKERS)


@functools.lru_cache(maxsize=1)
def all_targets():
    return build_all_targets()


@functools.lru_cache(maxsize=1)
def realworld_evaluation():
    return evaluate_realworld(
        all_targets(),
        max_executions=CAMPAIGN_EXECS,
        compdiff_stride=CAMPAIGN_STRIDE,
        rng_seed=1,
    )
