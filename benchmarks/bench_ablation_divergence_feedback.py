"""Ablation (§5 "Improvements and future work"): divergence-guided feedback.

The paper suggests a NEZHA-style extension: feed observed behavioral
asymmetry back into the fuzzer so it gravitates toward inputs that
trigger unstable code.  This bench compares a stock Algorithm 1 campaign
against one with divergence feedback enabled, at the same execution
budget, on a target whose unstable handler hides behind an extra input
condition.
"""

from __future__ import annotations

from repro.fuzzing import CompDiffFuzzer, FuzzerOptions
from repro.targets import build_target

from _common import write_result

EXECS = 3500


def _campaign(source: str, seeds, feedback: bool):
    options = FuzzerOptions(
        max_executions=EXECS,
        compdiff_stride=3,
        rng_seed=23,
        divergence_feedback=feedback,
    )
    return CompDiffFuzzer(source, seeds, options, name="ablation").run()


def test_divergence_feedback_ablation(benchmark):
    target = build_target("gpac")  # six seeded bugs, varied gating

    def run_pair():
        baseline = _campaign(target.source, target.seeds, feedback=False)
        extended = _campaign(target.source, target.seeds, feedback=True)
        return baseline, extended

    baseline, extended = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    report = (
        f"divergence-guided feedback ablation ({EXECS} execs each):\n"
        f"  baseline:  diffs={baseline.diffs_found:5d}  "
        f"bugs={len(baseline.sites_diverged)}  queue={baseline.queue_size}\n"
        f"  feedback:  diffs={extended.diffs_found:5d}  "
        f"bugs={len(extended.sites_diverged)}  queue={extended.queue_size}"
    )
    write_result("ablation_feedback.txt", report)
    print("\n" + report)
    # The extension must never lose bugs at equal budget, and it should
    # produce at least as many diff-triggering inputs (it re-fuzzes them).
    assert len(extended.sites_diverged) >= len(baseline.sites_diverged)
    assert extended.diffs_found >= baseline.diffs_found
