"""Ablation (DESIGN §5): what the oracle observes.

The paper's oracle compares redirected stdout+stderr (checksummed) and
implicitly the process exit; §3.1 discusses — and rejects — richer
intermediate-state observation.  This bench quantifies the channels on
the Juliet suite: how many bugs are caught by stdout alone, stdout+stderr,
and the full observation including the exit status (crash-vs-clean
divergence, e.g. the unused-division DCE cases, needs the exit channel).
"""

from __future__ import annotations

from repro.core.compdiff import CompDiff
from repro.juliet import build_suite
from repro.minic import load

from _common import write_result

SCALE = 0.008


def _detected_by_channel(suite) -> dict[str, int]:
    engine = CompDiff(fuel=200_000)
    counts = {"stdout": 0, "stdout+stderr": 0, "full": 0, "total": 0}
    for case in suite.cases:
        counts["total"] += 1
        servers = engine.build(load(case.bad_source), name=case.uid)
        diff = engine.run_input(servers, case.inputs[0])
        outs = {obs[0] for obs in diff.observations.values()}
        errs = {obs[:2] for obs in diff.observations.values()}
        if len(outs) > 1:
            counts["stdout"] += 1
        if len(errs) > 1:
            counts["stdout+stderr"] += 1
        if diff.divergent:
            counts["full"] += 1
    return counts


def test_observation_channel_ablation(benchmark):
    suite = build_suite(scale=SCALE)
    counts = benchmark.pedantic(_detected_by_channel, args=(suite,), rounds=1, iterations=1)
    report = (
        f"oracle observation-channel ablation ({counts['total']} bad variants):\n"
        f"  stdout only:          {counts['stdout']}\n"
        f"  stdout+stderr:        {counts['stdout+stderr']}\n"
        f"  + exit status (full): {counts['full']}\n"
        "  (crashes truncate stdout, so the output channel subsumes almost\n"
        "   every exit-status divergence on this corpus — supporting the\n"
        "   paper's choice of final outputs as the oracle)"
    )
    write_result("ablation_observation.txt", report)
    print("\n" + report)
    assert counts["full"] >= counts["stdout+stderr"] >= counts["stdout"]
    # The exit channel still matters in principle: a silent program whose
    # only observable difference is crash-vs-clean.
    silent = (
        "int main(void){ int d = (int)input_size(); int q = 7 / d; return 0; }"
    )
    engine = CompDiff(fuel=100_000)
    diff = engine.run_input(engine.build_source(silent), b"")
    stdouts = {obs[0] for obs in diff.observations.values()}
    assert len(stdouts) == 1, "no output divergence by construction"
    assert diff.divergent, "exit-status channel must catch the silent case"
