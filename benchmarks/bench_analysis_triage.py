"""E-AN — IR-level UB analysis and divergence triage.

Three measurements on top of the dataflow analyzer
(`repro.ir.dataflow` + `repro.static_analysis.ub_oracle`):

1. **Juliet triage confusion** — every CompDiff-detected bad variant is
   localized and triaged; the confusion matrix scores the assigned
   Table 5 category against the CWE group's expected categories.
2. **Real-world triage** — each campaign divergence on the simulated
   targets gets a root-cause label; reports the explained fraction and,
   for single-site divergences, agreement with the seeded bug's
   ground-truth category.
3. **Analysis-directed fuzzing** — the same campaign with
   ``analysis_boost`` on, confirming verdict-identity (boost may only
   change seed scheduling) and reporting the diff-yield delta.

Run directly (``make analyze``)::

    python benchmarks/bench_analysis_triage.py

Scale via ``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_EXECS`` as usual.
"""

from __future__ import annotations

import sys
from collections import Counter

import pytest

from repro.core import CompDiff
from repro.evaluation import evaluate_juliet, render_triage_confusion
from repro.fuzzing import CompDiffFuzzer, FuzzerOptions
from repro.juliet import build_suite
from repro.minic import load
from repro.static_analysis import UBOracle
from repro.static_analysis.triage import triage_diff
from repro.targets import build_all_targets

from _common import CAMPAIGN_EXECS, CAMPAIGN_STRIDE, JULIET_SCALE, write_result

#: Boost factor for the analysis-directed campaign comparison.
BOOST = 8.0


def run_juliet_confusion(suite=None) -> str:
    if suite is None:
        suite = build_suite(scale=JULIET_SCALE)
    evaluation = evaluate_juliet(
        suite,
        fuel=200_000,
        include_static=False,
        include_sanitizers=False,
        include_triage=True,
    )
    return render_triage_confusion(evaluation)


def run_realworld_triage(targets=None) -> str:
    if targets is None:
        targets = build_all_targets()
    oracle = UBOracle()
    total = explained = nonmisc = right = scored = 0
    rows = []
    for target in targets:
        fuzzer = CompDiffFuzzer(
            target.source,
            target.seeds,
            FuzzerOptions(
                rng_seed=1,
                max_executions=CAMPAIGN_EXECS,
                compdiff_stride=CAMPAIGN_STRIDE,
            ),
        )
        result = fuzzer.run()
        program = load(target.source)
        findings = oracle.analyze(program)
        truth = {bug.site: bug.category for bug in target.bugs}
        categories: Counter[str] = Counter()
        for diff in result.diffs:
            label = triage_diff(program, diff, findings)
            total += 1
            categories[label.category] += 1
            explained += label.explained
            nonmisc += label.category != "Misc"
            sites = result.sites_by_input.get(diff.input, frozenset())
            if len(sites) == 1:
                (site,) = sites
                scored += 1
                right += label.category == truth[site]
        hist = ", ".join(f"{cat}:{n}" for cat, n in categories.most_common())
        rows.append(f"{target.name:<15} {len(result.diffs):>5}  {hist}")
    lines = [
        f"{'Target':<15} {'Diffs':>5}  Triaged categories",
        "-" * 72,
        *rows,
        "-" * 72,
        f"explained by a static finding: {explained}/{total} "
        f"({100 * explained / max(total, 1):.0f}%)",
        f"non-Misc labels: {nonmisc}/{total} ({100 * nonmisc / max(total, 1):.0f}%)",
        f"ground-truth agreement (single-site diffs): {right}/{scored} "
        f"({100 * right / max(scored, 1):.0f}%)",
    ]
    return "\n".join(lines)


def run_boost_comparison(target=None) -> str:
    if target is None:
        target = build_all_targets()[0]  # tcpdump
    rows = []
    diffs_by_boost = {}
    for boost in (1.0, BOOST):
        fuzzer = CompDiffFuzzer(
            target.source,
            target.seeds,
            FuzzerOptions(
                rng_seed=3,
                max_executions=CAMPAIGN_EXECS,
                compdiff_stride=CAMPAIGN_STRIDE,
                analysis_boost=boost,
            ),
        )
        result = fuzzer.run()
        flagged = sum(seed.flagged for seed in fuzzer.pool.seeds)
        diffs_by_boost[boost] = result
        rows.append(
            f"{boost:>5.1f} {result.diffs_found:>6} {len(result.sites_diverged):>6} "
            f"{result.edges_covered:>6} {flagged:>8}/{result.queue_size}"
        )
    # Verdict identity: every boosted diff must reproduce under a plain
    # differential check — the boost can never manufacture a divergence.
    engine = CompDiff()
    sample = [d.input for d in diffs_by_boost[BOOST].diffs[:10]]
    outcome = engine.check_source(target.source, sample)
    assert all(d.divergent for d in outcome.diffs), "boost altered oracle verdicts"
    lines = [
        f"analysis-directed fuzzing on {target.name} "
        f"({CAMPAIGN_EXECS} execs, stride {CAMPAIGN_STRIDE}, rng_seed 3)",
        "",
        f"{'boost':>5} {'diffs':>6} {'sites':>6} {'edges':>6} {'flagged':>8}",
        *rows,
        "",
        "verdicts: every boosted diff reproduces under the plain oracle",
    ]
    return "\n".join(lines)


def run_all() -> str:
    sections = [
        "== Juliet triage confusion (ground truth: CWE group) ==",
        run_juliet_confusion(),
        "",
        "== Real-world divergence triage (ground truth: seeded bug site) ==",
        run_realworld_triage(),
        "",
        "== Analysis-directed fuzzing (scheduling-only boost) ==",
        run_boost_comparison(),
    ]
    table = "\n".join(sections)
    write_result("analysis_triage.txt", table)
    return table


@pytest.mark.analysis
@pytest.mark.slow
def test_analysis_triage():
    print("\n" + run_all())


if __name__ == "__main__":
    sys.stdout.write(run_all() + "\n")
