"""E9 — Finding 5 / RQ6: zero false positives and timeout handling.

Three measurements:
1. CompDiff over every *good* Juliet variant — must report nothing.
2. The RQ6 partial-timeout policy: an input that times out on some
   binaries is retried with a raised threshold instead of being reported.
3. RQ5 normalization: the noisy (wireshark-like) target diverges without
   the scrubbing normalizer and is clean with it.
"""

from __future__ import annotations

from repro.core.compdiff import CompDiff
from repro.core.normalize import OutputNormalizer
from repro.juliet import build_suite
from repro.minic import load
from repro.targets import build_target

from _common import JULIET_SCALE, write_result


def _count_good_variant_divergence(scale: float) -> tuple[int, int]:
    suite = build_suite(scale=scale)
    engine = CompDiff(fuel=200_000)
    divergent = 0
    for case in suite.cases:
        if engine.check(load(case.good_source), case.inputs).divergent:
            divergent += 1
    return divergent, len(suite.cases)


def test_zero_false_positives_on_good_variants(benchmark):
    divergent, total = benchmark.pedantic(
        _count_good_variant_divergence,
        args=(min(JULIET_SCALE, 0.01),),
        rounds=1,
        iterations=1,
    )
    report = f"good variants diverging: {divergent} / {total} (Finding 5 expects 0)"
    write_result("false_positives.txt", report)
    print("\n" + report)
    assert divergent == 0


SLOW = """
int main(void) {
    long n = input_size();
    long i;
    long acc = 0;
    for (i = 0; i < n * 3000; i++) { acc += i & 7; }
    printf("acc=%ld\\n", acc);
    return 0;
}
"""


def test_partial_timeout_retry_avoids_false_positive(benchmark):
    def check() -> bool:
        engine = CompDiff(fuel=40_000)
        servers = engine.build_source(SLOW)
        diff = engine.run_input(servers, b"abcd")
        return diff.divergent

    divergent = benchmark.pedantic(check, rounds=1, iterations=1)
    assert not divergent, "RQ6: raised-threshold retry must resolve stragglers"


def test_normalizer_eliminates_timestamp_noise(benchmark):
    target = build_target("wireshark")
    program = load(target.source)
    benign = b"\x00\x00\x00\x00\x00"  # fails the magic check: benign path

    def run_both() -> tuple[bool, bool]:
        raw = CompDiff(fuel=300_000).check(program, [benign])
        clean = CompDiff(fuel=300_000, normalizer=OutputNormalizer.standard()).check(
            program, [benign]
        )
        return raw.divergent, clean.divergent

    raw_divergent, clean_divergent = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert raw_divergent, "layout-derived timestamp must differ across binaries"
    assert not clean_divergent, "RQ5 scrubbing must remove the volatile field"
