"""E3 — Figure 1: bugs detected by each compiler-implementation subset
(Juliet suite).

Reproduces the §4.2 ablation: enumerate all subsets of the ten
implementations (sizes 2..10) and count how many Juliet bugs each subset
still detects.  Shape assertions: detection grows with subset size, the
best pair crosses families with O0 vs aggressive optimization, the worst
pair is a same-family similar-level pair.
"""

from __future__ import annotations

from repro.evaluation import figure_from_vectors, render_figure

from _common import juliet_evaluation, write_result


def test_figure1_subset_ablation(benchmark):
    evaluation = juliet_evaluation()
    figure = benchmark.pedantic(
        figure_from_vectors,
        args=(evaluation.bug_vectors, evaluation.implementations),
        rounds=1,
        iterations=1,
    )
    text = render_figure(figure, "Figure 1: subsets vs detected bugs (Juliet)")
    write_result("figure1.txt", text)
    print("\n" + text)

    sizes = sorted(figure.summaries)
    assert sizes == list(range(2, 11))
    bests = [figure.summaries[s].best_count for s in sizes]
    mins = [figure.summaries[s].minimum for s in sizes]
    assert bests == sorted(bests), "more implementations must detect more"
    assert mins == sorted(mins)
    # The paper's annotated pair: an unoptimizing compiler of one family
    # with an aggressively-optimizing one of the other.
    best_pair = figure.summaries[2].best_subset
    families = {name.split("-")[0] for name in best_pair}
    levels = {name.split("-")[1] for name in best_pair}
    assert families == {"gcc", "clang"}
    assert "O0" in levels
    assert levels & {"O2", "O3", "Os"}
    # Worst pair: same family, similar optimization (e.g. {gcc-O2, gcc-O3}).
    worst_pair = figure.summaries[2].worst_subset
    assert len({name.split("-")[0] for name in worst_pair}) == 1
    # The best small subsets approach the full set (§4.2: "some small
    # subsets could detect nearly the same number of bugs").
    assert figure.summaries[2].best_count >= 0.85 * figure.summaries[10].best_count
