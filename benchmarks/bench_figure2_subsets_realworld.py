"""E7 — Figure 2 / RQ4: subset ablation over the real-world bugs.

Same ablation as Figure 1, over the checksum vectors of the diff inputs
collected by the 23 CompDiff-AFL++ campaigns.  The paper's conclusion:
more implementations detect more; cross-family unopt/aggressive pairs
do best; same-family similar-level pairs do worst.
"""

from __future__ import annotations

from repro.evaluation import figure_from_vectors, render_figure

from _common import realworld_evaluation, write_result


def test_figure2_subset_ablation(benchmark):
    evaluation = realworld_evaluation()
    vectors = evaluation.bug_vectors()
    figure = benchmark.pedantic(
        figure_from_vectors,
        args=(vectors, evaluation.implementations),
        rounds=1,
        iterations=1,
    )
    text = render_figure(figure, "Figure 2: subsets vs detected bugs (real-world)")
    write_result("figure2.txt", text)
    print("\n" + text)

    sizes = sorted(figure.summaries)
    bests = [figure.summaries[s].best_count for s in sizes]
    assert bests == sorted(bests)
    # Best pair crosses families and mixes unoptimizing with optimizing.
    best_pair = figure.summaries[2].best_subset
    assert len({name.split("-")[0] for name in best_pair}) == 2
    # Worst pair shares a family.
    worst_pair = figure.summaries[2].worst_subset
    assert len({name.split("-")[0] for name in worst_pair}) == 1
    # §5 overhead note: a good two-implementation subset retains most bugs
    # (paper: {clang-O0, gcc-Os} keeps 69 of 78 at ~2x overhead).
    assert figure.summaries[2].best_count >= 0.75 * figure.summaries[10].best_count
