"""E8 — §5 overhead: full implementation set vs a two-element subset.

The paper reports ~10x execution overhead for the full ten-implementation
oracle versus ~2x for {clang-O0, gcc-Os}.  This bench measures the actual
per-input differential cost in VM instructions and wall time for: no
oracle (B_fuzz only), the two-element subset, and the full set.
"""

from __future__ import annotations

import time

from repro.compiler import DEFAULT_IMPLEMENTATIONS, implementation
from repro.core.compdiff import CompDiff
from repro.targets import build_target

from _common import write_result

SUBSET = (implementation("clang-O0"), implementation("gcc-Os"))


def _measure(engine: CompDiff, source: str, inputs: list[bytes]) -> float:
    servers = engine.build_source(source)
    start = time.perf_counter()
    for data in inputs:
        engine.run_input(servers, data)
    return time.perf_counter() - start


def test_overhead_full_vs_subset(benchmark):
    target = build_target("libzip")
    inputs = [target.magic + bytes([t]) + b"payload!" for t in range(6)] * 12

    full_engine = CompDiff(fuel=300_000)
    subset_engine = CompDiff(implementations=SUBSET, fuel=300_000)

    full_time = benchmark.pedantic(
        _measure, args=(full_engine, target.source, inputs), rounds=1, iterations=1
    )
    subset_time = _measure(subset_engine, target.source, inputs)

    ratio = full_time / subset_time
    report = (
        f"differential cost per input ({len(inputs)} inputs):\n"
        f"  full set ({len(DEFAULT_IMPLEMENTATIONS)} impls): {full_time:.3f}s\n"
        f"  subset {{clang-O0, gcc-Os}}:       {subset_time:.3f}s\n"
        f"  ratio: {ratio:.1f}x (paper: ~10x vs ~2x of plain execution,\n"
        f"  i.e. a ~5x gap between full set and two-element subset)"
    )
    write_result("overhead.txt", report)
    print("\n" + report)
    # Ten binaries must cost several times two binaries.
    assert 2.5 <= ratio <= 10.0
