"""E-PAR — parallel differential engine scaling.

Runs the Juliet differential campaign (the CompDiff-only Table 3 pass:
every bad and good variant through all ten implementations) at 1/2/4/8
workers, records the wall-clock speedup curve, and verifies that every
divergence verdict is identical across worker counts — the parallel
engine must be a pure wall-clock optimization.

Run directly (``make bench-scaling``)::

    python benchmarks/bench_parallel_scaling.py

or through pytest (skipped under ``--benchmark-only`` since it manages
its own timing loop)::

    python -m pytest benchmarks/bench_parallel_scaling.py -q

Scale via ``REPRO_BENCH_SCALE`` (suite size) as usual.
"""

from __future__ import annotations

import os
import sys
import time

import pytest

from repro.evaluation import evaluate_juliet
from repro.juliet import build_suite

from _common import JULIET_SCALE, write_result

WORKER_COUNTS = (1, 2, 4, 8)
#: Acceptance floor: the 4-worker campaign must halve the serial wall clock.
REQUIRED_SPEEDUP_AT_4 = 2.0


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _campaign(suite, workers: int):
    """One timed CompDiff-only Juliet campaign; returns (verdicts, secs)."""
    started = time.perf_counter()
    evaluation = evaluate_juliet(
        suite,
        fuel=200_000,
        include_static=False,
        include_sanitizers=False,
        workers=workers,
    )
    elapsed = time.perf_counter() - started
    verdicts = {
        "detected": {uid: sorted(map(sorted, vecs), key=str)
                     for uid, vecs in evaluation.bug_vectors.items()},
        "false_positives": evaluation.compdiff_false_positives,
        "per_group": {
            group: (counts["compdiff"].detected, counts["compdiff"].total)
            for group, counts in evaluation.per_group.items()
        },
    }
    return verdicts, elapsed


def run_scaling(suite=None) -> str:
    """Measure the speedup curve and render the results table."""
    if suite is None:
        suite = build_suite(scale=JULIET_SCALE)
    timings: dict[int, float] = {}
    baseline_verdicts = None
    for workers in WORKER_COUNTS:
        verdicts, elapsed = _campaign(suite, workers)
        timings[workers] = elapsed
        if baseline_verdicts is None:
            baseline_verdicts = verdicts
        else:
            assert verdicts == baseline_verdicts, (
                f"divergence verdicts differ between workers=1 and workers={workers}"
            )
    serial = timings[WORKER_COUNTS[0]]
    lines = [
        f"parallel scaling — Juliet differential campaign "
        f"({len(suite.cases)} cases, bad+good variants, 10 implementations)",
        "",
        f"{'workers':>8} {'wall (s)':>10} {'speedup':>8}",
    ]
    for workers in WORKER_COUNTS:
        lines.append(
            f"{workers:>8} {timings[workers]:>10.2f} {serial / timings[workers]:>7.2f}x"
        )
    lines.append("")
    lines.append("verdicts: identical across all worker counts")
    cpus = _usable_cpus()
    speedup4 = serial / timings[4]
    if cpus >= 4:
        lines.append(f"host CPUs: {cpus}; workers=4 speedup {speedup4:.2f}x "
                     f"(floor {REQUIRED_SPEEDUP_AT_4}x)")
    else:
        lines.append(
            f"host CPUs: {cpus}; scaling floor not enforced — multiprocessing "
            f"cannot beat serial without idle cores (overhead {1 / speedup4:.2f}x)"
        )
    table = "\n".join(lines)
    write_result("parallel_scaling.txt", table)
    if cpus >= 4:
        assert speedup4 >= REQUIRED_SPEEDUP_AT_4, (
            f"workers=4 speedup {speedup4:.2f}x below the {REQUIRED_SPEEDUP_AT_4}x floor"
        )
    return table


@pytest.mark.parallel
@pytest.mark.slow
def test_parallel_scaling():
    print("\n" + run_scaling())


if __name__ == "__main__":
    sys.stdout.write(run_scaling() + "\n")
