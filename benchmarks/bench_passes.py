"""E-PASS — pass-pipeline cost breakdown per implementation.

Compiles the example corpus (gallery + Listing 1) under all ten
implementations with the instrumented pass manager and aggregates, per
config and per pass, the number of applications, the change counts, and
the wall-clock time spent.  The deterministic columns (applications,
changes) double as a coarse pipeline-shape regression signal; the timing
columns track where compile time actually goes.

Run directly (``make bench-passes``) to refresh the committed baseline::

    python benchmarks/bench_passes.py      # rewrites BENCH_passes.json

or through pytest (``python -m pytest benchmarks/bench_passes.py -q``),
which checks the deterministic columns against the committed baseline.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

import pytest

from repro.compiler import compile_source
from repro.compiler.implementations import DEFAULT_IMPLEMENTATIONS
from repro.compiler.passes.manager import pipeline_digest

from _common import write_result

BASELINE = pathlib.Path(__file__).parent / "BENCH_passes.json"
ITERATIONS = 3

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def _corpus() -> dict[str, str]:
    sys.path.insert(0, str(EXAMPLES_DIR))
    try:
        from unstable_code_gallery import EXAMPLES
        from quickstart import LISTING_1
    finally:
        sys.path.pop(0)
    corpus = {
        f"gallery/{i:02d}": src
        for i, (_, src) in enumerate(sorted(EXAMPLES.items()))
    }
    corpus["quickstart/listing1"] = LISTING_1
    return corpus


def measure() -> dict:
    """One full sweep: per-config wall time and per-pass aggregates."""
    corpus = _corpus()
    configs = {}
    for config in DEFAULT_IMPLEMENTATIONS:
        passes: dict[str, dict] = {}
        total_apps = total_changes = 0
        best_wall = None
        for _ in range(ITERATIONS):
            started = time.perf_counter()
            reports = [
                compile_source(src, config, name=key).pass_report
                for key, src in corpus.items()
            ]
            wall = time.perf_counter() - started
            best_wall = wall if best_wall is None else min(best_wall, wall)
            passes = {}
            total_apps = total_changes = 0
            for report in reports:
                total_apps += len(report.schedule)
                total_changes += report.total_changes
                for name, row in report.per_pass().items():
                    slot = passes.setdefault(
                        name, {"applications": 0, "changes": 0, "seconds": 0.0}
                    )
                    slot["applications"] += row["applications"]
                    slot["changes"] += row["changes"]
                    slot["seconds"] += row["seconds"]
        for slot in passes.values():
            slot["seconds"] = round(slot["seconds"], 6)
        configs[config.name] = {
            "pipeline_digest": pipeline_digest(config),
            "corpus_wall_seconds": round(best_wall, 4),
            "applications": total_apps,
            "changes": total_changes,
            "passes": dict(sorted(passes.items())),
        }
    return {
        "corpus": "examples (gallery + quickstart/listing1)",
        "programs": len(corpus),
        "iterations": ITERATIONS,
        "configs": configs,
    }


def render(data: dict) -> str:
    lines = [
        "E-PASS: pass-pipeline cost over the example corpus "
        f"({data['programs']} programs, best of {data['iterations']})",
        "",
        f"{'config':<12} {'wall s':>8} {'applies':>8} {'changes':>8}  hottest passes",
    ]
    for name, row in data["configs"].items():
        hot = sorted(
            row["passes"].items(), key=lambda kv: kv[1]["seconds"], reverse=True
        )[:3]
        hot_text = ", ".join(
            f"{p} {s['seconds'] * 1e3:.1f}ms/{s['changes']}ch" for p, s in hot
        ) or "-"
        lines.append(
            f"{name:<12} {row['corpus_wall_seconds']:>8.4f} "
            f"{row['applications']:>8} {row['changes']:>8}  {hot_text}"
        )
    return "\n".join(lines)


@pytest.mark.passes
def test_pass_costs_match_baseline():
    data = measure()
    print("\n" + render(data))
    write_result("passes.txt", render(data))
    baseline = json.loads(BASELINE.read_text())
    for name, row in data["configs"].items():
        base = baseline["configs"][name]
        # Timing is machine-dependent; the schedule shape is not.
        assert row["pipeline_digest"] == base["pipeline_digest"], name
        assert row["applications"] == base["applications"], name
        assert row["changes"] == base["changes"], name


if __name__ == "__main__":
    data = measure()
    BASELINE.write_text(json.dumps(data, indent=2) + "\n")
    write_result("passes.txt", render(data))
    sys.stdout.write(render(data) + "\n")
    sys.stdout.write(f"\nbaseline written to {BASELINE}\n")
