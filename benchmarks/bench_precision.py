"""E-PREC — oracle-validated precision scoreboard for the UB oracle.

Scores every checker in both analysis modes (intraprocedural and
summary-based interprocedural) against the differential engine's
divergence verdicts over the seeded standard suite plus the
interprocedural extension corpus.  The committed baseline
(``BENCH_precision.json``) is the contract: the pytest gate fails when
any checker's F1 drops below it in either mode, when the
interprocedural mode stops strictly out-detecting the intraprocedural
mode, or when the SARIF export of the corpus findings stops validating.

Run directly (``make precision``) to refresh the committed baseline::

    python benchmarks/bench_precision.py   # rewrites BENCH_precision.json

or through pytest (``python -m pytest benchmarks/bench_precision.py``),
which checks the current run against the committed baseline.
"""

from __future__ import annotations

import json
import pathlib
import sys

import pytest

from repro.evaluation.precision_eval import (
    PrecisionReport,
    evaluate_precision,
    precision_corpus,
    regressions,
)
from repro.juliet.templates.interproc import interproc_cases
from repro.minic import load
from repro.static_analysis import (
    SummaryCache,
    UBOracle,
    to_diagnostics,
    to_sarif,
    validate_sarif,
)

from _common import write_result

BASELINE = pathlib.Path(__file__).parent / "BENCH_precision.json"

#: Checkers the interprocedural upgrade must strictly improve (TP count)
#: without losing precision anywhere.  These are the families whose
#: extension-corpus flaws only exist across call boundaries.
EXPECTED_GAINS = ("uninit_read", "shift_ub", "signed_overflow", "oob_access", "null_deref")


def measure() -> PrecisionReport:
    cases = precision_corpus()
    return evaluate_precision(cases, summary_cache=SummaryCache())


@pytest.mark.interproc
def test_precision_matches_baseline():
    report = measure()
    print("\n" + report.render())
    write_result("precision.txt", report.render())
    baseline = PrecisionReport.load(BASELINE)
    problems = regressions(baseline, report)
    assert not problems, "F1 regressions vs committed baseline:\n" + "\n".join(problems)


@pytest.mark.interproc
def test_interproc_strictly_improves():
    report = measure()
    intra = report.scores["intra"]
    inter = report.scores["interproc"]
    for checker in EXPECTED_GAINS:
        assert inter[checker].tp > intra.get(checker, inter[checker]).tp or (
            checker not in intra
        ), f"{checker}: interproc TPs did not exceed intra"
    for checker, score in inter.items():
        if checker in intra:
            assert score.precision >= intra[checker].precision - 1e-9, (
                f"{checker}: interprocedural mode lost precision "
                f"({intra[checker].precision:.4f} -> {score.precision:.4f})"
            )


@pytest.mark.interproc
def test_corpus_sarif_validates():
    """The SARIF export of real corpus findings passes schema validation."""
    oracle = UBOracle(mode="interproc")
    cases = interproc_cases(per_shape=2)
    diagnostics = []
    for case in cases:
        findings = oracle.report(load(case.bad_source), name=case.uid).findings
        diagnostics.extend(to_diagnostics(findings))
    assert diagnostics, "corpus produced no findings to export"
    document = to_sarif(diagnostics, artifact_uri="corpus.c")
    assert validate_sarif(document) == []


@pytest.mark.interproc
def test_warm_cache_verdicts_identical(tmp_path):
    """A warm summary cache reproduces byte-identical verdicts."""
    cases = interproc_cases(per_shape=2)
    cache = SummaryCache(tmp_path)
    cold = evaluate_precision(cases, summary_cache=cache)
    assert cache.stats.misses > 0 and cache.stats.hits == 0
    cache.save()
    warm_cache = SummaryCache(tmp_path)
    warm = evaluate_precision(cases, summary_cache=warm_cache)
    assert warm_cache.stats.hits > 0 and warm_cache.stats.misses == 0
    assert json.dumps(cold.to_json()) == json.dumps(warm.to_json())


if __name__ == "__main__":
    data = measure()
    BASELINE.write_text(json.dumps(data.to_json(), indent=2) + "\n")
    write_result("precision.txt", data.render())
    sys.stdout.write(data.render() + "\n")
    sys.stdout.write(f"\nbaseline written to {BASELINE}\n")
