"""E-SANVAL — the sanitizer-validation scoreboard and its regression gate.

Runs the planted fixture corpus (``tests/fixtures/sanval``) through the
``repro sancheck`` campaign — relocation × sanitizer classification
against the interprocedural UB oracle and the ten-implementation
differential verdict — and scores every sanitizer per outcome and per
report kind.  The committed baseline (``BENCH_sanval.json``) is the
contract: the pytest gate fails when a previously-caught planted
defect (a sanitizer FN or FP) goes undetected, when any sanitizer's
FN/FP tally drops below the baseline, or when the campaign stops being
byte-deterministic across worker counts.

Run directly (``make sancheck-baseline``) to refresh the committed
baseline::

    python benchmarks/bench_sanval.py   # rewrites BENCH_sanval.json

or through pytest (``python -m pytest benchmarks/bench_sanval.py``),
which checks the current run against the committed baseline.
"""

from __future__ import annotations

import json
import pathlib
import sys

import pytest

from repro.sanval import FindingBank, SancheckCampaign, SancheckOptions

from _common import write_result

BASELINE = pathlib.Path(__file__).parent / "BENCH_sanval.json"
FIXTURES = pathlib.Path(__file__).parent.parent / "tests" / "fixtures" / "sanval"


def measure(tmp_bank=None, workers: int = 1):
    options = SancheckOptions(fixtures=str(FIXTURES), workers=workers)
    bank = FindingBank(tmp_bank) if tmp_bank is not None else None
    with SancheckCampaign(options, bank=bank) as campaign:
        return campaign.run()


def finding_identities(document: dict) -> set[tuple[str, str, str, str]]:
    """The (sanitizer, outcome, seed, variant) identity of each finding."""
    return {
        (f["sanitizer"], f["outcome"], f["seed"], f["variant"])
        for f in document["findings"]
    }


@pytest.mark.sanval
def test_sanval_matches_baseline():
    """Every baseline FN/FP is still caught; tallies never shrink."""
    result = measure()
    print("\n" + result.render())
    write_result("sanval.txt", result.render())
    current = result.to_json()
    baseline = json.loads(BASELINE.read_text())
    assert current["version"] == baseline["version"]

    missing = finding_identities(baseline) - finding_identities(current)
    assert not missing, (
        "previously-caught sanitizer defects went undetected: "
        + ", ".join("/".join(m) for m in sorted(missing))
    )
    for sanitizer, row in baseline["per_sanitizer"].items():
        now = current["per_sanitizer"].get(sanitizer, {})
        for outcome in ("FN", "FP"):
            assert now.get(outcome, 0) >= row[outcome], (
                f"{sanitizer}: {outcome} tally regressed "
                f"({row[outcome]} -> {now.get(outcome, 0)})"
            )


@pytest.mark.sanval
def test_sanval_deterministic_across_workers(tmp_path):
    """Scoreboard and bank are byte-identical at any worker count."""
    serial = measure(tmp_bank=tmp_path / "serial")
    pooled = measure(tmp_bank=tmp_path / "pooled", workers=2)
    assert json.dumps(serial.to_json(), sort_keys=True) == json.dumps(
        pooled.to_json(), sort_keys=True
    )
    serial_bank = FindingBank(tmp_path / "serial")
    pooled_bank = FindingBank(tmp_path / "pooled")
    assert serial_bank.keys() == pooled_bank.keys()
    for key in serial_bank.keys():
        assert serial_bank.get(key).source == pooled_bank.get(key).source


@pytest.mark.sanval
def test_sanval_banks_reduced_repros(tmp_path):
    """Every banked finding carries a reduced, still-loading program."""
    from repro.minic import load

    measure(tmp_bank=tmp_path)
    bank = FindingBank(tmp_path)
    assert len(bank) > 0
    for finding in bank:
        load(finding.source)  # must still parse and check
        assert finding.reduced_nodes <= finding.original_nodes
        assert finding.outcome in ("FN", "FP")


if __name__ == "__main__":
    data = measure()
    BASELINE.write_text(json.dumps(data.to_json(), indent=2, sort_keys=True) + "\n")
    write_result("sanval.txt", data.render())
    sys.stdout.write(data.render() + "\n")
    sys.stdout.write(f"\nbaseline written to {BASELINE}\n")
