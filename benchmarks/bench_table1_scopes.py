"""E0 — Table 1: scopes of sanitizers and CompDiff.

Table 1 is descriptive (which UB classes each tool covers); here it is
*measured*: one probe program per UB class, run under each sanitizer and
under CompDiff, with the detection matrix printed and checked against the
paper's scope claims.
"""

from __future__ import annotations

from repro.core.compdiff import CompDiff
from repro.minic import load
from repro.sanitizers import all_sanitizers

from _common import write_result

PROBES: dict[str, str] = {
    "buffer-overflow": """
int main(void){ char b[8]; int i = 8 + (int)input_size(); b[i] = 1;
    printf("%d\\n", b[0]); return 0; }
""",
    "use-after-free": """
int main(void){ char *p = malloc(8); p[0] = 'x'; free(p);
    char *q = malloc(8); q[0] = 'y'; printf("%d\\n", p[0]); return 0; }
""",
    "division-by-zero": """
int main(void){ int d = (int)input_size(); printf("%d\\n", 7 / d); return 0; }
""",
    "signed-overflow": """
int main(void){ int x = 2147483647; printf("%d\\n", x + 1); return 0; }
""",
    "uninit-branch": """
int main(void){ int x; if (x > 0) { printf("p\\n"); } else { printf("n\\n"); }
    return 0; }
""",
    "uninit-value": """
int main(void){ int x; printf("%d\\n", x); return 0; }
""",
    "pointer-comparison": """
char small_obj[8];
char big_obj[64];
int main(void){ if (small_obj < big_obj) { printf("a\\n"); } else { printf("b\\n"); }
    return 0; }
""",
    "eval-order": """
char *fmt(int v) { static char b[8]; b[0] = 'A' + v; b[1] = 0; return b; }
int main(void){ printf("%s %s\\n", fmt(1), fmt(2)); return 0; }
""",
}


def test_table1_tool_scopes(benchmark):
    def measure():
        sanitizers = all_sanitizers()
        engine = CompDiff(fuel=200_000)
        matrix: dict[str, dict[str, bool]] = {}
        for name, source in PROBES.items():
            program = load(source)
            row = {}
            for sanitizer in sanitizers:
                row[sanitizer.name] = sanitizer.check(program, [b""]) is not None
            row["compdiff"] = engine.check(program, [b""]).divergent
            matrix[name] = row
        return matrix

    matrix = benchmark.pedantic(measure, rounds=1, iterations=1)
    tools = ("asan", "ubsan", "msan", "compdiff")
    lines = [f"{'UB class':<22}" + "".join(f"{t:>10}" for t in tools)]
    for name, row in matrix.items():
        lines.append(
            f"{name:<22}" + "".join(f"{'yes' if row[t] else '-':>10}" for t in tools)
        )
    table = "\n".join(lines)
    write_result("table1.txt", table)
    print("\n" + table)

    # Table 1's scope claims.
    assert matrix["buffer-overflow"]["asan"] and not matrix["buffer-overflow"]["ubsan"]
    assert matrix["use-after-free"]["asan"]
    assert matrix["division-by-zero"]["ubsan"] and not matrix["division-by-zero"]["asan"]
    assert matrix["signed-overflow"]["ubsan"]
    assert matrix["uninit-branch"]["msan"] and not matrix["uninit-branch"]["asan"]
    assert not matrix["uninit-value"]["msan"]  # §2 Example 3 scope limit
    # "A diverse range of UBs": CompDiff covers classes no sanitizer does.
    for probe in ("pointer-comparison", "eval-order", "uninit-value"):
        assert matrix[probe]["compdiff"]
        assert not any(matrix[probe][t] for t in ("asan", "ubsan", "msan"))
