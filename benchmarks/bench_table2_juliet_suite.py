"""E1 — Table 2: overview of selected CWEs.

Regenerates the suite-composition table: the same 20 CWE categories as the
paper's extraction, with per-CWE test counts proportional to Table 2.
"""

from __future__ import annotations

from repro.evaluation import render_table2
from repro.juliet import build_suite
from repro.juliet.cwe import CWE_REGISTRY, total_paper_tests

from _common import JULIET_SCALE, write_result


def test_table2_suite_generation(benchmark):
    suite = benchmark(build_suite, JULIET_SCALE)
    table = render_table2(suite)
    write_result("table2.txt", table)
    print("\n" + table)
    # Structural assertions: every CWE represented, proportions preserved.
    by_cwe = suite.by_cwe
    assert set(by_cwe) == set(CWE_REGISTRY)
    assert total_paper_tests() == 18142
    assert len(by_cwe[122]) == max(len(v) for v in by_cwe.values())
