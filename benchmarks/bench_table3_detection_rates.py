"""E2 — Table 3: detection / false-positive rates on the Juliet suite.

Runs all seven tools (Coverity/Cppcheck/Infer analogs, ASan/UBSan/MSan,
CompDiff) over every bad and good variant and prints the Table 3 analog.
The shape assertions encode the paper's five findings for §4.1.
"""

from __future__ import annotations

from repro.evaluation import render_table3

from _common import juliet_evaluation, write_result


def test_table3_detection_rates(benchmark):
    evaluation = benchmark.pedantic(juliet_evaluation, rounds=1, iterations=1)
    table = render_table3(evaluation)
    write_result("table3.txt", table)
    print("\n" + table)

    def rate(group: str, tool: str) -> float:
        return evaluation.per_group[group][tool].detection_rate

    # Finding 5: CompDiff has no false positives.
    assert evaluation.compdiff_false_positives == 0
    # Finding 2/3: CompDiff wins where sanitizers are structurally blind.
    assert rate("ptr_sub", "compdiff") == 1.0
    assert rate("ptr_sub", "sanitizers_total") == 0.0
    assert rate("uninit", "compdiff") > rate("uninit", "msan") + 0.3
    assert rate("bad_struct_ptr", "compdiff") >= rate("bad_struct_ptr", "asan")
    assert rate("ub", "compdiff") > rate("ub", "sanitizers_total")
    # Finding 4: sanitizers beat CompDiff on their specialties.
    assert rate("memory_error", "asan") > rate("memory_error", "compdiff")
    assert rate("integer_error", "ubsan") > rate("integer_error", "compdiff")
    assert rate("div_zero", "ubsan") > rate("div_zero", "compdiff")
    # Finding 2: unique bugs exist even where sanitizers win overall.
    assert evaluation.unique_vs_sanitizers.get("memory_error", 0) > 0
    assert sum(evaluation.unique_vs_sanitizers.values()) > 0
    # Finding 1: static tools have nonzero FP rates; CompDiff's recall beats
    # them on the big memory group for at least two of the three tools.
    fp_rates = []
    for tool in ("coverity", "cppcheck", "infer"):
        fp_rates.append(
            max(
                counts.fp_rate
                for group in evaluation.per_group.values()
                for name, counts in group.items()
                if name == tool
            )
        )
    assert all(fp > 0 for fp in fp_rates)
    # Coverity's strong rows (paper: 100% on 475/685/758 families).
    assert rate("api_ub", "coverity") == 1.0
    assert rate("bad_func_call", "coverity") == 1.0
    assert rate("ub", "coverity") >= 0.9
