"""E4 — Table 4: the 23 target projects.

Regenerates the target inventory (name, input type, version, paper size)
plus the simulation's own metrics (generated LoC, seeded bug count).
"""

from __future__ import annotations

from collections import Counter

from repro.evaluation import render_table4
from repro.targets import build_all_targets, target_names

from _common import write_result


def test_table4_target_inventory(benchmark):
    targets = benchmark(build_all_targets)
    table = render_table4(targets)
    write_result("table4.txt", table)
    print("\n" + table)

    assert len(targets) == 23
    assert [t.name for t in targets] == target_names()
    assert sum(len(t.bugs) for t in targets) == 78
    categories = Counter(b.category for t in targets for b in t.bugs)
    assert categories == {
        "EvalOrder": 2,
        "UninitMem": 27,
        "IntError": 8,
        "MemError": 13,
        "PointerCmp": 1,
        "LINE": 6,
        "Misc": 21,
    }
    # Input-type diversity, as the paper emphasizes.
    assert len({t.input_type for t in targets}) >= 10
