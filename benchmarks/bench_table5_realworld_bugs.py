"""E5 — Table 5: bugs detected by CompDiff-AFL++ on the 23 targets.

Runs one CompDiff-AFL++ campaign per target (plus the sanitizer campaigns
used by Table 6) and reports found bugs by root cause.  The Reported row
is *measured* (seeded bugs attributed to a divergent input); Confirmed/
Fixed are Table 5's developer-response metadata carried per bug.
"""

from __future__ import annotations

from collections import Counter

from repro.evaluation import render_table5

from _common import realworld_evaluation, write_result


def test_table5_realworld_bugs(benchmark):
    evaluation = benchmark.pedantic(realworld_evaluation, rounds=1, iterations=1)
    table = render_table5(evaluation)
    write_result("table5.txt", table)
    print("\n" + table)

    found = evaluation.found_bugs()
    total = evaluation.all_bugs()
    assert len(total) == 78
    # The campaigns find the large majority of seeded bugs at bench budget.
    assert len(found) >= 0.8 * len(total), f"only {len(found)}/78 found"
    by_category = Counter(bug.category for bug in found)
    # Signature findings (paper §4.3): both EvalOrder bugs, the PointerCmp
    # bug, all three MuJS miscompilations.
    assert by_category["EvalOrder"] == 2
    assert by_category["PointerCmp"] == 1
    miscompiles = [
        bug for bug in found if bug.subcategory.startswith("miscompile")
    ]
    assert len(miscompiles) == 3
    # UninitMem dominates, as in Table 5.
    assert by_category["UninitMem"] == max(by_category.values())
    # LINE inconsistencies found in the paper's named targets.
    line_targets = {bug.target for bug in found if bug.category == "LINE"}
    assert line_targets <= {"readelf", "ImageMagick", "wireshark", "libtiff", "php"}
    assert len(line_targets) >= 3
