"""E6 — Table 6 / RQ3: sanitizer overlap with CompDiff's real-world bugs.

Of the bugs CompDiff-AFL++ found, how many do sanitizer-instrumented
AFL++ campaigns also find?  Shape targets from the paper: ASan covers all
found MemError bugs, UBSan all IntError bugs, MSan most-but-not-all
UninitMem bugs, and everything else (EvalOrder, PointerCmp, LINE, Misc)
is sanitizer-invisible — the unique-value claim of the paper.
"""

from __future__ import annotations

from repro.evaluation import render_table6

from _common import realworld_evaluation, write_result


def test_table6_sanitizer_overlap(benchmark):
    evaluation = benchmark.pedantic(realworld_evaluation, rounds=1, iterations=1)
    table = render_table6(evaluation)
    write_result("table6.txt", table)
    print("\n" + table)

    found = evaluation.found_bugs()
    asan = evaluation.sanitizer_found_sites("asan")
    ubsan = evaluation.sanitizer_found_sites("ubsan")
    msan = evaluation.sanitizer_found_sites("msan")

    mem = [b for b in found if b.category == "MemError"]
    int_bugs = [b for b in found if b.category == "IntError"]
    uninit = [b for b in found if b.category == "UninitMem"]
    others = [
        b
        for b in found
        if b.category in ("EvalOrder", "PointerCmp", "LINE", "Misc")
    ]

    # ASan and UBSan cover (nearly) all of their classes (paper: all).
    assert sum(b.site in asan for b in mem) >= 0.8 * len(mem)
    assert sum(b.site in ubsan for b in int_bugs) >= 0.8 * len(int_bugs)
    # MSan covers only the branch-use subset of UninitMem (paper: 21/27).
    msan_hits = sum(b.site in msan for b in uninit)
    assert 0 < msan_hits < len(uninit)
    # The remaining categories are invisible to every sanitizer: these are
    # CompDiff's unique bugs (paper: 36 of 78).
    all_sanitizer_sites = asan | ubsan | msan
    assert all(b.site not in all_sanitizer_sites for b in others)
    unique = [b for b in found if b.site not in all_sanitizer_sites]
    assert len(unique) >= len(others)
    print(
        f"\nCompDiff-unique bugs: {len(unique)} of {len(found)} found "
        f"(paper: 36 of 78)"
    )
