"""Microbenchmarks: compile and execution throughput of the substrate.

Not a paper artifact — these track the performance characteristics the
experiment harnesses depend on: per-implementation compile cost, raw VM
execution rate, the forkserver's per-run saving, and the cost of one full
ten-binary oracle step (the paper's "roughly 10x" §5 figure comes from
exactly this quantity).
"""

from __future__ import annotations

from repro.compiler import compile_source, implementation
from repro.core.compdiff import CompDiff
from repro.minic import load
from repro.vm import ForkServer, run_binary

SOURCE = """
int checksum(char *data, long n) {
    long i;
    unsigned int h = 2166136261u;
    for (i = 0; i < n; i++) {
        h = (h ^ (unsigned int)(data[i] & 255)) * 16777619u;
    }
    return (int)(h & 0x7fffffff);
}

int main(void) {
    char buf[128];
    long n = read_input(buf, 128);
    int h = checksum(buf, n);
    printf("h=%d n=%ld\\n", h, n);
    return h % 31;
}
"""

INPUT = bytes(range(96))


def test_compile_throughput_o0(benchmark):
    program = load(SOURCE)
    from repro.compiler import compile_program

    binary = benchmark(compile_program, program, implementation("gcc-O0"))
    assert binary.module.functions


def test_compile_throughput_o3(benchmark):
    program = load(SOURCE)
    from repro.compiler import compile_program

    binary = benchmark(compile_program, program, implementation("clang-O3"))
    assert binary.module.functions


def test_parse_and_check_throughput(benchmark):
    program = benchmark(load, SOURCE)
    assert program.function("main") is not None


def test_cold_execution(benchmark):
    binary = compile_source(SOURCE, implementation("gcc-O0"))
    result = benchmark(run_binary, binary, INPUT)
    assert result.status.value == "ok"


def test_forkserver_execution(benchmark):
    server = ForkServer(compile_source(SOURCE, implementation("gcc-O0")))
    result = benchmark(server.run, INPUT)
    assert result.status.value == "ok"


def test_oracle_step_ten_binaries(benchmark):
    engine = CompDiff()
    servers = engine.build_source(SOURCE)
    diff = benchmark(engine.run_input, servers, INPUT)
    assert not diff.divergent  # the checksum program is UB-free
