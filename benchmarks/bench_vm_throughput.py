"""T-VM — execution throughput of the differential substrate.

Not a paper artifact — this tracks the three throughput levers the
experiment harnesses stand on (docs/PERFORMANCE.md):

* the decode-once **lockstep executor** vs one-shot ``run_binary``
  on a single binary;
* one full **ten-implementation oracle step** with the lockstep fast
  path vs the reference interpreter (``REPRO_NO_LOCKSTEP=1``) — the
  quantity every campaign's exec/sec hangs off;
* **batched engine submission** (one task carrying all inputs of a
  program) vs per-execution task submission at the same worker count.

Each comparison also records a *deterministic* identity column — the
observations/verdicts must be byte-identical between the fast and the
reference path.  The pytest gate checks those columns plus the
committed baseline's oracle-step speedup floor; the timing columns are
machine-dependent and never asserted (CONTRIBUTING rule 5).

Run directly (``make bench-throughput``) to refresh the committed
baseline::

    python benchmarks/bench_vm_throughput.py   # rewrites BENCH_throughput.json

or through pytest (``python -m pytest benchmarks/bench_vm_throughput.py``),
which re-measures and checks the deterministic columns.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time

from repro.compiler import compile_source, implementation
from repro.core.compdiff import CompDiff
from repro.minic import load
from repro.parallel.engine import BatchJob, ParallelEngine, ProgramPayload
from repro.vm import ForkServer, run_binary

from _common import write_result

BASELINE = pathlib.Path(__file__).parent / "BENCH_throughput.json"
ITERATIONS = 2
#: The committed baseline must show at least this oracle-step speedup
#: (the PR-level acceptance floor for the lockstep rearchitecture).
ORACLE_SPEEDUP_FLOOR = 2.0

SOURCE = """
int checksum(char *data, long n) {
    long i;
    int r;
    unsigned int h = 2166136261u;
    for (r = 0; r < 8; r++) {
        for (i = 0; i < n; i++) {
            h = (h ^ (unsigned int)(data[i] & 255)) * 16777619u;
        }
    }
    return (int)(h & 0x7fffffff);
}

int main(void) {
    char buf[128];
    long n = read_input(buf, 128);
    int h = checksum(buf, n);
    printf("h=%d n=%ld\\n", h, n);
    return h % 31;
}
"""

#: Deterministic input sweep: varied contents, campaign-typical lengths.
INPUTS = [bytes((i * 7 + j) % 256 for j in range(64 + i * 4)) for i in range(16)]

#: Batching amortizes per-task submission overhead, so it is measured
#: where that overhead is visible: a short program over short inputs
#: (the generative campaign's modal execution profile).
LIGHT_SOURCE = """
int main(void) {
    unsigned int h = 17u;
    unsigned int i;
    for (i = 0u; i < input_size(); i++) {
        h = h * 31u + (unsigned int)input_byte(i);
    }
    printf("h=%u\\n", h);
    return (int)(h % 31u);
}
"""

LIGHT_INPUTS = [bytes((i * 5 + j) % 256 for j in range(i * 11 % 29)) for i in range(24)]


def _observation(result) -> tuple:
    return (result.stdout, result.stderr, result.exit_code, result.status.value)


def _rate(executions: int, seconds: float) -> float:
    return round(executions / seconds, 2) if seconds > 0 else 0.0


def _measure_single_binary() -> dict:
    binary = compile_source(SOURCE, implementation("gcc-O0"))
    reps = 3

    best_cold = None
    for _ in range(ITERATIONS):
        started = time.perf_counter()
        for _ in range(reps):
            cold = [_observation(run_binary(binary, i)) for i in INPUTS]
        wall = time.perf_counter() - started
        best_cold = wall if best_cold is None else min(best_cold, wall)

    server = ForkServer(binary)
    server.decoded()  # decode outside the timed region, like a campaign
    best_lock = None
    for _ in range(ITERATIONS):
        started = time.perf_counter()
        for _ in range(reps):
            lock = [_observation(server.run(i)) for i in INPUTS]
        wall = time.perf_counter() - started
        best_lock = wall if best_lock is None else min(best_lock, wall)

    executions = reps * len(INPUTS)
    return {
        "inputs": len(INPUTS),
        "one_shot_exec_per_sec": _rate(executions, best_cold),
        "lockstep_exec_per_sec": _rate(executions, best_lock),
        "speedup": round(best_cold / best_lock, 2),
        "observations_identical": cold == lock,
    }


def _oracle_checksums(engine: CompDiff) -> list[dict[str, int]]:
    servers = engine.build_source(SOURCE)
    return [
        dict(engine.run_input(servers, i).checksums) for i in INPUTS
    ]


def _measure_oracle_step() -> dict:
    ref_env = dict(REPRO_NO_LOCKSTEP="1")

    best_ref = None
    for _ in range(ITERATIONS):
        os.environ.update(ref_env)
        try:
            started = time.perf_counter()
            ref = _oracle_checksums(CompDiff())
            wall = time.perf_counter() - started
        finally:
            os.environ.pop("REPRO_NO_LOCKSTEP", None)
        best_ref = wall if best_ref is None else min(best_ref, wall)

    best_lock = None
    for _ in range(ITERATIONS):
        started = time.perf_counter()
        lock = _oracle_checksums(CompDiff())
        wall = time.perf_counter() - started
        best_lock = wall if best_lock is None else min(best_lock, wall)

    executions = len(INPUTS) * 10  # ten implementations per oracle step
    return {
        "implementations": 10,
        "inputs": len(INPUTS),
        "reference_exec_per_sec": _rate(executions, best_ref),
        "lockstep_exec_per_sec": _rate(executions, best_lock),
        "speedup": round(best_ref / best_lock, 2),
        "verdicts_identical": ref == lock,
    }


def _measure_batched_submission() -> dict:
    from repro.compiler.implementations import DEFAULT_IMPLEMENTATIONS
    from repro.vm.machine import DEFAULT_FUEL

    payload = ProgramPayload.from_program(load(LIGHT_SOURCE), name="bench")

    with ParallelEngine(DEFAULT_IMPLEMENTATIONS, DEFAULT_FUEL, workers=2) as engine:
        best_single = None
        for _ in range(ITERATIONS):
            started = time.perf_counter()
            singles = [engine.run_one(payload, i) for i in LIGHT_INPUTS]
            wall = time.perf_counter() - started
            best_single = wall if best_single is None else min(best_single, wall)

        job = BatchJob(load(LIGHT_SOURCE), list(LIGHT_INPUTS), "bench")
        best_batched = None
        for _ in range(ITERATIONS):
            started = time.perf_counter()
            (batched,) = engine.run_batch([job])
            wall = time.perf_counter() - started
            best_batched = wall if best_batched is None else min(best_batched, wall)

    identical = [
        {n: _observation(r) for n, r in row.items()} for row in singles
    ] == [
        {n: _observation(r) for n, r in row.items()} for row in batched
    ]
    executions = len(LIGHT_INPUTS) * 10
    return {
        "workers": 2,
        "inputs": len(LIGHT_INPUTS),
        "per_execution_tasks": len(LIGHT_INPUTS),
        "batched_tasks": 1,
        "per_execution_exec_per_sec": _rate(executions, best_single),
        "batched_exec_per_sec": _rate(executions, best_batched),
        "speedup": round(best_single / best_batched, 2),
        "results_identical": identical,
    }


def measure() -> dict:
    return {
        "iterations": ITERATIONS,
        "single_binary": _measure_single_binary(),
        "oracle_step": _measure_oracle_step(),
        "batched_submission": _measure_batched_submission(),
    }


def render(data: dict) -> str:
    single = data["single_binary"]
    oracle = data["oracle_step"]
    batch = data["batched_submission"]
    return "\n".join([
        f"T-VM: substrate throughput (best of {data['iterations']}, "
        f"{oracle['inputs']} inputs)",
        "",
        f"single binary:   one-shot {single['one_shot_exec_per_sec']:>8.1f}/s  "
        f"lockstep {single['lockstep_exec_per_sec']:>8.1f}/s  "
        f"{single['speedup']:.2f}x  identical={single['observations_identical']}",
        f"oracle step x10: reference {oracle['reference_exec_per_sec']:>7.1f}/s  "
        f"lockstep {oracle['lockstep_exec_per_sec']:>8.1f}/s  "
        f"{oracle['speedup']:.2f}x  identical={oracle['verdicts_identical']}",
        f"batched submit:  per-exec {batch['per_execution_exec_per_sec']:>8.1f}/s  "
        f"batched  {batch['batched_exec_per_sec']:>8.1f}/s  "
        f"{batch['speedup']:.2f}x  identical={batch['results_identical']}",
    ])


def test_throughput_identity_and_baseline_floor():
    data = measure()
    print("\n" + render(data))
    write_result("throughput.txt", render(data))
    # Deterministic columns: the fast paths must be observationally
    # indistinguishable from the reference paths on this machine, now.
    assert data["single_binary"]["observations_identical"]
    assert data["oracle_step"]["verdicts_identical"]
    assert data["batched_submission"]["results_identical"]
    # The committed baseline (refreshed on a quiet machine by
    # `make bench-throughput`) must keep clearing the acceptance floor.
    baseline = json.loads(BASELINE.read_text())
    assert baseline["oracle_step"]["speedup"] >= ORACLE_SPEEDUP_FLOOR
    assert baseline["oracle_step"]["verdicts_identical"]
    assert baseline["single_binary"]["observations_identical"]
    assert baseline["batched_submission"]["results_identical"]


if __name__ == "__main__":
    data = measure()
    BASELINE.write_text(json.dumps(data, indent=2) + "\n")
    write_result("throughput.txt", render(data))
    sys.stdout.write(render(data) + "\n")
    sys.stdout.write(f"\nbaseline written to {BASELINE}\n")
