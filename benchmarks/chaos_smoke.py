"""Chaos smoke: shard-level fault injection must not change the corpus.

The sharded campaign runtime's headline invariant (docs/ROBUSTNESS.md,
"Sharded campaigns & salvage"): for any deterministic shard fault plan,
the merged corpus is **byte-identical** to a fault-free serial run,
minus only the contributions of seeds a ``poison`` fault drives into
the quarantine ledger.  This script drives that invariant end-to-end
with real subprocess shards, real SIGKILLs, and a really corrupted
checkpoint:

1. a fault-free serial generative campaign (the reference corpus);
2. the same campaign under ``--shards 2`` with a crash, a checkpoint
   corruption, and a hang injected — must merge byte-identical;
3. the same campaign with a poison seed — must quarantine exactly that
   seed into the ledger and complete with the rest of the corpus;
4. a sharded sancheck campaign over the planted fixtures — must match
   its serial verdict stream and bank bytes.

Run directly (``make chaos``)::

    python benchmarks/chaos_smoke.py

Exits 0 on PASS, 1 on any divergence.  The hard timeout in the make
target and CI job is part of the contract: a watchdog regression that
stops reclaiming hung shards fails by timeout instead of stalling.
"""

from __future__ import annotations

import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.campaigns.runtime import (
    CampaignRuntime,
    GenerativeShardAdapter,
    SancheckShardAdapter,
    ShardPolicy,
)
from repro.generative.bank import CorpusBank
from repro.generative.campaign import GenerativeCampaign, GenerativeOptions
from repro.parallel.faults import ShardFaultPlan
from repro.sanval.bank import FindingBank
from repro.sanval.campaign import SancheckCampaign, SancheckOptions

FIXTURES = os.path.join(os.path.dirname(__file__), "..", "tests", "fixtures", "sanval")

BUDGET = 4
POLICY = ShardPolicy(seed_deadline=8.0, backoff_base=0.01, backoff_max=0.1)


def corpus_bytes(root: str) -> dict[str, bytes]:
    out = {}
    for dirpath, _, files in os.walk(root):
        for name in files:
            path = os.path.join(dirpath, name)
            with open(path, "rb") as handle:
                out[os.path.relpath(path, root)] = handle.read()
    return out


def check(label: str, ok: bool, detail: str = "") -> bool:
    status = "PASS" if ok else "FAIL"
    print(f"  [{status}] {label}" + (f" — {detail}" if detail else ""))
    return ok


def gen_options() -> GenerativeOptions:
    return GenerativeOptions(seed=0, budget=BUDGET, reduce=False, stabilize_budget=4)


def run_sharded(workdir: str, name: str, fault_plan, policy=POLICY):
    bank_dir = os.path.join(workdir, f"{name}-merged")
    runtime = CampaignRuntime(
        GenerativeShardAdapter(gen_options()),
        CorpusBank(bank_dir),
        root=os.path.join(workdir, f"{name}-campaign"),
        shards=2,
        policy=policy,
        fault_plan=fault_plan,
    )
    result = runtime.run()
    return runtime, result, corpus_bytes(bank_dir)


def main() -> int:
    started = time.monotonic()
    ok = True
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as workdir:
        print(f"chaos smoke: {BUDGET}-seed generative campaign, 2 shards")

        serial_dir = os.path.join(workdir, "serial")
        with GenerativeCampaign(gen_options(), CorpusBank(serial_dir)) as campaign:
            serial = campaign.run()
        reference = corpus_bytes(serial_dir)
        ok &= check(
            "serial reference banked something",
            serial.banked_new > 0,
            f"{serial.banked_new} repros from {serial.generated} seeds",
        )

        plan = ShardFaultPlan(once={1: "crash", 2: "hang", 3: "corrupt"})
        runtime, merged, merged_bytes = run_sharded(workdir, "faulted", plan)
        shards = runtime.stats.snapshot()["shards"]
        ok &= check(
            "crash+hang+corrupt: merged corpus byte-identical to serial",
            merged_bytes == reference,
            f"{shards['restarts']} shard restarts absorbed",
        )
        ok &= check(
            "crash+hang+corrupt: counters identical",
            (merged.generated, merged.banked_new, merged.keys)
            == (serial.generated, serial.banked_new, serial.keys),
        )
        ok &= check("no seeds quarantined by transient faults", not runtime.quarantine)

        poison_policy = ShardPolicy(
            seed_deadline=8.0, max_seed_attempts=2, backoff_base=0.01, backoff_max=0.1
        )
        runtime, merged, merged_bytes = run_sharded(
            workdir, "poison", ShardFaultPlan(poison={2: "crash"}), poison_policy
        )
        ledger = [(entry.seq, entry.label) for entry in runtime.quarantine]
        ok &= check(
            "poison seed quarantined and campaign completed",
            ledger == [(2, "gen-ub-2")] and merged.generated == serial.generated - 1,
            f"ledger={ledger}",
        )
        ok &= check(
            "poisoned run banked exactly the serial corpus minus that seed",
            merged.keys == [k for i, k in enumerate(serial.keys) if i != 2],
        )

        san_options = SancheckOptions(
            fixtures=FIXTURES, relocations=("outline",), reduce=False
        )
        san_serial_dir = os.path.join(workdir, "san-serial")
        with SancheckCampaign(san_options, bank=FindingBank(san_serial_dir)) as c:
            san_serial = c.run()
        san_merged_dir = os.path.join(workdir, "san-merged")
        san_runtime = CampaignRuntime(
            SancheckShardAdapter(san_options),
            FindingBank(san_merged_dir),
            root=os.path.join(workdir, "san-campaign"),
            shards=2,
            policy=POLICY,
        )
        san_merged = san_runtime.run()
        ok &= check(
            "sancheck sharded run matches serial bank and verdicts",
            corpus_bytes(san_merged_dir) == corpus_bytes(san_serial_dir)
            and [v.to_json() for v in san_merged.verdicts]
            == [v.to_json() for v in san_serial.verdicts],
            f"{san_merged.banked_new} findings banked",
        )

    elapsed = time.monotonic() - started
    print(f"chaos smoke: {'PASS' if ok else 'FAIL'} in {elapsed:.1f}s")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
