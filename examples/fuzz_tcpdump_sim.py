#!/usr/bin/env python
"""CompDiff-AFL++ campaign on the simulated tcpdump target (§4.3).

Builds the tcpdump simulation (which carries the paper's two EvalOrder
bugs plus an UninitMem and a MemError bug), fuzzes it with the CompDiff
oracle enabled, then triages the discrepancies and prints a bug report.

Run:  python examples/fuzz_tcpdump_sim.py [executions]
"""

import sys

from repro.core.report import make_report
from repro.core.triage import triage
from repro.fuzzing import CompDiffFuzzer, FuzzerOptions
from repro.targets import build_target


def main() -> None:
    executions = int(sys.argv[1]) if len(sys.argv) > 1 else 4000
    target = build_target("tcpdump")
    print(f"target: {target.name} ({target.input_type}, version {target.version})")
    print(f"seeded bugs: {[(b.site, b.category) for b in target.bugs]}")
    print(f"campaign: {executions} executions\n")

    options = FuzzerOptions(max_executions=executions, compdiff_stride=3, rng_seed=7)
    fuzzer = CompDiffFuzzer(target.source, target.seeds, options, name=target.name)
    result = fuzzer.run()

    print(f"executions:        {result.executions}")
    print(f"oracle runs:       {result.oracle_executions} (x10 binaries each)")
    print(f"edges covered:     {result.edges_covered}")
    print(f"queue size:        {result.queue_size}")
    print(f"diff inputs saved: {result.diffs_found} (diffs/)")
    print(f"crashes saved:     {result.crashes_found} (crashes/)\n")

    print("seeded-bug attribution (the automated stand-in for manual triage):")
    for bug in target.bugs:
        status = "FOUND" if bug.site in result.sites_diverged else "missed"
        print(f"  site {bug.site:4d}  {bug.category:<12} {bug.subcategory:<22} {status}")

    clusters = triage(result.diffs, result.sites_by_input)
    print(f"\ndiscrepancy clusters: {len(clusters)}")
    for signature, members in list(clusters.items())[:4]:
        print(f"  {signature}  x{len(members)}")

    if result.diffs:
        print("\nsample bug report (paper §5 format):\n")
        print(make_report(target.name, result.diffs[0]).render())


if __name__ == "__main__":
    main()
