#!/usr/bin/env python
"""Juliet benchmark campaign: a small-scale Table 3 + Figure 1 run (§4.1-4.2).

Generates a scaled-down Juliet-like suite, evaluates CompDiff, the three
sanitizers, and the three static analyzers on every bad/good variant,
prints the detection-rate table, then runs the compiler-subset ablation.

Run:  python examples/juliet_campaign.py [scale]
      (scale defaults to 0.01, about 190 test programs)
"""

import sys

from repro.evaluation import (
    evaluate_juliet,
    figure_from_vectors,
    render_figure,
    render_table2,
    render_table3,
)
from repro.juliet import build_suite


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.01
    suite = build_suite(scale=scale)
    print(f"generated {len(suite.cases)} test cases (scale {scale} of Table 2)\n")
    print(render_table2(suite))
    print()

    print("running all tools on every bad and good variant ...")
    evaluation = evaluate_juliet(suite)
    print()
    print(render_table3(evaluation))
    print()

    figure = figure_from_vectors(evaluation.bug_vectors, evaluation.implementations)
    print(render_figure(figure, "Compiler-subset ablation (Figure 1 analog)"))


if __name__ == "__main__":
    main()
