#!/usr/bin/env python
"""Quickstart: find unstable code in a program with CompDiff.

Compiles the paper's Listing 1 (a signed-overflow guard that optimizing
compilers delete) with all ten simulated compiler implementations, runs
every binary on the same input, and reports the discrepancy.

Run:  python examples/quickstart.py
"""

from repro import CompDiff
from repro.core.report import make_report

LISTING_1 = """
/* dump a chunk of buffer (paper, Listing 1) */
int dump_data(int offset, int len) {
    int size = 1000;
    if (offset < 0 || len < 0) {
        return -1;
    }
    if (offset + len < offset) {   /* the unstable overflow guard */
        return -1;
    }
    printf("dumping %d bytes at offset %d\\n", len, offset);
    return 0;
}

int main(void) {
    int rc = dump_data(2147483647 - 100, 101);
    printf("rc=%d\\n", rc);
    return rc;
}
"""


def main() -> None:
    engine = CompDiff()  # the default ten implementations (gcc/clang x O0..Os)
    outcome = engine.check_source(LISTING_1, inputs=[b""], name="listing1")

    print(f"unstable code detected: {outcome.divergent}\n")
    diff = outcome.diffs[0]
    print("implementations grouped by identical output:")
    for group in diff.groups():
        sample = diff.observations[group[0]]
        print(f"  {', '.join(group)}")
        print(f"    stdout: {sample[0]!r}   exit: {sample[2]}")
    print()
    print(make_report("listing1", diff).render())


if __name__ == "__main__":
    main()
