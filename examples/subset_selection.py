#!/usr/bin/env python
"""Choosing a compiler-implementation subset for a CPU budget (§4.2/§5).

The paper's practical guidance: enable all ten implementations when you
can; under resource constraints, pick at least two *different* compilers
pairing an unoptimizing with an aggressively optimizing configuration.

This script makes that guidance quantitative for your own corpus: it runs
a small Juliet evaluation, then prints, for each subset size, the best
subset and what fraction of the full set's bugs it retains — the
size-vs-coverage tradeoff curve behind Figure 1 and the §5 overhead note.

Run:  python examples/subset_selection.py [scale]
"""

import sys

from repro.evaluation import evaluate_juliet, figure_from_vectors
from repro.juliet import build_suite


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.008
    suite = build_suite(scale=scale)
    print(f"evaluating CompDiff on {len(suite.cases)} generated test programs ...\n")
    evaluation = evaluate_juliet(
        suite, include_static=False, include_sanitizers=False, include_good_variants=False
    )
    figure = figure_from_vectors(evaluation.bug_vectors, evaluation.implementations)
    full = figure.summaries[10].best_count

    print(f"{'k':>3} {'best subset':<52} {'bugs':>5} {'vs full':>8} {'rel. cost':>9}")
    for size in sorted(figure.summaries):
        summary = figure.summaries[size]
        subset = "{" + ", ".join(summary.best_subset) + "}"
        print(
            f"{size:>3} {subset:<52} {summary.best_count:>5} "
            f"{100 * summary.best_count / full:>7.0f}% {size:>8}x"
        )
    best2 = figure.summaries[2]
    print(
        f"\nrecommendation at a 2x budget: {{{', '.join(best2.best_subset)}}} "
        f"retains {100 * best2.best_count / full:.0f}% of the full set's bugs"
    )
    worst2 = figure.summaries[2]
    print(
        f"avoid similar configurations: {{{', '.join(worst2.worst_subset)}}} "
        f"retains only {100 * worst2.worst_count / full:.0f}%"
    )


if __name__ == "__main__":
    main()
