#!/usr/bin/env python
"""End-to-end triage workflow: fuzz -> cluster -> minimize -> localize -> report.

This is the workflow §5 of the paper sketches for handling the contents of
the ``diffs/`` directory: cluster discrepancies by signature, shrink one
representative input per cluster, align execution traces between a pair of
disagreeing binaries to approximate the root-cause line, and emit the
developer-facing report.

Run:  python examples/triage_workflow.py
"""

from repro.core.compdiff import CompDiff
from repro.core.localize import localize
from repro.core.minimize import Minimizer
from repro.core.report import make_report
from repro.core.triage import triage
from repro.fuzzing import CompDiffFuzzer, FuzzerOptions
from repro.minic import load
from repro.targets import build_target


def main() -> None:
    target = build_target("readelf")  # PointerCmp + LINE + UninitMem bugs
    print(f"fuzzing {target.name} ...")
    options = FuzzerOptions(max_executions=4000, compdiff_stride=3, rng_seed=11)
    fuzzer = CompDiffFuzzer(target.source, target.seeds, options, name=target.name)
    campaign = fuzzer.run()
    print(f"  {campaign.diffs_found} diff-triggering inputs saved\n")

    clusters = triage(campaign.diffs, campaign.sites_by_input)
    print(f"{len(clusters)} discrepancy clusters:")

    program = load(target.source)
    engine = CompDiff(fuel=300_000)
    servers = engine.build(program, name=target.name)
    minimizer = Minimizer(engine, servers)

    for index, (signature, members) in enumerate(list(clusters.items())[:3]):
        representative = members[0]
        print("-" * 70)
        print(f"cluster {index}: {signature} ({len(members)} inputs)")
        minimized = minimizer.minimize(representative.input)
        print(
            f"  minimized: {len(minimized.original)}B -> {len(minimized.minimized)}B "
            f"({100 * minimized.reduction:.0f}% smaller)"
        )
        groups = representative.groups()
        impl_a, impl_b = groups[0][0], groups[1][0]
        outcome = localize(program, minimized.minimized, impl_a, impl_b)
        print("  " + outcome.render(target.source).replace("\n", "\n  "))
        final = engine.run_input(servers, minimized.minimized)
        if final.divergent:
            print()
            print(make_report(target.name, final).render())


if __name__ == "__main__":
    main()
