#!/usr/bin/env python
"""Gallery: the paper's four illustrative unstable-code examples (§1-§2).

Each snippet is run across all ten compiler implementations; the script
prints the output groups so you can see exactly which configurations
disagree and how.

Run:  python examples/unstable_code_gallery.py
"""

from repro import CompDiff

EXAMPLES = {
    "Listing 1 - signed overflow guard (binutils-style)": """
int dump_data(int offset, int len) {
    if (offset + len < offset) { return -1; }
    printf("dump offset=%d len=%d\\n", offset, len);
    return 0;
}
int main(void) {
    printf("rc=%d\\n", dump_data(2147483647 - 100, 101));
    return 0;
}
""",
    "Listing 2 - cross-object pointer comparison (binutils/dwarf.c)": """
char object_a[16];
char object_b[48];
int main(void) {
    char *saved_start = object_a;
    char *look_for = object_b;
    if (look_for <= saved_start) { printf("look_for before saved_start\\n"); }
    else { printf("look_for after saved_start\\n"); }
    return 0;
}
""",
    "Listing 3 - unsequenced side effects in call arguments (tcpdump)": """
char *get_linkaddr_string(int p) {
    static char buffer[32];
    buffer[0] = 'A' + p % 26;
    buffer[1] = 0;
    return buffer;
}
int main(void) {
    printf("who-is %s tell %s\\n",
           get_linkaddr_string(7),
           get_linkaddr_string(19));
    return 0;
}
""",
    "Listing 4 - conditionally uninitialized variable (exiv2)": """
int main(void) {
    int l;
    long is_len = input_size();   /* empty istringstream */
    if (is_len > 0) { l = 4660; }
    printf("0x%x\\n", (l & 0xffff0000) >> 16);
    return 0;
}
""",
    "Section 4.3 - int*int widened into a long (IntError)": """
int main(void) {
    int width = 100000;
    int height = 100000 + (int)input_size();
    long pixels = width * height;
    printf("pixels=%ld\\n", pixels);
    return 0;
}
""",
    "Section 4.3 - __LINE__ in a continued expression (LINE)": """
int report(int line) { printf("warning at line %d\\n", line); return 0; }
int main(void) {
    int rc =
        report(__LINE__);
    return rc;
}
""",
}


def main() -> None:
    engine = CompDiff()
    for title, source in EXAMPLES.items():
        print("=" * 72)
        print(title)
        print("=" * 72)
        outcome = engine.check_source(source, inputs=[b""])
        diff = outcome.diffs[0]
        print(f"unstable: {diff.divergent}")
        for group in diff.groups():
            stdout, _, exit_code, _ = diff.observations[group[0]]
            print(f"  [{', '.join(group)}]")
            print(f"      stdout={stdout!r} exit={exit_code}")
        print()


if __name__ == "__main__":
    main()
