"""Legacy setup shim.

The pinned environment has setuptools but no `wheel` package and no network
access, so PEP 517 editable installs (`pip install -e .`) fall back to this
file via `--no-use-pep517`.  All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
