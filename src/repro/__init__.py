"""repro: a reproduction of CompDiff (ASPLOS 2023).

Compiler-driven differential testing for unstable code, rebuilt end to end
on a MiniC substrate: language front end, ten simulated compiler
implementations, a bytecode VM, sanitizer and static-analyzer analogs, an
AFL++-style fuzzer, the Juliet-like benchmark suite, and the evaluation
drivers that regenerate the paper's tables and figures.

Quickstart::

    from repro import CompDiff

    source = '''
    int main(void) {
        int x = 2147483647;
        if (x + 1 < x) { printf("guarded\\n"); return 1; }
        printf("fell through\\n");
        return 0;
    }
    '''
    report = CompDiff().check_source(source, inputs=[b""])
    print(report.divergent)   # True: the overflow guard is unstable code
"""

from repro.compiler import (
    CompilerConfig,
    CompiledBinary,
    DEFAULT_IMPLEMENTATIONS,
    compile_source,
    implementation,
    implementation_names,
)
from repro.vm import ExecutionResult, ForkServer, Status, run_binary

__version__ = "1.0.0"

__all__ = [
    "CompDiff",
    "CompilerConfig",
    "CompiledBinary",
    "DEFAULT_IMPLEMENTATIONS",
    "DiffResult",
    "ExecutionResult",
    "ForkServer",
    "Status",
    "compile_source",
    "implementation",
    "implementation_names",
    "run_binary",
    "__version__",
]


def __getattr__(name: str):
    # CompDiff/DiffResult are imported lazily to keep `import repro` cheap
    # and to avoid import cycles from subpackages that need the compiler.
    if name in ("CompDiff", "DiffResult"):
        from repro.core import compdiff

        return getattr(compdiff, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
