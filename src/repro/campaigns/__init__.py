"""Shared campaign infrastructure: sharded runtime, SIGINT, salvage.

The generative campaign (``repro generate``) and the sanitizer-validation
campaign (``repro sancheck``) are different pipelines over the same
shape: a deterministic seed list walked in order, checkpointed at seed
boundaries, banking into a keyed, deduped corpus.  This package holds
the machinery that shape shares:

* :mod:`repro.campaigns.sigint` — deferred Ctrl-C: interrupt at a seed
  boundary with the checkpoint flushed, never mid-seed;
* :mod:`repro.campaigns.runtime` — the sharded, self-healing campaign
  supervisor (seed-range partitioning, watchdogs, quarantine,
  deterministic merge);
* :mod:`repro.campaigns.fsck` — corpus salvage for corrupted banks
  (``repro bank fsck``).
"""
