"""Corpus salvage: quarantine the broken parts of a bank, keep the rest.

Bank loading (:class:`~repro.generative.bank.CorpusBank`,
:class:`~repro.sanval.bank.FindingBank`) is deliberately strict — a
corrupt manifest or a missing program file raises
:class:`~repro.errors.ReproError` rather than silently dropping
evidence.  ``repro bank fsck`` is the other half of that contract: it
walks a damaged bank, moves everything unsalvageable into a
``corrupt/`` sidecar (with a ledger recording why), rewrites the
manifest over the surviving entries, and leaves a bank that loads
cleanly again.

What gets quarantined, per entry:

* manifest entries that do not parse back into a banked record;
* entries whose program file (or ``.good.c`` twin, for generative
  banks) is missing or unreadable;
* entries whose recorded dedupe key does not match the key recomputed
  from their own metadata (a tampered or bit-rotten record);
* duplicate keys (first occurrence wins, later ones quarantined);
* program files no surviving entry references (orphans).

A manifest that does not parse at all (or has the wrong version) is
quarantined wholesale and **no new manifest is written**: both bank
classes treat a missing manifest as an empty bank, so the directory
still loads — with its programs preserved under ``corrupt/`` for
manual recovery.

Sidecar layout (``<root>/corrupt/``)::

    ledger.json          # why each item was quarantined, append-only
    manifest.json        # the quarantined manifest, if it was unreadable
    programs/<file>      # quarantined program files
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError
from repro.persist import atomic_write_json, fsync_directory

#: Sidecar directory and ledger names.
CORRUPT_DIR = "corrupt"
LEDGER_FILE = "ledger.json"
#: Sidecar ledger format version.
LEDGER_VERSION = 1

#: Detectable bank kinds.
GENERATIVE = "generative"
SANCHECK = "sancheck"
BANK_KINDS = (GENERATIVE, SANCHECK)


@dataclass
class FsckFinding:
    """One quarantined item and why."""

    #: Manifest key the item belonged to (None for the manifest itself
    #: and for orphaned files).
    key: str | None
    reason: str
    #: Files moved into the sidecar, sidecar-relative.
    files: list[str] = field(default_factory=list)

    def to_json(self) -> dict:
        return {"key": self.key, "reason": self.reason, "files": self.files}


@dataclass
class FsckReport:
    """Outcome of one salvage pass."""

    root: str
    kind: str
    #: Entries the manifest claimed before salvage.
    total_entries: int = 0
    #: Entries that survived validation.
    kept: int = 0
    quarantined: list[FsckFinding] = field(default_factory=list)
    #: True when the manifest itself was unreadable and went wholesale
    #: into the sidecar.
    manifest_quarantined: bool = False

    @property
    def clean(self) -> bool:
        return not self.quarantined and not self.manifest_quarantined

    def to_json(self) -> dict:
        return {
            "root": self.root,
            "kind": self.kind,
            "total_entries": self.total_entries,
            "kept": self.kept,
            "manifest_quarantined": self.manifest_quarantined,
            "quarantined": [finding.to_json() for finding in self.quarantined],
        }

    def render(self) -> str:
        if self.clean:
            return (
                f"bank fsck: {self.root} is clean "
                f"({self.kept} of {self.total_entries} entries verified)"
            )
        lines = [
            f"bank fsck: salvaged {self.root} — kept {self.kept} of "
            f"{self.total_entries} entries, quarantined "
            f"{len(self.quarantined)} item(s) into "
            f"{os.path.join(self.root, CORRUPT_DIR)}"
        ]
        for finding in self.quarantined:
            label = finding.key if finding.key is not None else "<bank>"
            lines.append(f"  {label}: {finding.reason}")
        return "\n".join(lines)


# --------------------------------------------------------------------------
# Helpers
# --------------------------------------------------------------------------


def _sidecar_move(root: Path, source: Path) -> str:
    """Move *source* into the sidecar, never clobbering prior salvage."""
    sidecar = root / CORRUPT_DIR
    relative = source.relative_to(root)
    target = sidecar / relative
    target.parent.mkdir(parents=True, exist_ok=True)
    candidate = target
    serial = 0
    while candidate.exists():
        serial += 1
        candidate = target.with_name(f"{target.name}.{serial}")
    shutil.move(str(source), str(candidate))
    fsync_directory(str(candidate.parent))
    return str(candidate.relative_to(sidecar))


def _append_ledger(root: Path, findings: list[FsckFinding]) -> None:
    path = root / CORRUPT_DIR / LEDGER_FILE
    entries = []
    if path.exists():
        try:
            entries = json.loads(path.read_text()).get("entries", [])
        except (OSError, json.JSONDecodeError):
            # The ledger itself rotted; start a fresh one rather than
            # refuse to salvage the bank.
            entries = []
    entries.extend(finding.to_json() for finding in findings)
    atomic_write_json(path, {"version": LEDGER_VERSION, "entries": entries})


def _detect_kind(data: dict) -> str | None:
    if "repros" in data:
        return GENERATIVE
    if "findings" in data:
        return SANCHECK
    return None


# --------------------------------------------------------------------------
# Salvage
# --------------------------------------------------------------------------


def fsck_bank(root: str | os.PathLike, kind: str = "auto") -> FsckReport:
    """Salvage the bank at *root*; returns what was kept vs quarantined.

    *kind* is ``"auto"`` (detect from the manifest), ``"generative"``,
    or ``"sancheck"`` — the override matters only when the manifest is
    too far gone to detect from.  Raises :class:`ReproError` for a
    directory that is not a bank at all (no manifest and no programs).
    """
    if kind != "auto" and kind not in BANK_KINDS:
        raise ReproError(f"unknown bank kind {kind!r}; expected one of {BANK_KINDS}")
    root_path = Path(root)
    manifest_path = root_path / "manifest.json"
    programs_dir = root_path / "programs"
    if not manifest_path.exists() and not programs_dir.is_dir():
        raise ReproError(f"{root_path} is not a corpus bank (no manifest, no programs)")

    report = FsckReport(root=str(root_path), kind=kind)
    data: dict | None = None
    if manifest_path.exists():
        try:
            parsed = json.loads(manifest_path.read_text())
            if not isinstance(parsed, dict):
                raise ValueError(f"manifest root is {type(parsed).__name__}, not object")
            data = parsed
        except (OSError, json.JSONDecodeError, ValueError) as exc:
            moved = _sidecar_move(root_path, manifest_path)
            report.manifest_quarantined = True
            report.quarantined.append(
                FsckFinding(key=None, reason=f"manifest unreadable: {exc}", files=[moved])
            )

    detected = _detect_kind(data) if data is not None else None
    if kind == "auto":
        kind = detected or kind
    report.kind = kind
    if data is not None and (detected is None or (kind != "auto" and detected != kind)):
        moved = _sidecar_move(root_path, manifest_path)
        report.manifest_quarantined = True
        report.quarantined.append(
            FsckFinding(
                key=None,
                reason=(
                    "manifest is not a recognizable bank manifest"
                    if detected is None
                    else f"manifest holds a {detected} bank, not {kind}"
                ),
                files=[moved],
            )
        )
        data = None

    kept_records: list[dict] = []
    referenced: set[str] = set()
    if data is not None:
        kept_records, referenced = _validate_entries(root_path, data, kind, report)

    # Orphan scan: any program file no surviving entry references.
    if programs_dir.is_dir():
        for entry in sorted(programs_dir.iterdir()):
            # Abandoned ``.tmp`` atomic-write leftovers are never
            # referenced, so they fall through here and get swept too.
            if entry.name in referenced:
                continue
            moved = _sidecar_move(root_path, entry)
            report.quarantined.append(
                FsckFinding(
                    key=None,
                    reason="orphaned program file (no manifest entry references it)",
                    files=[moved],
                )
            )

    if data is not None:
        _rewrite_manifest(manifest_path, kind, kept_records)
    if report.quarantined:
        _append_ledger(root_path, report.quarantined)
    return report


def _validate_entries(
    root: Path, data: dict, kind: str, report: FsckReport
) -> tuple[list[dict], set[str]]:
    """Validate each manifest entry; quarantine failures via *report*."""
    from repro.generative.bank import BANK_SCHEMA_VERSION, BankedRepro, corpus_key
    from repro.sanval.bank import SANVAL_BANK_VERSION, BankedFinding, finding_key

    programs = root / "programs"
    if kind == GENERATIVE:
        records, version = data.get("repros", []), BANK_SCHEMA_VERSION
    else:
        records, version = data.get("findings", []), SANVAL_BANK_VERSION
    report.total_entries = len(records)
    if data.get("version") != version:
        for record in records:
            key = record.get("key") if isinstance(record, dict) else None
            report.quarantined.append(
                FsckFinding(
                    key=key,
                    reason=(
                        f"manifest version {data.get('version')!r} is not "
                        f"{version}; entry cannot be trusted"
                    ),
                    files=_quarantine_programs(root, key, kind),
                )
            )
        return [], set()

    kept: list[dict] = []
    referenced: set[str] = set()
    seen: set[str] = set()
    for record in records:
        key = record.get("key") if isinstance(record, dict) else None
        if not isinstance(key, str) or not key:
            report.quarantined.append(
                FsckFinding(key=None, reason="manifest entry has no key", files=[])
            )
            continue
        if key in seen:
            report.quarantined.append(
                FsckFinding(
                    key=key,
                    reason="duplicate key (first occurrence kept)",
                    files=[],
                )
            )
            continue
        source_path = programs / f"{key}.c"
        good_path = programs / f"{key}.good.c"
        try:
            source = source_path.read_text()
            if kind == GENERATIVE:
                good = good_path.read_text()
                banked = BankedRepro.from_json(record, source, good)
                expected = corpus_key(
                    set(banked.checkers), banked.culprit_original, banked.partition
                )
            else:
                banked = BankedFinding.from_json(record, source)
                expected = finding_key(
                    banked.sanitizer,
                    banked.outcome,
                    banked.kinds,
                    banked.checkers,
                    banked.oracle_fingerprints,
                    banked.partition,
                )
        except OSError as exc:
            report.quarantined.append(
                FsckFinding(
                    key=key,
                    reason=f"program file missing or unreadable: {exc}",
                    files=_quarantine_programs(root, key, kind),
                )
            )
            continue
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            report.quarantined.append(
                FsckFinding(
                    key=key,
                    reason=f"manifest entry does not parse: {exc!r}",
                    files=_quarantine_programs(root, key, kind),
                )
            )
            continue
        if expected != key:
            report.quarantined.append(
                FsckFinding(
                    key=key,
                    reason=(
                        f"recorded key does not match metadata "
                        f"(recomputed {expected})"
                    ),
                    files=_quarantine_programs(root, key, kind),
                )
            )
            continue
        seen.add(key)
        kept.append(record)
        referenced.add(f"{key}.c")
        if kind == GENERATIVE:
            referenced.add(f"{key}.good.c")
    report.kept = len(kept)
    return kept, referenced


def _quarantine_programs(root: Path, key: str | None, kind: str) -> list[str]:
    """Move a quarantined entry's program files into the sidecar."""
    if key is None:
        return []
    moved = []
    names = [f"{key}.c"]
    if kind == GENERATIVE:
        names.append(f"{key}.good.c")
    for name in names:
        path = root / "programs" / name
        if path.exists():
            moved.append(_sidecar_move(root, path))
    return moved


def _rewrite_manifest(manifest_path: Path, kind: str, records: list[dict]) -> None:
    from repro.generative.bank import BANK_SCHEMA_VERSION
    from repro.sanval.bank import SANVAL_BANK_VERSION

    ordered = sorted(records, key=lambda record: record["key"])
    if kind == GENERATIVE:
        payload = {"version": BANK_SCHEMA_VERSION, "repros": ordered}
    else:
        payload = {"version": SANVAL_BANK_VERSION, "findings": ordered}
    atomic_write_json(manifest_path, payload)
