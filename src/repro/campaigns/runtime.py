"""Sharded, self-healing campaign runtime: partition, supervise, merge.

Campaigns in this repo are deterministic walks over a seed range, so
parallelising them is a *partitioning* problem, not a queueing one: the
range is split into contiguous blocks, one per shard, and each shard
worker process drives the ordinary single-process campaign
(:class:`~repro.generative.campaign.GenerativeCampaign` or
:class:`~repro.sanval.campaign.SancheckCampaign`) over its block with
its own checkpoint directory and its own bank shard.  Because blocks are
contiguous and in shard order, concatenating shard results reproduces
the serial discovery order exactly — which is what lets the merge be
held to a byte-identity contract rather than a fuzzy "same-ish corpus"
one.

Supervision (one poll loop, no threads):

* **heartbeats** — a shard's campaign loop reports each seed boundary
  through the ``progress`` hook; the worker writes the offset to an
  atomic ``heartbeat.json``.  A shard whose heartbeat stops advancing
  for ``seed_deadline`` seconds is declared hung and killed.
* **restart + bounded retry** — a dead or killed shard is relaunched
  after exponential backoff; its checkpoint resumes it at the seed
  boundary it last completed.  The failure is *blamed* on the heartbeat
  offset, and a seed that accumulates ``max_seed_attempts`` blamed
  failures is a **poison seed**: it is appended to the durable
  quarantine ledger (``quarantine.json``) and skipped by every
  subsequent launch, so one pathological seed cannot wedge the
  campaign.
* **corrupt-state self-heal** — a worker that finds its own checkpoint
  or bank shard unloadable (torn write, bit rot, an injected corrupt
  fault) wipes the shard's state and deterministically replays its
  block from the start instead of dying on it.
* **range adoption** — a shard that exhausts ``max_shard_restarts`` is
  not retried again in a subprocess: the supervisor adopts its
  remaining range and runs it in-process (fault injection disabled), so
  the campaign always terminates with full coverage minus quarantined
  seeds.
* **crash recovery on resume** — the shard plan (``shards.json``), the
  ledger, every shard checkpoint, and every completed shard's result
  record (``result.rec``) are durable; rerunning after the *supervisor*
  itself died relaunches only the unfinished shards and converges on
  the same corpus.

The merge replays serial banking order: shard key streams are
concatenated in shard order, and each key's banked entry is the one
discovered at the lowest global seed offset — exactly the entry a
serial run would have banked first.  Invariant (pinned by
``tests/test_campaign_runtime.py`` and ``make chaos``): for any
:class:`~repro.parallel.faults.ShardFaultPlan`, the merged corpus is
byte-identical to a fault-free serial run, minus only the contributions
of seeds the plan's ``poison`` entries drove into the ledger.

Layout under the campaign root::

    shards.json            # digest + shard count + block ranges
    quarantine.json        # poison-seed ledger, append-only
    shard-00/
        heartbeat.json     # {"offset": N, "pid": P} at each boundary
        result.rec         # RPRSHRD1 record once the block completed
        ckpt/              # the shard campaign's ordinary checkpoint
        bank/              # the shard's private bank
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import signal
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from repro.campaigns.sigint import DeferredInterrupt
from repro.errors import CheckpointError, EngineConfigError, ReproError
from repro.parallel.faults import ShardFaultPlan, execute_shard_fault
from repro.parallel.stats import EngineStats
from repro.parallel.supervisor import QuarantineEntry, backoff_delay
from repro.persist import atomic_write_json, read_record, write_record

#: Shard result record magic (distinct from every campaign checkpoint).
SHARD_MAGIC = b"RPRSHRD1"

#: Files under the campaign root / each shard directory.
SHARDS_FILE = "shards.json"
QUARANTINE_FILE = "quarantine.json"
HEARTBEAT_FILE = "heartbeat.json"
RESULT_FILE = "result.rec"
SHARD_CKPT_DIR = "ckpt"
SHARD_BANK_DIR = "bank"

#: Shard-plan format version.
SHARDS_VERSION = 1
#: Quarantine-ledger format version.
QUARANTINE_VERSION = 1


def partition_range(total: int, shards: int) -> list[tuple[int, int]]:
    """Split ``[0, total)`` into *shards* contiguous blocks, in order.

    Blocks differ in size by at most one, earlier blocks taking the
    remainder, so the partition is a pure function of ``(total,
    shards)`` — the property shard-plan resume and the merge's
    serial-order reconstruction both rely on.
    """
    if shards < 1:
        raise EngineConfigError(f"shards must be >= 1, got {shards}")
    base, extra = divmod(total, shards)
    ranges = []
    lo = 0
    for index in range(shards):
        hi = lo + base + (1 if index < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


@dataclass(frozen=True)
class ShardPolicy:
    """Recovery knobs for one :class:`CampaignRuntime`."""

    #: Seconds a shard's heartbeat may stand still before the shard is
    #: declared hung and killed.  ``None`` disables the watchdog.  Must
    #: comfortably exceed the cost of one seed (generate + diff +
    #: reduce), which is wall-clock work, not a hang.
    seed_deadline: Optional[float] = 120.0
    #: Blamed failures a seed may accumulate before quarantine.
    max_seed_attempts: int = 3
    #: Relaunches a shard may consume before its range is adopted
    #: in-process.
    max_shard_restarts: int = 16
    #: Exponential backoff between a shard's relaunches, in seconds.
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    #: Supervisor poll interval, in seconds.
    poll_interval: float = 0.05

    def __post_init__(self) -> None:
        if self.seed_deadline is not None and self.seed_deadline <= 0:
            raise EngineConfigError(
                f"seed_deadline must be positive or None, got {self.seed_deadline}"
            )
        if self.max_seed_attempts < 1:
            raise EngineConfigError(
                f"max_seed_attempts must be >= 1, got {self.max_seed_attempts}"
            )
        if self.max_shard_restarts < 0:
            raise EngineConfigError(
                f"max_shard_restarts must be >= 0, got {self.max_shard_restarts}"
            )

    def backoff(self, recovery_round: int) -> float:
        """Sleep before relaunch *recovery_round* (0-based) of a shard."""
        return backoff_delay(
            recovery_round, self.backoff_base, self.backoff_factor, self.backoff_max
        )


@dataclass
class ShardRecord:
    """A completed shard's durable result (``result.rec``)."""

    options_digest: str
    lo: int
    hi: int
    #: The shard campaign's ordinary result object
    #: (GenerativeResult or SancheckResult).
    result: object


# --------------------------------------------------------------------------
# Campaign adapters
# --------------------------------------------------------------------------


@dataclass
class GenerativeShardAdapter:
    """Runs :class:`~repro.generative.campaign.GenerativeCampaign` slices.

    Picklable (plain options dataclass inside) so shard workers can be
    spawned as well as forked.  ``min_banked`` early exit is disabled on
    shards — it is order-dependent and would break the byte-identity
    contract — and the differential engine runs single-worker inside
    each shard (the shard *is* the parallelism).
    """

    options: object  # GenerativeOptions

    kind = "generative"

    @property
    def checkpoint_file(self) -> str:
        from repro.generative.campaign import CHECKPOINT_FILE

        return CHECKPOINT_FILE

    def digest(self) -> str:
        return self.options.digest()

    def total(self) -> int:
        return self.options.budget

    def label(self, offset: int) -> str:
        options = self.options
        return f"gen-{options.profile}-{options.seed + offset}"

    def run_slice(
        self,
        lo: int,
        hi: int,
        skip: frozenset[int],
        bank_dir: str,
        ckpt_dir: str,
        progress: Optional[Callable[[int], None]],
    ):
        from repro.generative.bank import CorpusBank
        from repro.generative.campaign import GenerativeCampaign

        options = replace(
            self.options,
            checkpoint_dir=ckpt_dir,
            # Boundary-exact checkpoints: an injected crash at offset k
            # resumes at exactly k, so shard counters never drift.
            checkpoint_every=1,
            min_banked=None,
            workers=1,
        )
        bank = CorpusBank(bank_dir)
        with GenerativeCampaign(
            options,
            bank,
            seed_slice=(lo, hi),
            skip_offsets=skip,
            progress=progress,
            interruptible=False,
        ) as campaign:
            return campaign.run()

    def merge(self, bank, payloads: list[tuple[ShardRecord, str]], db=None):
        """Merge shard banks + results into *bank*, serial-identically.

        Shard key streams concatenated in shard order reproduce serial
        discovery order (blocks are contiguous), and each key's winning
        entry is the shard-bank entry with the lowest global seed
        offset — the entry a serial run would have banked.

        With a shared :class:`~repro.db.CorpusDB`, each key is claimed
        in the database before banking: a class another campaign (or
        shard cluster sharing the DB) already registered counts as a
        duplicate instead of re-banking.  ``db=None`` is byte-identical
        to the pre-DB merge.
        """
        from repro.generative.bank import CorpusBank
        from repro.generative.campaign import GenerativeResult

        merged = GenerativeResult()
        winners: dict[str, tuple[int, object]] = {}
        for record, bank_dir in payloads:
            for repro in CorpusBank(bank_dir):
                offset = repro.seed - self.options.seed
                current = winners.get(repro.key)
                if current is None or offset < current[0]:
                    winners[repro.key] = (offset, repro)
            result = record.result
            merged.generated += result.generated
            merged.divergent += result.divergent
            merged.keys.extend(result.keys)
        for key in merged.keys:
            if key in bank:
                merged.duplicates += 1
                continue
            entry = winners[key][1]
            if db is not None and not _db_claim_generative(db, entry):
                merged.duplicates += 1
                continue
            bank.add(entry)
            merged.banked_new += 1
            if entry.culprit_drifted:
                merged.drifted += 1
        if db is not None:
            db.commit()
        merged.corpus_size = len(bank)
        return merged


@dataclass
class SancheckShardAdapter:
    """Runs :class:`~repro.sanval.campaign.SancheckCampaign` slices."""

    options: object  # SancheckOptions

    kind = "sancheck"

    @property
    def checkpoint_file(self) -> str:
        from repro.sanval.campaign import CHECKPOINT_FILE

        return CHECKPOINT_FILE

    def digest(self) -> str:
        return self.options.digest()

    def total(self) -> int:
        from repro.sanval.campaign import build_seeds

        return len(build_seeds(self.options))

    def label(self, offset: int) -> str:
        from repro.sanval.campaign import seed_labels

        labels = seed_labels(self.options)
        return labels[offset] if 0 <= offset < len(labels) else f"seed-{offset}"

    def run_slice(
        self,
        lo: int,
        hi: int,
        skip: frozenset[int],
        bank_dir: str,
        ckpt_dir: str,
        progress: Optional[Callable[[int], None]],
    ):
        from repro.sanval.bank import FindingBank
        from repro.sanval.campaign import SancheckCampaign

        options = replace(
            self.options,
            checkpoint_dir=ckpt_dir,
            checkpoint_every=1,
            workers=1,
        )
        bank = FindingBank(bank_dir)
        with SancheckCampaign(
            options,
            bank=bank,
            seed_slice=(lo, hi),
            skip_offsets=skip,
            progress=progress,
            interruptible=False,
        ) as campaign:
            return campaign.run()

    def merge(self, bank, payloads: list[tuple[ShardRecord, str]], db=None):
        """Merge shard banks + results into *bank*, serial-identically.

        Verdicts concatenate in shard order (each shard judged only its
        block, in order), and banking replays the FN/FP verdict stream:
        a key's winner is the entry banked by the shard whose block
        first produced it.  A shared :class:`~repro.db.CorpusDB` adds
        cross-campaign dedupe exactly as in the generative merge;
        ``db=None`` is byte-identical to the pre-DB merge.
        """
        from repro.sanval.bank import FindingBank, finding_key
        from repro.sanval.campaign import SancheckResult
        from repro.sanval.verdict import FN, FP

        merged = SancheckResult()
        shard_banks = []
        for record, bank_dir in payloads:
            result = record.result
            merged.seeds += result.seeds
            merged.variants += result.variants
            merged.dropped += result.dropped
            merged.screened += result.screened
            merged.skipped += result.skipped
            merged.verdicts.extend(result.verdicts)
            shard_banks.append(FindingBank(bank_dir))
        if bank is not None:
            for (record, _), shard_bank in zip(payloads, shard_banks):
                for verdict in record.result.verdicts:
                    if verdict.outcome not in (FN, FP):
                        continue
                    kinds = (
                        verdict.expected
                        if verdict.outcome == FN
                        else verdict.reported_kinds
                    )
                    key = finding_key(
                        verdict.sanitizer,
                        verdict.outcome,
                        kinds,
                        verdict.truth.confirmed_checkers,
                        verdict.truth.oracle_fingerprints,
                        verdict.truth.partition,
                    )
                    if key in bank:
                        merged.duplicates += 1
                        continue
                    entry = shard_bank.get(key)
                    if entry is None:
                        continue
                    if db is not None and not _db_claim_sancheck(db, entry):
                        merged.duplicates += 1
                        continue
                    if bank.add(entry):
                        merged.banked_new += 1
            if db is not None:
                db.commit()
            merged.bank_size = len(bank)
        return merged


def _db_claim_generative(db, repro) -> bool:
    """Claim a generative repro's class in the shared DB (True = ours)."""
    from repro.db import CLASS_GENERATIVE

    fingerprint = db.add_program(repro.source, name=f"gen/{repro.key}")
    for checker, diag in zip(repro.checkers, repro.fingerprints):
        db.add_diagnostic(fingerprint, checker, diag)
    record = dict(repro.to_json())
    record["_source"] = repro.source
    record["_good_source"] = repro.good_source
    return db.register_class(CLASS_GENERATIVE, repro.key, fingerprint, record)


def _db_claim_sancheck(db, finding) -> bool:
    """Claim a sanval finding's class in the shared DB (True = ours)."""
    from repro.db import CLASS_SANCHECK

    fingerprint = db.add_program(finding.source, name=f"sanval/{finding.key}")
    for checker, diag in zip(finding.checkers, finding.oracle_fingerprints):
        db.add_diagnostic(fingerprint, checker, diag)
    record = dict(finding.to_json())
    record["_source"] = finding.source
    return db.register_class(CLASS_SANCHECK, finding.key, fingerprint, record)


# --------------------------------------------------------------------------
# Shard worker
# --------------------------------------------------------------------------


def _shard_worker(
    adapter,
    lo: int,
    hi: int,
    skip: frozenset[int],
    shard_dir: str,
    fault_plan: ShardFaultPlan | None,
    attempts: dict[int, int],
) -> None:
    """Drive one shard's block to completion and persist its record.

    Module-level (picklable) so it works under both fork and spawn.
    The supervisor owns interrupt semantics, so SIGINT is ignored here;
    the heartbeat is written at every seed boundary *before* the seed
    (and before any injected fault), which is what makes the
    supervisor's failure blame exact.  A shard whose own checkpoint or
    bank is unloadable self-heals: wipe the shard state, replay the
    block deterministically.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except ValueError:  # pragma: no cover - non-main-thread embedding
        pass
    heartbeat_path = os.path.join(shard_dir, HEARTBEAT_FILE)
    ckpt_dir = os.path.join(shard_dir, SHARD_CKPT_DIR)
    bank_dir = os.path.join(shard_dir, SHARD_BANK_DIR)
    ckpt_path = os.path.join(ckpt_dir, adapter.checkpoint_file)

    def progress(offset: int) -> None:
        atomic_write_json(heartbeat_path, {"offset": offset, "pid": os.getpid()})
        if fault_plan is not None and offset not in skip:
            kind = fault_plan.decide(offset, attempts.get(offset, 0))
            if kind is not None:
                execute_shard_fault(kind, checkpoint_path=ckpt_path)

    try:
        result = adapter.run_slice(lo, hi, skip, bank_dir, ckpt_dir, progress)
    except ReproError:
        # Torn/corrupt shard state (CheckpointError from the checkpoint,
        # ReproError from the bank manifest): wipe this shard only and
        # replay its block from the start.  A second failure is a real
        # campaign error and propagates.
        shutil.rmtree(ckpt_dir, ignore_errors=True)
        shutil.rmtree(bank_dir, ignore_errors=True)
        result = adapter.run_slice(lo, hi, skip, bank_dir, ckpt_dir, progress)
    write_record(
        os.path.join(shard_dir, RESULT_FILE),
        SHARD_MAGIC,
        ShardRecord(options_digest=adapter.digest(), lo=lo, hi=hi, result=result),
    )


# --------------------------------------------------------------------------
# Supervisor
# --------------------------------------------------------------------------


@dataclass
class _ShardState:
    """Supervisor-side view of one live shard process."""

    process: multiprocessing.process.BaseProcess
    last_offset: Optional[int] = None
    last_progress: float = field(default_factory=time.monotonic)


class CampaignRuntime:
    """Partition a campaign across shard workers and merge their banks.

    ``run()`` returns the same result type the underlying campaign's
    serial ``run()`` would; recovery accounting lands in :attr:`stats`
    and poison seeds in :attr:`quarantine`.
    """

    def __init__(
        self,
        adapter,
        bank,
        root: str,
        shards: int,
        policy: ShardPolicy | None = None,
        fault_plan: ShardFaultPlan | None = None,
        stats: EngineStats | None = None,
        db=None,
    ) -> None:
        if shards < 1:
            raise EngineConfigError(f"shards must be >= 1, got {shards}")
        self.adapter = adapter
        self.bank = bank
        self.root = root
        self.shards = shards
        #: Optional shared :class:`~repro.db.CorpusDB` consulted at merge
        #: time for cross-shard/cross-campaign class dedupe.
        self.db = db
        self.policy = policy if policy is not None else ShardPolicy()
        self.fault_plan = fault_plan
        self.stats = stats if stats is not None else EngineStats()
        #: Poison-seed ledger entries (``seq`` is the global offset).
        self.quarantine: list[QuarantineEntry] = []
        self._ranges: list[tuple[int, int]] = []
        self._skip: set[int] = set()
        #: Global offset -> blamed failure count (drives fault replay
        #: decisions and quarantine).
        self._attempts: dict[int, int] = {}

    # -------------------------------------------------------------- layout

    def _shard_dir(self, index: int) -> str:
        return os.path.join(self.root, f"shard-{index:02d}")

    def _shards_path(self) -> str:
        return os.path.join(self.root, SHARDS_FILE)

    def _quarantine_path(self) -> str:
        return os.path.join(self.root, QUARANTINE_FILE)

    # ---------------------------------------------------------------- plan

    def _load_or_create_plan(self) -> None:
        """Adopt the durable shard plan, refusing incompatible reuse."""
        total = self.adapter.total()
        digest = self.adapter.digest()
        path = self._shards_path()
        if os.path.exists(path):
            try:
                plan = json.loads(open(path).read())
            except (OSError, json.JSONDecodeError) as exc:
                raise CheckpointError(
                    f"shard plan {path!r} is unreadable: {exc} "
                    "(delete the campaign directory to start fresh)"
                ) from exc
            if (
                plan.get("version") != SHARDS_VERSION
                or plan.get("digest") != digest
                or plan.get("total") != total
                or plan.get("shards") != self.shards
            ):
                raise CheckpointError(
                    f"shard plan {path!r} was written for a different "
                    "campaign (options digest, seed total, or shard count "
                    "changed); refusing to resume"
                )
            self._ranges = [tuple(block) for block in plan["ranges"]]
        else:
            self._ranges = partition_range(total, self.shards)
            atomic_write_json(
                path,
                {
                    "version": SHARDS_VERSION,
                    "digest": digest,
                    "total": total,
                    "shards": self.shards,
                    "ranges": [list(block) for block in self._ranges],
                },
            )

    def _load_quarantine(self) -> None:
        path = self._quarantine_path()
        if not os.path.exists(path):
            return
        try:
            ledger = json.loads(open(path).read())
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"quarantine ledger {path!r} is unreadable: {exc}"
            ) from exc
        for entry in ledger.get("entries", []):
            record = QuarantineEntry(
                seq=entry["offset"],
                label=entry["label"],
                attempts=entry["attempts"],
                reason=entry["reason"],
            )
            self.quarantine.append(record)
            self._skip.add(record.seq)
            self._attempts[record.seq] = record.attempts

    def _save_quarantine(self) -> None:
        atomic_write_json(
            self._quarantine_path(),
            {
                "version": QUARANTINE_VERSION,
                "entries": [
                    {
                        "offset": entry.seq,
                        "label": entry.label,
                        "attempts": entry.attempts,
                        "reason": entry.reason,
                    }
                    for entry in self.quarantine
                ],
            },
        )

    def _quarantine_seed(self, offset: int, reason: str) -> None:
        if offset in self._skip:
            return
        entry = QuarantineEntry(
            seq=offset,
            label=self.adapter.label(offset),
            attempts=self._attempts.get(offset, 0),
            reason=reason,
        )
        self.quarantine.append(entry)
        self._skip.add(offset)
        self._save_quarantine()
        self.stats.record_seed_quarantine()

    # ------------------------------------------------------------- shard io

    def _shard_record(self, index: int) -> ShardRecord | None:
        """The shard's completed result, or None if absent/invalid."""
        path = os.path.join(self._shard_dir(index), RESULT_FILE)
        if not os.path.exists(path):
            return None
        try:
            record = read_record(path, SHARD_MAGIC, ShardRecord)
        except CheckpointError:
            return None
        if record.options_digest != self.adapter.digest():
            return None
        if (record.lo, record.hi) != self._ranges[index]:
            return None
        return record

    def _read_heartbeat(self, index: int) -> Optional[int]:
        path = os.path.join(self._shard_dir(index), HEARTBEAT_FILE)
        try:
            return json.loads(open(path).read()).get("offset")
        except (OSError, json.JSONDecodeError, ValueError):
            return None

    # -------------------------------------------------------------- running

    def run(self):
        """Drive every shard to completion, then merge.

        Returns the merged campaign result.  Ctrl-C is deferred to the
        supervisor's poll boundary: live shards are killed (their
        checkpoints are boundary-durable) and ``KeyboardInterrupt``
        propagates with the campaign resumable from disk.
        """
        os.makedirs(self.root, exist_ok=True)
        self._load_or_create_plan()
        self._load_quarantine()
        pending = [
            index
            for index in range(self.shards)
            if self._shard_record(index) is None and self._ranges[index][0] < self._ranges[index][1]
        ]
        restarts: dict[int, int] = {index: 0 for index in pending}
        backoff_until: dict[int, float] = {}
        active: dict[int, _ShardState] = {}
        try:
            with DeferredInterrupt() as intr:
                while pending or active:
                    if intr.pending:
                        raise KeyboardInterrupt(
                            "sharded campaign interrupted; shard checkpoints "
                            "are flushed at seed boundaries — rerun to resume"
                        )
                    now = time.monotonic()
                    for index in list(pending):
                        if now < backoff_until.get(index, 0.0):
                            continue
                        pending.remove(index)
                        active[index] = self._launch(index)
                    self._poll(active, pending, restarts, backoff_until)
                    if pending or active:
                        time.sleep(self.policy.poll_interval)
        finally:
            for state in active.values():
                state.process.kill()
                state.process.join()
        return self._merge()

    def _launch(self, index: int) -> _ShardState:
        lo, hi = self._ranges[index]
        shard_dir = self._shard_dir(index)
        os.makedirs(shard_dir, exist_ok=True)
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        process = context.Process(
            target=_shard_worker,
            args=(
                self.adapter,
                lo,
                hi,
                frozenset(self._skip),
                shard_dir,
                self.fault_plan,
                dict(self._attempts),
            ),
            daemon=True,
        )
        process.start()
        return _ShardState(process=process)

    def _poll(
        self,
        active: dict[int, _ShardState],
        pending: list[int],
        restarts: dict[int, int],
        backoff_until: dict[int, float],
    ) -> None:
        now = time.monotonic()
        for index, state in list(active.items()):
            offset = self._read_heartbeat(index)
            if offset is not None and offset != state.last_offset:
                state.last_offset = offset
                state.last_progress = now
            if not state.process.is_alive():
                state.process.join()
                del active[index]
                if state.process.exitcode == 0 and self._shard_record(index) is not None:
                    continue
                self._recover(
                    index,
                    state,
                    pending,
                    restarts,
                    backoff_until,
                    reason=f"shard worker exited with code {state.process.exitcode}",
                )
            elif (
                self.policy.seed_deadline is not None
                and now - state.last_progress > self.policy.seed_deadline
            ):
                state.process.kill()
                state.process.join()
                del active[index]
                self._recover(
                    index,
                    state,
                    pending,
                    restarts,
                    backoff_until,
                    reason=(
                        f"seed deadline expired after {self.policy.seed_deadline}s "
                        "without a heartbeat (shard hung)"
                    ),
                )

    def _recover(
        self,
        index: int,
        state: _ShardState,
        pending: list[int],
        restarts: dict[int, int],
        backoff_until: dict[int, float],
        reason: str,
    ) -> None:
        """Blame, maybe quarantine, and relaunch or adopt shard *index*."""
        blamed = state.last_offset
        if blamed is None:
            blamed = self._ranges[index][0]
        if blamed not in self._skip:
            self._attempts[blamed] = self._attempts.get(blamed, 0) + 1
            if self._attempts[blamed] >= self.policy.max_seed_attempts:
                self._quarantine_seed(
                    blamed, f"{reason}; seed blamed on {self._attempts[blamed]} attempts"
                )
        restarts[index] = restarts.get(index, 0) + 1
        self.stats.record_shard_restart()
        if restarts[index] > self.policy.max_shard_restarts:
            self._adopt(index)
        else:
            backoff_until[index] = time.monotonic() + self.policy.backoff(
                restarts[index] - 1
            )
            pending.append(index)

    def _adopt(self, index: int) -> None:
        """Run shard *index*'s remaining range in-process, fault-free.

        The shard's checkpoint resumes it at its last completed seed
        boundary, so adoption pays only for the unfinished tail.
        """
        self.stats.record_shard_adoption()
        lo, hi = self._ranges[index]
        _shard_worker(
            self.adapter,
            lo,
            hi,
            frozenset(self._skip),
            self._shard_dir(index),
            None,
            {},
        )

    # --------------------------------------------------------------- merge

    def _merge(self):
        payloads = []
        for index in range(self.shards):
            lo, hi = self._ranges[index]
            if lo >= hi:
                continue
            record = self._shard_record(index)
            if record is None:  # pragma: no cover - run() drives all shards
                raise CheckpointError(
                    f"shard {index} finished without a valid result record"
                )
            payloads.append(
                (record, os.path.join(self._shard_dir(index), SHARD_BANK_DIR))
            )
        return self.adapter.merge(self.bank, payloads, db=self.db)
