"""Deferred SIGINT for campaign loops: interrupt at seed boundaries only.

A Ctrl-C that lands mid-seed can tear state the campaign was about to
checkpoint — the byte-input fuzzer already defers the signal to its
iteration boundary and flushes before raising (ISSUE 5); this context
manager gives the generative and sanval campaign loops the same
behavior without each reimplementing the handler dance.

Usage::

    with DeferredInterrupt(enabled=...) as intr:
        for offset in ...:
            if intr.pending:
                self._save_checkpoint(processed_through, result)
                raise KeyboardInterrupt("campaign interrupted; checkpoint flushed")
            ...

The previous handler is restored on exit.  Installation is skipped off
the main thread (``signal.signal`` raises ``ValueError`` there, and
CPython only delivers SIGINT to the main thread anyway) and when
*enabled* is False — shard worker processes run with it disabled so the
supervising runtime, not each worker, owns interrupt semantics.
"""

from __future__ import annotations

import signal


class DeferredInterrupt:
    """Swallow SIGINT into a :attr:`pending` flag for the enclosed loop."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._pending = False
        self._previous = None
        self._installed = False

    @property
    def pending(self) -> bool:
        """True once a SIGINT arrived inside the context."""
        return self._pending

    def __enter__(self) -> "DeferredInterrupt":
        if self.enabled:
            try:
                self._previous = signal.signal(signal.SIGINT, self._handle)
                self._installed = True
            except ValueError:
                # Not the main thread: SIGINT is never delivered here, so
                # there is nothing to defer.
                pass
        return self

    def __exit__(self, *exc_info) -> None:
        if self._installed:
            signal.signal(signal.SIGINT, self._previous)
            self._installed = False

    def _handle(self, signum, frame) -> None:
        self._pending = True
