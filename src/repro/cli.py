"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``check FILE``     — CompDiff a MiniC program (exit 1 on divergence);
* ``run FILE``       — run one binary and print its output;
* ``fuzz FILE``      — a CompDiff-AFL++ campaign;
* ``generate``       — a generative campaign: synthesize, reduce, bank;
* ``sancheck``       — sanitizer validation: relocate UB sites, judge, bank;
* ``localize FILE``  — trace-alignment fault localization;
* ``minimize FILE``  — shrink a diff-triggering input (afl-tmin style);
* ``analyze FILE``   — IR-level UB findings plus divergence triage;
* ``precision``      — per-checker TP/FP/FN scoreboard vs the oracle;
* ``bisect FILE``    — attribute a divergence to one pass application;
* ``bank fsck DIR``  — salvage a corrupted corpus bank;
* ``db stats DB``    — table counts of the shared corpus database;
* ``db import``      — fold a bank into the corpus database;
* ``db export``      — reconstitute a bank from the corpus database;
* ``impls``          — list the compiler implementations;
* ``targets``        — print the Table 4 target inventory.
"""

from __future__ import annotations

import argparse
import binascii
import sys

from repro.compiler import (
    DEFAULT_IMPLEMENTATIONS,
    compile_source,
    implementation,
    implementation_names,
)
from repro.core.compdiff import CompDiff
from repro.core.localize import localize
from repro.core.normalize import OutputNormalizer
from repro.core.report import make_report
from repro.errors import ReproError
from repro.fuzzing import CompDiffFuzzer, FuzzerOptions
from repro.vm import run_binary


def _open_db_arg(path: str | None):
    """Open ``--db PATH`` as a :class:`~repro.db.CorpusDB`, or None."""
    if path is None:
        return None
    from repro.db import CorpusDB

    return CorpusDB(path)


def _read_input(args: argparse.Namespace) -> bytes:
    if args.input_file:
        with open(args.input_file, "rb") as handle:
            return handle.read()
    if args.input_hex:
        return binascii.unhexlify(args.input_hex)
    return args.input.encode("latin-1") if args.input else b""


def _add_input_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--input", default=None, help="input as a latin-1 string")
    parser.add_argument("--input-hex", default=None, help="input as hex bytes")
    parser.add_argument("--input-file", default=None, help="read input from a file")


def _input_given(args: argparse.Namespace) -> bool:
    """True when any input flag was passed — `--input ""` counts."""
    return (
        args.input is not None
        or args.input_hex is not None
        or args.input_file is not None
    )


def _select_impls(names: str | None):
    if not names:
        return DEFAULT_IMPLEMENTATIONS
    return tuple(implementation(name.strip()) for name in names.split(","))


def cmd_check(args: argparse.Namespace) -> int:
    """`repro check`: differential-test one file; exit 1 on divergence."""
    source = open(args.file).read()
    with CompDiff(
        implementations=_select_impls(args.impls),
        normalizer=OutputNormalizer.standard() if args.normalize else None,
        workers=args.workers,
    ) as engine:
        outcome = engine.check_source(source, [_read_input(args)], name=args.file)
        if args.stats:
            print(engine.stats.render(), file=sys.stderr)
    if not outcome.divergent:
        print("stable: all implementations agree")
        return 0
    print(make_report(args.file, outcome.diffs[0]).render())
    return 1


def cmd_run(args: argparse.Namespace) -> int:
    """`repro run`: execute one binary and forward its output."""
    source = open(args.file).read()
    binary = compile_source(source, implementation(args.impl), name=args.file)
    result = run_binary(binary, _read_input(args))
    sys.stdout.write(result.stdout.decode("latin-1"))
    sys.stderr.write(result.stderr.decode("latin-1"))
    print(f"[{args.impl}] status={result.status.value} exit={result.exit_code}", file=sys.stderr)
    return result.exit_code if result.status.value == "ok" else 128


def cmd_fuzz(args: argparse.Namespace) -> int:
    """`repro fuzz`: a CompDiff-AFL++ campaign with stats output.

    ``--checkpoint-dir`` journals the campaign periodically (and on
    Ctrl-C); ``--resume DIR`` continues a killed campaign from its last
    checkpoint, reproducing the uninterrupted campaign's verdicts.
    """
    source = open(args.file).read()
    seeds = [_read_input(args)] if _input_given(args) else [b""]
    # Resuming keeps journaling into the same directory unless overridden.
    checkpoint_dir = args.checkpoint_dir or args.resume
    options = FuzzerOptions(
        max_executions=args.execs,
        compdiff_stride=args.stride,
        rng_seed=args.seed,
        divergence_feedback=args.divergence_feedback,
        normalizer=OutputNormalizer.standard() if args.normalize else None,
        workers=args.workers,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
    )
    with CompDiffFuzzer(source, seeds, options, name=args.file) as fuzzer:
        try:
            result = fuzzer.run(resume_from=args.resume)
        except KeyboardInterrupt:
            if checkpoint_dir:
                print(
                    f"interrupted: checkpoint flushed to {checkpoint_dir}; "
                    f"continue with `repro fuzz {args.file} --resume {checkpoint_dir}`",
                    file=sys.stderr,
                )
            else:
                print("interrupted (no --checkpoint-dir; progress lost)", file=sys.stderr)
            return 130
        if args.stats and fuzzer.oracle_stats is not None:
            print(fuzzer.oracle_stats.render(), file=sys.stderr)
    from repro.fuzzing import render_stats

    print(render_stats(result, name=args.file))
    for signature, count in result.signatures().items():
        print(f"  cluster {signature} x{count}")
    if result.diffs:
        print()
        print(make_report(args.file, result.diffs[0]).render())
    return 1 if result.diffs_found else 0


def _shard_policy(args: argparse.Namespace):
    from repro.campaigns.runtime import ShardPolicy

    return ShardPolicy(
        seed_deadline=args.seed_deadline,
        max_seed_attempts=args.max_seed_attempts,
    )


def _print_shard_summary(runtime) -> None:
    shards = runtime.stats.snapshot()["shards"]
    print(
        f"shards: {runtime.shards} workers, {shards['restarts']} restarts, "
        f"{shards['adoptions']} ranges adopted, "
        f"{shards['seeds_quarantined']} seeds quarantined"
    )
    for entry in runtime.quarantine:
        print(f"  quarantined offset {entry.seq} ({entry.label}): {entry.reason}")


def cmd_generate(args: argparse.Namespace) -> int:
    """`repro generate`: a generative fuzzing campaign.

    Walks ``--budget`` generator seeds starting at ``--seed`` through
    generate→diff→reduce→bank (docs/GENERATIVE.md), appending reduced
    repros to the ``--corpus`` directory.  Deterministic: the same seed
    range and options always produce the same banked set — including
    under ``--shards N``, which partitions the range across N supervised
    worker processes (docs/ROBUSTNESS.md) and merges their bank shards
    byte-identically to a serial run.  Exit 0 when the run banked at
    least one new repro (or found no divergence but completed), 1 when
    ``--min-banked`` was requested and not reached.
    """
    from repro.generative import CorpusBank, GenerativeCampaign, GenerativeOptions

    checkpoint_dir = args.checkpoint_dir or args.resume
    if args.shards > 1:
        if not checkpoint_dir:
            print(
                "generate: --shards needs --checkpoint-dir "
                "(shard state lives there)",
                file=sys.stderr,
            )
            return 2
        if args.min_banked is not None:
            print(
                "generate: --min-banked is discovery-order-dependent and "
                "incompatible with --shards",
                file=sys.stderr,
            )
            return 2
    options = GenerativeOptions(
        seed=args.seed,
        budget=args.budget,
        profile=args.profile,
        inputs=[_read_input(args)] if _input_given(args) else [b""],
        reduce=not args.no_reduce,
        step_budget=args.step_budget,
        min_banked=args.min_banked,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        workers=args.workers,
    )
    bank = CorpusBank(args.corpus)
    try:
        db = _open_db_arg(args.db)
    except ReproError as exc:
        print(f"generate: {exc}", file=sys.stderr)
        return 2
    runtime = None
    try:
        if args.shards > 1:
            from repro.campaigns.runtime import CampaignRuntime, GenerativeShardAdapter

            runtime = CampaignRuntime(
                GenerativeShardAdapter(options),
                bank,
                root=checkpoint_dir,
                shards=args.shards,
                policy=_shard_policy(args),
                db=db,
            )
            result = runtime.run()
        else:
            with GenerativeCampaign(options, bank) as campaign:
                result = campaign.run()
            if db is not None:
                db.import_corpus_bank(bank)
    except KeyboardInterrupt:
        if checkpoint_dir:
            print(
                f"interrupted: checkpoint in {checkpoint_dir}; continue with "
                f"`repro generate --corpus {args.corpus} --resume {checkpoint_dir}`",
                file=sys.stderr,
            )
        else:
            print("interrupted (no --checkpoint-dir; progress lost)", file=sys.stderr)
        return 130
    finally:
        if db is not None:
            db.close()
    print(result.render())
    if runtime is not None:
        _print_shard_summary(runtime)
    for repro in bank:
        if repro.key in result.keys:
            drift = " [culprit drift]" if repro.culprit_drifted else ""
            print(
                f"  {repro.key} seed={repro.seed} group={repro.group} "
                f"culprit={repro.culprit_original} "
                f"nodes {repro.original_nodes}->{repro.reduced_nodes}{drift}"
            )
    if args.min_banked is not None and result.banked_new < args.min_banked:
        return 1
    return 0


def cmd_sancheck(args: argparse.Namespace) -> int:
    """`repro sancheck`: the sanitizer-validation campaign.

    Sweeps UB seeds (planted fixtures, the generative corpus bank,
    and/or fresh generator seeds) through relocation × sanitizer
    classification against the interprocedural UB oracle and the
    ten-implementation differential verdict (docs/SANVAL.md).  Confirmed
    FNs/FPs are reduced and banked into ``--bank`` with their evidence
    chains.  Deterministic: the same options produce byte-identical
    verdicts at any worker count.  Exit 1 when ``--min-fn``/``--min-fp``
    was requested and not reached.
    """
    import json

    from repro.sanval import (
        RELOCATION_KINDS,
        FindingBank,
        SancheckCampaign,
        SancheckOptions,
    )
    from repro.static_analysis import Baseline, to_sarif

    if not (args.fixtures or args.corpus or args.budget > 0):
        print(
            "sancheck: no seed source; pass --fixtures, --corpus, or --budget N",
            file=sys.stderr,
        )
        return 2
    relocations = RELOCATION_KINDS
    if args.relocations is not None:
        relocations = tuple(k.strip() for k in args.relocations.split(",") if k.strip())
        unknown = [k for k in relocations if k not in RELOCATION_KINDS]
        if unknown:
            print(f"sancheck: unknown relocation(s) {','.join(unknown)}", file=sys.stderr)
            return 2
    checkpoint_dir = args.checkpoint_dir or args.resume
    if args.shards > 1 and not checkpoint_dir:
        print(
            "sancheck: --shards needs --checkpoint-dir (shard state lives there)",
            file=sys.stderr,
        )
        return 2
    options = SancheckOptions(
        fixtures=args.fixtures,
        corpus=args.corpus,
        seed=args.seed,
        budget=args.budget,
        profile=args.profile,
        inputs=[_read_input(args)] if _input_given(args) else [b""],
        relocations=relocations,
        reduce=not args.no_reduce,
        step_budget=args.step_budget,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        workers=args.workers,
    )
    bank = FindingBank(args.bank) if args.bank else None
    try:
        db = _open_db_arg(args.db)
    except ReproError as exc:
        print(f"sancheck: {exc}", file=sys.stderr)
        return 2
    runtime = None
    try:
        if args.shards > 1:
            from repro.campaigns.runtime import CampaignRuntime, SancheckShardAdapter

            runtime = CampaignRuntime(
                SancheckShardAdapter(options),
                bank,
                root=checkpoint_dir,
                shards=args.shards,
                policy=_shard_policy(args),
                db=db,
            )
            result = runtime.run()
        else:
            with SancheckCampaign(options, bank=bank) as campaign:
                result = campaign.run()
            if db is not None and bank is not None:
                db.import_finding_bank(bank)
    except KeyboardInterrupt:
        if checkpoint_dir:
            print(
                f"interrupted: checkpoint in {checkpoint_dir}; continue with "
                f"`repro sancheck --resume {checkpoint_dir}` plus the original flags",
                file=sys.stderr,
            )
        else:
            print("interrupted (no --checkpoint-dir; progress lost)", file=sys.stderr)
        return 130
    finally:
        if db is not None:
            db.close()

    diagnostics = [d for v in result.findings() for d in v.reported]
    suppressed = 0
    if args.baseline:
        baseline = Baseline.load(args.baseline)
        suppressed = len(baseline.suppressed(diagnostics))
        diagnostics = baseline.filter(diagnostics)
    if args.sarif:
        sarif_doc = to_sarif(diagnostics, artifact_uri="sanval")
        with open(args.sarif, "w") as handle:
            handle.write(json.dumps(sarif_doc, indent=2) + "\n")
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(json.dumps(result.to_json(), indent=2, sort_keys=True) + "\n")

    counts = result.counts()
    fn_found = sum(row["FN"] for row in counts.values())
    fp_found = sum(row["FP"] for row in counts.values())
    if args.json:
        print(json.dumps(result.to_json(), indent=2, sort_keys=True))
    else:
        print(result.render())
        if runtime is not None:
            _print_shard_summary(runtime)
        if suppressed:
            print(f"{suppressed} sanitizer report(s) baseline-suppressed")
        findings = result.findings()
        if findings:
            print("findings:")
            for verdict in findings:
                print("  " + verdict.render())
    if args.min_fn is not None and fn_found < args.min_fn:
        return 1
    if args.min_fp is not None and fp_found < args.min_fp:
        return 1
    return 0


def cmd_bank_fsck(args: argparse.Namespace) -> int:
    """`repro bank fsck`: salvage a corrupted corpus bank.

    Quarantines unloadable manifest entries, key mismatches, duplicate
    keys, and orphaned program files into a ``corrupt/`` sidecar (with a
    ledger recording why), then rewrites the manifest over the
    survivors so the bank loads cleanly again (docs/ROBUSTNESS.md).
    Exit 0 when the bank was already clean, 1 when something was
    salvaged, 2 when the directory is not a bank at all.  With ``--db``
    the (post-salvage) manifest is additionally cross-checked against
    the shared corpus database: a bank referencing equivalence classes
    the DB has never seen is refused with exit 2.
    """
    import json

    from repro.campaigns.fsck import fsck_bank

    try:
        report = fsck_bank(args.dir, kind=args.kind)
        if args.db is not None:
            from repro.db import CorpusDB, verify_bank_against_db

            with CorpusDB(args.db) as db:
                verify_bank_against_db(args.dir, args.kind, db)
    except ReproError as exc:
        print(f"bank fsck: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.clean else 1


def _detect_bank_kind(root: str) -> str:
    """Resolve ``--kind auto`` from a bank manifest's top-level shape."""
    import json as _json
    import pathlib

    from repro.db import CLASS_GENERATIVE, CLASS_SANCHECK

    manifest = pathlib.Path(root) / "manifest.json"
    try:
        data = _json.loads(manifest.read_text())
    except (OSError, _json.JSONDecodeError) as exc:
        raise ReproError(f"cannot detect bank kind from {manifest}: {exc}") from exc
    if "repros" in data:
        return CLASS_GENERATIVE
    if "findings" in data:
        return CLASS_SANCHECK
    raise ReproError(f"{manifest} is not a recognizable bank manifest")


def cmd_db(args: argparse.Namespace) -> int:
    """`repro db`: maintain the shared fingerprint-keyed corpus database.

    ``stats`` prints per-table counts; ``import`` folds a bank directory
    into the DB (first writer per equivalence class wins); ``export``
    reconstitutes a bank directory from the classes the DB holds.  The
    DB refuses to open when its ``.meta`` identity sidecar is missing,
    corrupt, or pins a different schema version (exit 2).
    """
    import json

    from repro.db import CLASS_GENERATIVE, CorpusDB

    try:
        with CorpusDB(args.db) as db:
            if args.db_command == "stats":
                if args.json:
                    print(json.dumps(db.stats(), indent=2, sort_keys=True))
                else:
                    print(db.render_stats())
                return 0
            kind = args.kind
            if kind == "auto":
                kind = _detect_bank_kind(args.dir)
            if args.db_command == "import":
                if kind == CLASS_GENERATIVE:
                    from repro.generative import CorpusBank

                    count = db.import_corpus_bank(CorpusBank(args.dir))
                else:
                    from repro.sanval import FindingBank

                    count = db.import_finding_bank(FindingBank(args.dir))
                print(f"imported {count} new {kind} class(es) from {args.dir}")
            else:
                if kind == CLASS_GENERATIVE:
                    from repro.generative import CorpusBank

                    count = db.export_corpus_bank(CorpusBank(args.dir))
                else:
                    from repro.sanval import FindingBank

                    count = db.export_finding_bank(FindingBank(args.dir))
                print(f"exported {count} new {kind} class(es) into {args.dir}")
            return 0
    except ReproError as exc:
        print(f"db {args.db_command}: {exc}", file=sys.stderr)
        return 2


def cmd_localize(args: argparse.Namespace) -> int:
    """`repro localize`: trace-alignment fault localization."""
    source = open(args.file).read()
    outcome = localize(source, _read_input(args), args.impl_a, args.impl_b)
    print(outcome.render(source))
    return 0 if outcome.diverged else 1


def cmd_minimize(args: argparse.Namespace) -> int:
    """`repro minimize`: shrink a diff-triggering input."""
    from repro.core.minimize import minimize_input

    source = open(args.file).read()
    result = minimize_input(source, _read_input(args))
    print(f"original:  {len(result.original)} bytes "
          f"({binascii.hexlify(result.original).decode()})")
    print(f"minimized: {len(result.minimized)} bytes "
          f"({binascii.hexlify(result.minimized).decode()})")
    print(f"reduction: {100 * result.reduction:.0f}% "
          f"in {result.executions} oracle executions")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """`repro analyze`: IR-level UB findings, plus divergence triage.

    Without an input, reports the static findings.  With an input, also
    localizes the divergence between ``--impl-a`` and ``--impl-b`` on
    that input and labels it with a Table 5 category (exit 1 when the
    input diverges).  ``--interproc`` upgrades the checkers to
    summary-based interprocedural mode (``--summary-cache DIR`` makes
    the summaries incremental across runs); ``--refine`` additionally
    pass-bisects a diverging input and re-analyzes the culprit slice
    path-sensitively.  ``--json`` emits the schema documented in
    docs/ANALYSIS.md, ``--sarif`` a SARIF 2.1.0 log, and
    ``--baseline``/``--write-baseline`` suppress known findings.
    """
    import json

    from repro.minic import load
    from repro.static_analysis import Baseline, SummaryCache, UBOracle, to_sarif
    from repro.static_analysis.diagnostics import (
        ANALYZE_SCHEMA_VERSION,
        diagnostic_sort_key,
        to_diagnostics,
    )
    from repro.static_analysis.triage import triage_divergence

    if args.refine and not args.interproc:
        print("analyze: --refine requires --interproc", file=sys.stderr)
        return 2
    if args.refine and not _input_given(args):
        print("analyze: --refine needs an input to bisect", file=sys.stderr)
        return 2

    source = open(args.file).read()
    program = load(source)
    cache = SummaryCache(args.summary_cache) if args.summary_cache else None
    mode = "interproc" if args.interproc else "intra"
    oracle = UBOracle(mode=mode, summary_cache=cache)

    refine_report = None
    interproc_ctx = None
    gcc_module = None
    if args.refine:
        # Refinement needs the lowered module and summary context the
        # report was produced from, so build the pieces explicitly.
        from repro.compiler.binary import compile_module
        from repro.static_analysis.interproc import summarize_module
        from repro.static_analysis.ub_oracle import analyze_modules

        gcc_module = compile_module(program, implementation("gcc-O0"), name=args.file)
        clang_module = compile_module(
            program, implementation("clang-O0"), name=args.file
        )
        interproc_ctx = summarize_module(gcc_module, cache=cache)
        report = analyze_modules(gcc_module, clang_module, interproc=interproc_ctx)
    else:
        report = oracle.report(program, name=args.file)

    localization = None
    label = None
    divergent = False
    if _input_given(args):
        input_bytes = _read_input(args)
        localization = localize(program, input_bytes, args.impl_a, args.impl_b)
        # The trace alignment alone cannot see value-only divergences
        # (identical paths, different output), so the divergence verdict
        # comes from the differential oracle itself.
        engine = CompDiff(
            implementations=(
                implementation(args.impl_a),
                implementation(args.impl_b),
            )
        )
        divergent = engine.check(program, [input_bytes], name=args.file).divergent
        if divergent and args.refine:
            from repro.core.bisect import bisect_divergence
            from repro.static_analysis.refine import refine_findings

            bisection = bisect_divergence(
                source,
                input_bytes,
                impl_ref=args.impl_a,
                impl_target=args.impl_b,
                name=args.file,
            )
            if bisection.attributed and bisection.culprit.target:
                findings, refine_report = refine_findings(
                    gcc_module,
                    interproc_ctx,
                    report.findings,
                    bisection.culprit.target,
                )
                report.findings[:] = findings
        if divergent:
            label = triage_divergence(report.findings, localization, window=args.window)

    diagnostics = to_diagnostics(report.findings)
    suppressed = 0
    if args.baseline:
        baseline = Baseline.load(args.baseline)
        suppressed = len(baseline.suppressed(diagnostics))
        diagnostics = baseline.filter(diagnostics)
    if args.write_baseline:
        Baseline.from_diagnostics(diagnostics).save(args.write_baseline)

    sarif_to_stdout = args.sarif == "-"
    if args.sarif:
        sarif_doc = to_sarif(diagnostics, artifact_uri=args.file)
        rendered = json.dumps(sarif_doc, indent=2)
        if sarif_to_stdout:
            print(rendered)
        else:
            with open(args.sarif, "w") as handle:
                handle.write(rendered + "\n")

    if cache is not None:
        cache.save()
        if args.stats:
            snap = cache.stats.snapshot()
            print(
                f"summary cache: {snap['hits']} hits / {snap['misses']} misses "
                f"({snap['invalidations']} invalidated)",
                file=sys.stderr,
            )

    # `--sarif -` owns stdout: the SARIF log must stay parseable as one
    # JSON document, so the human/JSON report is skipped.
    if sarif_to_stdout:
        return 1 if label is not None else 0

    if args.json:
        payload = {
            "schema_version": ANALYZE_SCHEMA_VERSION,
            "file": args.file,
            "tool": "ub-oracle",
            "mode": mode,
            "converged": report.converged,
            "suppressed": suppressed,
            "findings": [
                {
                    "checker": d.checker,
                    "category": d.category,
                    "severity": d.severity,
                    "line": d.line,
                    "function": d.function,
                    "message": d.message,
                    "trace": list(d.trace),
                    "fingerprint": d.fingerprint,
                }
                for d in sorted(diagnostics, key=diagnostic_sort_key)
            ],
        }
        if refine_report is not None:
            payload["refined"] = refine_report
        if localization is not None:
            payload["triage"] = {
                "impl_a": localization.impl_a,
                "impl_b": localization.impl_b,
                "diverged": divergent,
                "last_common_line": localization.last_common_line,
                "next_line_a": localization.next_line_a,
                "next_line_b": localization.next_line_b,
            }
            if label is not None:
                payload["triage"].update(
                    {
                        "category": label.category,
                        "confidence": label.confidence,
                        "line": label.line,
                        "rationale": label.rationale,
                        "explained": label.explained,
                    }
                )
        print(json.dumps(payload, indent=2))
    else:
        errors = sum(1 for d in diagnostics if d.severity == "error")
        suffix = f", {suppressed} baseline-suppressed" if suppressed else ""
        print(
            f"ub-oracle[{mode}]: {len(diagnostics)} findings "
            f"({errors} confirmed{suffix}) in {args.file}"
        )
        for d in sorted(diagnostics, key=diagnostic_sort_key):
            print("  " + d.render())
        if not report.converged:
            print(f"  warning: solver budget exhausted in: {report.nonconverged}")
        if refine_report is not None:
            for func, counts in sorted(refine_report.items()):
                print(
                    f"  refined {func}: {counts['dropped']} dropped, "
                    f"{counts['upgraded']} upgraded, {counts['kept']} kept"
                )
        if localization is not None:
            if label is None:
                print(f"input: no divergence between "
                      f"{localization.impl_a} and {localization.impl_b}")
            else:
                print(f"divergence at line {label.line} "
                      f"({localization.impl_a} vs {localization.impl_b}): "
                      f"{label.category} [{label.confidence}]")
                print(f"  {label.rationale}")
    return 1 if label is not None else 0


def cmd_precision(args: argparse.Namespace) -> int:
    """`repro precision`: the oracle-validated per-checker scoreboard.

    Runs both analysis modes (intra and interprocedural) over the seeded
    standard suite plus the interprocedural extension corpus, scoring
    TP/FP/FN per checker against the differential engine's divergence
    verdicts.  See docs/ANALYSIS.md for the tally rules.
    """
    import json

    from repro.evaluation.precision_eval import evaluate_precision, precision_corpus
    from repro.static_analysis import SummaryCache

    cache = SummaryCache(args.summary_cache) if args.summary_cache else None
    cases = precision_corpus(
        scale=args.scale, seed=args.seed, per_shape=args.per_shape, corpus=args.corpus
    )
    report = evaluate_precision(cases, summary_cache=cache)
    if cache is not None:
        cache.save()
    if args.out:
        report.save(args.out)
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.render())
    return 0


def cmd_bisect(args: argparse.Namespace) -> int:
    """`repro bisect`: name the pass application that flips the output.

    Like LLVM's ``-opt-bisect-limit``, but automated: binary-search the
    target implementation's pass-application count for the first prefix
    whose output departs from the reference.  Exit 0 when a culprit
    application is attributed, 1 when the pair does not diverge on the
    input, 2 when the divergence exists with zero passes applied (layout
    or front-end, not pass-attributable).
    """
    import json

    from repro.core.bisect import bisect_divergence

    source = open(args.file).read()
    result = bisect_divergence(
        source,
        _read_input(args),
        impl_ref=args.impl_a,
        impl_target=args.impl_b,
        normalizer=OutputNormalizer.standard() if args.normalize else None,
        name=args.file,
    )
    if args.json:
        print(json.dumps(result.to_json(), indent=2))
    else:
        print(result.render())
    if result.attributed:
        return 0
    return 1 if result.status == "no_divergence" else 2


def cmd_ir(args: argparse.Namespace) -> int:
    """`repro ir`: dump verified IR for one implementation."""
    from repro.ir.printer import format_module
    from repro.ir.verify import verify_module

    source = open(args.file).read()
    binary = compile_source(source, implementation(args.impl), name=args.file)
    verify_module(binary.module)
    print(format_module(binary.module))
    return 0


def cmd_impls(args: argparse.Namespace) -> int:
    """`repro impls`: list the compiler implementations and traits.

    ``--pipelines`` additionally prints each implementation's declarative
    pass schedule and cache digest (see docs/PASSES.md).
    """
    for config in DEFAULT_IMPLEMENTATIONS:
        flags = []
        if config.exploit_ub:
            flags.append("exploit-ub")
        if config.inline_small:
            flags.append("inline")
        if config.widen_int_mul:
            flags.append("widen-mul")
        if config.miscompile_patterns:
            flags.append(f"miscompiles={','.join(config.miscompile_patterns)}")
        print(f"{config.name:<10} {' '.join(flags)}")
        if args.pipelines:
            print(f"           {config.pipeline_summary()}")
    return 0


def cmd_targets(args: argparse.Namespace) -> int:
    """`repro targets`: Table 4 inventory."""
    from repro.evaluation import render_table4

    print(render_table4())
    return 0


def _add_shard_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--shards", type=int, default=1,
                        help="partition the seed range across this many "
                             "supervised worker processes (needs "
                             "--checkpoint-dir; merged corpus is "
                             "byte-identical to a serial run)")
    parser.add_argument("--seed-deadline", type=float, default=120.0,
                        help="seconds a shard may sit on one seed before "
                             "it is declared hung and restarted")
    parser.add_argument("--max-seed-attempts", type=int, default=3,
                        help="blamed failures before a seed is quarantined "
                             "as poison and skipped")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro", description="CompDiff (ASPLOS 2023) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="differential-test a MiniC program")
    check.add_argument("file")
    check.add_argument("--impls", help=f"comma list from: {', '.join(implementation_names())}")
    check.add_argument("--normalize", action="store_true", help="scrub timestamps (RQ5)")
    check.add_argument("--workers", type=int, default=1,
                       help="worker processes for the differential executions")
    check.add_argument("--stats", action="store_true",
                       help="print execution metrics to stderr")
    _add_input_flags(check)
    check.set_defaults(func=cmd_check)

    run = sub.add_parser("run", help="run one binary")
    run.add_argument("file")
    run.add_argument("--impl", default="gcc-O0", choices=implementation_names())
    _add_input_flags(run)
    run.set_defaults(func=cmd_run)

    fuzz = sub.add_parser("fuzz", help="CompDiff-AFL++ campaign")
    fuzz.add_argument("file")
    fuzz.add_argument("--execs", type=int, default=5000)
    fuzz.add_argument("--stride", type=int, default=3)
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--divergence-feedback", action="store_true")
    fuzz.add_argument("--normalize", action="store_true")
    fuzz.add_argument("--workers", type=int, default=1,
                      help="worker processes for the CompDiff oracle")
    fuzz.add_argument("--stats", action="store_true",
                      help="print oracle execution metrics to stderr")
    fuzz.add_argument("--checkpoint-dir", default=None,
                      help="journal the campaign into this directory "
                           "(atomic, crash-safe; flushed on Ctrl-C)")
    fuzz.add_argument("--checkpoint-every", type=int, default=1000,
                      help="executions between periodic checkpoints")
    fuzz.add_argument("--resume", default=None, metavar="DIR",
                      help="resume a killed campaign from its checkpoint "
                           "directory (pass the original flags)")
    _add_input_flags(fuzz)
    fuzz.set_defaults(func=cmd_fuzz)

    generate = sub.add_parser(
        "generate", help="generative campaign: synthesize, reduce, bank repros"
    )
    generate.add_argument("--corpus", required=True, metavar="DIR",
                          help="repro corpus directory (created/extended)")
    generate.add_argument("--seed", type=int, default=0,
                          help="first generator seed of the campaign range")
    generate.add_argument("--budget", type=int, default=20,
                          help="number of generator seeds to process")
    generate.add_argument("--profile", default="ub",
                          help="generator profile: plain, ub, or interproc")
    generate.add_argument("--no-reduce", action="store_true",
                          help="bank raw divergent programs without reduction")
    generate.add_argument("--step-budget", type=int, default=200,
                          help="max accepted reduction steps per program")
    generate.add_argument("--min-banked", type=int, default=None,
                          help="stop early after this many new repros "
                               "(exit 1 if not reached)")
    generate.add_argument("--workers", type=int, default=1,
                          help="worker processes for the CompDiff oracle")
    generate.add_argument("--checkpoint-dir", default=None,
                          help="journal campaign progress into this directory")
    generate.add_argument("--checkpoint-every", type=int, default=5,
                          help="processed seeds between periodic checkpoints")
    generate.add_argument("--resume", default=None, metavar="DIR",
                          help="resume a killed campaign from its checkpoint "
                               "directory (pass the original flags)")
    generate.add_argument("--db", default=None, metavar="FILE",
                          help="shared corpus database; banked repros are "
                               "registered by fingerprint and classes another "
                               "campaign already claimed are skipped")
    _add_shard_flags(generate)
    _add_input_flags(generate)
    generate.set_defaults(func=cmd_generate)

    sancheck = sub.add_parser(
        "sancheck", help="sanitizer-validation campaign: relocate, judge, bank"
    )
    sancheck.add_argument("--fixtures", default=None, metavar="DIR",
                          help="planted fixture corpus (manifest.json + programs)")
    sancheck.add_argument("--corpus", default=None, metavar="DIR",
                          help="generative corpus bank to pull seeds from")
    sancheck.add_argument("--seed", type=int, default=0,
                          help="first generator seed (with --budget)")
    sancheck.add_argument("--budget", type=int, default=0,
                          help="generator seeds to draw (0 = none)")
    sancheck.add_argument("--profile", default="ub",
                          help="generator profile for --budget seeds")
    sancheck.add_argument("--bank", default=None, metavar="DIR",
                          help="finding bank directory (created/extended)")
    sancheck.add_argument("--relocations", default=None,
                          help="comma-separated relocation kinds "
                               "(default: outline,loop_shift,carry)")
    sancheck.add_argument("--no-reduce", action="store_true",
                          help="bank raw FN/FP programs without reduction")
    sancheck.add_argument("--step-budget", type=int, default=200,
                          help="max accepted reduction steps per finding")
    sancheck.add_argument("--min-fn", type=int, default=None,
                          help="exit 1 unless at least this many FNs found")
    sancheck.add_argument("--min-fp", type=int, default=None,
                          help="exit 1 unless at least this many FPs found")
    sancheck.add_argument("--json", action="store_true",
                          help="print the scoreboard as JSON")
    sancheck.add_argument("--out", default=None, metavar="FILE",
                          help="also write the scoreboard JSON to FILE")
    sancheck.add_argument("--sarif", default=None, metavar="FILE",
                          help="write fired sanitizer reports as SARIF 2.1.0")
    sancheck.add_argument("--baseline", default=None, metavar="FILE",
                          help="suppress sanitizer reports by fingerprint")
    sancheck.add_argument("--workers", type=int, default=1,
                          help="worker processes for the CompDiff oracle")
    sancheck.add_argument("--checkpoint-dir", default=None,
                          help="journal campaign progress into this directory")
    sancheck.add_argument("--checkpoint-every", type=int, default=1,
                          help="processed seeds between periodic checkpoints")
    sancheck.add_argument("--resume", default=None, metavar="DIR",
                          help="resume a killed campaign from its checkpoint "
                               "directory (pass the original flags)")
    sancheck.add_argument("--db", default=None, metavar="FILE",
                          help="shared corpus database; banked findings are "
                               "registered by fingerprint and classes another "
                               "campaign already claimed are skipped")
    _add_shard_flags(sancheck)
    _add_input_flags(sancheck)
    sancheck.set_defaults(func=cmd_sancheck)

    loc = sub.add_parser("localize", help="trace-alignment fault localization")
    loc.add_argument("file")
    loc.add_argument("--impl-a", default="gcc-O0", choices=implementation_names())
    loc.add_argument("--impl-b", default="gcc-O2", choices=implementation_names())
    _add_input_flags(loc)
    loc.set_defaults(func=cmd_localize)

    mini = sub.add_parser("minimize", help="shrink a diff-triggering input")
    mini.add_argument("file")
    _add_input_flags(mini)
    mini.set_defaults(func=cmd_minimize)

    analyze = sub.add_parser("analyze", help="IR-level UB findings + divergence triage")
    analyze.add_argument("file")
    analyze.add_argument("--json", action="store_true", help="machine-readable report")
    analyze.add_argument("--impl-a", default="gcc-O0", choices=implementation_names())
    analyze.add_argument("--impl-b", default="gcc-O2", choices=implementation_names())
    analyze.add_argument("--window", type=int, default=2,
                         help="max line distance between divergence site and finding")
    analyze.add_argument("--interproc", action="store_true",
                         help="summary-based interprocedural checkers")
    analyze.add_argument("--summary-cache", default=None, metavar="DIR",
                         help="persist function summaries (incremental re-analysis)")
    analyze.add_argument("--refine", action="store_true",
                         help="pass-bisect a diverging input and re-analyze the "
                              "culprit slice path-sensitively (needs --interproc)")
    analyze.add_argument("--sarif", default=None, metavar="PATH",
                         help="write a SARIF 2.1.0 log ('-' for stdout)")
    analyze.add_argument("--baseline", default=None, metavar="FILE",
                         help="suppress findings fingerprinted in this baseline")
    analyze.add_argument("--write-baseline", default=None, metavar="FILE",
                         help="write the (post-suppression) findings as a baseline")
    analyze.add_argument("--stats", action="store_true",
                         help="print summary-cache metrics to stderr")
    _add_input_flags(analyze)
    analyze.set_defaults(func=cmd_analyze)

    precision = sub.add_parser(
        "precision",
        help="score every UB-oracle checker against the differential oracle",
    )
    precision.add_argument("--scale", type=float, default=0.002,
                           help="standard-suite scale fed to the corpus")
    precision.add_argument("--seed", type=int, default=20230325)
    precision.add_argument("--per-shape", type=int, default=3,
                           help="interprocedural extension cases per shape")
    precision.add_argument("--json", action="store_true", help="machine-readable report")
    precision.add_argument("--out", default=None, metavar="FILE",
                           help="also write the JSON report to FILE")
    precision.add_argument("--summary-cache", default=None, metavar="DIR",
                           help="persist interprocedural summaries across runs")
    precision.add_argument("--corpus", default=None, metavar="DIR",
                           help="also score the banked generative repro corpus")
    precision.set_defaults(func=cmd_precision)

    bisect = sub.add_parser(
        "bisect", help="attribute a divergence to one pass application"
    )
    bisect.add_argument("file")
    bisect.add_argument("--impl-a", default="gcc-O0", choices=implementation_names(),
                        help="reference implementation (built in full)")
    bisect.add_argument("--impl-b", default="gcc-O2", choices=implementation_names(),
                        help="target implementation (prefix-bisected)")
    bisect.add_argument("--normalize", action="store_true",
                        help="scrub timestamps before comparing (RQ5)")
    bisect.add_argument("--json", action="store_true", help="machine-readable result")
    _add_input_flags(bisect)
    bisect.set_defaults(func=cmd_bisect)

    ir = sub.add_parser("ir", help="dump verified IR for one implementation")
    ir.add_argument("file")
    ir.add_argument("--impl", default="gcc-O2", choices=implementation_names())
    ir.set_defaults(func=cmd_ir)

    bank = sub.add_parser("bank", help="corpus bank maintenance")
    bank_sub = bank.add_subparsers(dest="bank_command", required=True)
    fsck = bank_sub.add_parser(
        "fsck", help="salvage a corrupted bank into a corrupt/ sidecar"
    )
    fsck.add_argument("dir", help="bank directory to salvage")
    fsck.add_argument("--kind", default="auto",
                      choices=("auto", "generative", "sancheck"),
                      help="bank kind when the manifest is too damaged "
                           "to detect it from")
    fsck.add_argument("--json", action="store_true",
                      help="print the salvage report as JSON")
    fsck.add_argument("--db", default=None, metavar="FILE",
                      help="refuse (exit 2) when the manifest references "
                           "classes this corpus database does not contain")
    fsck.set_defaults(func=cmd_bank_fsck)

    db = sub.add_parser("db", help="shared corpus database maintenance")
    db_sub = db.add_subparsers(dest="db_command", required=True)
    db_stats = db_sub.add_parser("stats", help="per-table counts")
    db_stats.add_argument("db", help="corpus database file")
    db_stats.add_argument("--json", action="store_true",
                          help="print the counts as JSON")
    db_stats.set_defaults(func=cmd_db)
    db_import = db_sub.add_parser(
        "import", help="fold a bank directory into the database"
    )
    db_import.add_argument("db", help="corpus database file (created if absent)")
    db_import.add_argument("dir", help="bank directory to import")
    db_import.add_argument("--kind", default="auto",
                           choices=("auto", "generative", "sancheck"),
                           help="bank kind (default: detect from the manifest)")
    db_import.set_defaults(func=cmd_db)
    db_export = db_sub.add_parser(
        "export", help="reconstitute a bank directory from the database"
    )
    db_export.add_argument("db", help="corpus database file")
    db_export.add_argument("dir", help="bank directory to write into")
    db_export.add_argument("--kind", required=True,
                           choices=("generative", "sancheck"),
                           help="which class kind to export")
    db_export.set_defaults(func=cmd_db)

    impls = sub.add_parser("impls", help="list compiler implementations")
    impls.add_argument("--pipelines", action="store_true",
                       help="show each implementation's pass schedule + digest")
    impls.set_defaults(func=cmd_impls)
    sub.add_parser("targets", help="Table 4 target inventory").set_defaults(func=cmd_targets)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
