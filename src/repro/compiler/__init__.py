"""Simulated compiler implementations for MiniC.

A *compiler implementation* in the paper's sense (§3.1) is a compiler
family plus an optimization level — ``gcc -O0`` and ``clang -O2`` are
distinct implementations.  This package provides ten such implementations
(``gcc-sim``/``clang-sim`` × O0/O1/O2/O3/Os), each a
:class:`~repro.compiler.implementations.CompilerConfig` that controls:

* front-end choices C leaves unspecified or implementation-defined
  (argument evaluation order, ``__LINE__`` interpretation, integer
  promotion strategy for widening contexts);
* the optimization pipeline, including UB-exploiting transforms
  (``nsw``-based guard folding, null-dereference elision, removal of
  unused trapping divisions);
* the run-time object layout (segment bases, stack-slot ordering and
  padding, uninitialized-memory garbage, heap reuse policy) that a real
  compiler's code generation and allocator inlining would determine.

Divergence between two implementations on a UB-free program is a
*miscompilation*; three historical-style miscompilation patterns are
seeded behind ``CompilerConfig.miscompile_patterns`` to reproduce RQ2.
"""

from repro.compiler.implementations import (
    CompilerConfig,
    DEFAULT_IMPLEMENTATIONS,
    FUZZ_CONFIG,
    SANITIZER_CONFIG,
    implementation,
    implementation_names,
)
from repro.compiler.binary import CompiledBinary, compile_module, compile_program, compile_source

__all__ = [
    "CompilerConfig",
    "CompiledBinary",
    "DEFAULT_IMPLEMENTATIONS",
    "FUZZ_CONFIG",
    "SANITIZER_CONFIG",
    "compile_module",
    "compile_program",
    "compile_source",
    "implementation",
    "implementation_names",
]
