"""Compiled binary artifacts: source → (IR module, config) pairs.

A :class:`CompiledBinary` is the analog of the on-disk binary AFL++ runs:
the optimized IR plus the compiler configuration whose layout policy the
loader (:mod:`repro.vm.memory`) will apply.  ``compile_source`` is the
one-call "cc" front door.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.ir.module import Module
from repro.minic import ast, load
from repro.compiler.implementations import CompilerConfig
from repro.compiler.lowering import lower_program
from repro.compiler.passes import optimize


@dataclass
class CompiledBinary:
    """An executable artifact produced by one compiler implementation."""

    module: Module
    config: CompilerConfig
    #: Enable AFL-style edge coverage collection when executing.
    instrument_coverage: bool = False
    #: Sanitizer to run this binary under ("asan" | "ubsan" | "msan" | None).
    sanitizer: str | None = None
    labels: dict = field(default_factory=dict, repr=False)

    @property
    def name(self) -> str:
        return f"{self.module.name}:{self.config.name}"


def compile_module(program: ast.Program, config: CompilerConfig, name: str = "") -> Module:
    """Lower and optimize *program* for *config*, returning the IR module."""
    module = lower_program(program, config, name=name)
    module = optimize(module, config)
    if os.environ.get("REPRO_VERIFY_IR"):
        from repro.ir.verify import verify_module

        verify_module(module)
    return module


def compile_program(
    program: ast.Program,
    config: CompilerConfig,
    name: str = "",
    instrument_coverage: bool = False,
    sanitizer: str | None = None,
) -> CompiledBinary:
    """Compile a checked AST into a runnable binary for *config*."""
    module = compile_module(program, config, name=name)
    return CompiledBinary(
        module=module,
        config=config,
        instrument_coverage=instrument_coverage,
        sanitizer=sanitizer,
    )


def compile_source(
    source: str,
    config: CompilerConfig,
    name: str = "",
    instrument_coverage: bool = False,
    sanitizer: str | None = None,
) -> CompiledBinary:
    """Parse, check, lower, and optimize MiniC *source* for *config*."""
    program = load(source)
    return compile_program(
        program,
        config,
        name=name,
        instrument_coverage=instrument_coverage,
        sanitizer=sanitizer,
    )
