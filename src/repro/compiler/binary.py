"""Compiled binary artifacts: source → (IR module, config) pairs.

A :class:`CompiledBinary` is the analog of the on-disk binary AFL++ runs:
the optimized IR plus the compiler configuration whose layout policy the
loader (:mod:`repro.vm.memory`) will apply.  ``compile_source`` is the
one-call "cc" front door.

Every compile runs through the instrumented pass manager: one
:class:`~repro.compiler.passes.manager.PassBudget` spans lowering and the
pipeline, the resulting :class:`PipelineReport` (per-pass wall time and
change counts) rides on ``CompiledBinary.labels["pass_report"]``, and
``max_pass_applications`` truncates the build after the first N pass
applications — the knob divergence bisection (:mod:`repro.core.bisect`)
binary-searches.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.ir.module import Module
from repro.minic import ast, load
from repro.compiler.implementations import CompilerConfig
from repro.compiler.lowering import lower_program
from repro.compiler.passes.manager import PassBudget, PipelineReport, run_pipeline


@dataclass
class CompiledBinary:
    """An executable artifact produced by one compiler implementation."""

    module: Module
    config: CompilerConfig
    #: Enable AFL-style edge coverage collection when executing.
    instrument_coverage: bool = False
    #: Sanitizer to run this binary under ("asan" | "ubsan" | "msan" | None).
    sanitizer: str | None = None
    labels: dict = field(default_factory=dict, repr=False)

    @property
    def name(self) -> str:
        return f"{self.module.name}:{self.config.name}"

    @property
    def pass_report(self) -> PipelineReport | None:
        """The build's pass instrumentation, when compiled through the
        standard front door."""
        return self.labels.get("pass_report")


def compile_module(
    program: ast.Program,
    config: CompilerConfig,
    name: str = "",
    max_pass_applications: int | None = None,
    budget: PassBudget | None = None,
) -> Module:
    """Lower and optimize *program* for *config*, returning the IR module.

    One :class:`PassBudget` spans the whole build, so the lowering-stage
    UB exploitation and every pipeline pass share a single application
    schedule; ``max_pass_applications=N`` runs exactly the first N
    applications of that schedule (the bisection substrate).
    """
    module, _ = compile_module_instrumented(
        program,
        config,
        name=name,
        max_pass_applications=max_pass_applications,
        budget=budget,
    )
    return module


def compile_module_instrumented(
    program: ast.Program,
    config: CompilerConfig,
    name: str = "",
    max_pass_applications: int | None = None,
    budget: PassBudget | None = None,
) -> tuple[Module, PipelineReport]:
    """`compile_module` returning the pass-instrumentation report too."""
    if budget is None:
        budget = PassBudget(max_applications=max_pass_applications)
    module = lower_program(program, config, name=name, budget=budget)
    report = run_pipeline(module, config, budget=budget)
    if os.environ.get("REPRO_VERIFY_IR"):
        # Per-pass verification already ran inside the manager; this
        # final whole-module check also covers pipelines with no passes.
        from repro.ir.verify import verify_module

        verify_module(module)
    return module, report


def compile_program(
    program: ast.Program,
    config: CompilerConfig,
    name: str = "",
    instrument_coverage: bool = False,
    sanitizer: str | None = None,
    max_pass_applications: int | None = None,
) -> CompiledBinary:
    """Compile a checked AST into a runnable binary for *config*."""
    module, report = compile_module_instrumented(
        program, config, name=name, max_pass_applications=max_pass_applications
    )
    return CompiledBinary(
        module=module,
        config=config,
        instrument_coverage=instrument_coverage,
        sanitizer=sanitizer,
        labels={"pass_report": report},
    )


def compile_source(
    source: str,
    config: CompilerConfig,
    name: str = "",
    instrument_coverage: bool = False,
    sanitizer: str | None = None,
    max_pass_applications: int | None = None,
) -> CompiledBinary:
    """Parse, check, lower, and optimize MiniC *source* for *config*."""
    program = load(source)
    return compile_program(
        program,
        config,
        name=name,
        instrument_coverage=instrument_coverage,
        sanitizer=sanitizer,
        max_pass_applications=max_pass_applications,
    )
