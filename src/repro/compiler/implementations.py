"""The ten simulated compiler implementations (gcc-sim/clang-sim × O0..Os).

Every knob on :class:`CompilerConfig` corresponds to a behavior that the C
standard leaves undefined, unspecified, or implementation-defined, and that
real gcc/clang are *documented or observed* to resolve differently across
families and optimization levels (paper §1–§4).  The knob values below are
chosen so the qualitative structure of the paper's findings reproduces:

* cross-family pairs with very different optimization strength (e.g.
  ``{gcc-O0, clang-O3}``) maximize divergence (Figure 1/2 annotations);
* same-family adjacent levels (e.g. ``{gcc-O2, gcc-O3}``) share most
  choices and expose the least unstable code;
* wrapped signed arithmetic *values* are identical everywhere (two's
  complement hardware), so plain integer-overflow tests rarely diverge
  (Table 3's 11% CompDiff rate on integer errors) while overflow *guards*
  folded under ``nsw`` reasoning diverge reliably (Listing 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CompilerConfig:
    """Full description of one compiler implementation.

    Front-end semantic choices, the optimization pipeline, and the runtime
    object-layout policy are bundled together because the paper's unit of
    comparison is the whole toolchain configuration.
    """

    name: str
    family: str  # "gcc" | "clang"
    opt_level: str  # "O0" | "O1" | "O2" | "O3" | "Os"

    # -- front-end choices (unspecified / implementation-defined behavior) --
    #: Order of evaluation of call arguments (unspecified in C).  clang
    #: evaluates left-to-right, gcc right-to-left (§2 Example 2).
    args_left_to_right: bool = True
    #: ``__LINE__`` in a multi-line expression: token line vs. line of the
    #: statement's first token (implementation-defined, §4.3 "LINE").
    line_macro_statement_based: bool = False
    #: Evaluate ``int * int`` feeding a 64-bit context in 64 bits instead of
    #: wrapping at 32 bits first (observed clang -O1 behavior, §4.3).
    widen_int_mul: bool = False

    # -- optimization pipeline --
    const_fold: bool = False
    copy_prop: bool = False
    dce: bool = False
    #: UB-guided transforms: nsw guard folding, null-deref elision,
    #: deletion of unused trapping divisions.
    exploit_ub: bool = False
    inline_small: bool = False
    strength_reduce: bool = False
    #: clang -O3 rewrites pow(2, x) into exp2(x) (§4.3 RQ2, floating point).
    float_pow_to_exp2: bool = False
    #: Keep extended precision in float multiply-add chains (x87-style).
    fp_extended_intermediate: bool = False
    #: Seeded miscompilation pattern ids active in this implementation
    #: (reproduces RQ2's three compiler bugs; see passes/constant_fold.py).
    miscompile_patterns: tuple[str, ...] = ()

    # -- runtime object layout (code generation + allocator policy) --
    #: Base addresses of the three segments.  Differ across implementations
    #: so cross-object pointer comparisons (Listing 2) diverge.
    global_base: int = 0x601000
    stack_base: int = 0x7FFF0000
    heap_base: int = 0x20000000
    #: Stack-slot placement: "decl" keeps declaration order, "size_desc"
    #: reorders by size (stack-protector style), "buffers_last" moves
    #: arrays after scalars.
    stack_slot_order: str = "decl"
    #: Padding bytes inserted between stack slots (roomy -O0 frames absorb
    #: small overflows; tight -O2 frames let them corrupt neighbors).
    stack_gap: int = 0
    #: Order of global objects in the data segment.
    global_order: str = "decl"  # "decl" | "alpha" | "size_desc"
    #: Byte written to fresh (uninitialized) stack memory.
    uninit_fill: int = 0x00
    #: Byte written to fresh heap memory (malloc does not clear).
    heap_fill: int = 0x00
    #: Whether free() poisons the block (allocator hardening differs).
    free_poison: int | None = None
    #: Whether the allocator reuses freed blocks (enables UAF aliasing).
    heap_reuse: bool = False
    #: Spacing inserted before each heap block (allocator header/debug
    #: slack).  Decides whether a small heap overflow reaches the next
    #: allocation — the heap analog of stack_gap.
    heap_gap: int = 0
    #: Whether free() of a non-heap/already-freed pointer traps (hardened)
    #: or is silently ignored.
    free_strict: bool = False
    #: memcpy copies forward or backward (matters only for UB overlaps).
    memcpy_backward: bool = False
    #: Value read for call arguments that the caller did not pass
    #: (CWE-685); models whatever was left in the argument register.
    missing_arg_value: int = 0

    extra: dict = field(default_factory=dict, compare=False, hash=False)

    def __str__(self) -> str:
        return self.name

    #: Knobs that shape the optimization pipeline (the inputs of
    #: :func:`repro.compiler.passes.manager.pipeline_for`).  Everything
    #: else on the config is front-end semantics or runtime layout.
    PIPELINE_KNOBS = (
        "const_fold",
        "copy_prop",
        "dce",
        "exploit_ub",
        "inline_small",
        "strength_reduce",
        "float_pow_to_exp2",
    )

    def pipeline_knobs(self) -> dict[str, bool]:
        """The pipeline-shaping knob vector, by name."""
        return {knob: getattr(self, knob) for knob in self.PIPELINE_KNOBS}

    def pipeline_summary(self) -> str:
        """One-line pipeline description: pass schedule + cache digest.

        Delegates to the declarative pass manager — the authoritative
        mapping from this knob vector to an ordered pipeline.
        """
        from repro.compiler.passes.manager import pipeline_for

        pipeline = pipeline_for(self)
        names = [p.name for p in pipeline.prelude] + [
            p.name for p in pipeline.function_passes()
        ]
        schedule = " -> ".join(names) if names else "(no passes)"
        return f"{schedule}  [digest {pipeline.digest()[:12]}]"


def _gcc(level: str, **kw) -> CompilerConfig:
    defaults = dict(
        name=f"gcc-{level}",
        family="gcc",
        opt_level=level,
        args_left_to_right=False,  # gcc pushes args right-to-left
        line_macro_statement_based=False,
        global_base=0x601000,
        stack_base=0x7FFF_F000_0000,
        heap_base=0x0000_2000_0000,
        memcpy_backward=False,
        missing_arg_value=0x7F7F7F7F,
    )
    defaults.update(kw)
    return CompilerConfig(**defaults)


def _clang(level: str, **kw) -> CompilerConfig:
    defaults = dict(
        name=f"clang-{level}",
        family="clang",
        opt_level=level,
        args_left_to_right=True,  # clang evaluates left-to-right
        line_macro_statement_based=True,
        global_base=0x404000,
        stack_base=0x7FFD_8000_0000,
        heap_base=0x0000_5100_0000,
        memcpy_backward=True,
        missing_arg_value=0x01010101,
    )
    defaults.update(kw)
    return CompilerConfig(**defaults)


#: The ten default implementations of §4 ("gcc 11.1.0 and clang 13.0.1 ...
#: -O0, -O1, -O2, -O3, and -Os ... 10 different compiler implementations").
DEFAULT_IMPLEMENTATIONS: tuple[CompilerConfig, ...] = (
    _gcc(
        "O0",
        stack_slot_order="decl",
        stack_gap=16,
        global_order="decl",
        uninit_fill=0x00,
        heap_fill=0x00,
        heap_reuse=False,
        heap_gap=16,
        free_strict=False,
    ),
    _gcc(
        "O1",
        const_fold=True,
        copy_prop=True,
        dce=True,
        exploit_ub=True,
        stack_slot_order="decl",
        stack_gap=8,
        global_order="decl",
        uninit_fill=0x00,
        heap_fill=0xA0,
        heap_reuse=True,
        heap_gap=16,
        free_strict=False,
    ),
    _gcc(
        "O2",
        const_fold=True,
        copy_prop=True,
        dce=True,
        exploit_ub=True,
        inline_small=True,
        strength_reduce=True,
        stack_slot_order="size_desc",
        stack_gap=0,
        global_order="size_desc",
        uninit_fill=0xA5,
        heap_fill=0xA5,
        heap_reuse=True,
        free_strict=True,
        free_poison=0xDD,
        miscompile_patterns=("ushl_ushr_elide",),
    ),
    _gcc(
        "O3",
        const_fold=True,
        copy_prop=True,
        dce=True,
        exploit_ub=True,
        inline_small=True,
        strength_reduce=True,
        stack_slot_order="size_desc",
        stack_gap=0,
        global_order="size_desc",
        uninit_fill=0xA5,
        heap_fill=0xA5,
        heap_reuse=True,
        free_strict=True,
        free_poison=0xDD,
        fp_extended_intermediate=True,
        miscompile_patterns=("ushl_ushr_elide", "sext_shift_pair"),
    ),
    _gcc(
        "Os",
        const_fold=True,
        copy_prop=True,
        dce=True,
        exploit_ub=True,
        strength_reduce=True,
        stack_slot_order="buffers_last",
        stack_gap=0,
        global_order="alpha",
        uninit_fill=0x5A,
        heap_fill=0x5A,
        heap_reuse=True,
        free_strict=True,
    ),
    _clang(
        "O0",
        stack_slot_order="decl",
        stack_gap=16,
        global_order="decl",
        uninit_fill=0x00,
        heap_fill=0x00,
        heap_reuse=False,
        heap_gap=16,
        free_strict=False,
    ),
    _clang(
        "O1",
        const_fold=True,
        copy_prop=True,
        dce=True,
        exploit_ub=True,
        widen_int_mul=True,  # §4.3: clang -O1 computes int*int in long
        stack_slot_order="decl",
        stack_gap=4,
        global_order="decl",
        uninit_fill=0xCD,
        heap_fill=0xCD,
        heap_reuse=True,
        heap_gap=8,
        free_strict=False,
        miscompile_patterns=("srem_to_mask",),
    ),
    _clang(
        "O2",
        const_fold=True,
        copy_prop=True,
        dce=True,
        exploit_ub=True,
        inline_small=True,
        strength_reduce=True,
        widen_int_mul=True,
        stack_slot_order="size_desc",
        stack_gap=0,
        global_order="size_desc_rev",
        uninit_fill=0xCD,
        heap_fill=0xCD,
        heap_reuse=True,
        free_strict=True,
        free_poison=0xFE,
    ),
    _clang(
        "O3",
        const_fold=True,
        copy_prop=True,
        dce=True,
        exploit_ub=True,
        inline_small=True,
        strength_reduce=True,
        widen_int_mul=True,
        float_pow_to_exp2=True,
        stack_slot_order="size_desc",
        stack_gap=0,
        global_order="size_desc_rev",
        uninit_fill=0xEF,
        heap_fill=0xEF,
        heap_reuse=True,
        free_strict=True,
        free_poison=0xFE,
    ),
    _clang(
        "Os",
        const_fold=True,
        copy_prop=True,
        dce=True,
        exploit_ub=True,
        strength_reduce=True,
        widen_int_mul=True,
        stack_slot_order="buffers_last",
        stack_gap=0,
        global_order="decl_rev",
        uninit_fill=0xCD,
        heap_fill=0xCD,
        heap_reuse=True,
        free_strict=True,
    ),
)

_BY_NAME = {config.name: config for config in DEFAULT_IMPLEMENTATIONS}

#: The fuzzer-facing compiler C_fuzz (§3.2): a plain, non-UB-exploiting
#: build whose only job is coverage feedback.  Compiled like clang -O0 with
#: instrumentation enabled by the fuzzer at run time.
FUZZ_CONFIG = CompilerConfig(
    **{**_BY_NAME["clang-O0"].__dict__, "name": "fuzz-clang-O0", "extra": {}}
)

#: The build sanitizers instrument (clang -O0 -fsanitize=...): no
#: optimization at all, so every check observes the source-level
#: semantics — folding away `INT_MAX + 1` at compile time would silently
#: delete the very overflow UBSan exists to catch.
SANITIZER_CONFIG = CompilerConfig(
    **{
        **_BY_NAME["clang-O0"].__dict__,
        "name": "sanitizer-clang-O0",
        "miscompile_patterns": (),
        "extra": {},
    }
)


def implementation(name: str) -> CompilerConfig:
    """Look up a default implementation by name, e.g. ``"gcc-O2"``."""
    if name not in _BY_NAME:
        raise KeyError(f"unknown compiler implementation {name!r}; have {sorted(_BY_NAME)}")
    return _BY_NAME[name]


def implementation_names() -> list[str]:
    return [config.name for config in DEFAULT_IMPLEMENTATIONS]
