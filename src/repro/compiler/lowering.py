"""AST → IR code generation, parameterized by a CompilerConfig.

This is where the C standard's freedom becomes concrete, divergent
semantics: argument evaluation order, ``__LINE__`` interpretation,
``nsw``-marked signed arithmetic, widening of ``int*int`` in 64-bit
contexts, and (when ``exploit_ub`` is on) the source-level overflow-guard
folds that real instcombine performs on Listing-1-style code.
"""

from __future__ import annotations

import struct

from repro.errors import LoweringError
from repro.ir.builder import FunctionBuilder
from repro.ir.instructions import (
    AddrGlobal,
    AddrSlot,
    BinOp,
    BugSite,
    Call,
    CallBuiltin,
    Cast,
    Const,
    Load,
    Move,
    Operand,
    Reg,
    Store,
    UnOp,
)
from repro.ir.module import GlobalData, Module
from repro.minic import ast
from repro.minic import types as ty
from repro.minic.builtins import BUILTIN_SIGNATURES
from repro.compiler.implementations import CompilerConfig

_CMP_BY_OP = {
    "==": "eq",
    "!=": "ne",
    "<": "lt",
    "<=": "le",
    ">": "gt",
    ">=": "ge",
}

_ARITH_BY_OP = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "&": "and",
    "|": "or",
    "^": "xor",
    "<<": "shl",
}


class Lowerer:
    """Lowers one checked MiniC program to an IR module.

    When a :class:`~repro.compiler.passes.manager.PassBudget` is passed,
    the lowering-stage UB exploitation (the Listing-1 overflow-guard
    folds) claims one slot in the build's pass-application schedule —
    so divergence bisection can attribute a flipped output to the
    ``exploit_ub`` transform even though it runs before the pipeline.
    """

    def __init__(
        self,
        program: ast.Program,
        config: CompilerConfig,
        name: str = "",
        budget=None,
    ) -> None:
        self.program = program
        self.config = config
        self.module = Module(name=name or program.filename)
        self._ub_guard_application = None
        if config.exploit_ub and budget is not None:
            from repro.compiler.passes.manager import PASS_UB_GUARD_FOLD

            self._ub_guard_application = budget.begin(PASS_UB_GUARD_FOLD, "<lowering>")
            self._ub_guard_enabled = self._ub_guard_application is not None
        else:
            self._ub_guard_enabled = config.exploit_ub
        self._string_pool: dict[str, str] = {}
        self._global_names: dict[int, str] = {}  # Symbol uid -> global name
        self._func_ret_types: dict[str, ty.Type] = {}
        # Per-function state.
        self._builder: FunctionBuilder | None = None
        self._slots: dict[int, int] = {}  # Symbol uid -> slot index
        self._loop_stack: list[tuple[str, str]] = []  # (break target, continue target)

    # ------------------------------------------------------------------ api

    def run(self) -> Module:
        for decl in self.program.decls:
            if isinstance(decl, ast.FuncDef):
                self._func_ret_types[decl.name] = decl.ret_type
            elif isinstance(decl, ast.GlobalVar):
                self._declare_global(decl)
        for decl in self.program.decls:
            if isinstance(decl, ast.FuncDef):
                self._lower_function(decl)
        self.module.bug_sites = sorted(set(self.module.bug_sites))
        return self.module

    # -------------------------------------------------------------- globals

    def _declare_global(self, decl: ast.GlobalVar) -> None:
        name = decl.name
        size = max(decl.var_type.size(), 1)
        data = GlobalData(name=name, size=size, align=decl.var_type.align())
        if decl.init is not None:
            data.init = self._const_init_bytes(decl.init, decl.var_type, data)
        else:
            data.init = bytes(size)  # C globals are zero-initialized
        self.module.globals[name] = data
        self._global_names[decl.symbol.uid] = name

    def _const_init_bytes(self, init: ast.Expr, var_type: ty.Type, data: GlobalData) -> bytes:
        if isinstance(var_type, ty.ArrayType):
            if isinstance(init, ast.StrLit) and isinstance(var_type.element, ty.IntType):
                raw = init.value.encode("latin-1") + b"\0"
                return raw[: var_type.size()].ljust(var_type.size(), b"\0")
            if isinstance(init, ast.Call) and _is_array_init(init):
                element = var_type.element
                out = bytearray(var_type.size())
                for i, arg in enumerate(init.args):
                    value = self._const_eval(arg)
                    offset = i * element.size()
                    out[offset : offset + element.size()] = _pack_scalar(value, element)
                return bytes(out)
            raise LoweringError(f"unsupported array initializer at line {init.line}")
        if isinstance(init, ast.StrLit) and var_type.is_pointer:
            label = self._intern_string(init.value)
            data.relocations.append((0, label))
            return bytes(8)
        value = self._const_eval(init)
        return _pack_scalar(value, var_type)

    def _const_eval(self, expr: ast.Expr):
        if isinstance(expr, (ast.IntLit, ast.CharLit)):
            return expr.value
        if isinstance(expr, ast.FloatLit):
            return expr.value
        if isinstance(expr, ast.NullLit):
            return 0
        if isinstance(expr, ast.Unary) and expr.op == "-":
            return -self._const_eval(expr.operand)
        if isinstance(expr, ast.Cast):
            return self._const_eval(expr.operand)
        if isinstance(expr, ast.SizeofType):
            return expr.target_type.size()
        raise LoweringError(f"global initializer is not a constant at line {expr.line}")

    def _intern_string(self, text: str) -> str:
        if text in self._string_pool:
            return self._string_pool[text]
        label = f".str.{len(self._string_pool)}"
        raw = text.encode("latin-1") + b"\0"
        self.module.globals[label] = GlobalData(
            name=label, size=len(raw), align=1, init=raw, is_const=True
        )
        self._string_pool[text] = label
        return label

    # ------------------------------------------------------------ functions

    def _lower_function(self, func: ast.FuncDef) -> None:
        builder = FunctionBuilder(
            func.name, [(p.name, p.param_type) for p in func.params], func.ret_type
        )
        self._builder = builder
        self._slots = {}
        self._loop_stack = []
        # Registers 0..n-1 carry the incoming arguments; reserve them before
        # any temporary is allocated.
        builder.func.num_regs = len(func.params)
        # Parameters live in stack slots so their address can be taken and
        # so missing-argument garbage (CWE-685) lands in observable memory.
        for i, param in enumerate(func.params):
            slot = builder.add_slot(
                param.name or f".arg{i}",
                max(param.symbol.type.size(), 1),
                param.symbol.type.align(),
                line=param.line,
            )
            self._slots[param.symbol.uid] = slot
            addr = builder.new_reg()
            builder.emit(AddrSlot(addr, slot, line=param.line))
            builder.emit(Store(addr, Reg(i), param.symbol.type, line=param.line))
        self._lower_block(func.body)
        if not builder.terminated:
            if func.name == "main":
                builder.ret(0)
            else:
                builder.ret(None)
        function = builder.finish()
        # Reserve the low registers used for incoming parameters.
        function.num_regs = max(function.num_regs, len(func.params))
        self.module.functions[func.name] = function
        self._builder = None

    # ------------------------------------------------------------ statements

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        b = self._builder
        assert b is not None
        if isinstance(stmt, ast.Block):
            self._lower_block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            self._lower_var_decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._lower_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._lower_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.Switch):
            self._lower_switch(stmt)
        elif isinstance(stmt, ast.Return):
            value = None
            if stmt.value is not None:
                ret_ty = self._func_ret_types.get(self._builder.func.name, ty.INT)
                value = self._lower_value_as(stmt.value, ret_ty)
            b.ret(value, line=stmt.line)
        elif isinstance(stmt, ast.Break):
            if not self._loop_stack:
                raise LoweringError(f"break outside loop at line {stmt.line}")
            b.jump(self._loop_stack[-1][0], line=stmt.line)
        elif isinstance(stmt, ast.Continue):
            if not self._loop_stack or self._loop_stack[-1][1] is None:
                raise LoweringError(f"continue outside loop at line {stmt.line}")
            b.jump(self._loop_stack[-1][1], line=stmt.line)
        else:  # pragma: no cover
            raise LoweringError(f"unknown statement {type(stmt).__name__}")

    def _lower_block(self, block: ast.Block) -> None:
        for stmt in block.body:
            self._lower_stmt(stmt)

    def _lower_var_decl(self, stmt: ast.VarDecl) -> None:
        b = self._builder
        assert b is not None
        symbol = stmt.symbol
        if stmt.is_static:
            # Static local: a module global with a mangled name, initialized
            # once at load time (constant initializers only, as in C).
            name = symbol.mangled
            if name not in self.module.globals:
                size = max(stmt.var_type.size(), 1)
                data = GlobalData(name=name, size=size, align=stmt.var_type.align())
                if stmt.init is not None:
                    data.init = self._const_init_bytes(stmt.init, stmt.var_type, data)
                else:
                    data.init = bytes(size)
                self.module.globals[name] = data
            self._global_names[symbol.uid] = name
            return
        is_buffer = stmt.var_type.is_array or stmt.var_type.is_struct
        slot = b.add_slot(
            stmt.name,
            max(stmt.var_type.size(), 1),
            stmt.var_type.align(),
            line=stmt.line,
            is_buffer=is_buffer,
        )
        self._slots[symbol.uid] = slot
        if stmt.init is None:
            return
        addr = b.new_reg()
        b.emit(AddrSlot(addr, slot, line=stmt.line))
        if isinstance(stmt.var_type, ty.ArrayType):
            self._lower_array_init(stmt, addr)
            return
        if isinstance(stmt.var_type, ty.StructType):
            src = self._lower_expr(stmt.init)
            b.emit(
                CallBuiltin(
                    None,
                    "memcpy",
                    [addr, src, stmt.var_type.size()],
                    [ty.PointerType(ty.CHAR), ty.PointerType(ty.CHAR), ty.LONG],
                    line=stmt.line,
                )
            )
            return
        value = self._lower_value_as(stmt.init, stmt.var_type)
        b.emit(Store(addr, value, stmt.var_type, line=stmt.line))

    def _lower_array_init(self, stmt: ast.VarDecl, addr: Operand) -> None:
        b = self._builder
        assert b is not None
        array_type = stmt.var_type
        assert isinstance(array_type, ty.ArrayType)
        init = stmt.init
        if isinstance(init, ast.StrLit):
            label = self._intern_string(init.value)
            src = b.new_reg()
            b.emit(AddrGlobal(src, label, line=stmt.line))
            length = min(len(init.value) + 1, array_type.size())
            b.emit(
                CallBuiltin(
                    None,
                    "memcpy",
                    [addr, src, length],
                    [ty.PointerType(ty.CHAR), ty.PointerType(ty.CHAR), ty.LONG],
                    line=stmt.line,
                )
            )
            return
        if isinstance(init, ast.Call) and _is_array_init(init):
            element = array_type.element
            for i, arg in enumerate(init.args):
                value = self._lower_value_as(arg, element)
                dest = b.new_reg()
                b.emit(BinOp(dest, "add", addr, i * element.size(), ty.ULONG, line=stmt.line))
                b.emit(Store(dest, value, element, line=stmt.line))
            return
        raise LoweringError(f"unsupported array initializer at line {stmt.line}")

    def _lower_if(self, stmt: ast.If) -> None:
        b = self._builder
        assert b is not None
        then_label = b.new_block("if.then")
        end_label = b.new_block("if.end")
        else_label = b.new_block("if.else") if stmt.otherwise is not None else end_label
        cond = self._lower_condition(stmt.cond)
        b.branch(cond, then_label, else_label, line=stmt.line)
        b.switch_to(then_label)
        self._lower_stmt(stmt.then)
        if not b.terminated:
            b.jump(end_label)
        if stmt.otherwise is not None:
            b.switch_to(else_label)
            self._lower_stmt(stmt.otherwise)
            if not b.terminated:
                b.jump(end_label)
        b.switch_to(end_label)

    def _lower_while(self, stmt: ast.While) -> None:
        b = self._builder
        assert b is not None
        head = b.new_block("while.head")
        body = b.new_block("while.body")
        end = b.new_block("while.end")
        b.jump(head, line=stmt.line)
        b.switch_to(head)
        cond = self._lower_condition(stmt.cond)
        b.branch(cond, body, end, line=stmt.line)
        b.switch_to(body)
        self._loop_stack.append((end, head))
        self._lower_stmt(stmt.body)
        self._loop_stack.pop()
        if not b.terminated:
            b.jump(head)
        b.switch_to(end)

    def _lower_do_while(self, stmt: ast.DoWhile) -> None:
        b = self._builder
        assert b is not None
        body = b.new_block("do.body")
        head = b.new_block("do.cond")
        end = b.new_block("do.end")
        b.jump(body, line=stmt.line)
        b.switch_to(body)
        self._loop_stack.append((end, head))
        self._lower_stmt(stmt.body)
        self._loop_stack.pop()
        if not b.terminated:
            b.jump(head)
        b.switch_to(head)
        cond = self._lower_condition(stmt.cond)
        b.branch(cond, body, end, line=stmt.line)
        b.switch_to(end)

    def _lower_for(self, stmt: ast.For) -> None:
        b = self._builder
        assert b is not None
        if stmt.init is not None:
            self._lower_stmt(stmt.init)
        head = b.new_block("for.head")
        body = b.new_block("for.body")
        step = b.new_block("for.step")
        end = b.new_block("for.end")
        b.jump(head, line=stmt.line)
        b.switch_to(head)
        if stmt.cond is not None:
            cond = self._lower_condition(stmt.cond)
            b.branch(cond, body, end, line=stmt.line)
        else:
            b.jump(body)
        b.switch_to(body)
        self._loop_stack.append((end, step))
        self._lower_stmt(stmt.body)
        self._loop_stack.pop()
        if not b.terminated:
            b.jump(step)
        b.switch_to(step)
        if stmt.step is not None:
            self._lower_expr(stmt.step)
        b.jump(head)
        b.switch_to(end)

    def _lower_switch(self, stmt: ast.Switch) -> None:
        """Lower switch as a compare chain with C fallthrough semantics."""
        b = self._builder
        assert b is not None
        cond_ty = ty.integer_promote(ty.decay(stmt.cond.ty or ty.INT))
        if not isinstance(cond_ty, ty.IntType):
            cond_ty = ty.INT
        cond = self._lower_value_as(stmt.cond, cond_ty)
        end = b.new_block("switch.end")
        case_labels = [b.new_block("switch.case") for _ in stmt.cases]
        default_label = end
        # Dispatch chain: one comparison per non-default case, in order.
        for case, label in zip(stmt.cases, case_labels):
            if case.value is None:
                default_label = label
                continue
            self.module.magic_constants.append(case.value)
            test = b.new_reg()
            b.emit(BinOp(test, "eq", cond, cond_ty.wrap(case.value), cond_ty, line=case.line))
            next_test = b.new_block("switch.test")
            b.branch(test, label, next_test, line=case.line)
            b.switch_to(next_test)
        b.jump(default_label, line=stmt.line)
        # Case bodies in declaration order; falling off one body continues
        # into the next (C fallthrough); break jumps to end; continue still
        # targets the enclosing loop, if any.
        enclosing_continue = self._loop_stack[-1][1] if self._loop_stack else None
        self._loop_stack.append((end, enclosing_continue))
        for index, (case, label) in enumerate(zip(stmt.cases, case_labels)):
            b.switch_to(label)
            for case_stmt in case.body:
                self._lower_stmt(case_stmt)
            if not b.terminated:
                following = case_labels[index + 1] if index + 1 < len(case_labels) else end
                b.jump(following)
        self._loop_stack.pop()
        b.switch_to(end)

    # ---------------------------------------------------------- expressions

    def _lower_condition(self, expr: ast.Expr) -> Operand:
        """Lower *expr* as a branch condition (non-zero test)."""
        value = self._lower_expr(expr)
        expr_ty = ty.decay(expr.ty or ty.INT)
        if isinstance(expr, ast.Binary) and expr.op in _CMP_BY_OP:
            return value
        if isinstance(expr, ast.Binary) and expr.op in ("&&", "||"):
            return value
        if isinstance(expr, ast.Unary) and expr.op == "!":
            return value
        b = self._builder
        assert b is not None
        dst = b.new_reg()
        if expr_ty.is_float:
            b.emit(BinOp(dst, "fne", value, 0.0, expr_ty, line=expr.line))
        else:
            cmp_ty = expr_ty if isinstance(expr_ty, ty.IntType) else ty.ULONG
            b.emit(BinOp(dst, "ne", value, 0, cmp_ty, line=expr.line))
        return dst

    def _lower_value_as(self, expr: ast.Expr, target: ty.Type) -> Operand:
        """Lower *expr* and convert the value to *target* type.

        Implements the clang-style ``widen_int_mul`` divergence: an
        ``int * int`` product feeding a 64-bit context is evaluated in 64
        bits (no 32-bit wrap) when the config says so (§4.3 IntError).
        """
        target = ty.decay(target)
        if (
            self.config.widen_int_mul
            and isinstance(target, ty.IntType)
            and target.bits == 64
            and isinstance(expr, ast.Binary)
            and expr.op == "*"
            and _is_int32(expr.lhs.ty)
            and _is_int32(expr.rhs.ty)
        ):
            b = self._builder
            assert b is not None
            lhs = self._lower_value_as(expr.lhs, target)
            rhs = self._lower_value_as(expr.rhs, target)
            dst = b.new_reg()
            b.emit(BinOp(dst, "mul", lhs, rhs, target, nsw=target.signed, line=expr.line))
            return dst
        value = self._lower_expr(expr)
        source = ty.decay(expr.ty or target)
        return self._convert(value, source, target, expr.line)

    def _convert(self, value: Operand, source: ty.Type, target: ty.Type, line: int) -> Operand:
        source = ty.decay(source)
        target = ty.decay(target)
        if source == target or target.is_void:
            return value
        if source.is_pointer and target.is_pointer:
            return value
        if source.is_pointer:
            source = ty.ULONG
        if target.is_pointer:
            target = ty.ULONG
            if isinstance(source, ty.IntType) and source == ty.ULONG:
                return value
        if source == target:
            return value
        b = self._builder
        assert b is not None
        dst = b.new_reg()
        b.emit(Cast(dst, value, source, target, line=line))
        return dst

    def _lower_expr(self, expr: ast.Expr) -> Operand:
        b = self._builder
        assert b is not None
        if isinstance(expr, (ast.IntLit, ast.CharLit)):
            return expr.value
        if isinstance(expr, ast.FloatLit):
            return float(expr.value)
        if isinstance(expr, ast.NullLit):
            return 0
        if isinstance(expr, ast.LineMacro):
            if self.config.line_macro_statement_based:
                return expr.statement_line or expr.line
            return expr.line
        if isinstance(expr, ast.StrLit):
            label = self._intern_string(expr.value)
            dst = b.new_reg()
            b.emit(AddrGlobal(dst, label, line=expr.line))
            return dst
        if isinstance(expr, ast.Ident):
            return self._lower_ident(expr)
        if isinstance(expr, ast.Unary):
            return self._lower_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._lower_binary(expr)
        if isinstance(expr, ast.Assign):
            return self._lower_assign(expr)
        if isinstance(expr, ast.Conditional):
            return self._lower_conditional(expr)
        if isinstance(expr, ast.Call):
            return self._lower_call(expr)
        if isinstance(expr, (ast.Index, ast.Member)):
            addr = self._lower_addr(expr)
            return self._load_from(addr, expr)
        if isinstance(expr, ast.Cast):
            inner = self._lower_value_as(expr.operand, expr.target_type)
            return inner
        if isinstance(expr, ast.SizeofType):
            return expr.target_type.size()
        if isinstance(expr, ast.SizeofExpr):
            return (expr.operand.ty or ty.INT).size()
        raise LoweringError(f"cannot lower {type(expr).__name__} at line {expr.line}")

    def _load_from(self, addr: Operand, expr: ast.Expr) -> Operand:
        b = self._builder
        assert b is not None
        value_ty = expr.ty or ty.INT
        if isinstance(value_ty, ty.ArrayType):
            return addr  # arrays decay to their address
        if isinstance(value_ty, ty.StructType):
            return addr  # struct values are handled by address
        dst = b.new_reg()
        b.emit(Load(dst, addr, value_ty, line=expr.line))
        return dst

    def _lower_ident(self, expr: ast.Ident) -> Operand:
        symbol = expr.symbol
        if symbol.kind in ("func", "builtin"):
            raise LoweringError(f"function name used as value at line {expr.line}")
        addr = self._lower_addr(expr)
        return self._load_from(addr, expr)

    # -- addresses -------------------------------------------------------

    def _lower_addr(self, expr: ast.Expr) -> Operand:
        b = self._builder
        assert b is not None
        if isinstance(expr, ast.Ident):
            symbol = expr.symbol
            dst = b.new_reg()
            if symbol.uid in self._slots:
                b.emit(AddrSlot(dst, self._slots[symbol.uid], line=expr.line))
            else:
                name = self._global_names.get(symbol.uid, symbol.mangled or symbol.name)
                b.emit(AddrGlobal(dst, name, line=expr.line))
            return dst
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return self._lower_expr(expr.operand)
        if isinstance(expr, ast.Index):
            base_ty = ty.decay(expr.base.ty or ty.PointerType(ty.CHAR))
            assert isinstance(base_ty, ty.PointerType)
            base = self._lower_expr(expr.base)
            index = self._lower_value_as(expr.index, ty.LONG)
            scaled = b.new_reg()
            b.emit(BinOp(scaled, "mul", index, base_ty.pointee.size(), ty.LONG, line=expr.line))
            dst = b.new_reg()
            b.emit(BinOp(dst, "add", base, scaled, ty.ULONG, line=expr.line))
            return dst
        if isinstance(expr, ast.Member):
            if expr.arrow:
                base = self._lower_expr(expr.base)
                base_ty = ty.decay(expr.base.ty)
                struct_ty = base_ty.pointee
            else:
                base = self._lower_addr(expr.base)
                struct_ty = expr.base.ty
            assert isinstance(struct_ty, ty.StructType)
            struct_field = struct_ty.field_named(expr.name)
            assert struct_field is not None
            if struct_field.offset == 0:
                return base
            dst = b.new_reg()
            b.emit(BinOp(dst, "add", base, struct_field.offset, ty.ULONG, line=expr.line))
            return dst
        raise LoweringError(f"expression is not addressable at line {expr.line}")

    # -- operators ----------------------------------------------------------

    def _lower_unary(self, expr: ast.Unary) -> Operand:
        b = self._builder
        assert b is not None
        op = expr.op
        if op == "&":
            return self._lower_addr(expr.operand)
        if op == "*":
            addr = self._lower_expr(expr.operand)
            return self._load_from(addr, expr)
        if op == "!":
            operand_ty = ty.decay(expr.operand.ty or ty.INT)
            value = self._lower_expr(expr.operand)
            dst = b.new_reg()
            if operand_ty.is_float:
                b.emit(BinOp(dst, "feq", value, 0.0, operand_ty, line=expr.line))
            else:
                cmp_ty = operand_ty if isinstance(operand_ty, ty.IntType) else ty.ULONG
                b.emit(BinOp(dst, "eq", value, 0, cmp_ty, line=expr.line))
            return dst
        if op in ("-", "~"):
            result_ty = expr.ty or ty.INT
            value = self._lower_value_as(expr.operand, result_ty)
            dst = b.new_reg()
            if result_ty.is_float:
                b.emit(UnOp(dst, "fneg", value, result_ty, line=expr.line))
            else:
                kind = "neg" if op == "-" else "not"
                b.emit(UnOp(dst, kind, value, result_ty, line=expr.line))
            return dst
        if op in ("++", "--", "p++", "p--"):
            return self._lower_incdec(expr)
        raise LoweringError(f"unknown unary {op!r} at line {expr.line}")

    def _lower_incdec(self, expr: ast.Unary) -> Operand:
        b = self._builder
        assert b is not None
        target = expr.operand
        target_ty = ty.decay(target.ty or ty.INT)
        addr = self._lower_addr(target)
        old = b.new_reg()
        b.emit(Load(old, addr, target_ty, line=expr.line))
        delta: Operand = 1
        op = "add" if expr.op in ("++", "p++") else "sub"
        new = b.new_reg()
        if isinstance(target_ty, ty.PointerType):
            b.emit(BinOp(new, op, old, target_ty.pointee.size(), ty.ULONG, line=expr.line))
        elif target_ty.is_float:
            b.emit(BinOp(new, f"f{op}", old, 1.0, target_ty, line=expr.line))
        else:
            nsw = isinstance(target_ty, ty.IntType) and target_ty.signed
            b.emit(BinOp(new, op, old, delta, target_ty, nsw=nsw, line=expr.line))
        b.emit(Store(addr, new, target_ty, line=expr.line))
        return old if expr.op.startswith("p") else new

    def _lower_binary(self, expr: ast.Binary) -> Operand:
        b = self._builder
        assert b is not None
        op = expr.op
        if op == ",":
            self._lower_expr(expr.lhs)
            return self._lower_expr(expr.rhs)
        if op in ("&&", "||"):
            return self._lower_logical(expr)
        if op in _CMP_BY_OP:
            return self._lower_comparison(expr)
        lhs_ty = ty.decay(expr.lhs.ty or ty.INT)
        rhs_ty = ty.decay(expr.rhs.ty or ty.INT)
        # Pointer arithmetic.
        if op in ("+", "-") and (lhs_ty.is_pointer or rhs_ty.is_pointer):
            return self._lower_pointer_arith(expr, lhs_ty, rhs_ty)
        common = expr.ty or ty.usual_arithmetic_conversion(lhs_ty, rhs_ty)
        lhs = self._lower_value_as(expr.lhs, common)
        if op in ("<<", ">>"):
            rhs = self._lower_value_as(expr.rhs, ty.INT)
        else:
            rhs = self._lower_value_as(expr.rhs, common)
        dst = b.new_reg()
        if common.is_float:
            opcode = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}[op]
            b.emit(BinOp(dst, opcode, lhs, rhs, common, line=expr.line))
            return dst
        assert isinstance(common, ty.IntType)
        if op == "/":
            opcode = "sdiv" if common.signed else "udiv"
        elif op == "%":
            opcode = "srem" if common.signed else "urem"
        elif op == ">>":
            opcode = "ashr" if common.signed else "lshr"
        else:
            opcode = _ARITH_BY_OP[op]
        nsw = common.signed and opcode in ("add", "sub", "mul")
        b.emit(BinOp(dst, opcode, lhs, rhs, common, nsw=nsw, line=expr.line))
        return dst

    def _lower_pointer_arith(
        self, expr: ast.Binary, lhs_ty: ty.Type, rhs_ty: ty.Type
    ) -> Operand:
        b = self._builder
        assert b is not None
        op = expr.op
        if lhs_ty.is_pointer and rhs_ty.is_pointer:
            # Pointer difference in elements (UB across objects: the raw
            # value simply reflects the implementation's layout — CWE-469).
            assert isinstance(lhs_ty, ty.PointerType)
            lhs = self._lower_expr(expr.lhs)
            rhs = self._lower_expr(expr.rhs)
            diff = b.new_reg()
            b.emit(BinOp(diff, "sub", lhs, rhs, ty.LONG, line=expr.line))
            size = max(lhs_ty.pointee.size(), 1)
            if size == 1:
                return diff
            dst = b.new_reg()
            b.emit(BinOp(dst, "sdiv", diff, size, ty.LONG, line=expr.line))
            return dst
        if lhs_ty.is_pointer:
            pointer_expr, integer_expr, pointer_ty = expr.lhs, expr.rhs, lhs_ty
        else:
            pointer_expr, integer_expr, pointer_ty = expr.rhs, expr.lhs, rhs_ty
        assert isinstance(pointer_ty, ty.PointerType)
        pointer = self._lower_expr(pointer_expr)
        index = self._lower_value_as(integer_expr, ty.LONG)
        scaled = b.new_reg()
        b.emit(
            BinOp(scaled, "mul", index, max(pointer_ty.pointee.size(), 1), ty.LONG, line=expr.line)
        )
        dst = b.new_reg()
        opcode = "add" if op == "+" else "sub"
        b.emit(BinOp(dst, opcode, pointer, scaled, ty.ULONG, line=expr.line))
        return dst

    def _lower_logical(self, expr: ast.Binary) -> Operand:
        b = self._builder
        assert b is not None
        result = b.new_reg()
        rhs_label = b.new_block("logic.rhs")
        end_label = b.new_block("logic.end")
        short_label = b.new_block("logic.short")
        cond = self._lower_condition(expr.lhs)
        if expr.op == "&&":
            b.branch(cond, rhs_label, short_label, line=expr.line)
            short_value = 0
        else:
            b.branch(cond, short_label, rhs_label, line=expr.line)
            short_value = 1
        b.switch_to(short_label)
        b.emit(Move(result, short_value, ty.INT, line=expr.line))
        b.jump(end_label)
        b.switch_to(rhs_label)
        rhs_cond = self._lower_condition(expr.rhs)
        b.emit(Move(result, rhs_cond, ty.INT, line=expr.line))
        b.jump(end_label)
        b.switch_to(end_label)
        return result

    def _lower_comparison(self, expr: ast.Binary) -> Operand:
        b = self._builder
        assert b is not None
        folded = self._fold_ub_guard(expr)
        if folded is not None:
            return folded
        lhs_ty = ty.decay(expr.lhs.ty or ty.INT)
        rhs_ty = ty.decay(expr.rhs.ty or ty.INT)
        self._collect_magic(expr)
        if lhs_ty.is_pointer or rhs_ty.is_pointer:
            # Pointer comparison: raw addresses, unsigned.  Across distinct
            # objects this is UB and the result is pure layout accident
            # (Listing 2).
            lhs = self._lower_expr(expr.lhs)
            rhs = self._lower_expr(expr.rhs)
            dst = b.new_reg()
            base = _CMP_BY_OP[expr.op]
            opcode = base if base in ("eq", "ne") else f"u{base}"
            b.emit(BinOp(dst, opcode, lhs, rhs, ty.ULONG, line=expr.line))
            return dst
        common = ty.usual_arithmetic_conversion(lhs_ty, rhs_ty)
        lhs = self._lower_value_as(expr.lhs, common)
        rhs = self._lower_value_as(expr.rhs, common)
        dst = b.new_reg()
        base = _CMP_BY_OP[expr.op]
        if common.is_float:
            b.emit(BinOp(dst, f"f{base}", lhs, rhs, common, line=expr.line))
            return dst
        assert isinstance(common, ty.IntType)
        if base in ("eq", "ne"):
            opcode = base
        else:
            opcode = ("s" if common.signed else "u") + base
        b.emit(BinOp(dst, opcode, lhs, rhs, common, line=expr.line))
        return dst

    def _collect_magic(self, expr: ast.Binary) -> None:
        for side in (expr.lhs, expr.rhs):
            if isinstance(side, (ast.IntLit, ast.CharLit)) and side.value not in (0, 1):
                self.module.magic_constants.append(int(side.value))

    def _fold_ub_guard(self, expr: ast.Binary) -> Operand | None:
        """UB-exploiting overflow-guard folding (instcombine style).

        ``a + b OP a`` with signed operands is rewritten to ``b OP 0`` —
        exactly the transformation that deletes Listing 1's wraparound
        check — and ``p + i OP p`` with unsigned ``i`` folds to a constant
        under the no-pointer-overflow assumption.  Only active when the
        configuration exploits UB (O1 and above) and the build's pass
        budget has not cut the lowering-stage application off.
        """
        if not self._ub_guard_enabled:
            return None
        if expr.op not in ("<", "<=", ">", ">="):
            return None
        lhs, rhs = expr.lhs, expr.rhs
        for add_side, other, flip in ((lhs, rhs, False), (rhs, lhs, True)):
            if not isinstance(add_side, ast.Binary) or add_side.op not in ("+", "-"):
                continue
            add_ty = ty.decay(add_side.ty or ty.INT)
            other_ty = ty.decay(other.ty or ty.INT)
            # Signed integer overflow guard: a + b OP a.
            if (
                isinstance(add_ty, ty.IntType)
                and add_ty.signed
                and isinstance(other_ty, ty.IntType)
            ):
                remainder = self._match_add_guard(add_side, other)
                if remainder is not None:
                    op = expr.op if not flip else _flip_op(expr.op)
                    if add_side.op == "-":
                        op = _flip_op(op)
                    # a + b OP a  ==>  b OP 0 ; a - b OP a ==> 0 OP b.
                    b = self._builder
                    assert b is not None
                    value = self._lower_value_as(remainder, add_ty)
                    dst = b.new_reg()
                    opcode = "s" + _CMP_BY_OP[op]
                    b.emit(BinOp(dst, opcode, value, 0, add_ty, line=expr.line))
                    self._note_guard_fold()
                    return dst
            # Pointer overflow guard: p + i OP p with unsigned i.
            if add_ty.is_pointer and other_ty.is_pointer and add_side.op == "+":
                remainder = self._match_add_guard(add_side, other)
                if remainder is not None:
                    rem_ty = ty.decay(remainder.ty or ty.INT)
                    if isinstance(rem_ty, ty.IntType) and not rem_ty.signed:
                        op = expr.op if not flip else _flip_op(expr.op)
                        # i >= 0 and no wrap: p+i < p is false, p+i >= p true.
                        self._lower_expr(remainder)  # keep side effects
                        self._note_guard_fold()
                        return 1 if op in (">=", ">") else 0
        return None

    def _note_guard_fold(self) -> None:
        """Count one guard fold on the scheduled lowering application."""
        if self._ub_guard_application is not None:
            self._ub_guard_application.changed += 1

    def _match_add_guard(self, add: ast.Binary, other: ast.Expr) -> ast.Expr | None:
        """If ``add`` is ``X + Y`` (or ``X - Y``) and ``other`` equals X,
        return Y; for ``+``, also match Y and return X."""
        if _pure_equal(add.lhs, other):
            return add.rhs
        if add.op == "+" and _pure_equal(add.rhs, other):
            return add.lhs
        return None

    def _lower_assign(self, expr: ast.Assign) -> Operand:
        b = self._builder
        assert b is not None
        target_ty = ty.decay(expr.target.ty or ty.INT)
        addr = self._lower_addr(expr.target)
        if expr.op == "=":
            if isinstance(expr.target.ty, ty.StructType):
                src = self._lower_expr(expr.value)
                b.emit(
                    CallBuiltin(
                        None,
                        "memcpy",
                        [addr, src, expr.target.ty.size()],
                        [ty.PointerType(ty.CHAR), ty.PointerType(ty.CHAR), ty.LONG],
                        line=expr.line,
                    )
                )
                return addr
            value = self._lower_value_as(expr.value, target_ty)
            b.emit(Store(addr, value, target_ty, line=expr.line))
            return value
        # Compound assignment: load, compute, store.
        old = b.new_reg()
        b.emit(Load(old, addr, target_ty, line=expr.line))
        base_op = expr.op[:-1]
        if isinstance(target_ty, ty.PointerType) and base_op in ("+", "-"):
            index = self._lower_value_as(expr.value, ty.LONG)
            scaled = b.new_reg()
            b.emit(
                BinOp(scaled, "mul", index, max(target_ty.pointee.size(), 1), ty.LONG, line=expr.line)
            )
            new = b.new_reg()
            b.emit(
                BinOp(new, "add" if base_op == "+" else "sub", old, scaled, ty.ULONG, line=expr.line)
            )
            b.emit(Store(addr, new, target_ty, line=expr.line))
            return new
        value = self._lower_value_as(expr.value, target_ty)
        new = b.new_reg()
        if target_ty.is_float:
            opcode = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}[base_op]
            b.emit(BinOp(new, opcode, old, value, target_ty, line=expr.line))
        else:
            assert isinstance(target_ty, ty.IntType)
            if base_op == "/":
                opcode = "sdiv" if target_ty.signed else "udiv"
            elif base_op == "%":
                opcode = "srem" if target_ty.signed else "urem"
            elif base_op == ">>":
                opcode = "ashr" if target_ty.signed else "lshr"
            else:
                opcode = _ARITH_BY_OP[base_op]
            nsw = target_ty.signed and opcode in ("add", "sub", "mul")
            b.emit(BinOp(new, opcode, old, value, target_ty, nsw=nsw, line=expr.line))
        b.emit(Store(addr, new, target_ty, line=expr.line))
        return new

    def _lower_conditional(self, expr: ast.Conditional) -> Operand:
        b = self._builder
        assert b is not None
        result = b.new_reg()
        result_ty = expr.ty or ty.INT
        then_label = b.new_block("cond.then")
        else_label = b.new_block("cond.else")
        end_label = b.new_block("cond.end")
        cond = self._lower_condition(expr.cond)
        b.branch(cond, then_label, else_label, line=expr.line)
        b.switch_to(then_label)
        then_value = self._lower_value_as(expr.then, result_ty)
        b.emit(Move(result, then_value, result_ty, line=expr.line))
        b.jump(end_label)
        b.switch_to(else_label)
        else_value = self._lower_value_as(expr.otherwise, result_ty)
        b.emit(Move(result, else_value, result_ty, line=expr.line))
        b.jump(end_label)
        b.switch_to(end_label)
        return result

    # -- calls ---------------------------------------------------------------

    def _lower_call(self, expr: ast.Call) -> Operand:
        b = self._builder
        assert b is not None
        assert isinstance(expr.func, ast.Ident)
        name = expr.func.name
        symbol = expr.func.symbol
        # Argument evaluation order is UNSPECIFIED in C; this is the
        # Listing-3 divergence point.  We evaluate side effects in the
        # configured direction, then pass values positionally.
        order = range(len(expr.args))
        if not self.config.args_left_to_right:
            order = reversed(order)
        values: dict[int, Operand] = {}
        is_builtin = symbol is not None and symbol.kind == "builtin"
        param_types = self._call_param_types(name, symbol, expr)
        for i in list(order):
            arg = expr.args[i]
            expected = param_types[i] if i < len(param_types) else None
            if expected is None:
                # Varargs: apply C default argument promotions.
                arg_ty = ty.decay(arg.ty or ty.INT)
                if isinstance(arg_ty, ty.IntType) and arg_ty.bits < 32:
                    expected = ty.INT
                elif arg_ty == ty.FLOAT:
                    expected = ty.DOUBLE
                else:
                    expected = arg_ty
            values[i] = self._lower_value_as(arg, expected)
        args = [values[i] for i in range(len(expr.args))]
        if name == "__bugsite":
            site = expr.args[0]
            assert isinstance(site, ast.IntLit)
            b.emit(BugSite(site.value, line=expr.line))
            self.module.bug_sites.append(site.value)
            return 0
        if is_builtin:
            if name in ("strcmp", "strncmp"):
                for arg in expr.args:
                    if isinstance(arg, ast.StrLit):
                        self.module.magic_strings.append(arg.value.encode("latin-1"))
            ret_ty = BUILTIN_SIGNATURES[name][0]
            dst = b.new_reg() if not ret_ty.is_void else None
            arg_types = [
                param_types[i]
                if i < len(param_types) and param_types[i] is not None
                else _promoted_ty(expr.args[i])
                for i in range(len(expr.args))
            ]
            b.emit(CallBuiltin(dst, name, args, arg_types, line=expr.line))
            return dst if dst is not None else 0
        ret_ty = self._func_ret_types.get(name, ty.INT)
        dst = b.new_reg() if not ret_ty.is_void else None
        b.emit(Call(dst, name, args, line=expr.line))
        return dst if dst is not None else 0

    def _call_param_types(
        self, name: str, symbol, expr: ast.Call
    ) -> list[ty.Type | None]:
        func_ty = symbol.type if symbol is not None else None
        if not isinstance(func_ty, ty.FunctionType):
            return [None] * len(expr.args)
        result: list[ty.Type | None] = []
        for i in range(len(expr.args)):
            if i < len(func_ty.params):
                result.append(ty.decay(func_ty.params[i]))
            else:
                result.append(None)
        return result


# -------------------------------------------------------------------- helpers


def _is_array_init(call: ast.Call) -> bool:
    return isinstance(call.func, ast.Ident) and call.func.name == "__array_init"


def _is_int32(t: ty.Type | None) -> bool:
    return isinstance(t, ty.IntType) and t.bits == 32 and t.signed


def _flip_op(op: str) -> str:
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]


def _promoted_ty(arg: ast.Expr) -> ty.Type:
    arg_ty = ty.decay(arg.ty or ty.INT)
    if isinstance(arg_ty, ty.IntType) and arg_ty.bits < 32:
        return ty.INT
    if arg_ty == ty.FLOAT:
        return ty.DOUBLE
    return arg_ty


def _is_pure(expr: ast.Expr) -> bool:
    if isinstance(expr, (ast.IntLit, ast.CharLit, ast.FloatLit, ast.NullLit, ast.Ident)):
        return True
    if isinstance(expr, ast.Member):
        return _is_pure(expr.base)
    if isinstance(expr, ast.Index):
        return _is_pure(expr.base) and _is_pure(expr.index)
    if isinstance(expr, ast.Unary) and expr.op in ("-", "~", "!", "*", "&"):
        return _is_pure(expr.operand)
    if isinstance(expr, ast.Cast):
        return _is_pure(expr.operand)
    if isinstance(expr, ast.Binary) and expr.op not in ("&&", "||", ","):
        return _is_pure(expr.lhs) and _is_pure(expr.rhs)
    return False


def _pure_equal(a: ast.Expr, b: ast.Expr) -> bool:
    """Structural equality of two side-effect-free expressions."""
    if not (_is_pure(a) and _is_pure(b)):
        return False
    if type(a) is not type(b):
        return False
    if isinstance(a, ast.Ident):
        return a.symbol is b.symbol
    if isinstance(a, (ast.IntLit, ast.CharLit)):
        return a.value == b.value
    if isinstance(a, ast.FloatLit):
        return a.value == b.value
    if isinstance(a, ast.NullLit):
        return True
    if isinstance(a, ast.Member):
        return a.name == b.name and a.arrow == b.arrow and _pure_equal(a.base, b.base)
    if isinstance(a, ast.Index):
        return _pure_equal(a.base, b.base) and _pure_equal(a.index, b.index)
    if isinstance(a, ast.Unary):
        return a.op == b.op and _pure_equal(a.operand, b.operand)
    if isinstance(a, ast.Cast):
        return a.target_type == b.target_type and _pure_equal(a.operand, b.operand)
    if isinstance(a, ast.Binary):
        return a.op == b.op and _pure_equal(a.lhs, b.lhs) and _pure_equal(a.rhs, b.rhs)
    return False


def _pack_scalar(value, var_type: ty.Type) -> bytes:
    if isinstance(var_type, ty.FloatType):
        fmt = "<f" if var_type.bits == 32 else "<d"
        return struct.pack(fmt, float(value))
    if isinstance(var_type, ty.PointerType):
        return int(value).to_bytes(8, "little", signed=False)
    assert isinstance(var_type, ty.IntType)
    wrapped = var_type.wrap(int(value))
    return (wrapped & ((1 << var_type.bits) - 1)).to_bytes(var_type.size(), "little")


def lower_program(
    program: ast.Program, config: CompilerConfig, name: str = "", budget=None
) -> Module:
    """Lower a checked MiniC *program* to an IR module for *config*.

    *budget* (a :class:`~repro.compiler.passes.manager.PassBudget`)
    schedules the lowering-stage UB exploitation as a budgeted pass
    application; without one, guard folding follows ``config.exploit_ub``
    unconditionally.
    """
    return Lowerer(program, config, name=name, budget=budget).run()
