"""IR optimization passes.

Passes come in two moral categories:

* *Semantics-preserving* for defined behavior (copy propagation, constant
  folding, algebraic simplification, strength reduction, inlining, dead
  code elimination) — though several are only sound **because** C declares
  certain behaviors undefined (removing an unused division assumes the
  division cannot trap on defined inputs it was given; constant-folding an
  oversized shift picks one of many possible hardware results).
* *UB-exploiting* (:mod:`repro.compiler.passes.ub_exploit`): transforms
  that are only justified by the assumption that undefined behavior never
  happens — null-dereference elision and poisoned constant division.

Seeded miscompilation patterns (RQ2's compiler bugs) live in
:mod:`repro.compiler.passes.constant_fold` behind explicit pattern ids.
"""

from repro.compiler.passes.pipeline import optimize

__all__ = ["optimize"]
