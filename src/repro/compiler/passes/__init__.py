"""IR optimization passes.

Passes come in two moral categories:

* *Semantics-preserving* for defined behavior (copy propagation, constant
  folding, algebraic simplification, strength reduction, inlining, dead
  code elimination) — though several are only sound **because** C declares
  certain behaviors undefined (removing an unused division assumes the
  division cannot trap on defined inputs it was given; constant-folding an
  oversized shift picks one of many possible hardware results).
* *UB-exploiting* (:mod:`repro.compiler.passes.ub_exploit`): transforms
  that are only justified by the assumption that undefined behavior never
  happens — null-dereference elision and poisoned constant division.

Seeded miscompilation patterns (RQ2's compiler bugs) live in
:mod:`repro.compiler.passes.constant_fold` behind explicit pattern ids.

Passes are registered with the declarative pass manager
(:mod:`repro.compiler.passes.manager`): each is a :class:`Pass` object,
each config maps to a :class:`Pipeline` with a stable cache digest, and
the :class:`PassManager` instruments every application (per-pass wall
time, change counts, optional IR verification, and the
``max_pass_applications`` cutoff that powers divergence pass-bisection).
See docs/PASSES.md for the full inventory and pipeline shapes.
"""

from repro.compiler.passes.manager import (
    ALL_PASSES,
    FixpointGroup,
    Pass,
    PassApplication,
    PassBudget,
    PassManager,
    Pipeline,
    PipelineReport,
    pipeline_digest,
    pipeline_for,
    run_pipeline,
)
from repro.compiler.passes.pipeline import optimize

__all__ = [
    "ALL_PASSES",
    "FixpointGroup",
    "Pass",
    "PassApplication",
    "PassBudget",
    "PassManager",
    "Pipeline",
    "PipelineReport",
    "optimize",
    "pipeline_digest",
    "pipeline_for",
    "run_pipeline",
]
