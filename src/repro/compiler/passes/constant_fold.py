"""Constant folding, including compile-time UB resolution and seeded bugs.

Two deliberate behaviors matter for the reproduction:

* **Oversized shifts** are folded *mathematically* (count >= width gives 0
  or the sign fill), while the VM executes shifts with an x86-style masked
  count.  Both are legal resolutions of the same UB, so a constant
  ``1 << 40`` diverges between folding and non-folding implementations —
  the CWE-758 mechanism.
* **Seeded miscompilations** (RQ2): three instcombine-style rewrites that
  are *wrong on defined behavior*, each enabled only in specific
  implementations via ``CompilerConfig.miscompile_patterns``:

  - ``ushl_ushr_elide``: folds ``(x << C) >> C`` (unsigned, logical) to
    ``x``, dropping the required high-bit clearing;
  - ``sext_shift_pair``: folds ``(x << 24) >> 24`` (signed, arithmetic) to
    ``x & 0xff``, dropping sign extension;
  - ``srem_to_mask``: folds ``x % 8`` (signed) to ``x & 7``, wrong for
    negative ``x``.
"""

from __future__ import annotations

import struct

from repro.ir.instructions import BinOp, Branch, Cast, Const, Instr, Jump, Reg, UnOp
from repro.ir.module import Function
from repro.minic.types import FloatType, IntType
from repro.compiler.implementations import CompilerConfig


def const_fold(func: Function, config: CompilerConfig) -> int:
    """Fold constant instructions in place; returns the number folded."""
    changed = 0
    for block in func.blocks.values():
        defs: dict[Reg, Instr] = {}
        new_instrs: list[Instr] = []
        for instr in block.instrs:
            replacement = _try_fold(instr, defs, config)
            if replacement is not None:
                instr = replacement
                changed += 1
            dst = instr.defines()
            if dst is not None:
                defs[dst] = instr
            new_instrs.append(instr)
        block.instrs = new_instrs
        # Fold branches on constant conditions into jumps (looking through
        # a Const-defined register so folding converges within one round).
        term = block.terminator
        if isinstance(term, Branch):
            cond = term.cond
            if isinstance(cond, Reg):
                cond_def = defs.get(cond)
                if isinstance(cond_def, Const):
                    cond = cond_def.value
            if isinstance(cond, (int, float)):
                target = term.if_true if cond else term.if_false
                block.instrs[-1] = Jump(target, line=term.line)
                changed += 1
    return changed


def _resolve(operand, defs: dict[Reg, Instr]):
    """Look through a Const-defined register (block-local, in program
    order, so the most recent definition is the visible one)."""
    if isinstance(operand, Reg):
        definition = defs.get(operand)
        if isinstance(definition, Const):
            return definition.value
    return operand


def _try_fold(instr: Instr, defs: dict[Reg, Instr], config: CompilerConfig) -> Instr | None:
    if isinstance(instr, BinOp):
        folded = _fold_binop(instr, defs)
        if folded is not None:
            return folded
        return _try_miscompile(instr, defs, config)
    if isinstance(instr, UnOp):
        src = _resolve(instr.src, defs)
        if isinstance(src, (int, float)):
            return _fold_unop(instr, src)
    if isinstance(instr, Cast):
        src = _resolve(instr.src, defs)
        if isinstance(src, (int, float)):
            return Const(instr.dst, _fold_cast(instr, src), instr.to_type, line=instr.line)
    return None


def _fold_binop(instr: BinOp, defs: dict[Reg, Instr]) -> Const | None:
    lhs = _resolve(instr.lhs, defs)
    rhs = _resolve(instr.rhs, defs)
    if not isinstance(lhs, (int, float)) or not isinstance(rhs, (int, float)):
        return None
    op = instr.op
    itype = instr.type if isinstance(instr.type, IntType) else None
    try:
        if op == "add":
            value = lhs + rhs
        elif op == "sub":
            value = lhs - rhs
        elif op == "mul":
            value = lhs * rhs
        elif op in ("sdiv", "udiv", "srem", "urem"):
            if rhs == 0 or itype is None:
                return None  # handled by ub_exploit / left for runtime trap
            if op[0] == "u":
                mask = (1 << itype.bits) - 1
                a, d = int(lhs) & mask, int(rhs) & mask
                value = a // d if op == "udiv" else a % d
            else:
                a, d = itype.wrap(int(lhs)), itype.wrap(int(rhs))
                quotient = abs(a) // abs(d) * (1 if (a >= 0) == (d >= 0) else -1)
                value = quotient if op == "sdiv" else a - quotient * d
        elif op == "shl":
            # Mathematical fold: no count masking (UB resolved differently
            # than the runtime's x86-style masked shift).
            value = lhs << rhs if 0 <= rhs < 256 else 0
        elif op == "lshr":
            assert itype is not None
            unsigned = lhs & ((1 << itype.bits) - 1)
            value = unsigned >> rhs if 0 <= rhs < 256 else 0
        elif op == "ashr":
            value = lhs >> rhs if 0 <= rhs < 256 else (-1 if lhs < 0 else 0)
        elif op == "and":
            value = lhs & rhs
        elif op == "or":
            value = lhs | rhs
        elif op == "xor":
            value = lhs ^ rhs
        elif op in ("eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge"):
            value = _fold_icmp(op, int(lhs), int(rhs), instr.type)
        elif op in ("fadd", "fsub", "fmul", "fdiv"):
            # Double arithmetic folds exactly (same IEEE result as the
            # runtime); single-precision chains are left to the runtime
            # because their rounding is implementation-dependent here.
            if not (isinstance(instr.type, FloatType) and instr.type.bits == 64):
                return None
            a, d = float(lhs), float(rhs)
            if op == "fadd":
                value = a + d
            elif op == "fsub":
                value = a - d
            elif op == "fmul":
                value = a * d
            else:
                if d == 0.0:
                    return None
                value = a / d
            return Const(instr.dst, value, instr.type, line=instr.line)
        else:
            return None
    except TypeError:
        return None
    if op in ("eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge"):
        return Const(instr.dst, value, IntType(32, True), line=instr.line)
    if itype is None:
        return None
    return Const(instr.dst, itype.wrap(int(value)), itype, line=instr.line)


def _fold_icmp(op: str, lhs: int, rhs: int, itype) -> int:
    if isinstance(itype, IntType):
        if op.startswith("u"):
            mask = (1 << itype.bits) - 1
            lhs &= mask
            rhs &= mask
        else:
            lhs = itype.wrap(lhs)
            rhs = itype.wrap(rhs)
    base = op[1:] if op[0] in "su" else op
    table = {
        "eq": lhs == rhs,
        "ne": lhs != rhs,
        "lt": lhs < rhs,
        "le": lhs <= rhs,
        "gt": lhs > rhs,
        "ge": lhs >= rhs,
    }
    return int(table[base])


def _fold_unop(instr: UnOp, src) -> Const | None:
    if instr.op == "neg" and isinstance(instr.type, IntType):
        return Const(instr.dst, instr.type.wrap(-int(src)), instr.type, line=instr.line)
    if instr.op == "not" and isinstance(instr.type, IntType):
        return Const(instr.dst, instr.type.wrap(~int(src)), instr.type, line=instr.line)
    if instr.op == "fneg":
        return Const(instr.dst, -float(src), instr.type, line=instr.line)
    return None


def _fold_cast(instr: Cast, src):
    to_type = instr.to_type
    if isinstance(to_type, IntType):
        return to_type.wrap(int(src))
    if isinstance(to_type, FloatType):
        value = float(src)
        if to_type.bits == 32:
            value = struct.unpack("<f", struct.pack("<f", value))[0]
        return value
    return src


# ----------------------------------------------------------- miscompilations


def _try_miscompile(instr: BinOp, defs: dict[Reg, Instr], config: CompilerConfig) -> Instr | None:
    patterns = config.miscompile_patterns
    if not patterns:
        return None
    if "srem_to_mask" in patterns and instr.op == "srem" and instr.rhs == 8:
        # BUG: correct only for non-negative lhs.
        return BinOp(instr.dst, "and", instr.lhs, 7, instr.type, line=instr.line)
    if instr.op in ("lshr", "ashr") and isinstance(instr.lhs, Reg):
        shift_def = defs.get(instr.lhs)
        if (
            isinstance(shift_def, BinOp)
            and shift_def.op == "shl"
            and isinstance(instr.rhs, int)
            and shift_def.rhs == instr.rhs
            and shift_def.type == instr.type
        ):
            if "ushl_ushr_elide" in patterns and instr.op == "lshr":
                # BUG: drops clearing of the high bits shifted out.
                from repro.ir.instructions import Move

                return Move(instr.dst, shift_def.lhs, instr.type, line=instr.line)
            if "sext_shift_pair" in patterns and instr.op == "ashr" and instr.rhs == 24:
                # BUG: zero-extends the low byte instead of sign-extending.
                return BinOp(instr.dst, "and", shift_def.lhs, 0xFF, instr.type, line=instr.line)
    return None
