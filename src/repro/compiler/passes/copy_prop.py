"""Block-local copy and constant propagation."""

from __future__ import annotations

from repro.ir.instructions import Const, Instr, Move, Operand, Reg
from repro.ir.module import Function


def copy_prop(func: Function) -> int:
    """Forward-substitute Move/Const definitions within each block.

    Returns the number of substituted uses.  Propagation is block-local:
    registers are not in SSA form, so cross-block propagation would need
    dataflow analysis that this simulator does not require.
    """
    changed = 0
    for block in func.blocks.values():
        env: dict[Reg, Operand] = {}
        for instr in block.instrs:
            before = _snapshot(instr)
            mapping = {reg: env[reg] for reg in _reg_uses(instr) if reg in env}
            if mapping:
                instr.replace_uses(mapping)
                if _snapshot(instr) != before:
                    changed += 1
            dst = instr.defines()
            if dst is not None:
                # Any mapping built on the old value of dst is now stale.
                env = {
                    k: v for k, v in env.items() if k != dst and not (isinstance(v, Reg) and v == dst)
                }
                if isinstance(instr, Const):
                    env[dst] = instr.value
                elif isinstance(instr, Move) and not (
                    isinstance(instr.src, Reg) and instr.src == dst
                ):
                    env[dst] = instr.src
    return changed


def _reg_uses(instr: Instr) -> list[Reg]:
    return [u for u in instr.uses() if isinstance(u, Reg)]


def _snapshot(instr: Instr) -> tuple:
    return tuple(repr(u) for u in instr.uses())
