"""Dead code elimination.

Removes unreachable blocks and pure instructions whose results are never
used.  Divisions are treated as removable even though they can trap:
division by zero is UB, so a compiler may assume the operation cannot fault
and delete it when its result is dead — which is precisely why an unused
``x / y`` crashes a -O0 binary but vanishes from a -O2 binary (the
divide-by-zero rows of Table 3).
"""

from __future__ import annotations

from repro.ir.cfg import remove_unreachable
from repro.ir.instructions import (
    AddrGlobal,
    AddrSlot,
    BinOp,
    Cast,
    Const,
    Instr,
    Load,
    Move,
    Reg,
    UnOp,
)
from repro.ir.module import Function

_PURE = (Const, Move, BinOp, UnOp, Cast, Load, AddrSlot, AddrGlobal)


def dce(func: Function) -> int:
    """Delete dead instructions and unreachable blocks; returns removals."""
    from repro.compiler.passes.mem_forward import eliminate_dead_stores

    removed = remove_unreachable(func)
    removed += eliminate_dead_stores(func)
    # Iterate to a fixpoint: removing one dead instruction can make the
    # operands of another dead.
    while True:
        live = _live_registers(func)
        round_removed = 0
        for block in func.blocks.values():
            kept: list[Instr] = []
            for instr in block.instrs:
                dst = instr.defines()
                if isinstance(instr, _PURE) and dst is not None and dst not in live:
                    round_removed += 1
                    continue
                kept.append(instr)
            block.instrs = kept
        removed += round_removed
        if round_removed == 0:
            return removed


def _live_registers(func: Function) -> set[Reg]:
    """Registers used by any instruction that must be kept.

    Because registers are single-assignment *per lowering site* but not
    SSA, we conservatively mark every use anywhere as live.
    """
    live: set[Reg] = set()
    for block in func.blocks.values():
        for instr in block.instrs:
            effectful = not isinstance(instr, _PURE)
            for operand in instr.uses():
                if isinstance(operand, Reg):
                    if effectful:
                        live.add(operand)
    # Propagate liveness backwards through pure def-use chains until stable.
    changed = True
    while changed:
        changed = False
        for block in func.blocks.values():
            for instr in block.instrs:
                dst = instr.defines()
                if dst is not None and dst in live:
                    for operand in instr.uses():
                        if isinstance(operand, Reg) and operand not in live:
                            live.add(operand)
                            changed = True
    return live
