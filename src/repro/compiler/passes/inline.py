"""Function inlining for small leaf functions (-O2 and above).

Inlining merges the callee's frame slots into the caller's frame, which is
exactly how real inlining changes which object a stack overflow corrupts —
another source of cross-implementation divergence for MemError unstable
code (§4.3).
"""

from __future__ import annotations

import dataclasses

from repro.ir.instructions import (
    AddrSlot,
    Call,
    Instr,
    Jump,
    Move,
    Operand,
    Reg,
    Ret,
)
from repro.ir.module import BasicBlock, FrameSlot, Function, Module
from repro.minic.types import INT, IntType
from repro.compiler.implementations import CompilerConfig

#: Callees above this instruction count are never inlined.
MAX_INLINE_INSTRS = 40
#: Cap on inline expansions per caller (termination/code-size guard).
MAX_INLINES_PER_CALLER = 24


def inline_small(module: Module, config: CompilerConfig) -> int:
    """Inline small leaf callees into their callers; returns the count."""
    candidates = {
        name: func
        for name, func in module.functions.items()
        if name != "main" and _is_leaf(func) and _instr_count(func) <= MAX_INLINE_INSTRS
    }
    total = 0
    for name, func in module.functions.items():
        if name in candidates:
            continue  # keep candidates pristine while cloning from them
        total += _inline_into(func, candidates, config)
    return total


def _is_leaf(func: Function) -> bool:
    return not any(isinstance(instr, Call) for instr in func.instructions())


def _instr_count(func: Function) -> int:
    return sum(len(block.instrs) for block in func.blocks.values())


def _inline_into(caller: Function, candidates: dict[str, Function], config: CompilerConfig) -> int:
    inlined = 0
    worklist = list(caller.blocks.keys())
    while worklist and inlined < MAX_INLINES_PER_CALLER:
        label = worklist.pop(0)
        block = caller.blocks.get(label)
        if block is None:
            continue
        for i, instr in enumerate(block.instrs):
            if isinstance(instr, Call) and instr.callee in candidates:
                cont_label = _expand(caller, block, i, candidates[instr.callee], config, inlined)
                inlined += 1
                worklist.append(cont_label)
                break
    return inlined


def _expand(
    caller: Function,
    block: BasicBlock,
    call_index: int,
    callee: Function,
    config: CompilerConfig,
    serial: int,
) -> str:
    call = block.instrs[call_index]
    assert isinstance(call, Call)
    prefix = f"inl{serial}.{callee.name}"
    reg_offset = caller.num_regs
    caller.num_regs += callee.num_regs
    slot_offset = len(caller.slots)
    for slot in callee.slots:
        caller.slots.append(
            FrameSlot(
                name=f"{prefix}.{slot.name}",
                size=slot.size,
                align=slot.align,
                index=len(caller.slots),
                line=slot.line,
                is_buffer=slot.is_buffer,
            )
        )
    label_map = {old: f"{prefix}.{old}" for old in callee.blocks}
    cont_label = f"{prefix}.cont"
    # Continuation block takes everything after the call.
    cont_block = BasicBlock(cont_label, block.instrs[call_index + 1 :])
    # The call site becomes: argument moves + jump into the inlined entry.
    head = block.instrs[:call_index]
    for param_index, (_, param_type) in enumerate(callee.params):
        if param_index < len(call.args):
            value: Operand = call.args[param_index]
        else:
            # CWE-685: the callee reads whatever the "register" holds.
            garbage = config.missing_arg_value
            if isinstance(param_type, IntType):
                garbage = param_type.wrap(garbage)
            value = garbage
        head.append(Move(Reg(reg_offset + param_index), value, param_type, line=call.line))
    head.append(Jump(label_map[callee.entry], line=call.line))
    block.instrs = head
    # Clone the callee body.
    for old_label, callee_block in callee.blocks.items():
        new_instrs: list[Instr] = []
        for instr in callee_block.instrs:
            new_instrs.extend(
                _clone_instr(instr, reg_offset, slot_offset, label_map, call, cont_label)
            )
        caller.blocks[label_map[old_label]] = BasicBlock(label_map[old_label], new_instrs)
    caller.blocks[cont_label] = cont_block
    return cont_label


def _remap_operand(operand: Operand, reg_offset: int) -> Operand:
    if isinstance(operand, Reg):
        return Reg(operand.id + reg_offset)
    return operand


def _clone_instr(
    instr: Instr,
    reg_offset: int,
    slot_offset: int,
    label_map: dict[str, str],
    call: Call,
    cont_label: str,
) -> list[Instr]:
    if isinstance(instr, Ret):
        out: list[Instr] = []
        if call.dst is not None:
            value = 0 if instr.value is None else _remap_operand(instr.value, reg_offset)
            out.append(Move(call.dst, value, INT, line=instr.line))
        out.append(Jump(cont_label, line=instr.line))
        return out
    clone = dataclasses.replace(instr)
    for field_name in ("dst", "src", "lhs", "rhs", "addr", "cond", "value"):
        if hasattr(clone, field_name):
            current = getattr(clone, field_name)
            if isinstance(current, Reg):
                setattr(clone, field_name, Reg(current.id + reg_offset))
    if hasattr(clone, "args"):
        clone.args = [_remap_operand(a, reg_offset) for a in clone.args]
    if isinstance(clone, AddrSlot):
        clone.slot += slot_offset
    if isinstance(clone, Jump):
        clone.target = label_map[clone.target]
    if hasattr(clone, "if_true"):
        clone.if_true = label_map[clone.if_true]
        clone.if_false = label_map[clone.if_false]
    return [clone]
