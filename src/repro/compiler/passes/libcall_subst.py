"""Libcall substitution: clang -O3 style ``pow(2, x) -> exp2(x)``.

Real clang's SimplifyLibCalls rewrites ``pow(2.0, x)`` into ``exp2(x)``
at -O3 (paper §4.3 RQ2, floating point).  The two calls round
differently for some inputs on the simulated runtime, which is exactly
the cross-implementation float divergence the paper attributes to
libcall substitution.

The base can reach the call in two shapes:

* the literal ``2.0`` (source ``pow(2.0, x)``), possibly forwarded into
  the argument slot by copy propagation; or
* an **integer-typed** constant ``2`` that lowering produced for a float
  context (source ``pow(2, x)`` lowers to ``cast 2 : int -> double``
  feeding the call).  Pipelines that run constant folding first collapse
  the cast, but the substitution must not depend on another pass having
  run — a config with ``float_pow_to_exp2`` alone still matches.
"""

from __future__ import annotations

from repro.ir.instructions import CallBuiltin, Cast, Const, Instr, Reg
from repro.ir.module import Function
from repro.minic.types import FloatType


def pow_to_exp2(func: Function) -> int:
    """Rewrite ``pow(2, x)`` builtins to ``exp2(x)``; returns rewrites."""
    changed = 0
    for block in func.blocks.values():
        defs: dict[Reg, Instr] = {}
        for instr in block.instrs:
            if (
                isinstance(instr, CallBuiltin)
                and instr.name == "pow"
                and len(instr.args) == 2
                and _is_const_two(instr.args[0], defs)
            ):
                instr.name = "exp2"
                instr.args = [instr.args[1]]
                instr.arg_types = [instr.arg_types[1]]
                changed += 1
            dst = instr.defines()
            if dst is not None:
                defs[dst] = instr
    return changed


def _is_const_two(operand, defs: dict[Reg, Instr]) -> bool:
    """True when *operand* is a constant 2, literal or block-locally
    traceable through a lowering-produced int->float cast."""
    if isinstance(operand, Reg):
        definition = defs.get(operand)
        if isinstance(definition, Const):
            operand = definition.value
        elif (
            isinstance(definition, Cast)
            and isinstance(definition.to_type, FloatType)
            and isinstance(definition.src, (int, float))
        ):
            operand = definition.src
        else:
            return False
    if isinstance(operand, bool) or not isinstance(operand, (int, float)):
        return False
    return float(operand) == 2.0
