"""First-class pass manager: declarative pipelines, instrumentation, bisection.

The optimization layer used to be a hardcoded ``if config.X:`` chain with
a magic two-round loop.  This module replaces it with the architecture
real compilers use (and the paper's triage story needs):

* every transform is a registered :class:`Pass` — name, scope, version,
  and a ``run(target, config) -> changed_count`` callable;
* each :class:`~repro.compiler.implementations.CompilerConfig` maps to a
  *declarative* :class:`Pipeline` (:func:`pipeline_for`): an ordered list
  of passes and :class:`FixpointGroup`\\ s whose bounded, change-driven
  driver replaces the old fixed two rounds;
* every pipeline has a stable :meth:`Pipeline.digest` that the compile
  cache folds into artifact keys, so cached binaries invalidate whenever
  a pass version or pipeline shape changes;
* the :class:`PassManager` instruments every application — wall time,
  change count, optional per-pass IR verification (``REPRO_VERIFY_IR``)
  — and honors a ``max_pass_applications`` cutoff via :class:`PassBudget`;
* the cutoff is the substrate for **divergence pass-bisection**
  (:mod:`repro.core.bisect`): LLVM's ``-opt-bisect-limit`` idea, used to
  attribute a differential-oracle divergence to the first pass
  application that flips the program's output.

Scopes: ``function`` passes run once per function per application;
``module`` passes see the whole module; ``lowering`` passes are applied
*inside* :mod:`repro.compiler.lowering` (the source-level overflow-guard
folds of Listing 1) but still occupy one slot in the application
schedule so bisection can attribute divergences to them.
"""

from __future__ import annotations

import functools
import hashlib
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from repro.compiler.implementations import CompilerConfig
from repro.compiler.passes.constant_fold import const_fold
from repro.compiler.passes.copy_prop import copy_prop
from repro.compiler.passes.dce import dce
from repro.compiler.passes.inline import inline_small
from repro.compiler.passes.libcall_subst import pow_to_exp2
from repro.compiler.passes.mem_forward import store_forward
from repro.compiler.passes.merge_blocks import merge_blocks
from repro.compiler.passes.simplify import simplify
from repro.compiler.passes.strength_reduce import strength_reduce
from repro.compiler.passes.ub_exploit import exploit_ub
from repro.ir.module import Module

SCOPE_FUNCTION = "function"
SCOPE_MODULE = "module"
SCOPE_LOWERING = "lowering"

#: Bound on change-driven fixpoint rounds per function.  The old driver
#: hardcoded 2 rounds; real chains converge in 2-4.  Hitting this bound
#: is recorded on the report, never an error.
DEFAULT_MAX_ROUNDS = 8


@dataclass(frozen=True)
class Pass:
    """One registered IR transform.

    ``run`` takes ``(target, config)`` — a :class:`Function` for
    function-scope passes, a :class:`Module` for module scope — and
    returns the number of changes it made (0 = IR untouched, a contract
    the fixpoint driver relies on).  ``version`` participates in the
    pipeline digest: bump it whenever the pass's output can change, and
    every cached artifact built with the old behavior invalidates.
    """

    name: str
    run: Optional[Callable[..., int]] = None
    scope: str = SCOPE_FUNCTION
    version: int = 1
    description: str = ""

    def signature(self) -> str:
        return f"{self.name}@v{self.version}/{self.scope}"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class FixpointGroup:
    """Passes iterated together until a full round changes nothing."""

    passes: tuple[Pass, ...]
    max_rounds: int = DEFAULT_MAX_ROUNDS

    def signature(self) -> str:
        inner = ",".join(p.signature() for p in self.passes)
        return f"fixpoint(max_rounds={self.max_rounds})[{inner}]"


Step = Union[Pass, FixpointGroup]


# --------------------------------------------------------------- registry


PASS_STORE_FORWARD = Pass(
    "store_forward", lambda func, config: store_forward(func),
    description="store-to-load forwarding for non-escaping scalar slots",
)
PASS_COPY_PROP = Pass(
    "copy_prop", lambda func, config: copy_prop(func),
    description="block-local copy and constant propagation",
)
PASS_CONST_FOLD = Pass(
    "const_fold", const_fold,
    description="constant folding incl. compile-time UB resolution",
)
PASS_SIMPLIFY = Pass(
    "simplify", lambda func, config: simplify(func),
    description="algebraic peephole simplification",
)
PASS_MERGE_BLOCKS = Pass(
    "merge_blocks", lambda func, config: merge_blocks(func),
    description="merge single-predecessor jump chains",
)
PASS_EXPLOIT_UB = Pass(
    "exploit_ub", lambda func, config: exploit_ub(func),
    description="UB-exploiting folds: null-deref elision, poisoned division",
)
PASS_INLINE = Pass(
    "inline_small", inline_small, scope=SCOPE_MODULE,
    description="inline small leaf functions into callers",
)
PASS_STRENGTH_REDUCE = Pass(
    "strength_reduce", lambda func, config: strength_reduce(func),
    description="power-of-two multiply/divide to shifts",
)
PASS_POW_TO_EXP2 = Pass(
    "pow_to_exp2", lambda func, config: pow_to_exp2(func),
    description="libcall substitution pow(2, x) -> exp2(x)",
)
PASS_DCE = Pass(
    "dce", lambda func, config: dce(func),
    description="dead code elimination incl. unused trapping divisions",
)
#: Lowering-stage UB exploitation: the Listing-1 overflow-guard folds in
#: :meth:`repro.compiler.lowering.Lowerer._fold_ub_guard`.  Shares the
#: ``exploit_ub`` name so bisection attributes guard-fold divergences to
#: the UB-exploiting transform regardless of which stage applied it.
PASS_UB_GUARD_FOLD = Pass(
    "exploit_ub", scope=SCOPE_LOWERING,
    description="source-level nsw/pointer overflow-guard folding at lowering",
)

#: Full inventory, in canonical pipeline order (docs/PASSES.md).
ALL_PASSES: tuple[Pass, ...] = (
    PASS_UB_GUARD_FOLD,
    PASS_INLINE,
    PASS_STORE_FORWARD,
    PASS_COPY_PROP,
    PASS_CONST_FOLD,
    PASS_SIMPLIFY,
    PASS_MERGE_BLOCKS,
    PASS_EXPLOIT_UB,
    PASS_STRENGTH_REDUCE,
    PASS_POW_TO_EXP2,
    PASS_DCE,
)


# --------------------------------------------------------------- pipeline


@dataclass(frozen=True)
class Pipeline:
    """A declarative pass schedule for one compiler configuration."""

    name: str
    #: Lowering-stage passes (one schedule slot each, applied by the
    #: lowerer itself under budget control).
    prelude: tuple[Pass, ...] = ()
    steps: tuple[Step, ...] = ()

    def describe(self) -> str:
        """Canonical one-line-per-step description (digest input)."""
        lines = [f"pipeline:{self.name}"]
        for p in self.prelude:
            lines.append(f"  prelude:{p.signature()}")
        for step in self.steps:
            lines.append(f"  step:{step.signature()}")
        return "\n".join(lines)

    def digest(self) -> str:
        """Stable content hash of the pipeline shape and pass versions.

        Folded into compile-cache keys: reordering passes, changing a
        fixpoint bound, or bumping a pass version all produce a new
        digest, so stale artifacts can never be served.
        """
        return hashlib.sha256(self.describe().encode("utf-8")).hexdigest()

    def function_passes(self) -> list[Pass]:
        """Flat list of non-prelude passes, in schedule order."""
        out: list[Pass] = []
        for step in self.steps:
            if isinstance(step, FixpointGroup):
                out.extend(step.passes)
            else:
                out.append(step)
        return out


def _pipeline_for(config: CompilerConfig, max_fixpoint_rounds: int) -> Pipeline:
    prelude: list[Pass] = []
    if config.exploit_ub:
        prelude.append(PASS_UB_GUARD_FOLD)
    steps: list[Step] = []
    if config.inline_small:
        steps.append(PASS_INLINE)
    group: list[Pass] = []
    if config.copy_prop:
        group += [PASS_STORE_FORWARD, PASS_COPY_PROP]
    if config.const_fold:
        group += [PASS_CONST_FOLD, PASS_SIMPLIFY, PASS_MERGE_BLOCKS]
    if config.exploit_ub:
        group.append(PASS_EXPLOIT_UB)
    if group:
        steps.append(FixpointGroup(tuple(group), max_rounds=max_fixpoint_rounds))
    if config.strength_reduce:
        steps.append(PASS_STRENGTH_REDUCE)
    if config.float_pow_to_exp2:
        steps.append(PASS_POW_TO_EXP2)
    if config.dce:
        steps.append(PASS_DCE)
    return Pipeline(name=config.name, prelude=tuple(prelude), steps=tuple(steps))


@functools.lru_cache(maxsize=256)
def pipeline_for(
    config: CompilerConfig, max_fixpoint_rounds: int | None = None
) -> Pipeline:
    """The declarative pipeline selected by *config* (memoized).

    The shape mirrors a real -O pipeline: inline first (exposes constants
    across call boundaries), then a change-driven fixpoint of local
    cleanups, then the one-shot tail (strength reduction, libcall
    substitution, DCE last).

    ``max_fixpoint_rounds`` overrides the fixpoint group's round bound
    (default :data:`DEFAULT_MAX_ROUNDS`).  Passing ``2`` reproduces the
    historical hardcoded two-round schedule byte-for-byte — the
    ``tests/golden/ir_digests_tworound.json`` gate pins exactly that.
    The bound is part of the pipeline's :meth:`Pipeline.describe` text,
    so overriding it changes the digest (and hence compile-cache keys).
    """
    if max_fixpoint_rounds is None:
        max_fixpoint_rounds = DEFAULT_MAX_ROUNDS
    return _pipeline_for(config, max_fixpoint_rounds)


def pipeline_digest(config: CompilerConfig) -> str:
    """Digest of the pipeline *config* selects — the cache-key component."""
    return pipeline_for(config).digest()


# ----------------------------------------------------------- budget/schedule


@dataclass
class PassApplication:
    """One scheduled application of one pass to one target."""

    index: int
    pass_name: str
    scope: str
    target: str  # function name, "<module>", or "<lowering>"
    #: False when the ``max_pass_applications`` cutoff skipped this slot.
    applied: bool = True
    changed: int = 0
    seconds: float = 0.0
    #: 1-based fixpoint round for grouped passes, 0 for one-shot steps.
    round: int = 0

    def label(self) -> str:
        where = f" on {self.target}" if self.target else ""
        round_part = f" round {self.round}" if self.round else ""
        return f"#{self.index} {self.pass_name} ({self.scope}){where}{round_part}"


class PassBudget:
    """Shared application counter, schedule recorder, and cutoff.

    One budget spans a whole build — the lowering-stage prelude and every
    pipeline application — so ``max_applications=N`` reproduces exactly
    the first N applications of the unrestricted build (the prefix
    property divergence bisection depends on).
    """

    def __init__(self, max_applications: int | None = None) -> None:
        if max_applications is not None and max_applications < 0:
            raise ValueError("max_applications must be >= 0")
        self.max_applications = max_applications
        self.schedule: list[PassApplication] = []
        self.exhausted = False

    def begin(
        self, pass_: Pass, target: str, round: int = 0
    ) -> PassApplication | None:
        """Claim the next schedule slot for *pass_* on *target*.

        Returns the application record when the slot is within budget,
        or ``None`` (recording a skipped slot) once the cutoff is hit.
        """
        index = len(self.schedule)
        allowed = self.max_applications is None or index < self.max_applications
        application = PassApplication(
            index=index,
            pass_name=pass_.name,
            scope=pass_.scope,
            target=target,
            applied=allowed,
            round=round,
        )
        self.schedule.append(application)
        if not allowed:
            self.exhausted = True
            return None
        return application

    @property
    def applications(self) -> int:
        """Slots actually applied (skipped ones excluded)."""
        return sum(1 for app in self.schedule if app.applied)


# ----------------------------------------------------------------- report


@dataclass
class PipelineReport:
    """Instrumentation record of one build's pass schedule."""

    pipeline_name: str
    pipeline_digest: str
    schedule: list[PassApplication] = field(default_factory=list)
    #: True when a max_pass_applications cutoff skipped at least one slot.
    truncated: bool = False
    #: Functions whose fixpoint group hit DEFAULT_MAX_ROUNDS still changing.
    fixpoint_bound_hits: int = 0

    @property
    def total_seconds(self) -> float:
        return sum(app.seconds for app in self.schedule)

    @property
    def total_changes(self) -> int:
        return sum(app.changed for app in self.schedule)

    def per_pass(self) -> dict[str, dict]:
        """Aggregate ``{pass name: {applications, changes, seconds}}``."""
        out: dict[str, dict] = {}
        for app in self.schedule:
            if not app.applied:
                continue
            row = out.setdefault(
                app.pass_name, {"applications": 0, "changes": 0, "seconds": 0.0}
            )
            row["applications"] += 1
            row["changes"] += app.changed
            row["seconds"] += app.seconds
        return out

    def render(self) -> str:
        lines = [
            f"pipeline {self.pipeline_name} "
            f"({len(self.schedule)} applications, "
            f"{self.total_changes} changes, {1000 * self.total_seconds:.2f}ms)"
        ]
        for name, row in self.per_pass().items():
            lines.append(
                f"  {name:<16} x{row['applications']:<3} "
                f"changes={row['changes']:<5} {1000 * row['seconds']:.2f}ms"
            )
        if self.truncated:
            applied = sum(1 for app in self.schedule if app.applied)
            lines.append(f"  [truncated after {applied} applications]")
        return "\n".join(lines)


# ----------------------------------------------------------------- manager


def _verify_enabled() -> bool:
    return bool(os.environ.get("REPRO_VERIFY_IR"))


class PassManager:
    """Runs a :class:`Pipeline` over a module with full instrumentation.

    ``verify=True`` (default: the ``REPRO_VERIFY_IR`` environment
    variable) re-checks IR invariants after **every pass application**
    and names the offending pass in the failure — the difference between
    "the compile produced bad IR" and "simplify broke block L3 of f".
    """

    def __init__(
        self,
        pipeline: Pipeline,
        config: CompilerConfig,
        budget: PassBudget | None = None,
        verify: bool | None = None,
    ) -> None:
        self.pipeline = pipeline
        self.config = config
        self.budget = budget if budget is not None else PassBudget()
        self.verify = _verify_enabled() if verify is None else verify
        self.report = PipelineReport(
            pipeline_name=pipeline.name, pipeline_digest=pipeline.digest()
        )

    # The report shares the budget's schedule list so lowering-stage
    # applications recorded before the manager ran are included.

    def run(self, module: Module) -> Module:
        """Apply the pipeline to *module* in place and return it."""
        self.report.schedule = self.budget.schedule
        for step in self.pipeline.steps:
            if isinstance(step, FixpointGroup):
                self._run_fixpoint(step, module)
            elif step.scope == SCOPE_MODULE:
                self._apply(step, module, module, "<module>")
            else:
                for func in module.functions.values():
                    if self.budget.exhausted:
                        break
                    self._apply(step, func, module, func.name)
            if self.budget.exhausted:
                break
        self.report.truncated = self.budget.exhausted
        return module

    # ------------------------------------------------------------- internal

    def _run_fixpoint(self, group: FixpointGroup, module: Module) -> None:
        """Change-driven driver: per function, iterate the group until a
        full round reports zero changes (or the round bound / application
        budget runs out)."""
        for func in module.functions.values():
            rounds = 0
            while rounds < group.max_rounds:
                rounds += 1
                round_changes = 0
                for pass_ in group.passes:
                    if self.budget.exhausted:
                        return
                    changed = self._apply(pass_, func, module, func.name, rounds)
                    if changed is None:
                        return
                    round_changes += changed
                if round_changes == 0:
                    break
            else:
                if round_changes:
                    self.report.fixpoint_bound_hits += 1

    def _apply(
        self, pass_: Pass, target, module: Module, target_name: str, round: int = 0
    ) -> int | None:
        """One budgeted, timed, optionally verified pass application."""
        application = self.budget.begin(pass_, target_name, round)
        if application is None:
            return None
        started = time.perf_counter()
        changed = pass_.run(target, self.config)
        application.seconds = time.perf_counter() - started
        application.changed = int(changed)
        if self.verify:
            self._verify_after(pass_, target, module, application)
        return application.changed

    def _verify_after(
        self, pass_: Pass, target, module: Module, application: PassApplication
    ) -> None:
        from repro.ir.verify import VerificationError, verify_function

        if pass_.scope == SCOPE_MODULE:
            problems: list[str] = []
            for func in module.functions.values():
                problems.extend(verify_function(func, module))
        else:
            problems = verify_function(target, module)
        if problems:
            raise VerificationError(
                f"IR verification failed after {application.label()} "
                f"in pipeline {self.pipeline.name!r}:\n  " + "\n  ".join(problems)
            )


def run_pipeline(
    module: Module,
    config: CompilerConfig,
    budget: PassBudget | None = None,
    verify: bool | None = None,
    pipeline: Pipeline | None = None,
) -> PipelineReport:
    """Optimize *module* for *config*; returns the instrumentation report.

    ``pipeline`` substitutes a non-standard pipeline (e.g. the legacy
    two-round schedule from ``pipeline_for(config, max_fixpoint_rounds=2)``);
    by default the config's standard pipeline runs.
    """
    if pipeline is None:
        pipeline = pipeline_for(config)
    manager = PassManager(pipeline, config, budget=budget, verify=verify)
    manager.run(module)
    return manager.report
