"""Store-to-load forwarding for non-escaping scalar stack slots.

A mem2reg-lite pass: when a scalar local's address never escapes (it is
only ever used directly as a load/store address), C's aliasing rules
guarantee no other pointer can legally touch it — so a load can be
forwarded from the preceding store in the same block.

This is the optimization that makes optimized binaries *miss* memory
corruption an unoptimized binary observes (the stored value lives in a
register while the -O0 build re-reads the smashed stack slot), and it is
the enabler for null-pointer constant propagation: once ``p = NULL; *p``
forwards the literal 0 into the load address, the UB-exploit pass can
elide the dereference entirely.
"""

from __future__ import annotations

from repro.ir.instructions import AddrSlot, Call, CallBuiltin, Instr, Load, Move, Reg, Store
from repro.ir.module import Function


def non_escaping_scalar_slots(func: Function) -> set[int]:
    """Slot indices whose address is only used directly for load/store."""
    candidates = {slot.index for slot in func.slots if not slot.is_buffer and slot.size <= 8}
    addr_regs: dict[Reg, int] = {}
    for instr in func.instructions():
        if isinstance(instr, AddrSlot) and instr.slot in candidates:
            addr_regs[instr.dst] = instr.slot
    for instr in func.instructions():
        for operand in _escaping_uses(instr):
            if isinstance(operand, Reg) and operand in addr_regs:
                candidates.discard(addr_regs[operand])
    return candidates


def _escaping_uses(instr: Instr):
    """Operand positions that leak a pointer (everything but direct
    load/store addressing)."""
    if isinstance(instr, Load):
        return []
    if isinstance(instr, Store):
        return [instr.src]  # storing the address itself escapes it
    if isinstance(instr, (Call, CallBuiltin)):
        return list(instr.args)
    return instr.uses()


def store_forward(func: Function) -> int:
    """Forward stored values to same-block loads; returns rewrites."""
    safe_slots = non_escaping_scalar_slots(func)
    if not safe_slots:
        return 0
    changed = 0
    for block in func.blocks.values():
        addr_of: dict[Reg, int] = {}  # reg -> slot index
        known: dict[int, object] = {}  # slot -> operand currently stored
        for i, instr in enumerate(block.instrs):
            if isinstance(instr, AddrSlot) and instr.slot in safe_slots:
                addr_of[instr.dst] = instr.slot
                continue
            dst = instr.defines()
            if isinstance(instr, Store):
                if isinstance(instr.addr, Reg) and instr.addr in addr_of:
                    known[addr_of[instr.addr]] = instr.src
                continue
            if isinstance(instr, Load) and isinstance(instr.addr, Reg):
                slot = addr_of.get(instr.addr)
                if slot is not None and slot in known:
                    value = known[slot]
                    block.instrs[i] = Move(instr.dst, value, instr.type, line=instr.line)
                    changed += 1
                    dst = instr.dst
            if dst is not None:
                # The register was redefined: cached values referring to it
                # and cached addresses held in it are stale.
                known = {
                    s: v for s, v in known.items() if not (isinstance(v, Reg) and v == dst)
                }
                addr_of.pop(dst, None)
    return changed


def dead_store_slots(func: Function) -> set[int]:
    """Non-escaping scalar slots that are never loaded anywhere.

    Stores to them are dead; deleting those stores is what lets DCE remove
    an unused trapping division whose quotient was spilled to such a slot.
    """
    safe_slots = non_escaping_scalar_slots(func)
    if not safe_slots:
        return set()
    addr_regs: dict[Reg, int] = {}
    for instr in func.instructions():
        if isinstance(instr, AddrSlot) and instr.slot in safe_slots:
            addr_regs[instr.dst] = instr.slot
    loaded: set[int] = set()
    for instr in func.instructions():
        if isinstance(instr, Load) and isinstance(instr.addr, Reg):
            slot = addr_regs.get(instr.addr)
            if slot is not None:
                loaded.add(slot)
    return safe_slots - loaded


def eliminate_dead_stores(func: Function) -> int:
    """Delete stores into never-loaded, non-escaping scalar slots."""
    dead = dead_store_slots(func)
    if not dead:
        return 0
    addr_regs: dict[Reg, int] = {}
    for instr in func.instructions():
        if isinstance(instr, AddrSlot) and instr.slot in dead:
            addr_regs[instr.dst] = instr.slot
    removed = 0
    for block in func.blocks.values():
        kept: list[Instr] = []
        for instr in block.instrs:
            if (
                isinstance(instr, Store)
                and isinstance(instr.addr, Reg)
                and instr.addr in addr_regs
            ):
                removed += 1
                continue
            kept.append(instr)
        block.instrs = kept
    return removed
