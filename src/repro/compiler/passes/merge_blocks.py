"""CFG simplification: merge straight-line block chains.

After branch folding turns ``Branch(const)`` into ``Jump``, many blocks
have exactly one predecessor that unconditionally jumps to them.  Merging
the chain re-creates long straight-line regions, which is what lets the
block-local store-to-load forwarding see through a folded ``if`` — the
enabling step for null-dereference elision across control flow.
"""

from __future__ import annotations

from repro.ir.cfg import predecessors, remove_unreachable
from repro.ir.instructions import Jump
from repro.ir.module import Function


def merge_blocks(func: Function) -> int:
    """Merge single-predecessor jump chains.

    Returns merges performed plus unreachable blocks removed — every
    mutation counts, a contract the change-driven fixpoint driver
    (:mod:`repro.compiler.passes.manager`) relies on.
    """
    merged = remove_unreachable(func)
    changed = True
    while changed:
        changed = False
        preds = predecessors(func)
        for label in list(func.blocks):
            block = func.blocks.get(label)
            if block is None:
                continue
            term = block.terminator
            if not isinstance(term, Jump):
                continue
            target = term.target
            if target == label or target == func.entry:
                continue
            if preds.get(target, set()) != {label}:
                continue
            target_block = func.blocks[target]
            block.instrs = block.instrs[:-1] + target_block.instrs
            del func.blocks[target]
            merged += 1
            changed = True
            break  # predecessor map is stale; recompute
    return merged
