"""Back-compat facade over the declarative pass manager.

The per-implementation pipeline used to live here as a hardcoded
``if config.X:`` chain with a fixed two-round loop.  It is now declared
in :mod:`repro.compiler.passes.manager` (:func:`pipeline_for`) and run
by the instrumented :class:`~repro.compiler.passes.manager.PassManager`;
``optimize`` keeps the historical one-call entry point.
"""

from __future__ import annotations

from repro.compiler.implementations import CompilerConfig
from repro.compiler.passes.manager import PassBudget, run_pipeline
from repro.ir.module import Module


def optimize(
    module: Module,
    config: CompilerConfig,
    budget: "PassBudget | None" = None,
    verify: bool | None = None,
) -> Module:
    """Run the pass pipeline selected by *config* over *module* in place.

    ``budget`` threads a shared :class:`PassBudget` through (schedule
    recording and the ``max_pass_applications`` cutoff); ``verify``
    forces per-pass IR verification on or off (default: the
    ``REPRO_VERIFY_IR`` environment variable).
    """
    run_pipeline(module, config, budget=budget, verify=verify)
    return module
