"""Per-implementation optimization pipeline."""

from __future__ import annotations

from repro.ir.module import Module
from repro.compiler.implementations import CompilerConfig
from repro.compiler.passes.constant_fold import const_fold
from repro.compiler.passes.copy_prop import copy_prop
from repro.compiler.passes.dce import dce
from repro.compiler.passes.inline import inline_small
from repro.compiler.passes.mem_forward import store_forward
from repro.compiler.passes.merge_blocks import merge_blocks
from repro.compiler.passes.simplify import simplify
from repro.compiler.passes.strength_reduce import strength_reduce
from repro.compiler.passes.ub_exploit import exploit_ub


def optimize(module: Module, config: CompilerConfig) -> Module:
    """Run the pass pipeline selected by *config* over *module* in place.

    The pipeline shape mirrors a real -O pipeline: inline first (exposes
    constants across call boundaries), then iterate local cleanups, then
    UB-exploiting folds once addresses/divisors have been propagated, and
    DCE last.
    """
    if config.inline_small:
        inline_small(module, config)
    for func in module.functions.values():
        for _ in range(2):  # two rounds reach the common fixpoints
            if config.copy_prop:
                store_forward(func)
                copy_prop(func)
            if config.const_fold:
                const_fold(func, config)
                simplify(func)
                merge_blocks(func)
            if config.exploit_ub:
                exploit_ub(func)
        if config.strength_reduce:
            strength_reduce(func)
        if config.float_pow_to_exp2:
            _pow_to_exp2(func)
        if config.dce:
            dce(func)
    return module


def _pow_to_exp2(func) -> int:
    """clang -O3 style libcall substitution: pow(2.0, x) -> exp2(x)."""
    from repro.ir.instructions import CallBuiltin

    changed = 0
    for block in func.blocks.values():
        for instr in block.instrs:
            if (
                isinstance(instr, CallBuiltin)
                and instr.name == "pow"
                and len(instr.args) == 2
                and instr.args[0] == 2.0
            ):
                instr.name = "exp2"
                instr.args = [instr.args[1]]
                instr.arg_types = [instr.arg_types[1]]
                changed += 1
    return changed
