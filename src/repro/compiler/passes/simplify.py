"""Algebraic simplification (semantics-preserving peepholes)."""

from __future__ import annotations

from repro.ir.instructions import BinOp, Const, Instr, Move, Reg
from repro.ir.module import Function
from repro.minic.types import IntType


def simplify(func: Function) -> int:
    """Apply algebraic identities in place; returns the rewrite count."""
    changed = 0
    for block in func.blocks.values():
        for i, instr in enumerate(block.instrs):
            if not isinstance(instr, BinOp):
                continue
            replacement = _simplify_binop(instr)
            if replacement is not None:
                block.instrs[i] = replacement
                changed += 1
    return changed


def _simplify_binop(instr: BinOp) -> Instr | None:
    op, lhs, rhs = instr.op, instr.lhs, instr.rhs
    is_int = isinstance(instr.type, IntType)
    if not is_int:
        return None
    # x + 0, x - 0, x | 0, x ^ 0, x << 0, x >> 0  ->  x
    if rhs == 0 and op in ("add", "sub", "or", "xor", "shl", "lshr", "ashr"):
        return Move(instr.dst, lhs, instr.type, line=instr.line)
    # 0 + x -> x
    if lhs == 0 and op == "add":
        return Move(instr.dst, rhs, instr.type, line=instr.line)
    # x * 1, x / 1 -> x ; 1 * x -> x
    if rhs == 1 and op in ("mul", "sdiv", "udiv"):
        return Move(instr.dst, lhs, instr.type, line=instr.line)
    if lhs == 1 and op == "mul":
        return Move(instr.dst, rhs, instr.type, line=instr.line)
    # x * 0, 0 * x, x & 0, 0 & x -> 0
    if (rhs == 0 and op in ("mul", "and")) or (lhs == 0 and op in ("mul", "and")):
        return Const(instr.dst, 0, instr.type, line=instr.line)
    # Same-register identities (int only: no NaN concerns).
    if isinstance(lhs, Reg) and isinstance(rhs, Reg) and lhs == rhs:
        if op in ("sub", "xor"):
            return Const(instr.dst, 0, instr.type, line=instr.line)
        if op in ("and", "or"):
            return Move(instr.dst, lhs, instr.type, line=instr.line)
        if op in ("eq", "sle", "sge", "ule", "uge"):
            return Const(instr.dst, 1, IntType(32, True), line=instr.line)
        if op in ("ne", "slt", "sgt", "ult", "ugt"):
            return Const(instr.dst, 0, IntType(32, True), line=instr.line)
    return None
