"""Strength reduction: multiplications/divisions by powers of two."""

from __future__ import annotations

from repro.ir.instructions import BinOp
from repro.ir.module import Function
from repro.minic.types import IntType


def strength_reduce(func: Function) -> int:
    """Rewrite ``x * 2**k`` to shifts (wrap-equivalent at fixed width)."""
    changed = 0
    for block in func.blocks.values():
        for instr in block.instrs:
            if not isinstance(instr, BinOp) or not isinstance(instr.type, IntType):
                continue
            if not isinstance(instr.rhs, int) or instr.rhs <= 0:
                continue
            shift = _log2_exact(instr.rhs)
            if shift is None:
                continue
            if instr.op == "mul":
                instr.op = "shl"
                instr.rhs = shift
                instr.nsw = False
                changed += 1
            elif instr.op == "udiv":
                instr.op = "lshr"
                instr.rhs = shift
                changed += 1
            elif instr.op == "urem":
                instr.op = "and"
                instr.rhs = (1 << shift) - 1
                changed += 1
    return changed


def _log2_exact(value: int) -> int | None:
    if value & (value - 1):
        return None
    return value.bit_length() - 1
