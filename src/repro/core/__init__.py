"""CompDiff core: the paper's primary contribution.

Compiler-driven differential testing (§3.1): compile a program with ``k``
compiler implementations, run every binary on the same input, and report
any output discrepancy as evidence of unstable code.
"""

from repro.core.compdiff import CompDiff, DiffResult, ObservationMatrix
from repro.core.hashing import murmur3_32
from repro.core.localize import Localization, align_traces, localize
from repro.core.minimize import MinimizationResult, Minimizer, minimize_input
from repro.core.normalize import OutputNormalizer
from repro.core.report import BugReport, make_report
from repro.core.subsets import SubsetEvaluation, evaluate_subsets
from repro.core.triage import DivergenceSignature, triage

__all__ = [
    "BugReport",
    "CompDiff",
    "DiffResult",
    "DivergenceSignature",
    "Localization",
    "MinimizationResult",
    "Minimizer",
    "ObservationMatrix",
    "OutputNormalizer",
    "SubsetEvaluation",
    "align_traces",
    "evaluate_subsets",
    "localize",
    "make_report",
    "minimize_input",
    "murmur3_32",
    "triage",
]
