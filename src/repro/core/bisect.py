"""Divergence pass-bisection: which pass application flipped the output?

Marcozzi et al.'s impact study (PAPERS.md) found that attributing a
miscompilation to the *specific transform* that introduced it is the
expensive manual step of compiler-bug triage.  LLVM answers with
``-opt-bisect-limit``; this module is the same idea on our pass manager.

Every build records a deterministic schedule of pass applications, and
``max_pass_applications=N`` produces exactly the first N applications of
that schedule (the *prefix property* — one
:class:`~repro.compiler.passes.manager.PassBudget` spans lowering and the
pipeline, so the lowering-stage UB-guard fold occupies slot 0 and is
bisectable like any pipeline pass).  Given a divergent (program, input,
implementation pair), we binary-search the application count for the
first prefix whose output disagrees with the reference implementation
and name the application at that boundary.

The search assumes divergence is *monotone* in the prefix length — once
a prefix diverges, longer prefixes stay diverged.  That holds for the
single-culprit case the oracle surfaces in practice; when it does not,
the reported application is still a true flip point (its prefix diverges,
one application shorter agrees), just not necessarily the only one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.binary import CompiledBinary, compile_program
from repro.compiler.implementations import CompilerConfig, implementation
from repro.compiler.passes.manager import PassApplication, pipeline_for
from repro.core.compdiff import DiffResult
from repro.core.normalize import OutputNormalizer
from repro.minic import ast as minic_ast
from repro.minic import load
from repro.vm import run_binary
from repro.vm.machine import DEFAULT_FUEL

#: ``BisectionResult.status`` values.
STATUS_ATTRIBUTED = "attributed"
STATUS_NO_DIVERGENCE = "no_divergence"
STATUS_BASELINE_DIVERGENT = "baseline_divergent"


@dataclass(frozen=True)
class Culprit:
    """The first pass application whose prefix flips the output."""

    #: 1-based position in the build's application schedule.
    position: int
    pass_name: str
    scope: str
    target: str
    round: int = 0

    def label(self) -> str:
        where = f" on {self.target}" if self.target else ""
        round_part = f" round {self.round}" if self.round else ""
        return f"#{self.position} {self.pass_name} ({self.scope}){where}{round_part}"


@dataclass
class BisectionResult:
    """Outcome of bisecting one divergent (program, input, pair) triple."""

    program: str
    input: bytes
    impl_ref: str
    impl_target: str
    status: str
    #: Applications in the target's full schedule.
    total_applications: int = 0
    #: Truncated builds performed by the search (cost accounting).
    probes: int = 0
    culprit: Culprit | None = None
    pipeline_digest: str = ""

    @property
    def attributed(self) -> bool:
        return self.status == STATUS_ATTRIBUTED

    def render(self) -> str:
        head = (
            f"pass bisection: {self.impl_target} vs {self.impl_ref} "
            f"({self.total_applications} applications, {self.probes} probes)"
        )
        if self.status == STATUS_NO_DIVERGENCE:
            return head + "\n  no divergence on this input"
        if self.status == STATUS_BASELINE_DIVERGENT:
            return head + (
                "\n  diverges with zero passes applied "
                "(front-end/layout difference, not pass-attributable)"
            )
        assert self.culprit is not None
        return head + f"\n  first divergent application: {self.culprit.label()}"

    def to_json(self) -> dict:
        return {
            "program": self.program,
            "input_hex": self.input.hex(),
            "impl_ref": self.impl_ref,
            "impl_target": self.impl_target,
            "status": self.status,
            "total_applications": self.total_applications,
            "probes": self.probes,
            "pipeline_digest": self.pipeline_digest,
            "culprit": None
            if self.culprit is None
            else {
                "position": self.culprit.position,
                "pass": self.culprit.pass_name,
                "scope": self.culprit.scope,
                "target": self.culprit.target,
                "round": self.culprit.round,
            },
        }


def _culprit_from(application: PassApplication) -> Culprit:
    return Culprit(
        position=application.index + 1,
        pass_name=application.pass_name,
        scope=application.scope,
        target=application.target,
        round=application.round,
    )


class _Prober:
    """Compiles and runs prefix builds of one (program, config) pair."""

    def __init__(
        self,
        program: minic_ast.Program,
        config: CompilerConfig,
        input_bytes: bytes,
        fuel: int,
        normalizer: OutputNormalizer,
        name: str,
    ) -> None:
        self.program = program
        self.config = config
        self.input_bytes = input_bytes
        self.fuel = fuel
        self.normalizer = normalizer
        self.name = name
        self.probes = 0

    def build(self, limit: int | None) -> CompiledBinary:
        return compile_program(
            self.program, self.config, name=self.name, max_pass_applications=limit
        )

    def observe(self, binary: CompiledBinary) -> tuple:
        result = run_binary(binary, self.input_bytes, fuel=self.fuel)
        return self.normalizer.normalize_observation(result.observation())

    def probe(self, limit: int) -> tuple:
        self.probes += 1
        return self.observe(self.build(limit))


def bisect_divergence(
    program: minic_ast.Program | str,
    input_bytes: bytes,
    impl_ref: CompilerConfig | str = "gcc-O0",
    impl_target: CompilerConfig | str = "gcc-O2",
    fuel: int = DEFAULT_FUEL,
    normalizer: OutputNormalizer | None = None,
    name: str = "",
) -> BisectionResult:
    """Find the first *impl_target* pass application that departs from
    *impl_ref*'s output on *input_bytes*.

    The reference implementation is built in full; only the target is
    prefix-truncated.  O(log n) probes via binary search on the
    application count.
    """
    if isinstance(program, str):
        program = load(program)
    if isinstance(impl_ref, str):
        impl_ref = implementation(impl_ref)
    if isinstance(impl_target, str):
        impl_target = implementation(impl_target)
    if normalizer is None:
        normalizer = OutputNormalizer()  # raw comparison, like the oracle default

    prober = _Prober(program, impl_target, input_bytes, fuel, normalizer, name)
    ref_binary = compile_program(program, impl_ref, name=name)
    ref_obs = prober.observe(ref_binary)

    full_binary = prober.build(None)
    report = full_binary.pass_report
    schedule = [app for app in report.schedule if app.applied]
    total = len(schedule)
    result = BisectionResult(
        program=name or program.__class__.__name__,
        input=input_bytes,
        impl_ref=impl_ref.name,
        impl_target=impl_target.name,
        status=STATUS_NO_DIVERGENCE,
        total_applications=total,
        pipeline_digest=report.pipeline_digest,
    )
    if prober.observe(full_binary) == ref_obs:
        result.probes = prober.probes
        return result

    if total == 0 or prober.probe(0) != ref_obs:
        # Divergence exists before any pass runs: layout policy or
        # front-end lowering, outside the pass schedule's reach.
        result.status = STATUS_BASELINE_DIVERGENT
        result.probes = prober.probes
        return result

    lo, hi = 0, total  # invariant: prefix(lo) agrees, prefix(hi) diverges
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if prober.probe(mid) == ref_obs:
            lo = mid
        else:
            hi = mid
    result.status = STATUS_ATTRIBUTED
    result.culprit = _culprit_from(schedule[hi - 1])
    result.probes = prober.probes
    return result


def choose_bisection_pair(
    diff: DiffResult, implementations: dict[str, CompilerConfig] | None = None
) -> tuple[str, str]:
    """Pick (reference, target) implementation names from a divergent diff.

    Reference: the implementation with the *shortest* pass schedule across
    all groups (closest to un-optimized source semantics — in the default
    set, an -O0).  Target: the implementation from any *other* observation
    group with the longest schedule — the most transforms to bisect over,
    and in practice the most aggressive pipeline, which is where UB
    exploitation lives.
    """
    groups = diff.groups()
    if len(groups) < 2:
        raise ValueError("diff is not divergent; nothing to bisect")

    def schedule_length(impl_name: str) -> int:
        if implementations is not None and impl_name in implementations:
            config = implementations[impl_name]
        else:
            config = implementation(impl_name)
        pipeline = pipeline_for(config)
        return len(pipeline.prelude) + len(pipeline.function_passes())

    members = {impl: group_i for group_i, group in enumerate(groups) for impl in group}
    ref = min(members, key=lambda impl: (schedule_length(impl), impl))
    others = [impl for impl in members if members[impl] != members[ref]]
    target = max(others, key=lambda impl: (schedule_length(impl), impl))
    return ref, target


def bisect_diff(
    program: minic_ast.Program | str,
    diff: DiffResult,
    fuel: int = DEFAULT_FUEL,
    normalizer: OutputNormalizer | None = None,
    name: str = "",
) -> BisectionResult:
    """Bisect a :class:`DiffResult` from the oracle, auto-picking the pair."""
    ref, target = choose_bisection_pair(diff)
    return bisect_divergence(
        program,
        diff.input,
        impl_ref=ref,
        impl_target=target,
        fuel=fuel,
        normalizer=normalizer,
        name=name,
    )
