"""The CompDiff differential runner (paper §3.1 workflow).

1) take a set of compiler implementations;
2) compile the program with each to get binaries;
3) run every binary on each test input;
4) report inputs whose outputs differ between any two implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler import DEFAULT_IMPLEMENTATIONS, CompilerConfig, compile_program
from repro.core.hashing import observation_checksum
from repro.core.normalize import OutputNormalizer
from repro.errors import EngineConfigError, ReproError
from repro.minic import ast as minic_ast
from repro.minic import load
from repro.parallel.cache import CompileCache
from repro.parallel.engine import BatchJob, ParallelEngine, ProgramPayload, ServerGroup
from repro.parallel.faults import FaultPlan
from repro.parallel.stats import EngineStats
from repro.parallel.supervisor import SupervisorPolicy
from repro.vm import ForkServer, LockstepExecutor
from repro.vm.execution import ExecutionResult, Status, deadline_result
from repro.vm.machine import DEFAULT_FUEL

#: RQ6: when only some binaries time out, re-run them with the threshold
#: raised by this factor, up to the retry cap, before believing the
#: discrepancy.
TIMEOUT_RETRY_FACTOR = 8
TIMEOUT_MAX_RETRIES = 2


@dataclass
class DiffResult:
    """Outcome of running one input across all implementations."""

    input: bytes
    observations: dict[str, tuple]
    checksums: dict[str, int]
    results: dict[str, ExecutionResult] = field(repr=False, default_factory=dict)
    #: Implementations dropped from this input's cross-check (k-1
    #: graceful degradation): they persistently failed to compile or
    #: execute, or their task was quarantined.  Never checksummed; the
    #: verdict below is over the surviving implementations only.
    dropped: tuple[str, ...] = ()

    @property
    def divergent(self) -> bool:
        return len(set(self.checksums.values())) > 1

    @property
    def degraded(self) -> bool:
        """True when this verdict came from a k-1 (or smaller) cross-check."""
        return bool(self.dropped)

    def groups(self) -> list[list[str]]:
        """Implementation names grouped by identical observation.

        Ordering is fully deterministic — size descending, ties broken
        lexicographically by each group's first implementation name — so
        triage signatures derived from groups are stable across runs and
        Python hash seeds.
        """
        by_checksum: dict[int, list[str]] = {}
        for name, checksum in self.checksums.items():
            by_checksum.setdefault(checksum, []).append(name)
        return sorted(by_checksum.values(), key=lambda group: (-len(group), group[0]))

    def divergent_for(self, subset: tuple[str, ...]) -> bool:
        """Would this input be flagged using only *subset* implementations?"""
        seen = {self.checksums[name] for name in subset if name in self.checksums}
        return len(seen) > 1


@dataclass
class ObservationMatrix:
    """Per-input checksum vectors, the substrate for subset ablation."""

    implementations: tuple[str, ...]
    rows: list[dict[str, int]] = field(default_factory=list)

    def add(self, diff: DiffResult) -> None:
        self.rows.append(dict(diff.checksums))

    def divergent_for(self, subset: tuple[str, ...]) -> bool:
        for row in self.rows:
            seen = {row[name] for name in subset if name in row}
            if len(seen) > 1:
                return True
        return False

    @property
    def divergent(self) -> bool:
        return self.divergent_for(self.implementations)


@dataclass
class CheckOutcome:
    """Result of checking one program over an input set."""

    matrix: ObservationMatrix
    diffs: list[DiffResult]

    @property
    def divergent(self) -> bool:
        return any(diff.divergent for diff in self.diffs)

    @property
    def divergent_inputs(self) -> list[bytes]:
        return [diff.input for diff in self.diffs if diff.divergent]


class CompDiff:
    """Compiler-driven differential testing over a fixed implementation set.

    >>> engine = CompDiff()
    >>> outcome = engine.check_source("int main(void){return 0;}", [b""])
    >>> outcome.divergent
    False

    ``workers=1`` (the default) is the fully deterministic serial path.
    ``workers=N`` fans the per-implementation executions out across a
    persistent worker pool (:mod:`repro.parallel`) with byte-identical
    verdicts; call :meth:`close` (or use the engine as a context manager)
    to shut the pool down.  ``compile_cache`` memoizes compilation by
    content so repeated checks of identical programs skip the compiler.
    """

    def __init__(
        self,
        implementations: tuple[CompilerConfig, ...] = DEFAULT_IMPLEMENTATIONS,
        normalizer: OutputNormalizer | None = None,
        fuel: int = DEFAULT_FUEL,
        workers: int = 1,
        compile_cache: CompileCache | None = None,
        stats: EngineStats | None = None,
        policy: SupervisorPolicy | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if len(implementations) < 2:
            raise EngineConfigError(
                "CompDiff needs at least two compiler implementations"
            )
        names = [config.name for config in implementations]
        if len(set(names)) != len(names):
            raise EngineConfigError(f"duplicate implementation names: {names}")
        if not isinstance(workers, int) or workers < 1:
            raise EngineConfigError(f"workers must be an int >= 1, got {workers!r}")
        self.implementations = tuple(implementations)
        self.normalizer = normalizer if normalizer is not None else OutputNormalizer()
        self.fuel = fuel
        self.workers = int(workers)
        self.compile_cache = compile_cache
        self.stats = stats if stats is not None else EngineStats()
        self._engine: ParallelEngine | None = None
        if self.workers > 1:
            self._engine = ParallelEngine(
                self.implementations,
                fuel=self.fuel,
                workers=self.workers,
                stats=self.stats,
                policy=policy,
                fault_plan=fault_plan,
                normalizer=self.normalizer,
            )

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Shut down the worker pool, if any (idempotent; serial no-op)."""
        if self._engine is not None:
            self._engine.close()

    def __enter__(self) -> "CompDiff":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- compiling

    def build(self, program: minic_ast.Program, name: str = "") -> dict[str, ForkServer]:
        """Compile *program* with every implementation (§3.1 steps 1-2).

        An implementation that fails to compile the program is dropped
        from this program's cross-check (k-1 graceful degradation,
        recorded in stats and flagged on every resulting DiffResult)
        rather than aborting — unless fewer than two implementations
        survive, which is a hard error.
        """
        servers: dict[str, ForkServer] = {}
        errors: dict[str, str] = {}
        first_error: ReproError | None = None
        for config in self.implementations:
            try:
                binary = self._compile(program, config, name=name)
            except ReproError as exc:
                errors[config.name] = str(exc)
                if first_error is None:
                    first_error = exc
                continue
            servers[config.name] = ForkServer(binary, fuel=self.fuel, stats=self.stats)
        if not servers and first_error is not None:
            # The program itself is broken (front-end error in every
            # implementation): surface the original exception type.
            raise first_error
        if len(servers) < 2:
            raise ReproError(
                f"fewer than two implementations can build {name or 'program'!r}: "
                f"{errors}"
            )
        for impl_name in errors:
            self.stats.record_degraded(impl_name)
        if self._engine is not None:
            return ServerGroup(servers, ProgramPayload.from_program(program, name=name))
        return ServerGroup(servers, executor=LockstepExecutor(servers))

    def build_source(self, source: str, name: str = "") -> dict[str, ForkServer]:
        return self.build(load(source), name=name)

    def _compile(self, program: minic_ast.Program, config: CompilerConfig, name: str = ""):
        if self.compile_cache is None:
            binary = compile_program(program, config, name=name)
            self.stats.record_pass_report(binary.pass_report)
            return binary
        cache_stats = self.compile_cache.stats
        hits0, misses0 = cache_stats.hits, cache_stats.misses
        evictions0 = cache_stats.evictions
        binary = self.compile_cache.compile(program, config, name=name)
        # Attribute the (possibly shared) cache's activity to this engine.
        self.stats.record_cache(
            cache_stats.hits - hits0,
            cache_stats.misses - misses0,
            cache_stats.evictions - evictions0,
        )
        if cache_stats.misses > misses0:  # fresh compile, not a replayed artifact
            self.stats.record_pass_report(binary.pass_report)
        return binary

    # --------------------------------------------------------------- running

    def run_input(self, servers: dict[str, ForkServer], input_bytes: bytes) -> DiffResult:
        """Run one input on every binary and cross-check outputs (§3.1 step 4)."""
        if self._engine is not None and isinstance(servers, ServerGroup):
            if servers.payload is not None:
                results = self._engine.run_one(servers.payload, input_bytes)
                return self._diff_from_results(input_bytes, results)
        executor = servers.executor if isinstance(servers, ServerGroup) else None
        if executor is None:
            # Plain dict of servers (caller-built): drive them the same way.
            executor = LockstepExecutor(servers)

        def degrade(name: str, exc: ReproError) -> ExecutionResult:
            # Internal VM failure on this implementation only: degrade
            # the cross-check rather than killing the campaign.
            self.stats.record_degraded(name)
            return deadline_result(name, f"execution failed: {exc}")

        results = executor.run_input(input_bytes, on_error=degrade)
        for name, result in results.items():
            if not result.deadline_expired:
                self.stats.record_exec(name)
        self._retry_partial_timeouts(servers, input_bytes, results)
        self.stats.record_input()
        return self._diff_from_results(input_bytes, results)

    def _diff_from_results(
        self, input_bytes: bytes, results: dict[str, ExecutionResult]
    ) -> DiffResult:
        """Normalize, checksum, and package one input's k results.

        Shared verbatim by the serial and parallel paths: whatever process
        produced the raw results, the observation comparison is identical.
        Results arriving from engine workers already carry their checksum
        (``ExecutionResult.output_checksum``, computed worker-side from the
        same normalizer) and are never re-checksummed here; serial results
        get theirs filled in now, so either way each observation is hashed
        exactly once.  Implementations without a usable result — absent
        entirely (build failure) or present as a ``Status.DEADLINE``
        placeholder (hung or quarantined) — are excluded from the checksums
        and listed in ``DiffResult.dropped``, so the verdict is a flagged
        k-1 cross-check.
        """
        observations: dict[str, tuple] = {}
        checksums: dict[str, int] = {}
        dropped: list[str] = []
        for name, result in results.items():
            if result.deadline_expired:
                dropped.append(name)
                continue
            obs = self.normalizer.normalize_observation(result.observation())
            observations[name] = obs
            if result.output_checksum is None:
                result.output_checksum = observation_checksum(obs)
            checksums[name] = result.output_checksum
        for config in self.implementations:
            if config.name not in results:
                dropped.append(config.name)
        order = {config.name: i for i, config in enumerate(self.implementations)}
        return DiffResult(
            input=input_bytes,
            observations=observations,
            checksums=checksums,
            results=results,
            dropped=tuple(sorted(dropped, key=lambda name: order.get(name, len(order)))),
        )

    def _retry_partial_timeouts(
        self,
        servers: dict[str, ForkServer],
        input_bytes: bytes,
        results: dict[str, ExecutionResult],
    ) -> None:
        """RQ6: a partially-timed-out input gets its threshold raised until
        the stragglers terminate (or the retry budget runs out).

        Only fuel exhaustion qualifies — ``Status.DEADLINE`` results
        (dropped implementations) are excluded from both the retry set
        and the all-timed-out denominator, so a hung implementation never
        burns fuel-escalation rounds."""
        fuel = self.fuel
        for _ in range(TIMEOUT_MAX_RETRIES):
            live = [
                name for name, result in results.items()
                if not result.deadline_expired
            ]
            timed_out = [name for name in live if results[name].timed_out]
            if not timed_out or len(timed_out) == len(live):
                return
            fuel *= TIMEOUT_RETRY_FACTOR
            for name in timed_out:
                results[name] = servers[name].run(input_bytes, fuel=fuel)
                self.stats.record_exec(name)
                self.stats.record_retry()

    @staticmethod
    def _checksum(observation: tuple) -> int:
        return observation_checksum(observation)

    # ------------------------------------------------------------ one-shot API

    def check(self, program: minic_ast.Program, inputs: list[bytes], name: str = "") -> CheckOutcome:
        """Full §3.1 workflow for one program over an input set."""
        if self._engine is not None:
            return self.check_batch([(program, inputs, name)])[0]
        servers = self.build(program, name=name)
        matrix = ObservationMatrix(tuple(servers))
        diffs: list[DiffResult] = []
        for input_bytes in inputs:
            diff = self.run_input(servers, input_bytes)
            matrix.add(diff)
            diffs.append(diff)
        return CheckOutcome(matrix=matrix, diffs=diffs)

    def check_source(self, source: str, inputs: list[bytes], name: str = "") -> CheckOutcome:
        if self._engine is not None:
            return self.check_batch([(source, inputs, name)])[0]
        return self.check(load(source), inputs, name=name)

    def check_batch(
        self, jobs: list[tuple[minic_ast.Program | str, list[bytes], str]]
    ) -> list[CheckOutcome]:
        """Run the §3.1 workflow for many ``(program, inputs, name)`` jobs.

        Programs may be checked ASTs or raw source strings (sources are
        parsed where they are compiled — in the workers when parallel).
        With ``workers=1`` this is exactly a loop over :meth:`check`; with
        ``workers=N`` the jobs are scattered across the pool and the
        outcomes are byte-identical to the serial loop.
        """
        if self._engine is None:
            outcomes = []
            for program, inputs, name in jobs:
                if isinstance(program, str):
                    program = load(program)
                outcomes.append(self.check(program, inputs, name=name))
            return outcomes
        batch = [
            BatchJob(program=program, inputs=list(inputs), name=name)
            for program, inputs, name in jobs
        ]
        raw = self._engine.run_batch(batch)
        impl_names = tuple(config.name for config in self.implementations)
        outcomes = []
        for job, rows in zip(batch, raw):
            matrix = ObservationMatrix(impl_names)
            diffs = []
            for input_bytes, results in zip(job.inputs, rows):
                diff = self._diff_from_results(input_bytes, results)
                matrix.add(diff)
                diffs.append(diff)
            outcomes.append(CheckOutcome(matrix=matrix, diffs=diffs))
        return outcomes
