"""The CompDiff differential runner (paper §3.1 workflow).

1) take a set of compiler implementations;
2) compile the program with each to get binaries;
3) run every binary on each test input;
4) report inputs whose outputs differ between any two implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler import DEFAULT_IMPLEMENTATIONS, CompilerConfig, compile_program
from repro.core.hashing import output_checksum
from repro.core.normalize import OutputNormalizer
from repro.minic import ast as minic_ast
from repro.minic import load
from repro.vm import ForkServer
from repro.vm.execution import ExecutionResult, Status
from repro.vm.machine import DEFAULT_FUEL

#: RQ6: when only some binaries time out, re-run them with the threshold
#: raised by this factor, up to the retry cap, before believing the
#: discrepancy.
TIMEOUT_RETRY_FACTOR = 8
TIMEOUT_MAX_RETRIES = 2


@dataclass
class DiffResult:
    """Outcome of running one input across all implementations."""

    input: bytes
    observations: dict[str, tuple]
    checksums: dict[str, int]
    results: dict[str, ExecutionResult] = field(repr=False, default_factory=dict)

    @property
    def divergent(self) -> bool:
        return len(set(self.checksums.values())) > 1

    def groups(self) -> list[list[str]]:
        """Implementation names grouped by identical observation."""
        by_checksum: dict[int, list[str]] = {}
        for name, checksum in self.checksums.items():
            by_checksum.setdefault(checksum, []).append(name)
        return sorted(by_checksum.values(), key=len, reverse=True)

    def divergent_for(self, subset: tuple[str, ...]) -> bool:
        """Would this input be flagged using only *subset* implementations?"""
        seen = {self.checksums[name] for name in subset if name in self.checksums}
        return len(seen) > 1


@dataclass
class ObservationMatrix:
    """Per-input checksum vectors, the substrate for subset ablation."""

    implementations: tuple[str, ...]
    rows: list[dict[str, int]] = field(default_factory=list)

    def add(self, diff: DiffResult) -> None:
        self.rows.append(dict(diff.checksums))

    def divergent_for(self, subset: tuple[str, ...]) -> bool:
        for row in self.rows:
            seen = {row[name] for name in subset if name in row}
            if len(seen) > 1:
                return True
        return False

    @property
    def divergent(self) -> bool:
        return self.divergent_for(self.implementations)


@dataclass
class CheckOutcome:
    """Result of checking one program over an input set."""

    matrix: ObservationMatrix
    diffs: list[DiffResult]

    @property
    def divergent(self) -> bool:
        return any(diff.divergent for diff in self.diffs)

    @property
    def divergent_inputs(self) -> list[bytes]:
        return [diff.input for diff in self.diffs if diff.divergent]


class CompDiff:
    """Compiler-driven differential testing over a fixed implementation set.

    >>> engine = CompDiff()
    >>> outcome = engine.check_source("int main(void){return 0;}", [b""])
    >>> outcome.divergent
    False
    """

    def __init__(
        self,
        implementations: tuple[CompilerConfig, ...] = DEFAULT_IMPLEMENTATIONS,
        normalizer: OutputNormalizer | None = None,
        fuel: int = DEFAULT_FUEL,
    ) -> None:
        if len(implementations) < 2:
            raise ValueError("CompDiff needs at least two compiler implementations")
        names = [config.name for config in implementations]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate implementation names: {names}")
        self.implementations = tuple(implementations)
        self.normalizer = normalizer if normalizer is not None else OutputNormalizer()
        self.fuel = fuel

    # ------------------------------------------------------------- compiling

    def build(self, program: minic_ast.Program, name: str = "") -> dict[str, ForkServer]:
        """Compile *program* with every implementation (§3.1 steps 1-2)."""
        servers: dict[str, ForkServer] = {}
        for config in self.implementations:
            binary = compile_program(program, config, name=name)
            servers[config.name] = ForkServer(binary, fuel=self.fuel)
        return servers

    def build_source(self, source: str, name: str = "") -> dict[str, ForkServer]:
        return self.build(load(source), name=name)

    # --------------------------------------------------------------- running

    def run_input(self, servers: dict[str, ForkServer], input_bytes: bytes) -> DiffResult:
        """Run one input on every binary and cross-check outputs (§3.1 step 4)."""
        results: dict[str, ExecutionResult] = {}
        for name, server in servers.items():
            results[name] = server.run(input_bytes)
        self._retry_partial_timeouts(servers, input_bytes, results)
        observations: dict[str, tuple] = {}
        checksums: dict[str, int] = {}
        for name, result in results.items():
            obs = self.normalizer.normalize_observation(result.observation())
            observations[name] = obs
            checksums[name] = self._checksum(obs)
        return DiffResult(
            input=input_bytes,
            observations=observations,
            checksums=checksums,
            results=results,
        )

    def _retry_partial_timeouts(
        self,
        servers: dict[str, ForkServer],
        input_bytes: bytes,
        results: dict[str, ExecutionResult],
    ) -> None:
        """RQ6: a partially-timed-out input gets its threshold raised until
        the stragglers terminate (or the retry budget runs out)."""
        fuel = self.fuel
        for _ in range(TIMEOUT_MAX_RETRIES):
            timed_out = [name for name, result in results.items() if result.timed_out]
            if not timed_out or len(timed_out) == len(results):
                return
            fuel *= TIMEOUT_RETRY_FACTOR
            for name in timed_out:
                results[name] = servers[name].run(input_bytes, fuel=fuel)

    @staticmethod
    def _checksum(observation: tuple) -> int:
        stdout, stderr, exit_code, timed_out = observation
        if timed_out:
            # All timeouts look alike: the only signal is "did not finish".
            return output_checksum(b"<timeout>", b"", -1)
        return output_checksum(stdout, stderr, exit_code)

    # ------------------------------------------------------------ one-shot API

    def check(self, program: minic_ast.Program, inputs: list[bytes], name: str = "") -> CheckOutcome:
        """Full §3.1 workflow for one program over an input set."""
        servers = self.build(program, name=name)
        matrix = ObservationMatrix(tuple(servers))
        diffs: list[DiffResult] = []
        for input_bytes in inputs:
            diff = self.run_input(servers, input_bytes)
            matrix.add(diff)
            diffs.append(diff)
        return CheckOutcome(matrix=matrix, diffs=diffs)

    def check_source(self, source: str, inputs: list[bytes], name: str = "") -> CheckOutcome:
        return self.check(load(source), inputs, name=name)
