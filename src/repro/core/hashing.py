"""MurmurHash3 (x86, 32-bit) — the checksum AFL++ uses for outputs.

The paper reuses AFL++'s MurmurHash3 to compare redirected stdout/stderr
files across binaries (§3.2 "Output examination").  This is a faithful
pure-Python port of the public-domain reference implementation.
"""

from __future__ import annotations

_C1 = 0xCC9E2D51
_C2 = 0x1B873593
_MASK = 0xFFFFFFFF


def _rotl32(value: int, count: int) -> int:
    return ((value << count) | (value >> (32 - count))) & _MASK


def murmur3_32(data: bytes, seed: int = 0) -> int:
    """MurmurHash3_x86_32 of *data* with *seed*."""
    h = seed & _MASK
    length = len(data)
    rounded = length - (length & 3)
    for i in range(0, rounded, 4):
        k = int.from_bytes(data[i : i + 4], "little")
        k = (k * _C1) & _MASK
        k = _rotl32(k, 15)
        k = (k * _C2) & _MASK
        h ^= k
        h = _rotl32(h, 13)
        h = (h * 5 + 0xE6546B64) & _MASK
    k = 0
    tail = data[rounded:]
    if len(tail) >= 3:
        k ^= tail[2] << 16
    if len(tail) >= 2:
        k ^= tail[1] << 8
    if len(tail) >= 1:
        k ^= tail[0]
        k = (k * _C1) & _MASK
        k = _rotl32(k, 15)
        k = (k * _C2) & _MASK
        h ^= k
    h ^= length
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & _MASK
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & _MASK
    h ^= h >> 16
    return h


def output_checksum(stdout: bytes, stderr: bytes, exit_code: int) -> int:
    """Checksum of one execution's observable output, AFL++-style."""
    blob = stdout + b"\x00--stderr--\x00" + stderr + exit_code.to_bytes(4, "little", signed=True)
    return murmur3_32(blob, seed=0xA5B35705)


def observation_checksum(observation: tuple) -> int:
    """Checksum of a normalized ``ExecutionResult.observation()`` tuple.

    The single definition shared by the oracle and the engine workers:
    wherever the checksum is computed (parent or worker), a timed-out
    execution collapses to one canonical value — the only signal a
    timeout carries is "did not finish".
    """
    stdout, stderr, exit_code, timed_out = observation
    if timed_out:
        return output_checksum(b"<timeout>", b"", -1)
    return output_checksum(stdout, stderr, exit_code)
