"""Trace-alignment fault localization (the paper's §5 future work).

Bugs found by CompDiff don't necessarily crash, so sanitizer-style stack
traces don't apply.  The paper suggests comparing execution traces from
two binaries compiled from the same source to pinpoint where behavior
first departs.  This module implements that idea at source-line
granularity:

1. run the program under two implementations with line tracing on;
2. strip the common prefix of the two line traces;
3. report the last common line (the *divergence point*) and what each
   binary did next.

The result is approximate by construction — optimization reorders and
deletes lines, which is exactly the difficulty §5 describes — but for
guard-folding, null-elision, and eval-order bugs the divergence point
lands on or immediately after the unstable construct.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler import CompilerConfig, compile_program, implementation
from repro.minic import ast as minic_ast
from repro.minic import load
from repro.vm import run_binary
from repro.vm.machine import DEFAULT_FUEL


@dataclass(frozen=True)
class Localization:
    """Outcome of aligning two execution traces."""

    impl_a: str
    impl_b: str
    #: Last source line both executions agree on (0 = diverged at entry).
    last_common_line: int
    #: The next line each binary executed after the common prefix
    #: (None = that binary's trace ended).
    next_line_a: int | None
    next_line_b: int | None
    common_prefix_length: int
    trace_a: tuple[int, ...]
    trace_b: tuple[int, ...]

    @property
    def diverged(self) -> bool:
        return self.next_line_a is not None or self.next_line_b is not None

    def render(self, source: str = "") -> str:
        lines = [
            f"trace alignment: {self.impl_a} vs {self.impl_b}",
            f"  common prefix: {self.common_prefix_length} line events",
            f"  last common source line: {self.last_common_line}",
            f"  {self.impl_a} continues at: {self.next_line_a}",
            f"  {self.impl_b} continues at: {self.next_line_b}",
        ]
        if source:
            source_lines = source.splitlines()
            for label, line in (
                ("last common", self.last_common_line),
                (self.impl_a, self.next_line_a),
                (self.impl_b, self.next_line_b),
            ):
                if line and 1 <= line <= len(source_lines):
                    lines.append(f"    [{label}] {line}: {source_lines[line - 1].strip()}")
        return "\n".join(lines)


def align_traces(
    trace_a: tuple[int, ...], trace_b: tuple[int, ...], impl_a: str, impl_b: str
) -> Localization:
    """Pure alignment of two line traces (longest common prefix)."""
    prefix = 0
    limit = min(len(trace_a), len(trace_b))
    while prefix < limit and trace_a[prefix] == trace_b[prefix]:
        prefix += 1
    return Localization(
        impl_a=impl_a,
        impl_b=impl_b,
        last_common_line=trace_a[prefix - 1] if prefix else 0,
        next_line_a=trace_a[prefix] if prefix < len(trace_a) else None,
        next_line_b=trace_b[prefix] if prefix < len(trace_b) else None,
        common_prefix_length=prefix,
        trace_a=trace_a,
        trace_b=trace_b,
    )


def localize(
    program: minic_ast.Program | str,
    input_bytes: bytes,
    impl_a: CompilerConfig | str = "gcc-O0",
    impl_b: CompilerConfig | str = "gcc-O2",
    fuel: int = DEFAULT_FUEL,
) -> Localization:
    """Compile with both implementations, trace, and align."""
    if isinstance(program, str):
        program = load(program)
    if isinstance(impl_a, str):
        impl_a = implementation(impl_a)
    if isinstance(impl_b, str):
        impl_b = implementation(impl_b)
    result_a = run_binary(
        compile_program(program, impl_a), input_bytes, fuel=fuel, trace_lines=True
    )
    result_b = run_binary(
        compile_program(program, impl_b), input_bytes, fuel=fuel, trace_lines=True
    )
    return align_traces(result_a.line_trace, result_b.line_trace, impl_a.name, impl_b.name)


@dataclass
class DivergenceProfile:
    """*Where* behavior departs (trace alignment) combined with *which
    transform* makes it depart (pass bisection).

    The two answers are complementary: the trace pinpoints the source
    line, the bisection names the pass application — together they are
    the report a compiler-bug triager actually wants.
    """

    localization: Localization
    bisection: "BisectionResult"

    def render(self, source: str = "") -> str:
        return self.localization.render(source) + "\n" + self.bisection.render()


def divergence_profile(
    program: minic_ast.Program | str,
    input_bytes: bytes,
    impl_a: CompilerConfig | str = "gcc-O0",
    impl_b: CompilerConfig | str = "gcc-O2",
    fuel: int = DEFAULT_FUEL,
) -> DivergenceProfile:
    """Trace-align *and* pass-bisect one divergent pair in one call.

    ``impl_a`` doubles as the bisection reference, ``impl_b`` as the
    bisected target, matching ``repro localize``'s flag order.
    """
    from repro.core.bisect import bisect_divergence

    loc = localize(program, input_bytes, impl_a=impl_a, impl_b=impl_b, fuel=fuel)
    bis = bisect_divergence(
        program, input_bytes, impl_ref=impl_a, impl_target=impl_b, fuel=fuel
    )
    return DivergenceProfile(localization=loc, bisection=bis)
