"""Diff-triggering input minimization (afl-tmin for the CompDiff oracle).

Bug reports are easier to act on with a minimal reproducer.  This is a
delta-debugging-style minimizer over the divergence predicate: repeatedly
remove chunks and simplify bytes while *some* pair of implementations
still disagrees on the input.

The predicate deliberately accepts any divergence (not the original
signature): shrinking can shift which implementations disagree while still
witnessing the same unstable construct, and a stricter same-signature
predicate is available via ``preserve_signature=True``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.compdiff import CompDiff
from repro.core.triage import signature_of
from repro.vm import ForkServer


@dataclass
class MinimizationResult:
    original: bytes
    minimized: bytes
    executions: int

    @property
    def reduction(self) -> float:
        if not self.original:
            return 0.0
        return 1.0 - len(self.minimized) / len(self.original)


class Minimizer:
    """Minimizes inputs against a fixed set of built binaries."""

    def __init__(
        self,
        engine: CompDiff,
        servers: dict[str, ForkServer],
        preserve_signature: bool = False,
    ) -> None:
        self.engine = engine
        self.servers = servers
        self.preserve_signature = preserve_signature
        self.executions = 0

    def _still_diverges(self, data: bytes, target_signature) -> bool:
        self.executions += 1
        diff = self.engine.run_input(self.servers, data)
        if not diff.divergent:
            return False
        if self.preserve_signature and target_signature is not None:
            return signature_of(diff) == target_signature
        return True

    def minimize(self, data: bytes, max_rounds: int = 8) -> MinimizationResult:
        original = data
        diff = self.engine.run_input(self.servers, data)
        if not diff.divergent:
            return MinimizationResult(original, data, self.executions)
        target_signature = signature_of(diff) if self.preserve_signature else None
        current = bytearray(data)
        for _ in range(max_rounds):
            changed = False
            # Phase 1: chunk removal, halving chunk sizes.
            chunk = max(1, len(current) // 2)
            while chunk >= 1:
                offset = 0
                while offset < len(current):
                    trial = current[:offset] + current[offset + chunk :]
                    if trial and self._still_diverges(bytes(trial), target_signature):
                        current = bytearray(trial)
                        changed = True
                    else:
                        offset += chunk
                chunk //= 2
            # Phase 2: byte canonicalization to 0x00 then to 'A'.
            for canonical in (0, 0x41):
                for i, value in enumerate(current):
                    if value == canonical:
                        continue
                    trial = bytearray(current)
                    trial[i] = canonical
                    if self._still_diverges(bytes(trial), target_signature):
                        current = trial
                        changed = True
            if not changed:
                break
        return MinimizationResult(original, bytes(current), self.executions)


def minimize_input(
    source_or_program,
    data: bytes,
    engine: CompDiff | None = None,
    preserve_signature: bool = False,
) -> MinimizationResult:
    """One-call minimization for a program given as source text or AST."""
    from repro.minic import ast as minic_ast
    from repro.minic import load

    engine = engine or CompDiff()
    program = (
        load(source_or_program)
        if isinstance(source_or_program, str)
        else source_or_program
    )
    assert isinstance(program, minic_ast.Program)
    servers = engine.build(program)
    return Minimizer(engine, servers, preserve_signature).minimize(data)
