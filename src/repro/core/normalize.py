"""Output normalization for non-deterministic-but-fixable programs (RQ5).

Some targets deliberately embed volatile values — timestamps, random
numbers, pointer addresses — in otherwise deterministic output.  The paper
strips them with regular expressions before comparison (the wireshark
``[Epan WARNING]`` timestamp example).  :class:`OutputNormalizer` is that
post-processing script, as a composable object.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

#: Built-in scrub patterns, mirroring the paper's examples.
TIMESTAMP = (rb"\b\d{2}:\d{2}:\d{2}\.\d{3,9}\b", b"<TIME>")
POINTER = (rb"\b0x[0-9a-fA-F]{4,16}\b", b"<PTR>")
EPOCH_SECONDS = (rb"\b1[5-9]\d{8}\b", b"<EPOCH>")


@dataclass
class OutputNormalizer:
    """Applies substitution patterns to outputs before comparison.

    By default no patterns are applied — CompDiff compares raw output.
    Callers opt into scrubbing per target, exactly as the paper did for
    the handful of targets with volatile output.
    """

    patterns: list[tuple[bytes, bytes]] = field(default_factory=list)
    #: Truncate outputs to this many bytes before comparing (0 = off).
    max_bytes: int = 0

    @classmethod
    def standard(cls) -> "OutputNormalizer":
        """Normalizer with timestamp and epoch scrubbing (not pointers —
        pointer output is a *real* unstable-code signal the paper counts
        under Misc, so it is never scrubbed by default)."""
        return cls(patterns=[TIMESTAMP, EPOCH_SECONDS])

    def add_pattern(self, pattern: bytes, replacement: bytes = b"<X>") -> "OutputNormalizer":
        self.patterns.append((pattern, replacement))
        return self

    def normalize(self, data: bytes) -> bytes:
        for pattern, replacement in self.patterns:
            data = re.sub(pattern, replacement, data)
        if self.max_bytes and len(data) > self.max_bytes:
            data = data[: self.max_bytes]
        return data

    def normalize_observation(self, observation: tuple) -> tuple:
        stdout, stderr, exit_code, timed_out = observation
        return (self.normalize(stdout), self.normalize(stderr), exit_code, timed_out)
