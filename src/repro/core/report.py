"""Bug reports in the paper's format (§5 "Fault localization and bug report").

Each report carries the three things the paper's reports contain: 1) the
test input that triggers the bug, 2) two or more compiler configurations
that reproduce it, and 3) the divergent outputs on that input.
"""

from __future__ import annotations

import binascii
from dataclasses import dataclass, field

from repro.core.compdiff import DiffResult


@dataclass
class BugReport:
    """A developer-facing description of one output discrepancy."""

    target: str
    input: bytes
    #: Two representative configurations with differing outputs.
    config_a: str
    config_b: str
    observation_a: tuple
    observation_b: tuple
    #: Full grouping of implementations by identical output.
    groups: list[list[str]] = field(default_factory=list)
    #: Implementations dropped from the cross-check (k-1 degradation).
    dropped: tuple[str, ...] = ()

    def render(self) -> str:
        """Human-readable report text."""

        def show(observation: tuple) -> str:
            stdout, stderr, exit_code, timed_out = observation
            if timed_out:
                return "    <timed out>"
            lines = [f"    exit code: {exit_code}"]
            lines.append(f"    stdout: {stdout!r}")
            if stderr:
                lines.append(f"    stderr: {stderr!r}")
            return "\n".join(lines)

        hex_input = binascii.hexlify(self.input).decode() or "(empty)"
        parts = [
            f"# Output discrepancy in {self.target}",
            "",
            "## Reproduce",
            f"  input (hex): {hex_input}",
            f"  compile with {self.config_a} and {self.config_b}, run both on the input",
            "",
            f"## Output with {self.config_a}",
            show(self.observation_a),
            "",
            f"## Output with {self.config_b}",
            show(self.observation_b),
            "",
            "## All implementations grouped by output",
        ]
        for group in self.groups:
            parts.append(f"  - {', '.join(group)}")
        if self.dropped:
            parts.append("")
            parts.append(
                "## Implementations dropped from the cross-check "
                "(k-1 differential)"
            )
            parts.append(f"  - {', '.join(self.dropped)}")
        return "\n".join(parts) + "\n"


def make_report(target: str, diff: DiffResult) -> BugReport:
    """Build a :class:`BugReport` from a divergent :class:`DiffResult`.

    The representative pair is chosen as one implementation from each of
    the two largest output groups, which is what a developer would want to
    bisect first.
    """
    if not diff.divergent:
        raise ValueError("cannot report a non-divergent result")
    groups = diff.groups()
    config_a = groups[0][0]
    config_b = groups[1][0]
    return BugReport(
        target=target,
        input=diff.input,
        config_a=config_a,
        config_b=config_b,
        observation_a=diff.observations[config_a],
        observation_b=diff.observations[config_b],
        groups=groups,
        dropped=diff.dropped,
    )
