"""Compiler-implementation subset ablation (Figures 1 and 2, §4.2/RQ4).

Given per-bug checksum vectors over the full implementation set, computes
how many bugs each subset of implementations would still detect — for
every subset of every size from 2 to the full set — and summarizes the
distribution per size (the paper's box plots) plus the best/worst subsets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations


@dataclass
class SizeSummary:
    """Distribution of detection counts over all subsets of one size."""

    size: int
    counts: list[int]
    best_subset: tuple[str, ...]
    best_count: int
    worst_subset: tuple[str, ...]
    worst_count: int

    @property
    def minimum(self) -> int:
        return min(self.counts)

    @property
    def maximum(self) -> int:
        return max(self.counts)

    @property
    def median(self) -> float:
        ordered = sorted(self.counts)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return float(ordered[mid])
        return (ordered[mid - 1] + ordered[mid]) / 2

    def quartiles(self) -> tuple[float, float, float]:
        ordered = sorted(self.counts)
        return (
            _percentile(ordered, 0.25),
            _percentile(ordered, 0.5),
            _percentile(ordered, 0.75),
        )


def _percentile(ordered: list[int], fraction: float) -> float:
    if not ordered:
        return 0.0
    position = (len(ordered) - 1) * fraction
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    weight = position - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


@dataclass
class SubsetEvaluation:
    """Full ablation over subset sizes 2..k."""

    implementations: tuple[str, ...]
    summaries: dict[int, SizeSummary] = field(default_factory=dict)
    total_bugs: int = 0

    @property
    def full_set_count(self) -> int:
        return self.summaries[len(self.implementations)].best_count

    def render(self) -> str:
        lines = [
            f"{'size':>4}  {'min':>6}  {'q1':>7}  {'median':>7}  {'q3':>7}  {'max':>6}"
            f"  best subset"
        ]
        for size in sorted(self.summaries):
            summary = self.summaries[size]
            q1, median, q3 = summary.quartiles()
            lines.append(
                f"{size:>4}  {summary.minimum:>6}  {q1:>7.1f}  {median:>7.1f}"
                f"  {q3:>7.1f}  {summary.maximum:>6}"
                f"  {{{', '.join(summary.best_subset)}}}"
            )
        return "\n".join(lines)


def evaluate_subsets(
    bug_vectors: dict[object, list[dict[str, int]]],
    implementations: tuple[str, ...],
    sizes: range | None = None,
) -> SubsetEvaluation:
    """Compute per-subset detection counts.

    *bug_vectors* maps a bug id to the checksum vectors (one per
    bug-triggering input) observed over the full implementation set.  A
    subset detects the bug if any vector restricted to the subset still
    contains two different checksums.
    """
    if sizes is None:
        sizes = range(2, len(implementations) + 1)
    evaluation = SubsetEvaluation(
        implementations=implementations, total_bugs=len(bug_vectors)
    )
    # Precompute, per bug and per implementation pair, whether that pair
    # alone distinguishes some vector — subset detection is then "any pair
    # inside the subset distinguishes".
    pair_index: dict[tuple[str, str], set[object]] = {
        pair: set() for pair in combinations(implementations, 2)
    }
    for bug_id, vectors in bug_vectors.items():
        for vector in vectors:
            for pair in pair_index:
                a, b = pair
                if a in vector and b in vector and vector[a] != vector[b]:
                    pair_index[pair].add(bug_id)
    for size in sizes:
        counts: list[int] = []
        best: tuple[tuple[str, ...], int] | None = None
        worst: tuple[tuple[str, ...], int] | None = None
        for subset in combinations(implementations, size):
            detected: set[object] = set()
            for pair in combinations(subset, 2):
                detected |= pair_index[pair]
            count = len(detected)
            counts.append(count)
            if best is None or count > best[1]:
                best = (subset, count)
            if worst is None or count < worst[1]:
                worst = (subset, count)
        assert best is not None and worst is not None
        evaluation.summaries[size] = SizeSummary(
            size=size,
            counts=counts,
            best_subset=best[0],
            best_count=best[1],
            worst_subset=worst[0],
            worst_count=worst[1],
        )
    return evaluation
