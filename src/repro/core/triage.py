"""Discrepancy triage: clustering the diffs/ directory.

The paper triages manually (§3.2 "Bug-triggering inputs"); automated triage
is called out as an open problem.  This module provides the practical
approximation used by the evaluation drivers: cluster bug-triggering inputs
by their *divergence signature* — the partition of implementations into
same-output groups — optionally refined by the ground-truth bug sites the
instrumented fuzz binary reached.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.compdiff import DiffResult


@dataclass(frozen=True)
class DivergenceSignature:
    """Canonical identity of one class of discrepancy."""

    #: Implementation names partitioned by identical output, each group
    #: sorted, groups sorted for canonical form.
    partition: tuple[tuple[str, ...], ...]
    #: Ground-truth bug sites reached (empty when instrumentation is off).
    sites: frozenset[int] = frozenset()

    def __str__(self) -> str:
        groups = " | ".join(",".join(g) for g in self.partition)
        if self.sites:
            return f"[{groups}] sites={sorted(self.sites)}"
        return f"[{groups}]"


def signature_of(diff: DiffResult, sites: frozenset[int] = frozenset()) -> DivergenceSignature:
    partition = tuple(sorted(tuple(sorted(group)) for group in diff.groups()))
    return DivergenceSignature(partition=partition, sites=sites)


def triage(
    diffs: list[DiffResult],
    sites_by_input: dict[bytes, frozenset[int]] | None = None,
) -> dict[DivergenceSignature, list[DiffResult]]:
    """Cluster divergent results by signature.

    Returns only divergent entries; non-divergent results are skipped.
    """
    clusters: dict[DivergenceSignature, list[DiffResult]] = {}
    for diff in diffs:
        if not diff.divergent:
            continue
        sites = frozenset()
        if sites_by_input is not None:
            sites = sites_by_input.get(diff.input, frozenset())
        clusters.setdefault(signature_of(diff, sites), []).append(diff)
    return clusters


def attribute_clusters(
    program,
    clusters: dict[DivergenceSignature, list[DiffResult]],
    fuel: int | None = None,
    normalizer=None,
    name: str = "",
) -> dict[DivergenceSignature, "BisectionResult"]:
    """Pass-bisect one representative diff per cluster.

    The cluster signature identifies *which implementations disagree*;
    bisection (:mod:`repro.core.bisect`) adds *which pass application
    makes them disagree* — the attribution step the paper's triage
    discussion (§3.2) leaves manual.  One representative per cluster
    keeps cost at O(log n) truncated builds per signature.
    """
    from repro.core.bisect import bisect_diff
    from repro.vm.machine import DEFAULT_FUEL

    out: dict[DivergenceSignature, "BisectionResult"] = {}
    for signature, members in clusters.items():
        out[signature] = bisect_diff(
            program,
            members[0],
            fuel=DEFAULT_FUEL if fuel is None else fuel,
            normalizer=normalizer,
            name=name,
        )
    return out
