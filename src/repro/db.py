"""The corpus/results database: fingerprint-keyed, sqlite-backed, shared.

Banks (:mod:`repro.generative.bank`, :mod:`repro.sanval.bank`) are
per-campaign directories; a long-lived validation effort accumulates
many of them across shards and machines.  :class:`CorpusDB` is the
cross-campaign substrate: one sqlite file storing

* **programs** keyed by content fingerprint (the same
  :func:`~repro.parallel.cache.program_fingerprint` the compile cache
  and engine payloads use, so every layer agrees on identity);
* **verdicts** — per (program, input) differential outcomes with their
  per-implementation observation checksums;
* **diagnostics** — UB-oracle checker fingerprints per program;
* **classes** — banked equivalence classes (generative ``corpus_key`` /
  sanval ``finding_key``), each carrying the full banked record so a
  bank can be reconstituted from the DB alone.

``register_class`` is the cross-shard dedupe primitive: the first
shard (or campaign) to insert a class key wins, every later attempt
returns False, and shard merges consult exactly that bit before
re-banking a repro another campaign already holds.

sqlite provides transactional atomicity for the table data; the
repo-wide magic+CRC record discipline (:mod:`repro.persist`) still
guards the *identity* of the file — a ``<db>.meta`` sidecar record pins
the schema version and is verified on every open, so a foreign or
bit-rotten database is refused instead of silently queried.

Schema changes bump :data:`DB_SCHEMA_VERSION`; there is deliberately no
migration machinery — the DB is a cache of bank-derived facts and can
be rebuilt from banks via ``repro db import``.
"""

from __future__ import annotations

import json
import os
import sqlite3
from pathlib import Path

from repro.errors import CheckpointError, ReproError
from repro.parallel.cache import program_fingerprint
from repro.persist import write_record, read_record

#: Sidecar meta record magic (8 bytes, persist.MAGIC_LENGTH).
DB_MAGIC = b"RPRDBMT1"
DB_SCHEMA_VERSION = 1
#: Sidecar file suffix, next to the sqlite file.
META_SUFFIX = ".meta"

#: Equivalence-class kinds the bridge understands.
CLASS_GENERATIVE = "generative"
CLASS_SANCHECK = "sancheck"
CLASS_KINDS = (CLASS_GENERATIVE, CLASS_SANCHECK)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS programs (
    fingerprint TEXT PRIMARY KEY,
    name        TEXT NOT NULL DEFAULT '',
    source      TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS verdicts (
    fingerprint TEXT NOT NULL,
    input_hex   TEXT NOT NULL,
    divergent   INTEGER NOT NULL,
    degraded    INTEGER NOT NULL DEFAULT 0,
    checksums   TEXT NOT NULL,
    PRIMARY KEY (fingerprint, input_hex)
);
CREATE TABLE IF NOT EXISTS diagnostics (
    fingerprint      TEXT NOT NULL,
    checker          TEXT NOT NULL,
    diag_fingerprint TEXT NOT NULL,
    PRIMARY KEY (fingerprint, diag_fingerprint)
);
CREATE TABLE IF NOT EXISTS classes (
    kind        TEXT NOT NULL,
    key         TEXT NOT NULL,
    fingerprint TEXT NOT NULL,
    record      TEXT NOT NULL,
    PRIMARY KEY (kind, key)
);
"""


class CorpusDB:
    """One shared corpus/results database (open via constructor or
    :func:`open_db`; use as a context manager or call :meth:`close`)."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        existed = self.path.exists()
        self._verify_or_write_meta(existed)
        self._conn = sqlite3.connect(str(self.path))
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    # ------------------------------------------------------------- lifecycle

    @property
    def meta_path(self) -> Path:
        return Path(str(self.path) + META_SUFFIX)

    def _verify_or_write_meta(self, existed: bool) -> None:
        if not existed:
            return  # sidecar written after first successful schema commit
        if not self.meta_path.exists():
            raise ReproError(
                f"{self.path} has no {META_SUFFIX} sidecar — not a repro corpus DB "
                f"(or its identity record was lost); refusing to open"
            )
        try:
            meta = read_record(str(self.meta_path), DB_MAGIC, dict)
        except CheckpointError as exc:
            raise ReproError(f"corpus DB sidecar rejected: {exc}") from exc
        if meta.get("schema_version") != DB_SCHEMA_VERSION:
            raise ReproError(
                f"corpus DB {self.path} has schema version "
                f"{meta.get('schema_version')!r}; this build expects "
                f"{DB_SCHEMA_VERSION} (rebuild via `repro db import`)"
            )

    def _write_meta(self) -> None:
        write_record(
            str(self.meta_path),
            DB_MAGIC,
            {"schema_version": DB_SCHEMA_VERSION, "database": self.path.name},
        )

    def close(self) -> None:
        if self._conn is not None:
            self._conn.commit()
            if not self.meta_path.exists():
                self._write_meta()
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "CorpusDB":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def commit(self) -> None:
        self._conn.commit()
        if not self.meta_path.exists():
            self._write_meta()

    # -------------------------------------------------------------- programs

    def add_program(self, program, name: str = "") -> str:
        """Store *program* (source string or checked AST) by fingerprint.

        Returns the fingerprint either way; re-adding an existing program
        is a no-op (first write wins, content-addressed).
        """
        fingerprint = program_fingerprint(program)
        source = program if isinstance(program, str) else None
        if source is None:
            from repro.minic.printer import to_source

            source = to_source(program)
        self._conn.execute(
            "INSERT OR IGNORE INTO programs (fingerprint, name, source) VALUES (?, ?, ?)",
            (fingerprint, name, source),
        )
        return fingerprint

    def has_program(self, fingerprint: str) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM programs WHERE fingerprint = ?", (fingerprint,)
        ).fetchone()
        return row is not None

    def get_source(self, fingerprint: str) -> str | None:
        row = self._conn.execute(
            "SELECT source FROM programs WHERE fingerprint = ?", (fingerprint,)
        ).fetchone()
        return row[0] if row is not None else None

    # -------------------------------------------------------------- verdicts

    def record_verdict(self, fingerprint: str, diff) -> None:
        """Store one :class:`~repro.core.compdiff.DiffResult` verdict."""
        self._conn.execute(
            "INSERT OR REPLACE INTO verdicts "
            "(fingerprint, input_hex, divergent, degraded, checksums) "
            "VALUES (?, ?, ?, ?, ?)",
            (
                fingerprint,
                diff.input.hex(),
                int(diff.divergent),
                int(diff.degraded),
                json.dumps(dict(sorted(diff.checksums.items()))),
            ),
        )

    def verdicts_for(self, fingerprint: str) -> list[dict]:
        rows = self._conn.execute(
            "SELECT input_hex, divergent, degraded, checksums FROM verdicts "
            "WHERE fingerprint = ? ORDER BY input_hex",
            (fingerprint,),
        ).fetchall()
        return [
            {
                "input": bytes.fromhex(input_hex),
                "divergent": bool(divergent),
                "degraded": bool(degraded),
                "checksums": json.loads(checksums),
            }
            for input_hex, divergent, degraded, checksums in rows
        ]

    # ----------------------------------------------------------- diagnostics

    def add_diagnostic(self, fingerprint: str, checker: str, diag_fingerprint: str) -> None:
        self._conn.execute(
            "INSERT OR IGNORE INTO diagnostics "
            "(fingerprint, checker, diag_fingerprint) VALUES (?, ?, ?)",
            (fingerprint, checker, diag_fingerprint),
        )

    def diagnostics_for(self, fingerprint: str) -> list[tuple[str, str]]:
        return self._conn.execute(
            "SELECT checker, diag_fingerprint FROM diagnostics "
            "WHERE fingerprint = ? ORDER BY diag_fingerprint",
            (fingerprint,),
        ).fetchall()

    # --------------------------------------------------------------- classes

    def register_class(
        self, kind: str, key: str, fingerprint: str, record: dict
    ) -> bool:
        """Claim equivalence class *key*; False when another shard/campaign
        already holds it (the cross-shard dedupe primitive)."""
        if kind not in CLASS_KINDS:
            raise ReproError(f"unknown class kind {kind!r}; expected one of {CLASS_KINDS}")
        cursor = self._conn.execute(
            "INSERT OR IGNORE INTO classes (kind, key, fingerprint, record) "
            "VALUES (?, ?, ?, ?)",
            (kind, key, fingerprint, json.dumps(record, sort_keys=True)),
        )
        return cursor.rowcount > 0

    def has_class(self, kind: str, key: str) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM classes WHERE kind = ? AND key = ?", (kind, key)
        ).fetchone()
        return row is not None

    def class_keys(self, kind: str) -> set[str]:
        rows = self._conn.execute(
            "SELECT key FROM classes WHERE kind = ?", (kind,)
        ).fetchall()
        return {key for (key,) in rows}

    def class_record(self, kind: str, key: str) -> dict | None:
        row = self._conn.execute(
            "SELECT record FROM classes WHERE kind = ? AND key = ?", (kind, key)
        ).fetchone()
        return json.loads(row[0]) if row is not None else None

    # ------------------------------------------------------------ bank bridge

    def import_corpus_bank(self, bank) -> int:
        """Fold a generative :class:`~repro.generative.bank.CorpusBank` in.

        Every repro's reduced program lands in ``programs`` and its
        equivalence class in ``classes`` (with the full banked record,
        so :meth:`export_corpus_bank` can round-trip it).  Returns how
        many classes were new to the DB.
        """
        imported = 0
        for repro in bank.repros():
            fingerprint = self.add_program(repro.source, name=f"gen/{repro.key}")
            for checker, diag in zip(repro.checkers, repro.fingerprints):
                self.add_diagnostic(fingerprint, checker, diag)
            record = dict(repro.to_json())
            record["_source"] = repro.source
            record["_good_source"] = repro.good_source
            if self.register_class(CLASS_GENERATIVE, repro.key, fingerprint, record):
                imported += 1
        self.commit()
        return imported

    def import_finding_bank(self, bank) -> int:
        """Fold a sanval :class:`~repro.sanval.bank.FindingBank` in."""
        imported = 0
        for finding in bank.findings():
            fingerprint = self.add_program(finding.source, name=f"sanval/{finding.key}")
            for checker, diag in zip(finding.checkers, finding.oracle_fingerprints):
                self.add_diagnostic(fingerprint, checker, diag)
            record = dict(finding.to_json())
            record["_source"] = finding.source
            if self.register_class(CLASS_SANCHECK, finding.key, fingerprint, record):
                imported += 1
        self.commit()
        return imported

    def export_corpus_bank(self, bank) -> int:
        """Bank every generative class the DB holds that *bank* lacks."""
        from repro.generative.bank import BankedRepro

        exported = 0
        for key in sorted(self.class_keys(CLASS_GENERATIVE)):
            if key in bank:
                continue
            record = self.class_record(CLASS_GENERATIVE, key)
            banked = BankedRepro.from_json(
                record, record["_source"], record["_good_source"]
            )
            if bank.add(banked):
                exported += 1
        return exported

    def export_finding_bank(self, bank) -> int:
        """Bank every sancheck class the DB holds that *bank* lacks."""
        from repro.sanval.bank import BankedFinding

        exported = 0
        for key in sorted(self.class_keys(CLASS_SANCHECK)):
            if key in bank:
                continue
            record = self.class_record(CLASS_SANCHECK, key)
            banked = BankedFinding.from_json(record, record["_source"])
            if bank.add(banked):
                exported += 1
        return exported

    # ----------------------------------------------------------------- stats

    def stats(self) -> dict:
        """Counts per table (``repro db stats``)."""
        counts = {}
        for table in ("programs", "verdicts", "diagnostics", "classes"):
            (counts[table],) = self._conn.execute(
                f"SELECT COUNT(*) FROM {table}"
            ).fetchone()
        per_kind = dict(
            self._conn.execute(
                "SELECT kind, COUNT(*) FROM classes GROUP BY kind ORDER BY kind"
            ).fetchall()
        )
        divergent = self._conn.execute(
            "SELECT COUNT(*) FROM verdicts WHERE divergent = 1"
        ).fetchone()[0]
        return {
            "path": str(self.path),
            "schema_version": DB_SCHEMA_VERSION,
            "programs": counts["programs"],
            "verdicts": counts["verdicts"],
            "divergent_verdicts": divergent,
            "diagnostics": counts["diagnostics"],
            "classes": {"total": counts["classes"], **per_kind},
        }

    def render_stats(self) -> str:
        stats = self.stats()
        lines = [
            f"corpus db: {stats['path']} (schema v{stats['schema_version']})",
            f"  programs:    {stats['programs']}",
            f"  verdicts:    {stats['verdicts']} "
            f"({stats['divergent_verdicts']} divergent)",
            f"  diagnostics: {stats['diagnostics']}",
            f"  classes:     {stats['classes']['total']}",
        ]
        for kind in CLASS_KINDS:
            if kind in stats["classes"]:
                lines.append(f"    {kind:<11} {stats['classes'][kind]}")
        return "\n".join(lines)


def open_db(path: str | os.PathLike) -> CorpusDB:
    """Open (or create) the corpus DB at *path*."""
    return CorpusDB(path)


def verify_bank_against_db(
    root: str | os.PathLike, kind: str, db: CorpusDB
) -> int:
    """Check every key a bank manifest references exists in *db*.

    The refusal half of the bank/DB contract: a bank that claims classes
    the shared database has never seen is out of sync (a partial copy,
    or a bank written against a different DB), and tooling must not
    treat it as authoritative.  Raises :class:`ReproError` listing the
    missing keys; returns the number of verified entries when clean.
    """
    root_path = Path(root)
    manifest = root_path / "manifest.json"
    if not manifest.exists():
        return 0  # both bank classes treat a missing manifest as empty
    try:
        data = json.loads(manifest.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"bank manifest {manifest} is unreadable: {exc}") from exc
    if kind == CLASS_GENERATIVE or (kind == "auto" and "repros" in data):
        kind, records = CLASS_GENERATIVE, data.get("repros", [])
    elif kind == CLASS_SANCHECK or (kind == "auto" and "findings" in data):
        kind, records = CLASS_SANCHECK, data.get("findings", [])
    else:
        raise ReproError(f"{manifest} is not a recognizable bank manifest")
    known = db.class_keys(kind)
    referenced = [
        record["key"]
        for record in records
        if isinstance(record, dict) and isinstance(record.get("key"), str)
    ]
    missing = sorted(key for key in referenced if key not in known)
    if missing:
        raise ReproError(
            f"bank {root_path} references {len(missing)} {kind} class(es) the "
            f"corpus DB does not contain: {', '.join(missing[:8])}"
            + ("…" if len(missing) > 8 else "")
            + " (import the bank with `repro db import` or point --db at the "
            "database this bank was written against)"
        )
    return len(referenced)
