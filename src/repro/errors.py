"""Common exception hierarchy for the repro package.

Every error raised by the MiniC front end, the compiler pipeline, or the
virtual machine derives from :class:`ReproError` so that callers can catch
one type at tool boundaries (e.g. the fuzzer treats any front-end failure on
a target as a hard configuration error, never as a finding).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class MiniCError(ReproError):
    """Base class for errors in MiniC source processing."""

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        self.line = line
        self.col = col
        if line:
            message = f"line {line}:{col}: {message}"
        super().__init__(message)


class LexError(MiniCError):
    """Invalid token in MiniC source."""


class ParseError(MiniCError):
    """Syntactically invalid MiniC source."""


class CheckError(MiniCError):
    """Semantically invalid MiniC source (undefined names, bad types...)."""


class LoweringError(ReproError):
    """AST could not be lowered to IR (internal invariant violation)."""


class VMError(ReproError):
    """Internal virtual machine failure (not a guest program trap)."""


class EngineConfigError(ReproError, ValueError):
    """Invalid engine configuration (bad worker count, empty scatter...).

    Also a :class:`ValueError` so pre-existing callers that caught the
    engines' original validation errors keep working.
    """


class CheckpointError(ReproError):
    """A campaign checkpoint is missing, corrupt, or incompatible."""
