"""Experiment drivers shared by the benchmark harnesses.

One module per paper artifact family:

* :mod:`repro.evaluation.juliet_eval` — Tables 2 and 3;
* :mod:`repro.evaluation.subset_eval` — Figures 1 and 2;
* :mod:`repro.evaluation.realworld_eval` — Tables 5 and 6 (and Table 4's
  target inventory via :mod:`repro.targets`).

``evaluate_juliet(..., include_triage=True)`` and
``evaluate_realworld(..., include_triage=True)`` additionally label every
divergence with a Table 5 root-cause category via the IR-level UB oracle
(:mod:`repro.static_analysis.ub_oracle`); render the extra data with
:func:`render_triage_confusion` / :func:`render_triage`.

``include_bisection=True`` on either driver pass-bisects diverging cases
(:mod:`repro.core.bisect`) and attributes each divergence to the first
pass application that flips the output; render with
:func:`render_bisections` / :func:`render_bisection`.
"""

from repro.evaluation.juliet_eval import (
    JulietEvaluation,
    evaluate_juliet,
    render_bisections,
    render_table2,
    render_table3,
    render_triage_confusion,
)
from repro.evaluation.subset_eval import figure_from_vectors, render_figure
from repro.evaluation.realworld_eval import (
    RealWorldEvaluation,
    evaluate_realworld,
    render_bisection,
    render_table4,
    render_table5,
    render_table6,
    render_triage,
)

__all__ = [
    "JulietEvaluation",
    "RealWorldEvaluation",
    "evaluate_juliet",
    "evaluate_realworld",
    "figure_from_vectors",
    "render_bisection",
    "render_bisections",
    "render_figure",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_table5",
    "render_table6",
    "render_triage",
    "render_triage_confusion",
]
