"""Table 2/3 machinery: run every tool over the Juliet-like suite.

For each test case the *bad* variant measures detection and the *good*
variant measures false positives, exactly as §4.1 describes.  CompDiff
detection is an output discrepancy across the ten implementations;
sanitizer detection is a runtime report; static detection is any finding.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler import DEFAULT_IMPLEMENTATIONS
from repro.core.compdiff import CompDiff
from repro.juliet.cwe import GROUP_LABELS, GROUPS
from repro.juliet.suite import JulietSuite
from repro.minic import load
from repro.parallel.cache import CompileCache
from repro.parallel.stats import EngineStats
from repro.sanitizers import all_sanitizers
from repro.static_analysis import UBOracle, all_static_tools
from repro.static_analysis.triage import TABLE5_CATEGORIES, TriageLabel, triage_diff

STATIC_TOOLS = ("coverity", "cppcheck", "infer")
SANITIZERS = ("asan", "ubsan", "msan")

#: Table 5 categories the triage layer may legitimately assign per CWE
#: group.  Some groups admit two labels: e.g. an overlapping ``memcpy``
#: (CWE-475) is spec misuse with no single UB instruction, so both a
#: MemError match and the Misc fallback are faithful.
GROUP_EXPECTED_CATEGORY: dict[str, set[str]] = {
    "memory_error": {"MemError"},
    "api_ub": {"Misc", "MemError"},
    "bad_struct_ptr": {"MemError", "Misc"},
    "bad_func_call": {"Misc"},
    "ub": {"IntError", "Misc"},
    "integer_error": {"IntError"},
    "div_zero": {"IntError"},
    "null_deref": {"MemError"},
    "uninit": {"UninitMem"},
    "ptr_sub": {"PointerCmp", "MemError"},
    # Groups reachable only via banked generative repros (the Juliet
    # templates never plant these shapes): unsequenced side effects in
    # call arguments, and __LINE__-sensitive output.
    "eval_order": {"EvalOrder"},
    "line_macro": {"LINE"},
}


@dataclass
class ToolCounts:
    """Detection/FP tallies for one tool on one CWE group."""

    detected: int = 0
    total: int = 0
    false_positives: int = 0

    @property
    def detection_rate(self) -> float:
        """Recall: detected / total bad variants."""
        return self.detected / self.total if self.total else 0.0

    @property
    def fp_rate(self) -> float:
        """Incorrect reports / all reports (the paper's FP metric)."""
        reports = self.detected + self.false_positives
        return self.false_positives / reports if reports else 0.0


@dataclass
class JulietEvaluation:
    """All Table 3 measurements for one generated suite."""

    suite: JulietSuite
    #: group -> tool -> counts  (tools: static, sanitizers, "compdiff")
    per_group: dict[str, dict[str, ToolCounts]] = field(default_factory=dict)
    #: group -> #bugs found by CompDiff but by no sanitizer (#Unique col).
    unique_vs_sanitizers: dict[str, int] = field(default_factory=dict)
    #: case uid -> checksum vectors over the implementations (Figure 1).
    bug_vectors: dict[str, list[dict[str, int]]] = field(default_factory=dict)
    implementations: tuple[str, ...] = tuple(c.name for c in DEFAULT_IMPLEMENTATIONS)
    #: Total CompDiff false positives observed on good variants (Finding 5).
    compdiff_false_positives: int = 0
    #: case uid -> triage label for the first divergent diff (only when
    #: the evaluation ran with ``include_triage=True``).
    triage_labels: dict[str, TriageLabel] = field(default_factory=dict)
    #: case uid -> pass-bisection of the first divergent diff (only when
    #: the evaluation ran with ``include_bisection=True``).
    bisections: dict[str, "BisectionResult"] = field(default_factory=dict)
    #: Engine metrics for the differential checks (executions, cache,
    #: worker restarts/retries/quarantines, degraded cross-checks).
    engine_stats: "EngineStats | None" = None

    def counts(self, group: str, tool: str) -> ToolCounts:
        """The (group, tool) cell, created on first access."""
        return self.per_group.setdefault(group, {}).setdefault(tool, ToolCounts())


def evaluate_juliet(
    suite: JulietSuite,
    fuel: int = 200_000,
    include_static: bool = True,
    include_sanitizers: bool = True,
    include_good_variants: bool = True,
    include_triage: bool = False,
    include_bisection: bool = False,
    workers: int = 1,
    compile_cache: CompileCache | None = None,
) -> JulietEvaluation:
    """Run the Table 3 experiment over *suite*.

    ``workers=N`` scatters the CompDiff checks (the wall-clock hot path)
    across a :mod:`repro.parallel` worker pool with identical verdicts;
    the sanitizer/static tool passes stay in-process either way.
    ``include_triage=True`` additionally runs the UB oracle on every
    diverging bad variant and stores a Table 5 label per case uid.
    ``include_bisection=True`` pass-bisects each diverging bad variant
    (:mod:`repro.core.bisect`) and stores the attribution per case uid.
    """
    evaluation = JulietEvaluation(suite=suite)
    engine = CompDiff(fuel=fuel, workers=workers, compile_cache=compile_cache)
    evaluation.engine_stats = engine.stats
    try:
        return _evaluate_juliet(
            evaluation, engine, suite, include_static, include_sanitizers,
            include_good_variants, include_triage, fuel,
            include_bisection=include_bisection,
        )
    finally:
        engine.close()


def _evaluate_juliet(
    evaluation: JulietEvaluation,
    engine: CompDiff,
    suite: JulietSuite,
    include_static: bool,
    include_sanitizers: bool,
    include_good_variants: bool,
    include_triage: bool = False,
    fuel: int = 200_000,
    include_bisection: bool = False,
) -> JulietEvaluation:
    sanitizers = all_sanitizers() if include_sanitizers else []
    static_tools = all_static_tools() if include_static else []
    oracle = UBOracle() if include_triage else None
    # The tool passes need parsed ASTs in this process; the differential
    # checks only need them where they compile, so in pure-CompDiff mode
    # (the scaling benchmarks) raw sources go straight to the engine and
    # parsing happens in the workers too.
    need_ast = bool(sanitizers or static_tools or include_triage)
    jobs = []
    for case in suite.cases:
        bad = load(case.bad_source) if need_ast else case.bad_source
        jobs.append((bad, case.inputs, case.uid))
        if include_good_variants:
            good = load(case.good_source) if need_ast else case.good_source
            jobs.append((good, case.inputs, ""))
    outcomes = iter(engine.check_batch(jobs))
    job_programs = iter(jobs)
    for case in suite.cases:
        bad = next(job_programs)[0]
        outcome = next(outcomes)
        good = None
        good_outcome = None
        if include_good_variants:
            good = next(job_programs)[0]
            good_outcome = next(outcomes)
        if isinstance(bad, str):
            bad = None  # pure-CompDiff mode: no tool pass needs the AST
            good = None
        group = case.group
        # --- CompDiff ---
        counts = evaluation.counts(group, "compdiff")
        counts.total += 1
        compdiff_hit = outcome.divergent
        if compdiff_hit:
            counts.detected += 1
            evaluation.bug_vectors[case.uid] = [
                dict(diff.checksums) for diff in outcome.diffs if diff.divergent
            ]
            if oracle is not None and bad is not None:
                diff = next(d for d in outcome.diffs if d.divergent)
                findings = oracle.analyze(bad)
                evaluation.triage_labels[case.uid] = triage_diff(
                    bad, diff, findings, fuel=fuel
                )
            if include_bisection:
                from repro.core.bisect import bisect_diff

                diff = next(d for d in outcome.diffs if d.divergent)
                evaluation.bisections[case.uid] = bisect_diff(
                    case.bad_source, diff, fuel=fuel, name=case.uid
                )
        if good_outcome is not None:
            if good_outcome.divergent:
                counts.false_positives += 1
                evaluation.compdiff_false_positives += 1
        # --- sanitizers ---
        sanitizer_hit = False
        for sanitizer in sanitizers:
            tool_counts = evaluation.counts(group, sanitizer.name)
            tool_counts.total += 1
            if sanitizer.check(bad, case.inputs) is not None:
                tool_counts.detected += 1
                sanitizer_hit = True
            if good is not None and sanitizer.check(good, case.inputs) is not None:
                tool_counts.false_positives += 1
        if include_sanitizers:
            combined = evaluation.counts(group, "sanitizers_total")
            combined.total += 1
            if sanitizer_hit:
                combined.detected += 1
            if compdiff_hit and not sanitizer_hit:
                evaluation.unique_vs_sanitizers[group] = (
                    evaluation.unique_vs_sanitizers.get(group, 0) + 1
                )
        # --- static tools ---
        for tool in static_tools:
            tool_counts = evaluation.counts(group, tool.name)
            tool_counts.total += 1
            if tool.flags(bad):
                tool_counts.detected += 1
            if good is not None and tool.flags(good):
                tool_counts.false_positives += 1
    return evaluation


# ------------------------------------------------------------------ rendering


def render_table2(suite: JulietSuite) -> str:
    """Table 2: overview of selected CWEs (paper count vs generated)."""
    return suite.render_overview()


def render_table3(evaluation: JulietEvaluation) -> str:
    """Table 3: detection and FP rates per tool per CWE group."""
    header = (
        f"{'Group':<22} {'n':>5} | "
        f"{'Coverity':>12} {'Cppcheck':>12} {'Infer':>12} | "
        f"{'ASan':>5} {'UBSan':>6} {'MSan':>5} {'Total':>6} | "
        f"{'CompDiff':>8} {'#Unique':>8}"
    )
    lines = [header, "-" * len(header)]
    for group in GROUPS:
        row = evaluation.per_group.get(group, {})
        compdiff = row.get("compdiff", ToolCounts())

        def pct(tool: str) -> str:
            counts = row.get(tool)
            if counts is None or counts.total == 0:
                return "-"
            return f"{100 * counts.detection_rate:.0f}%"

        def static_cell(tool: str) -> str:
            counts = row.get(tool)
            if counts is None or counts.total == 0:
                return "-"
            return f"{100 * counts.detection_rate:.0f}%/{100 * counts.fp_rate:.0f}%"

        lines.append(
            f"{GROUP_LABELS[group]:<22} {compdiff.total:>5} | "
            f"{static_cell('coverity'):>12} {static_cell('cppcheck'):>12} "
            f"{static_cell('infer'):>12} | "
            f"{pct('asan'):>5} {pct('ubsan'):>6} {pct('msan'):>5} "
            f"{pct('sanitizers_total'):>6} | "
            f"{pct('compdiff'):>8} {evaluation.unique_vs_sanitizers.get(group, 0):>8}"
        )
    lines.append("-" * len(header))
    lines.append(
        f"CompDiff false positives on good variants: "
        f"{evaluation.compdiff_false_positives} (Finding 5 expects 0)"
    )
    return "\n".join(lines)


def render_bisections(evaluation: JulietEvaluation) -> str:
    """Pass-attribution summary: which transform flipped each bad variant.

    Rendered only from evaluations run with ``include_bisection=True``.
    The histogram names the culprit pass per diverging case — the
    automated version of the manual "which optimization did this"
    triage step.
    """
    by_pass: dict[str, int] = {}
    lines = []
    for uid in sorted(evaluation.bisections):
        result = evaluation.bisections[uid]
        if result.attributed:
            culprit = result.culprit
            by_pass[culprit.pass_name] = by_pass.get(culprit.pass_name, 0) + 1
            detail = culprit.label()
        else:
            by_pass[result.status] = by_pass.get(result.status, 0) + 1
            detail = result.status
        lines.append(
            f"  {uid:<44} {result.impl_target:>9} vs {result.impl_ref:<9} {detail}"
        )
    header = [f"Pass attribution over {len(evaluation.bisections)} diverging cases:"]
    for name, count in sorted(by_pass.items(), key=lambda kv: (-kv[1], kv[0])):
        header.append(f"  {name:<24} {count}")
    return "\n".join(header + lines)


def render_triage_confusion(evaluation: JulietEvaluation) -> str:
    """Confusion matrix: CWE group (ground truth) × triaged category.

    Rendered only from evaluations run with ``include_triage=True``; the
    trailing agreement line scores labels against
    :data:`GROUP_EXPECTED_CATEGORY`.
    """
    group_of = {case.uid: case.group for case in evaluation.suite.cases}
    matrix: dict[str, dict[str, int]] = {}
    agreed = 0
    for uid, label in evaluation.triage_labels.items():
        group = group_of.get(uid, "?")
        matrix.setdefault(group, {})
        matrix[group][label.category] = matrix[group].get(label.category, 0) + 1
        if label.category in GROUP_EXPECTED_CATEGORY.get(group, set()):
            agreed += 1
    header = f"{'Group':<22} " + " ".join(f"{c:>10}" for c in TABLE5_CATEGORIES)
    lines = [header, "-" * len(header)]
    for group in GROUPS:
        row = matrix.get(group)
        if row is None:
            continue
        lines.append(
            f"{GROUP_LABELS[group]:<22} "
            + " ".join(f"{row.get(c, 0):>10}" for c in TABLE5_CATEGORIES)
        )
    total = len(evaluation.triage_labels)
    pct = 100 * agreed / total if total else 0.0
    lines.append("-" * len(header))
    lines.append(f"Triage agreement with CWE ground truth: {agreed}/{total} ({pct:.0f}%)")
    return "\n".join(lines)
