"""Oracle-validated precision scoreboard for the UB oracle's checkers.

The differential engine is the ground-truth instrument: a Juliet-style
*bad* variant whose output actually diverges across implementations is a
real, observable instability, so a checker that flags it scores a true
positive; a *good* variant is bug-free by construction, so any finding
on one is a false positive.  Scoring both analysis modes over the same
corpus turns the intra→interprocedural upgrade into a measurable
per-checker delta rather than an anecdote.

Tallies, per checker and per mode:

* **TP** — fired on a bad variant whose execution diverged, when the
  checker's Table 5 category is plausible for the case's CWE group
  (:data:`~repro.evaluation.juliet_eval.GROUP_EXPECTED_CATEGORY`);
* **FN** — eligible, divergent, and silent;
* **FP** — fired on a good variant (*any* checker: good variants have
  no bug, so even a category-mismatched finding is noise);
* **unconfirmed** — fired on a bad variant the engine could not confirm
  (no divergence).  Excluded from precision: the planted bug is real,
  but the oracle has no executable evidence either way.

The corpus is the standard seeded suite at a small scale plus the
interprocedural extension corpus
(:func:`repro.juliet.templates.interproc.interproc_cases`), whose flaws
only become visible across call boundaries.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.compdiff import CompDiff
from repro.evaluation.juliet_eval import GROUP_EXPECTED_CATEGORY
from repro.juliet.suite import build_suite
from repro.juliet.templates.interproc import interproc_cases
from repro.minic import load
from repro.static_analysis.ub_oracle import CHECKER_CATEGORY, UBOracle

#: Analysis modes scored side by side.
MODES = ("intra", "interproc")

#: Precision-report JSON format version.
PRECISION_SCHEMA_VERSION = 1


@dataclass
class CheckerScore:
    """One checker's tallies in one analysis mode."""

    checker: str
    tp: int = 0
    fp: int = 0
    fn: int = 0
    unconfirmed: int = 0

    @property
    def precision(self) -> float:
        return self.tp / (self.tp + self.fp) if self.tp + self.fp else 1.0

    @property
    def recall(self) -> float:
        return self.tp / (self.tp + self.fn) if self.tp + self.fn else 1.0

    @property
    def f1(self) -> float:
        denom = self.precision + self.recall
        return 2 * self.precision * self.recall / denom if denom else 0.0

    def to_json(self) -> dict:
        return {
            "tp": self.tp,
            "fp": self.fp,
            "fn": self.fn,
            "unconfirmed": self.unconfirmed,
            "precision": round(self.precision, 4),
            "recall": round(self.recall, 4),
            "f1": round(self.f1, 4),
        }

    @staticmethod
    def from_json(checker: str, data: dict) -> "CheckerScore":
        return CheckerScore(
            checker=checker,
            tp=data["tp"],
            fp=data["fp"],
            fn=data["fn"],
            unconfirmed=data["unconfirmed"],
        )


@dataclass
class PrecisionReport:
    """Per-mode, per-checker scoreboard over one corpus run."""

    #: mode -> checker -> score.
    scores: dict[str, dict[str, CheckerScore]] = field(default_factory=dict)
    cases: int = 0
    divergent: int = 0

    def score(self, mode: str, checker: str) -> CheckerScore:
        table = self.scores.setdefault(mode, {})
        if checker not in table:
            table[checker] = CheckerScore(checker=checker)
        return table[checker]

    def to_json(self) -> dict:
        return {
            "version": PRECISION_SCHEMA_VERSION,
            "cases": self.cases,
            "divergent": self.divergent,
            "modes": {
                mode: {
                    checker: self.scores[mode][checker].to_json()
                    for checker in sorted(self.scores[mode])
                }
                for mode in sorted(self.scores)
            },
        }

    @staticmethod
    def from_json(data: dict) -> "PrecisionReport":
        if data.get("version") != PRECISION_SCHEMA_VERSION:
            raise ValueError(
                f"precision report version {data.get('version')!r}; "
                f"expected {PRECISION_SCHEMA_VERSION}"
            )
        report = PrecisionReport(cases=data["cases"], divergent=data["divergent"])
        for mode, table in data["modes"].items():
            report.scores[mode] = {
                checker: CheckerScore.from_json(checker, row)
                for checker, row in table.items()
            }
        return report

    @staticmethod
    def load(path: str | os.PathLike) -> "PrecisionReport":
        return PrecisionReport.from_json(json.loads(Path(path).read_text()))

    def save(self, path: str | os.PathLike) -> None:
        Path(path).write_text(json.dumps(self.to_json(), indent=2) + "\n")

    def render(self) -> str:
        """Side-by-side scoreboard with the interprocedural delta."""
        lines = [
            f"precision scoreboard over {self.cases} cases "
            f"({self.divergent} divergent bad variants)",
            f"{'checker':<18} {'mode':<10} {'TP':>4} {'FP':>4} {'FN':>4} "
            f"{'unc':>4} {'prec':>7} {'recall':>7} {'F1':>7}",
        ]
        checkers = sorted(
            {c for table in self.scores.values() for c in table}
        )
        for checker in checkers:
            for mode in MODES:
                score = self.scores.get(mode, {}).get(checker)
                if score is None:
                    continue
                lines.append(
                    f"{checker:<18} {mode:<10} {score.tp:>4} {score.fp:>4} "
                    f"{score.fn:>4} {score.unconfirmed:>4} "
                    f"{score.precision:>7.2%} {score.recall:>7.2%} "
                    f"{score.f1:>7.2%}"
                )
            intra = self.scores.get("intra", {}).get(checker)
            inter = self.scores.get("interproc", {}).get(checker)
            if intra and inter and (intra.tp, intra.fp) != (inter.tp, inter.fp):
                lines.append(
                    f"{'':<18} {'delta':<10} "
                    f"{inter.tp - intra.tp:>+4} {inter.fp - intra.fp:>+4}"
                )
        return "\n".join(lines)


def regressions(baseline: PrecisionReport, current: PrecisionReport) -> list[str]:
    """Checkers whose F1 dropped below the committed baseline (CI gate)."""
    problems: list[str] = []
    for mode, table in baseline.scores.items():
        for checker, old in table.items():
            new = current.scores.get(mode, {}).get(checker)
            if new is None:
                problems.append(f"{mode}/{checker}: missing from current run")
            elif new.f1 < old.f1 - 1e-9:
                problems.append(
                    f"{mode}/{checker}: F1 {old.f1:.4f} -> {new.f1:.4f}"
                )
    return problems


def precision_corpus(
    scale: float = 0.002,
    seed: int = 20230325,
    per_shape: int = 3,
    corpus=None,
) -> list:
    """The scored corpus: seeded standard suite + interproc extension.

    *corpus* (a :class:`~repro.generative.bank.CorpusBank` or a corpus
    directory path) appends the banked generative repros: each reduced
    divergent program scores as a bad variant whose divergence the
    engine re-confirms, with its stabilized twin as the good variant.
    Repros banked with group ``unclassified`` (no surviving diagnostic)
    have no eligible checkers and contribute divergence counts only.
    """
    cases = list(build_suite(scale=scale, seed=seed).cases) + interproc_cases(
        per_shape=per_shape
    )
    if corpus is not None:
        from repro.generative.bank import CorpusBank

        bank = corpus if isinstance(corpus, CorpusBank) else CorpusBank(corpus)
        cases += bank.test_cases()
    return cases


def evaluate_precision(
    cases,
    modes: tuple[str, ...] = MODES,
    engine: CompDiff | None = None,
    summary_cache=None,
) -> PrecisionReport:
    """Score every oracle checker in every *mode* against the engine.

    *summary_cache* (a
    :class:`~repro.static_analysis.summary_cache.SummaryCache`) is
    threaded into the interprocedural oracle so a campaign both
    exercises and benefits from the incremental summaries.
    """
    engine = engine if engine is not None else CompDiff()
    oracles = {
        mode: UBOracle(
            mode=mode,
            summary_cache=summary_cache if mode == "interproc" else None,
        )
        for mode in modes
    }
    report = PrecisionReport()
    for case in cases:
        report.cases += 1
        bad = load(case.bad_source)
        good = load(case.good_source)
        divergent = engine.check(bad, case.inputs, name=case.uid).divergent
        if divergent:
            report.divergent += 1
        eligible = {
            checker
            for checker, category in CHECKER_CATEGORY.items()
            if category in GROUP_EXPECTED_CATEGORY.get(case.group, set())
        }
        for mode, oracle in oracles.items():
            # Named reports give each program distinct summary-cache keys.
            fired_bad = {
                f.checker for f in oracle.report(bad, name=case.uid).findings
            }
            fired_good = {
                f.checker
                for f in oracle.report(good, name=f"{case.uid}_good").findings
            }
            for checker in fired_good:
                report.score(mode, checker).fp += 1
            for checker in eligible:
                if checker in fired_bad:
                    if divergent:
                        report.score(mode, checker).tp += 1
                    else:
                        report.score(mode, checker).unconfirmed += 1
                elif divergent:
                    report.score(mode, checker).fn += 1
    return report
