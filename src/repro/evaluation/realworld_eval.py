"""Tables 4/5/6 and Figure 2: CompDiff-AFL++ on the 23 simulated targets.

Per target, one CompDiff-AFL++ campaign finds discrepancy-triggering
inputs (Table 5's Reported row is the number of seeded bugs attributed to
at least one divergent input), and one sanitizer campaign per tool
reproduces RQ3's overlap analysis (Table 6).  The diffs' checksum vectors
feed the Figure 2 subset ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.normalize import OutputNormalizer
from repro.fuzzing import CampaignResult, CompDiffFuzzer, FuzzerOptions
from repro.minic import load
from repro.parallel.cache import CompileCache
from repro.parallel.stats import EngineStats
from repro.static_analysis import UBOracle
from repro.static_analysis.triage import TriageLabel, triage_diff
from repro.targets import SeededBug, Target, build_all_targets

CATEGORIES = ("EvalOrder", "UninitMem", "IntError", "MemError", "PointerCmp", "LINE", "Misc")
SANITIZERS = ("asan", "ubsan", "msan")


@dataclass
class TargetOutcome:
    """One target's campaign results plus sanitizer-campaign hits."""

    target: Target
    campaign: CampaignResult
    #: site -> set of sanitizer names whose campaign reported it.
    sanitizer_hits: dict[int, set[str]] = field(default_factory=dict)
    #: One Table 5 label per campaign diff (``include_triage=True`` runs).
    triage_labels: list[TriageLabel] = field(default_factory=list)
    #: Pass-bisection per divergence signature (``include_bisection=True``
    #: runs): one representative diff per cluster is attributed.
    bisections: dict = field(default_factory=dict)


@dataclass
class RealWorldEvaluation:
    """All §4.3 measurements across the 23 targets."""

    outcomes: list[TargetOutcome] = field(default_factory=list)
    implementations: tuple[str, ...] = ()
    #: Aggregated oracle engine metrics across every campaign (executions,
    #: cache effectiveness, worker restarts/retries/quarantines...).
    oracle_stats: "EngineStats | None" = None

    # ------------------------------------------------------------ queries

    def all_bugs(self) -> list[SeededBug]:
        """Every seeded bug across all evaluated targets."""
        return [bug for outcome in self.outcomes for bug in outcome.target.bugs]

    def found_bugs(self) -> list[SeededBug]:
        """Seeded bugs attributed to at least one divergent input."""
        found = []
        for outcome in self.outcomes:
            for bug in outcome.target.bugs:
                if bug.site in outcome.campaign.sites_diverged:
                    found.append(bug)
        return found

    def sanitizer_found_sites(self, tool: str) -> set[int]:
        """Bug sites the given sanitizer's campaign reported."""
        sites: set[int] = set()
        for outcome in self.outcomes:
            for site, tools in outcome.sanitizer_hits.items():
                if tool in tools:
                    sites.add(site)
        return sites

    def bug_vectors(self) -> dict[int, list[dict[str, int]]]:
        """Per found bug, the checksum vectors of its diff inputs (Fig 2)."""
        vectors: dict[int, list[dict[str, int]]] = {}
        for outcome in self.outcomes:
            campaign = outcome.campaign
            for diff in campaign.diffs:
                sites = campaign.sites_by_input.get(diff.input, frozenset())
                for site in sites:
                    vectors.setdefault(site, []).append(dict(diff.checksums))
        # Restrict to seeded bugs (discard benign-site noise, which cannot
        # occur since benign handlers carry no sites, but be strict).
        seeded = {bug.site for bug in self.all_bugs()}
        return {site: vecs for site, vecs in vectors.items() if site in seeded}


def evaluate_realworld(
    targets: list[Target] | None = None,
    max_executions: int = 4000,
    compdiff_stride: int = 3,
    fuel: int = 300_000,
    rng_seed: int = 1,
    include_sanitizers: bool = True,
    include_triage: bool = False,
    include_bisection: bool = False,
    workers: int = 1,
    compile_cache: CompileCache | None = None,
) -> RealWorldEvaluation:
    """Run the §4.3 experiment (scaled by *max_executions* per campaign).

    ``workers=N`` fans each campaign's oracle executions across a worker
    pool; one compile cache is shared by every campaign so each target's
    binaries are built once regardless of how many tool campaigns run.
    ``include_triage=True`` runs the UB oracle once per target and labels
    every divergence-triggering input with a Table 5 category.
    ``include_bisection=True`` pass-bisects one representative diff per
    divergence signature and stores the attribution on the outcome.
    """
    if targets is None:
        targets = build_all_targets()
    if compile_cache is None:
        compile_cache = CompileCache()
    evaluation = RealWorldEvaluation()
    for target in targets:
        normalizer = OutputNormalizer.standard() if target.needs_normalizer else None
        options = FuzzerOptions(
            rng_seed=rng_seed,
            max_executions=max_executions,
            compdiff_stride=compdiff_stride,
            fuel=fuel,
            normalizer=normalizer,
            workers=workers,
            compile_cache=compile_cache,
        )
        with CompDiffFuzzer(target.source, target.seeds, options, name=target.name) as fuzzer:
            campaign = fuzzer.run()
            if not evaluation.implementations:
                evaluation.implementations = fuzzer.implementations
            if fuzzer.oracle_stats is not None:
                if evaluation.oracle_stats is None:
                    evaluation.oracle_stats = EngineStats()
                evaluation.oracle_stats.merge(fuzzer.oracle_stats)
        outcome = TargetOutcome(target=target, campaign=campaign)
        if include_triage and campaign.diffs:
            program = load(target.source)
            findings = UBOracle().analyze(program)
            outcome.triage_labels = [
                triage_diff(program, diff, findings, fuel=fuel)
                for diff in campaign.diffs
            ]
        if include_bisection and campaign.diffs:
            from repro.core.triage import attribute_clusters, triage

            clusters = triage(campaign.diffs, campaign.sites_by_input)
            outcome.bisections = attribute_clusters(
                target.source,
                clusters,
                fuel=fuel,
                normalizer=normalizer,
                name=target.name,
            )
        if include_sanitizers:
            for sanitizer in SANITIZERS:
                san_options = FuzzerOptions(
                    rng_seed=rng_seed,
                    max_executions=max_executions,
                    fuel=fuel,
                    enable_compdiff=False,
                    sanitizer=sanitizer,
                    compile_cache=compile_cache,
                )
                with CompDiffFuzzer(
                    target.source, target.seeds, san_options, name=target.name
                ) as san_fuzzer:
                    san_campaign = san_fuzzer.run()
                for site in san_campaign.sites_sanitizer:
                    outcome.sanitizer_hits.setdefault(site, set()).add(sanitizer)
        evaluation.outcomes.append(outcome)
    return evaluation


# ------------------------------------------------------------------ rendering


def render_table4(targets: list[Target] | None = None) -> str:
    """Table 4: the target inventory (paper metadata + generated LoC)."""
    if targets is None:
        targets = build_all_targets()
    lines = [
        f"{'Target':<14} {'Input type':<16} {'Version':>10} {'Paper size':>10} "
        f"{'Sim LoC':>8} {'Seeded bugs':>12}"
    ]
    for target in targets:
        lines.append(
            f"{target.name:<14} {target.input_type:<16} {target.version:>10} "
            f"{target.paper_size:>10} {target.generated_loc:>8} {len(target.bugs):>12}"
        )
    lines.append(f"{'Total':<14} {'':<16} {'':>10} {'':>10} "
                 f"{sum(t.generated_loc for t in targets):>8} "
                 f"{sum(len(t.bugs) for t in targets):>12}")
    return "\n".join(lines)


def render_table5(evaluation: RealWorldEvaluation) -> str:
    """Table 5: bugs by root cause — found (Reported) / Confirmed / Fixed."""
    found_sites = {bug.site for bug in evaluation.found_bugs()}
    lines = [f"{'':<10} " + " ".join(f"{c:>10}" for c in CATEGORIES) + f" {'Total':>7}"]
    for row_name, predicate in (
        ("Seeded", lambda bug: True),
        ("Found", lambda bug: bug.site in found_sites),
        ("Confirmed", lambda bug: bug.site in found_sites and bug.confirmed),
        ("Fixed", lambda bug: bug.site in found_sites and bug.fixed),
    ):
        per_category = {c: 0 for c in CATEGORIES}
        total = 0
        for bug in evaluation.all_bugs():
            if predicate(bug):
                per_category[bug.category] += 1
                total += 1
        lines.append(
            f"{row_name:<10} "
            + " ".join(f"{per_category[c]:>10}" for c in CATEGORIES)
            + f" {total:>7}"
        )
    labels = [
        label for outcome in evaluation.outcomes for label in outcome.triage_labels
    ]
    if labels:
        # Extra row only for include_triage=True runs: divergent *inputs*
        # per triaged root-cause category (an input may repeat a bug).
        per_category = {c: 0 for c in CATEGORIES}
        for label in labels:
            per_category[label.category] = per_category.get(label.category, 0) + 1
        lines.append(
            f"{'Triaged':<10} "
            + " ".join(f"{per_category[c]:>10}" for c in CATEGORIES)
            + f" {len(labels):>7}"
        )
    return "\n".join(lines)


def render_triage(evaluation: RealWorldEvaluation) -> str:
    """Per-target triage summary for ``include_triage=True`` runs.

    One row per target: how many divergence-triggering inputs the
    campaign found, how many the static oracle explained (matched to a
    nearby UB finding), and the category histogram.
    """
    lines = [
        f"{'Target':<14} {'Diffs':>6} {'Explained':>10}  Categories"
    ]
    total = explained_total = 0
    for outcome in evaluation.outcomes:
        labels = outcome.triage_labels
        if not labels:
            continue
        explained = sum(1 for label in labels if label.explained)
        total += len(labels)
        explained_total += explained
        histogram: dict[str, int] = {}
        for label in labels:
            histogram[label.category] = histogram.get(label.category, 0) + 1
        cats = ", ".join(
            f"{c}:{histogram[c]}" for c in CATEGORIES if histogram.get(c)
        )
        lines.append(
            f"{outcome.target.name:<14} {len(labels):>6} {explained:>10}  {cats}"
        )
    pct = 100 * explained_total / total if total else 0.0
    lines.append(
        f"{'Total':<14} {total:>6} {explained_total:>10}  "
        f"({pct:.0f}% of divergences explained by a static finding)"
    )
    return "\n".join(lines)


def render_bisection(evaluation: RealWorldEvaluation) -> str:
    """Per-target pass attribution for ``include_bisection=True`` runs.

    One row per (target, divergence signature): the bisected pair and
    the first pass application that flips the output — automated
    root-cause attribution at transform granularity.
    """
    lines = [f"{'Target':<14} {'Pair':<22} Attribution"]
    histogram: dict[str, int] = {}
    for outcome in evaluation.outcomes:
        for signature, result in outcome.bisections.items():
            pair = f"{result.impl_target} vs {result.impl_ref}"
            if result.attributed:
                detail = result.culprit.label()
                histogram[result.culprit.pass_name] = (
                    histogram.get(result.culprit.pass_name, 0) + 1
                )
            else:
                detail = result.status
                histogram[result.status] = histogram.get(result.status, 0) + 1
            lines.append(f"{outcome.target.name:<14} {pair:<22} {detail}")
    total = sum(histogram.values())
    cats = ", ".join(
        f"{name}:{count}"
        for name, count in sorted(histogram.items(), key=lambda kv: (-kv[1], kv[0]))
    )
    lines.append(f"{'Total':<14} {total:>3} signatures attributed  ({cats})")
    return "\n".join(lines)


def render_table6(evaluation: RealWorldEvaluation) -> str:
    """Table 6: of the bugs CompDiff found, how many sanitizers also find."""
    found = evaluation.found_bugs()
    hits = {tool: evaluation.sanitizer_found_sites(tool) for tool in SANITIZERS}
    rows = [
        ("MemError", "asan"),
        ("IntError", "ubsan"),
        ("UninitMem", "msan"),
    ]
    lines = [f"{'Category':<16} {'ASan':>6} {'UBSan':>6} {'MSan':>6} {'Sanitizers':>11} {'CompDiff':>9}"]
    total_overlap = 0
    covered_sites: set[int] = set()
    for category, tool in rows:
        bugs = [bug for bug in found if bug.category == category]
        overlap = sum(1 for bug in bugs if bug.site in hits[tool])
        covered_sites |= {bug.site for bug in bugs if bug.site in hits[tool]}
        total_overlap += overlap
        cells = {t: overlap if t == tool else "-" for t in SANITIZERS}
        lines.append(
            f"{category:<16} {cells['asan']:>6} {cells['ubsan']:>6} {cells['msan']:>6} "
            f"{overlap:>11} {len(bugs):>9}"
        )
    remaining = [bug for bug in found if bug.site not in covered_sites
                 and bug.category not in ("MemError", "IntError", "UninitMem")]
    lines.append(
        f"{'Remaining bugs':<16} {'-':>6} {'-':>6} {'-':>6} {0:>11} {len(remaining):>9}"
    )
    lines.append(
        f"{'Total':<16} {'':>6} {'':>6} {'':>6} {total_overlap:>11} {len(found):>9}"
    )
    return "\n".join(lines)
