"""Figures 1 and 2: compiler-implementation subset ablation rendering."""

from __future__ import annotations

from repro.core.subsets import SubsetEvaluation, evaluate_subsets


def figure_from_vectors(
    bug_vectors: dict[object, list[dict[str, int]]],
    implementations: tuple[str, ...],
) -> SubsetEvaluation:
    """Run the full size-2..k ablation over per-bug checksum vectors."""
    return evaluate_subsets(bug_vectors, implementations)


def render_figure(evaluation: SubsetEvaluation, title: str) -> str:
    """Text rendering of the box-plot figure: per subset size, the
    distribution of detected-bug counts, with an ASCII box strip and the
    best/worst subsets annotated (the paper highlights those)."""
    lines = [title, ""]
    full = evaluation.summaries[max(evaluation.summaries)].best_count
    lines.append(
        f"total bugs: {evaluation.total_bugs}; detected by full set: {full}"
    )
    lines.append("")
    lines.append(
        f"{'size':>4} {'#subsets':>8} {'min':>6} {'q1':>7} {'med':>7} {'q3':>7} {'max':>6}  distribution"
    )
    overall_max = max(s.maximum for s in evaluation.summaries.values()) or 1
    for size in sorted(evaluation.summaries):
        summary = evaluation.summaries[size]
        q1, median, q3 = summary.quartiles()
        strip = _ascii_box(summary.minimum, q1, median, q3, summary.maximum, overall_max)
        lines.append(
            f"{size:>4} {len(summary.counts):>8} {summary.minimum:>6} {q1:>7.1f}"
            f" {median:>7.1f} {q3:>7.1f} {summary.maximum:>6}  {strip}"
        )
    best2 = evaluation.summaries.get(2)
    if best2 is not None:
        lines.append("")
        lines.append(f"best  size-2 subset: {{{', '.join(best2.best_subset)}}} -> {best2.best_count}")
        lines.append(f"worst size-2 subset: {{{', '.join(best2.worst_subset)}}} -> {best2.worst_count}")
    return "\n".join(lines)


def _ascii_box(minimum: float, q1: float, median: float, q3: float, maximum: float, scale: float) -> str:
    """A 40-column whisker strip: ``-`` whiskers, ``=`` box, ``|`` median."""
    width = 40

    def col(value: float) -> int:
        return min(width - 1, int(value / scale * (width - 1)))

    cells = [" "] * width
    for i in range(col(minimum), col(maximum) + 1):
        cells[i] = "-"
    for i in range(col(q1), col(q3) + 1):
        cells[i] = "="
    cells[col(median)] = "|"
    return "".join(cells)
