"""AFL++-style coverage-guided greybox fuzzer with the CompDiff oracle.

Implements the unhighlighted part of the paper's Algorithm 1 — seed
selection, mutation, execution with edge-coverage feedback, crash/queue
management — and the highlighted part: after every generated input, run
the k differential binaries and save the input to ``diffs/`` when their
outputs disagree.
"""

from repro.fuzzing.checkpoint import (
    CampaignCheckpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.fuzzing.coverage import CoverageMap
from repro.fuzzing.corpus import CorpusMinimization, minimize_corpus, render_stats
from repro.fuzzing.mutators import MutationEngine
from repro.fuzzing.seedpool import Seed, SeedPool
from repro.fuzzing.fuzzer import CampaignResult, CompDiffFuzzer, FuzzerOptions

__all__ = [
    "CampaignCheckpoint",
    "CampaignResult",
    "CompDiffFuzzer",
    "CorpusMinimization",
    "CoverageMap",
    "FuzzerOptions",
    "MutationEngine",
    "Seed",
    "SeedPool",
    "load_checkpoint",
    "minimize_corpus",
    "render_stats",
    "save_checkpoint",
]
