"""Atomic campaign checkpointing for CompDiff-AFL++ (ISSUE 3 layer 2).

The paper's real-world campaigns run for days per target (Table 4); a
killed process must not lose the seed pool, corpus, coverage map, or RNG
position.  :class:`CampaignCheckpoint` captures *exactly* the loop state
of :class:`~repro.fuzzing.fuzzer.CompDiffFuzzer` at an iteration
boundary, so a resumed campaign replays the remaining iterations
deterministically — the final verdicts, corpus, and counters are
byte-identical to a never-interrupted run (pinned by
``tests/test_checkpoint.py``).

On-disk format (``checkpoint.ckpt`` inside the checkpoint directory)::

    8 bytes   magic  b"RPRCKPT1"
    4 bytes   CRC32 (big-endian) over the payload
    N bytes   pickled CampaignCheckpoint

Writes are atomic: the record goes to a ``.tmp`` file in the same
directory, is fsync'd, then ``os.replace``-d over the final name — a
kill mid-write leaves the previous checkpoint intact, and a torn or
bit-flipped record fails the CRC on load with a
:class:`~repro.errors.CheckpointError` instead of resuming from garbage.
Compatibility is enforced by content: the checkpoint stores the target
program's fingerprint and a digest of every verdict-relevant option, and
resume refuses a mismatch.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Any

from repro.persist import read_record, write_record

#: Format magic; bump the trailing digit on incompatible layout changes.
MAGIC = b"RPRCKPT1"
#: File name inside a checkpoint directory.
CHECKPOINT_FILE = "checkpoint.ckpt"


@dataclass
class CampaignCheckpoint:
    """Everything needed to continue a campaign from an iteration boundary."""

    #: Content hash of the target program (refuses cross-program resume).
    program_fingerprint: str
    #: Digest of verdict-relevant FuzzerOptions (refuses config drift).
    options_digest: str
    #: Mutations generated so far (drives the compdiff_stride phase).
    generated: int
    #: ``random.Random.getstate()`` of the campaign RNG.
    rng_state: tuple
    #: The full CampaignResult accumulated so far (diffs, crashes, sites...).
    result: Any
    #: Seed queue: pickled Seed objects + queue counters.
    pool_seeds: list = field(default_factory=list)
    pool_next_index: int = 0
    pool_dedupe: set = field(default_factory=set)
    #: CoverageMap.virgin — the global edge/bucket map.
    coverage_virgin: dict[int, int] = field(default_factory=dict)
    #: Inputs already pushed through the differential oracle.
    seen_diff_inputs: set = field(default_factory=set)
    #: Divergence signatures already fed back (divergence_feedback mode).
    seen_signatures: set = field(default_factory=set)
    #: Oracle EngineStats counters at the boundary (None when no oracle).
    oracle_stats: Any = None


def options_digest(options, implementation_names: tuple[str, ...]) -> str:
    """Digest of every option that can change campaign verdicts.

    ``max_executions`` is deliberately excluded: it is a budget, not a
    behavior — resuming with a larger budget is the supported way to
    extend a finished campaign.  ``workers`` and ``compile_cache`` are
    excluded because they are verdict-transparent by construction.
    """
    normalizer = (
        type(options.normalizer).__name__ if options.normalizer is not None else "none"
    )
    patterns = (
        tuple(options.normalizer.patterns) if options.normalizer is not None else ()
    )
    parts = (
        options.rng_seed,
        options.fuel,
        options.compdiff_stride,
        options.enable_compdiff,
        options.sanitizer,
        tuple(implementation_names),
        options.splice_probability,
        options.max_saved_diffs,
        options.max_saved_crashes,
        options.divergence_feedback,
        options.analysis_boost,
        normalizer,
        patterns,
    )
    return hashlib.sha256(repr(parts).encode("utf-8")).hexdigest()


def checkpoint_path(directory: str) -> str:
    return os.path.join(directory, CHECKPOINT_FILE)


def save_checkpoint(directory: str, checkpoint: CampaignCheckpoint) -> str:
    """Atomically journal *checkpoint* into *directory*; returns the path.

    tmp + fsync + rename (via :func:`repro.persist.write_record`): a
    crash at any point leaves either the old record or the new one,
    never a torn file under the final name.
    """
    return write_record(checkpoint_path(directory), MAGIC, checkpoint)


def load_checkpoint(directory: str) -> CampaignCheckpoint:
    """Load and verify the checkpoint journaled in *directory*."""
    return read_record(checkpoint_path(directory), MAGIC, CampaignCheckpoint)
