"""Corpus utilities: afl-cmin-style seed minimization and campaign stats.

``minimize_corpus`` selects a small subset of a seed corpus that preserves
the full edge coverage — the standard preprocessing step before a long
campaign (AFL++'s afl-cmin).  ``CampaignStats`` renders the fuzzer_stats-
style summary the CLI and examples print.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler import FUZZ_CONFIG, compile_program
from repro.fuzzing.coverage import CoverageMap
from repro.fuzzing.fuzzer import CampaignResult
from repro.minic import ast as minic_ast
from repro.minic import load
from repro.vm import ForkServer


@dataclass
class CorpusMinimization:
    kept: list[bytes]
    dropped: int
    edges: int

    @property
    def original_size(self) -> int:
        return len(self.kept) + self.dropped


def minimize_corpus(
    program: minic_ast.Program | str,
    seeds: list[bytes],
    fuel: int = 200_000,
) -> CorpusMinimization:
    """Greedy set cover over edge coverage (afl-cmin analog).

    Seeds are considered smallest-first (AFL's heuristic: small inputs
    mutate better); a seed is kept only if it reaches at least one edge
    no kept seed reaches.
    """
    if isinstance(program, str):
        program = load(program)
    binary = compile_program(program, FUZZ_CONFIG, instrument_coverage=True)
    server = ForkServer(binary, fuel=fuel)
    edge_sets: list[tuple[bytes, frozenset[int]]] = []
    for seed in sorted(set(seeds), key=len):
        coverage = CoverageMap()
        coverage.reset_trace()
        server.run(seed, coverage=coverage)
        edge_sets.append((seed, frozenset(coverage.trace)))
    covered: set[int] = set()
    kept: list[bytes] = []
    for seed, edges in edge_sets:
        if edges - covered:
            kept.append(seed)
            covered |= edges
    return CorpusMinimization(kept=kept, dropped=len(edge_sets) - len(kept), edges=len(covered))


def render_stats(result: CampaignResult, name: str = "campaign") -> str:
    """fuzzer_stats-style textual summary of a campaign."""
    signatures = result.signatures()
    lines = [
        f"# {name}",
        f"execs_done        : {result.executions}",
        f"oracle_execs      : {result.oracle_executions}",
        f"edges_found       : {result.edges_covered}",
        f"corpus_count      : {result.queue_size}",
        f"saved_diffs       : {len(result.diffs)} (of {result.diffs_found} seen)",
        f"saved_crashes     : {len(result.crashes)} (of {result.crashes_found} seen)",
        f"diff_clusters     : {len(signatures)}",
        f"bug_sites_reached : {sorted(result.sites_reached)}",
        f"bug_sites_diverged: {sorted(result.sites_diverged)}",
    ]
    return "\n".join(lines)
