"""AFL-style edge coverage bitmap."""

from __future__ import annotations

MAP_SIZE = 1 << 16


class CoverageMap:
    """Hit counts per (bucketed) edge, AFL's shared-memory bitmap analog.

    The VM calls :meth:`record_edge` on every basic-block transition of an
    instrumented binary; the fuzzer asks whether a finished execution
    touched tuples no earlier execution touched (``has_new_bits``).
    """

    #: AFL's hit-count bucketing: 1, 2, 3, 4-7, 8-15, 16-31, 32-127, 128+.
    _BUCKETS = (0, 1, 2, 4, 8, 16, 32, 128)

    def __init__(self, size: int = MAP_SIZE) -> None:
        self.size = size
        self.trace: dict[int, int] = {}
        self.virgin: dict[int, int] = {}

    # -- per-execution recording (hot path) --------------------------------

    def reset_trace(self) -> None:
        """Clear the per-execution trace before a run."""
        self.trace = {}

    def record_edge(self, prev_location: int, location: int) -> None:
        """Record one block transition (called by the VM per branch)."""
        edge = ((prev_location >> 1) ^ location) % self.size
        self.trace[edge] = self.trace.get(edge, 0) + 1

    # -- classification ------------------------------------------------------

    @classmethod
    def bucket(cls, count: int) -> int:
        """AFL hit-count bucket for *count*."""
        result = 0
        for threshold in cls._BUCKETS:
            if count >= threshold:
                result = threshold
        return result

    def has_new_bits(self) -> bool:
        """Did the current trace hit a new edge or a new hit bucket?
        Updates the virgin map when it did."""
        new_bits = False
        for edge, count in self.trace.items():
            bucketed = self.bucket(count)
            seen = self.virgin.get(edge, -1)
            if bucketed > seen:
                self.virgin[edge] = bucketed
                new_bits = True
        return new_bits

    @property
    def edges_covered(self) -> int:
        """Distinct edges ever seen by this map."""
        return len(self.virgin)

    def coverage_signature(self) -> int:
        """Order-insensitive hash of the virgin map (for plateau checks)."""
        sig = 0
        for edge, bucketed in self.virgin.items():
            sig ^= hash((edge, bucketed))
        return sig & 0xFFFFFFFFFFFFFFFF
