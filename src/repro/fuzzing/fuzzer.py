"""CompDiff-AFL++: the paper's Algorithm 1.

The main loop is stock greybox fuzzing over the instrumented binary
``B_fuzz`` (unhighlighted lines of Algorithm 1); the CompDiff extension
(highlighted lines 9-12) runs every generated input on the k differential
binaries and saves it to ``diffs/`` when outputs disagree.  Sanitizers
compose: pass ``sanitizer=`` to instrument ``B_fuzz`` exactly as AFL++
users do, without touching the differential binaries.
"""

from __future__ import annotations

import copy
import random
import signal
import time
from dataclasses import dataclass, field

from repro.compiler import (
    DEFAULT_IMPLEMENTATIONS,
    FUZZ_CONFIG,
    CompilerConfig,
    compile_program,
)
from repro.core.compdiff import CompDiff, DiffResult
from repro.core.normalize import OutputNormalizer
from repro.core.triage import DivergenceSignature, signature_of
from repro.errors import CheckpointError
from repro.fuzzing.checkpoint import (
    CampaignCheckpoint,
    load_checkpoint,
    options_digest,
    save_checkpoint,
)
from repro.parallel.cache import CompileCache, program_fingerprint
from repro.fuzzing.coverage import CoverageMap
from repro.fuzzing.mutators import MutationEngine, build_dictionary
from repro.fuzzing.seedpool import SeedPool
from repro.minic import ast as minic_ast
from repro.minic import load
from repro.vm import ForkServer
from repro.vm.execution import ExecutionResult


@dataclass
class FuzzerOptions:
    """Campaign configuration (the AFL++ command line, roughly)."""

    rng_seed: int = 0
    #: Execution budget on B_fuzz — the analog of the 24h wall clock.
    max_executions: int = 20_000
    #: Per-execution instruction budget (the timeout threshold).
    fuel: int = 200_000
    #: Run the CompDiff oracle on every Nth generated input (1 = paper's
    #: Algorithm 1; larger strides trade oracle coverage for speed).
    compdiff_stride: int = 1
    enable_compdiff: bool = True
    #: Sanitizer to instrument B_fuzz with (composes with CompDiff, §3.2).
    sanitizer: str | None = None
    implementations: tuple[CompilerConfig, ...] = DEFAULT_IMPLEMENTATIONS
    normalizer: OutputNormalizer | None = None
    splice_probability: float = 0.2
    #: Cap on stored diff-triggering inputs (the diffs/ directory).
    max_saved_diffs: int = 400
    max_saved_crashes: int = 200
    #: §5 future-work extension (NEZHA-style): feed behavioral asymmetry
    #: back into the fuzzer — an input that produced a *new* divergence
    #: signature joins the seed pool even without new edge coverage.
    divergence_feedback: bool = False
    #: Fan each oracle input's k executions across a worker pool
    #: (``repro.parallel``).  1 = the deterministic serial path.  Verdicts
    #: are identical either way; the pool pays off once per-execution cost
    #: (fuel, program size) outweighs the dispatch overhead.
    workers: int = 1
    #: Content-addressed compile cache shared across campaigns, so
    #: repeated builds of the same target skip the compiler entirely.
    compile_cache: CompileCache | None = None
    #: Analysis-directed fuzzing (opt-in): multiply the energy of seeds
    #: whose coverage touches a block the IR-level UB oracle flagged.
    #: 1.0 disables it.  This only biases seed scheduling; the CompDiff
    #: verdict for any given input is unaffected.
    analysis_boost: float = 1.0
    #: Directory for periodic atomic campaign checkpoints (None = off).
    #: A killed campaign resumes from the last checkpoint via
    #: ``CompDiffFuzzer.run(resume_from=dir)`` / ``repro fuzz --resume``,
    #: reproducing the uninterrupted campaign's verdicts exactly.
    checkpoint_dir: str | None = None
    #: Executions between periodic checkpoints (journal cadence).
    checkpoint_every: int = 1000


@dataclass
class CampaignResult:
    """Everything a campaign produced."""

    executions: int = 0
    oracle_executions: int = 0
    edges_covered: int = 0
    queue_size: int = 0
    #: diffs/ — inputs that triggered output discrepancies.
    diffs: list[DiffResult] = field(default_factory=list)
    diffs_found: int = 0
    #: crashes/ — inputs that crashed or tripped the sanitizer on B_fuzz.
    crashes: list[tuple[bytes, ExecutionResult]] = field(default_factory=list)
    crashes_found: int = 0
    #: Ground truth: bug sites reached by each divergent input on B_fuzz.
    sites_by_input: dict[bytes, frozenset[int]] = field(default_factory=dict)
    #: All bug sites ever reached (coverage of seeded bugs).
    sites_reached: set[int] = field(default_factory=set)
    #: Sites attributed to at least one divergent input.
    sites_diverged: set[int] = field(default_factory=set)
    #: Sites attributed to at least one sanitizer report.
    sites_sanitizer: set[int] = field(default_factory=set)

    def signatures(self) -> dict[DivergenceSignature, int]:
        counts: dict[DivergenceSignature, int] = {}
        for diff in self.diffs:
            signature = signature_of(diff, self.sites_by_input.get(diff.input, frozenset()))
            counts[signature] = counts.get(signature, 0) + 1
        return counts


class CompDiffFuzzer:
    """One fuzzing campaign over one target program."""

    def __init__(
        self,
        program: minic_ast.Program | str,
        initial_seeds: list[bytes],
        options: FuzzerOptions | None = None,
        name: str = "target",
    ) -> None:
        if isinstance(program, str):
            program = load(program)
        self.options = options or FuzzerOptions()
        self.name = name
        self.rng = random.Random(self.options.rng_seed)
        # B_fuzz: coverage-instrumented (optionally sanitized) build.
        cache = self.options.compile_cache
        if cache is not None:
            fuzz_binary = cache.compile(
                program,
                FUZZ_CONFIG,
                name=name,
                instrument_coverage=True,
                sanitizer=self.options.sanitizer,
            )
        else:
            fuzz_binary = compile_program(
                program,
                FUZZ_CONFIG,
                name=name,
                instrument_coverage=True,
                sanitizer=self.options.sanitizer,
            )
        self.fuzz_server = ForkServer(fuzz_binary, fuel=self.options.fuel)
        # The k differential binaries.
        self.compdiff: CompDiff | None = None
        self.diff_servers: dict[str, ForkServer] = {}
        if self.options.enable_compdiff:
            self.compdiff = CompDiff(
                implementations=self.options.implementations,
                normalizer=self.options.normalizer or OutputNormalizer(),
                fuel=self.options.fuel,
                workers=self.options.workers,
                compile_cache=cache,
            )
            self.diff_servers = self.compdiff.build(program, name=name)
        self.coverage = CoverageMap()
        dictionary = build_dictionary(
            fuzz_binary.module.magic_constants, fuzz_binary.module.magic_strings
        )
        self.mutator = MutationEngine(self.rng, dictionary)
        self.pool = SeedPool(self.rng, analysis_boost=self.options.analysis_boost)
        self._initial_seeds = [bytes(seed) for seed in initial_seeds] or [b""]
        self._seen_signatures: set[DivergenceSignature] = set()
        self._seen_diff_inputs: set[bytes] = set()
        self._program_fp = program_fingerprint(program)
        self._generated = 0
        self._interrupted = False
        #: Coverage edges whose target block carries a static UB finding.
        self._flagged_edges: frozenset[int] = frozenset()
        if self.options.analysis_boost != 1.0:
            self._flagged_edges = self._compute_flagged_edges(fuzz_binary.module)

    def _compute_flagged_edges(self, module) -> frozenset[int]:
        """Edges that enter a block the UB oracle flags, as bitmap indices.

        The checkers run on the *fuzz binary's own* lowering, so block
        labels line up with the coverage ids exactly.  A block can be
        entered from any predecessor (including inter-procedurally via
        calls, where the previous location is the callee's last block),
        so every (possible-prev, flagged-block) pair is folded through
        the AFL edge hash — a cheap over-approximation that errs toward
        boosting.
        """
        from repro.static_analysis.ub_oracle import analyze_modules, flagged_blocks

        report = analyze_modules(module)
        ids = self.fuzz_server.layout.label_ids
        flagged_ids = [
            ids[key] for key in flagged_blocks(report.findings) if key in ids
        ]
        prevs = [0] + list(ids.values())  # 0 = program entry
        size = self.coverage.size
        return frozenset(
            ((prev >> 1) ^ cur) % size for cur in flagged_ids for prev in prevs
        )

    def _trace_touches_flagged(self) -> bool:
        return bool(self._flagged_edges) and not self._flagged_edges.isdisjoint(
            self.coverage.trace
        )

    # ----------------------------------------------------------------- loop

    def run(self, resume_from: str | None = None) -> CampaignResult:
        """Execute the campaign (Algorithm 1) and return its findings.

        With ``resume_from`` set, the loop restarts from the checkpoint
        journaled in that directory (see :mod:`repro.fuzzing.checkpoint`)
        and replays the remaining iterations deterministically: the final
        result is byte-identical to an uninterrupted campaign.  With
        ``options.checkpoint_dir`` set, the loop journals periodically,
        flushes a final checkpoint on completion, and — because SIGINT is
        deferred to the next iteration boundary — flushes a consistent
        checkpoint before propagating ``KeyboardInterrupt`` on Ctrl-C.
        """
        if resume_from is not None:
            result = self._restore(resume_from)
        else:
            result = CampaignResult()
            self._generated = 0
            self._seen_diff_inputs = set()
            for seed in self._initial_seeds:
                self._execute_and_classify(seed, result, force_oracle=True)
                self.pool.add(seed, flagged=self._trace_touches_flagged())
        self._interrupted = False
        previous_handler = self._install_sigint_handler()
        try:
            while result.executions < self.options.max_executions:
                if self._interrupted:
                    self._finalize(result)
                    self._checkpoint(result, force=True)
                    raise KeyboardInterrupt("campaign interrupted; checkpoint flushed")
                parent = self.pool.select()
                if (
                    self.options.splice_probability > 0
                    and self.rng.random() < self.options.splice_probability
                ):
                    other = self.pool.pick_other(parent)
                    candidate = (
                        self.mutator.splice(parent.data, other.data)
                        if other is not None
                        else self.mutator.mutate(parent.data)
                    )
                else:
                    candidate = self.mutator.mutate(parent.data)
                self._generated += 1
                run_oracle = self._generated % self.options.compdiff_stride == 0
                self._execute_and_classify(candidate, result, run_oracle)
                self._checkpoint(result)
        finally:
            self._restore_sigint_handler(previous_handler)
        self._finalize(result)
        self._checkpoint(result, force=True)
        return result

    def _finalize(self, result: CampaignResult) -> None:
        result.edges_covered = self.coverage.edges_covered
        result.queue_size = len(self.pool)

    def _execute_and_classify(
        self,
        candidate: bytes,
        result: CampaignResult,
        force_oracle: bool,
    ) -> None:
        # Lines 4-8: execute on B_fuzz with coverage feedback.
        self.coverage.reset_trace()
        execution = self.fuzz_server.run(candidate, coverage=self.coverage)
        result.executions += 1
        result.sites_reached |= execution.bug_sites
        if execution.crashed or execution.sanitizer_report is not None:
            result.crashes_found += 1
            result.sites_sanitizer |= execution.bug_sites
            if len(result.crashes) < self.options.max_saved_crashes:
                result.crashes.append((candidate, execution))
        elif self.coverage.has_new_bits():
            self.pool.add(
                candidate,
                exec_instructions=execution.executed_instructions,
                flagged=self._trace_touches_flagged(),
            )
        # Lines 9-12: the CompDiff oracle.
        if self.compdiff is None or not force_oracle:
            return
        if candidate in self._seen_diff_inputs:
            return
        self._seen_diff_inputs.add(candidate)
        diff = self.compdiff.run_input(self.diff_servers, candidate)
        result.oracle_executions += 1
        if diff.divergent:
            result.diffs_found += 1
            sites = frozenset(execution.bug_sites)
            result.sites_by_input[candidate] = sites
            result.sites_diverged |= sites
            if len(result.diffs) < self.options.max_saved_diffs:
                result.diffs.append(diff)
            if self.options.divergence_feedback:
                signature = signature_of(diff)
                if signature not in self._seen_signatures:
                    self._seen_signatures.add(signature)
                    self.pool.add(
                        candidate, favored=True, flagged=self._trace_touches_flagged()
                    )

    # -------------------------------------------------------- checkpointing

    def _options_digest(self) -> str:
        return options_digest(
            self.options,
            tuple(config.name for config in self.options.implementations),
        )

    def _checkpoint(self, result: CampaignResult, force: bool = False) -> None:
        """Journal the loop state at an iteration boundary (atomic write)."""
        directory = self.options.checkpoint_dir
        if directory is None:
            return
        every = self.options.checkpoint_every
        if not force and (every <= 0 or result.executions % every != 0):
            return
        started = time.perf_counter()
        state = CampaignCheckpoint(
            program_fingerprint=self._program_fp,
            options_digest=self._options_digest(),
            generated=self._generated,
            rng_state=self.rng.getstate(),
            result=result,
            pool_seeds=list(self.pool.seeds),
            pool_next_index=self.pool._next_index,
            pool_dedupe=set(self.pool._dedupe),
            coverage_virgin=dict(self.coverage.virgin),
            seen_diff_inputs=set(self._seen_diff_inputs),
            seen_signatures=set(self._seen_signatures),
            oracle_stats=(
                copy.deepcopy(self.compdiff.stats) if self.compdiff is not None else None
            ),
        )
        save_checkpoint(directory, state)
        if self.compdiff is not None:
            self.compdiff.stats.record_checkpoint(time.perf_counter() - started)

    def _restore(self, directory: str) -> CampaignResult:
        """Rehydrate the loop state journaled in *directory*."""
        state = load_checkpoint(directory)
        if state.program_fingerprint != self._program_fp:
            raise CheckpointError(
                f"checkpoint in {directory!r} was taken for a different program "
                f"({state.program_fingerprint[:16]}... != {self._program_fp[:16]}...)"
            )
        if state.options_digest != self._options_digest():
            raise CheckpointError(
                f"checkpoint in {directory!r} was taken under different "
                "campaign options; resume with the original flags"
            )
        self._generated = state.generated
        self.rng.setstate(state.rng_state)
        self.pool.seeds = list(state.pool_seeds)
        self.pool._next_index = state.pool_next_index
        self.pool._dedupe = set(state.pool_dedupe)
        self.coverage.virgin = dict(state.coverage_virgin)
        self._seen_diff_inputs = set(state.seen_diff_inputs)
        self._seen_signatures = set(state.seen_signatures)
        if state.oracle_stats is not None and self.compdiff is not None:
            self.compdiff.stats.restore(state.oracle_stats)
        return state.result

    def _install_sigint_handler(self):
        """Defer SIGINT to the next iteration boundary so the flushed
        checkpoint is always consistent.  Only active when checkpointing
        is on, and only installable from the main thread."""
        if self.options.checkpoint_dir is None:
            return None
        def _on_sigint(signum, frame):
            self._interrupted = True
        try:
            return signal.signal(signal.SIGINT, _on_sigint)
        except ValueError:  # not the main thread
            return None

    def _restore_sigint_handler(self, previous) -> None:
        if previous is None:
            return
        try:
            signal.signal(signal.SIGINT, previous)
        except ValueError:
            pass

    # -------------------------------------------------------------- helpers

    def close(self) -> None:
        """Release the oracle's worker pool, if any (idempotent)."""
        if self.compdiff is not None:
            self.compdiff.close()

    def __enter__(self) -> "CompDiffFuzzer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def implementations(self) -> tuple[str, ...]:
        return tuple(self.diff_servers)

    @property
    def oracle_stats(self):
        """The oracle engine's :class:`repro.parallel.stats.EngineStats`."""
        return self.compdiff.stats if self.compdiff is not None else None
