"""Mutation operators: AFL++'s deterministic and havoc stages.

The engine exposes one call, :meth:`MutationEngine.mutate`, which applies
a randomly chosen stack of operators — bit/byte flips, arithmetic
increments, interesting values, block insert/delete/duplicate, dictionary
token splices (the auto-dictionary extracted from comparison operands,
standing in for AFL++'s CmpLog), and two-seed splicing.
"""

from __future__ import annotations

import random

INTERESTING_8 = (-128, -1, 0, 1, 16, 32, 64, 100, 127)
INTERESTING_16 = (-32768, -129, 128, 255, 256, 512, 1000, 1024, 4096, 32767)
INTERESTING_32 = (-2147483648, -100663046, -32769, 32768, 65535, 65536, 100663045, 2147483647)

MAX_INPUT_SIZE = 4096


class MutationEngine:
    """Stateful mutation engine over byte strings."""

    def __init__(self, rng: random.Random, dictionary: list[bytes] | None = None) -> None:
        self.rng = rng
        self.dictionary = [token for token in (dictionary or []) if 0 < len(token) <= 64]
        self._mutators = [
            self.bitflip,
            self.byteflip,
            self.arith,
            self.interesting,
            self.overwrite_random,
            self.insert_block,
            self.delete_block,
            self.duplicate_block,
        ]
        if self.dictionary:
            self._mutators.append(self.dictionary_overwrite)
            self._mutators.append(self.dictionary_insert)

    # ------------------------------------------------------------ operators

    def bitflip(self, data: bytearray) -> None:
        """Flip one random bit."""
        if not data:
            return
        position = self.rng.randrange(len(data) * 8)
        data[position // 8] ^= 1 << (position % 8)

    def byteflip(self, data: bytearray) -> None:
        """XOR one random byte with 0xFF."""
        if not data:
            return
        data[self.rng.randrange(len(data))] ^= 0xFF

    def arith(self, data: bytearray) -> None:
        """Add a small signed delta to one byte (AFL arith stage)."""
        if not data:
            return
        position = self.rng.randrange(len(data))
        delta = self.rng.randint(-35, 35)
        data[position] = (data[position] + delta) & 0xFF

    def interesting(self, data: bytearray) -> None:
        """Overwrite 1/2/4 bytes with an AFL interesting value."""
        if not data:
            return
        width = self.rng.choice((1, 2, 4))
        if len(data) < width:
            width = 1
        position = self.rng.randrange(len(data) - width + 1)
        table = {1: INTERESTING_8, 2: INTERESTING_16, 4: INTERESTING_32}[width]
        value = self.rng.choice(table)
        data[position : position + width] = (value & ((1 << (8 * width)) - 1)).to_bytes(
            width, self.rng.choice(("little", "big"))
        )

    def overwrite_random(self, data: bytearray) -> None:
        """Replace one byte with a random value."""
        if not data:
            return
        position = self.rng.randrange(len(data))
        data[position] = self.rng.randrange(256)

    def insert_block(self, data: bytearray) -> None:
        """Insert a short random block."""
        if len(data) >= MAX_INPUT_SIZE:
            return
        position = self.rng.randrange(len(data) + 1)
        length = self.rng.randint(1, 16)
        filler = bytes(self.rng.randrange(256) for _ in range(length))
        data[position:position] = filler

    def delete_block(self, data: bytearray) -> None:
        """Delete a random chunk."""
        if len(data) < 2:
            return
        length = self.rng.randint(1, max(1, len(data) // 4))
        position = self.rng.randrange(len(data) - length + 1)
        del data[position : position + length]

    def duplicate_block(self, data: bytearray) -> None:
        """Copy a chunk to a random position."""
        if not data or len(data) >= MAX_INPUT_SIZE:
            return
        length = self.rng.randint(1, min(16, len(data)))
        src = self.rng.randrange(len(data) - length + 1)
        dst = self.rng.randrange(len(data) + 1)
        data[dst:dst] = data[src : src + length]

    def dictionary_overwrite(self, data: bytearray) -> None:
        """Stamp a dictionary token over existing bytes."""
        token = self.rng.choice(self.dictionary)
        if not data:
            data.extend(token)
            return
        position = self.rng.randrange(len(data))
        data[position : position + len(token)] = token
        del data[MAX_INPUT_SIZE:]

    def dictionary_insert(self, data: bytearray) -> None:
        """Insert a dictionary token."""
        token = self.rng.choice(self.dictionary)
        position = self.rng.randrange(len(data) + 1) if data else 0
        data[position:position] = token
        del data[MAX_INPUT_SIZE:]

    # ------------------------------------------------------------ driver

    def mutate(self, seed: bytes) -> bytes:
        """Havoc-style: apply a stack of 1..6 random operators."""
        data = bytearray(seed)
        for _ in range(self.rng.randint(1, 6)):
            self.rng.choice(self._mutators)(data)
        if not data:
            data.append(self.rng.randrange(256))
        return bytes(data[:MAX_INPUT_SIZE])

    def splice(self, seed_a: bytes, seed_b: bytes) -> bytes:
        """AFL splice stage: head of one seed, tail of another, then havoc."""
        if not seed_a or not seed_b:
            return self.mutate(seed_a or seed_b)
        cut_a = self.rng.randrange(len(seed_a))
        cut_b = self.rng.randrange(len(seed_b))
        return self.mutate(seed_a[:cut_a] + seed_b[cut_b:])


def build_dictionary(magic_constants: list[int], magic_strings: list[bytes]) -> list[bytes]:
    """Auto-dictionary from comparison operands in the compiled module."""
    tokens: list[bytes] = []
    seen: set[bytes] = set()
    for value in magic_constants:
        for width in (1, 2, 4):
            if -(1 << (8 * width - 1)) <= value < (1 << (8 * width)):
                for order in ("little", "big"):
                    token = (value & ((1 << (8 * width)) - 1)).to_bytes(width, order)
                    if token not in seen:
                        seen.add(token)
                        tokens.append(token)
                break
    for text in magic_strings:
        if text and text not in seen:
            seen.add(text)
            tokens.append(text)
    return tokens
