"""Seed queue and power schedule."""

from __future__ import annotations

import random
from dataclasses import dataclass, field


@dataclass
class Seed:
    data: bytes
    #: Monotone id, in discovery order.
    index: int
    #: Executions spent mutating this seed.
    fuzzed: int = 0
    #: Whether the seed produced new coverage when found (favored).
    favored: bool = True
    exec_instructions: int = 0
    #: Whether the seed's trace touched a statically-flagged block
    #: (analysis-directed fuzzing; scheduling hint only).
    flagged: bool = False


@dataclass
class SeedPool:
    """AFL-like queue: favor recent, small, fast seeds.

    The energy heuristic is a simplification of AFL++'s ``explore`` power
    schedule: newly discovered and lightweight seeds get more mutations.
    """

    rng: random.Random
    seeds: list[Seed] = field(default_factory=list)
    #: Energy multiplier for seeds covering statically-flagged blocks
    #: (1.0 = off).  Affects scheduling only — never the oracle verdicts.
    analysis_boost: float = 1.0
    _next_index: int = 0
    _dedupe: set[bytes] = field(default_factory=set)

    def add(
        self,
        data: bytes,
        exec_instructions: int = 0,
        favored: bool = True,
        flagged: bool = False,
    ) -> Seed | None:
        if data in self._dedupe:
            return None
        self._dedupe.add(data)
        seed = Seed(
            data=data,
            index=self._next_index,
            favored=favored,
            exec_instructions=exec_instructions,
            flagged=flagged,
        )
        self._next_index += 1
        self.seeds.append(seed)
        return seed

    def __len__(self) -> int:
        return len(self.seeds)

    def select(self) -> Seed:
        """Weighted choice by energy."""
        if not self.seeds:
            raise IndexError("empty seed pool")
        weights = [self._energy(seed) for seed in self.seeds]
        seed = self.rng.choices(self.seeds, weights=weights, k=1)[0]
        seed.fuzzed += 1
        return seed

    def pick_other(self, not_this: Seed) -> Seed | None:
        """A random second parent for splicing."""
        candidates = [s for s in self.seeds if s is not not_this]
        if not candidates:
            return None
        return self.rng.choice(candidates)

    def _energy(self, seed: Seed) -> float:
        energy = 1.0
        if seed.favored:
            energy *= 4.0
        if seed.flagged:
            energy *= self.analysis_boost
        # Prefer less-fuzzed seeds; decay with attention already spent.
        energy /= 1.0 + seed.fuzzed / 32.0
        # Prefer small inputs (faster, denser mutations).
        energy /= 1.0 + len(seed.data) / 512.0
        return energy
