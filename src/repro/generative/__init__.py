"""Generative MiniC fuzzing: program synthesis, reduction, and banking.

Where :mod:`repro.fuzzing` mutates *byte inputs* against a fixed program
(the paper's Algorithm 1), this package mutates the *program* axis — the
direction the ROADMAP's first open item and the generative-fuzzing
literature (PAPERS.md) identify as where the interesting divergences
live:

* :mod:`repro.generative.generator` — a seeded, grammar-driven MiniC
  program generator emitting well-typed, checker-clean, fuel-bounded
  programs, with profiles biasing toward UB-adjacent shapes;
* :mod:`repro.generative.reducer` — an AST-level delta-debugging
  reducer with pluggable interestingness predicates ("still diverges",
  "same culprit pass", "same diagnostic fingerprint");
* :mod:`repro.generative.bank` — the versioned on-disk repro corpus,
  deduped by diagnostic fingerprint + culprit pass, consumable by the
  precision scoreboard (``repro precision --corpus``);
* :mod:`repro.generative.campaign` — the generate→diff→reduce→bank
  driver behind ``repro generate``, with checkpoint/resume and fault
  tolerance riding on the supervised pool.

See docs/GENERATIVE.md for the grammar, predicates, and corpus format.
"""

from repro.generative.generator import (
    PROFILES,
    GeneratedProgram,
    GeneratorProfile,
    generate_program,
)
from repro.generative.reducer import (
    AllOf,
    ReductionResult,
    Reducer,
    SameCulprit,
    SameFingerprint,
    StillDiverges,
)
from repro.generative.bank import BankedRepro, CorpusBank
from repro.generative.campaign import (
    GenerativeCampaign,
    GenerativeOptions,
    GenerativeResult,
)

__all__ = [
    "PROFILES",
    "GeneratedProgram",
    "GeneratorProfile",
    "generate_program",
    "Reducer",
    "ReductionResult",
    "StillDiverges",
    "SameCulprit",
    "SameFingerprint",
    "AllOf",
    "CorpusBank",
    "BankedRepro",
    "GenerativeCampaign",
    "GenerativeOptions",
    "GenerativeResult",
]
