"""The repro corpus bank: versioned, deduped storage for reduced repros.

A campaign's end product is not a log line — it is a *corpus*: the set
of minimal, still-divergent programs it discovered, banked on disk so
later runs extend it and the precision scoreboard can score the oracle
against found-in-the-wild instabilities, not just planted Juliet flaws.

On-disk layout (``<root>/``)::

    manifest.json        # BANK_SCHEMA_VERSION + one record per repro
    programs/<key>.c     # reduced divergent program
    programs/<key>.good.c  # its stabilized, non-divergent twin

Dedupe is by **equivalence class**, not source text: the corpus key
hashes the fired checker set, the culprit pass (``"baseline"`` when the
divergence predates the pass schedule), and the canonical implementation
partition.  Two seeds that reduce to the same *kind* of instability —
same diagnostics, same attribution, same implementations disagreeing —
bank once.  Exact diagnostic fingerprints stay in the metadata for
drill-down.

Manifest and program writes are atomic *and durable* (tmp + fsync +
``os.replace`` + directory fsync via :mod:`repro.persist`), so a
campaign killed mid-bank leaves the previous corpus intact; program
files are written before the manifest references them.  A bank that was
corrupted anyway (bit rot, a partial copy) is salvaged by
``repro bank fsck`` (:mod:`repro.campaigns.fsck`) rather than repaired
here: loading stays strict so corruption is never silently absorbed.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError
from repro.juliet.generator import TestCase
from repro.persist import atomic_write_json, atomic_write_text

#: Manifest format version; bump on incompatible layout changes.
BANK_SCHEMA_VERSION = 1

#: Bisect attribution recorded when divergence predates the pass
#: schedule (front-end/layout difference, ``repro bisect`` status
#: ``baseline_divergent``).
BASELINE_CULPRIT = "baseline"

#: Table 5 category -> precision-corpus group, in priority order: a
#: repro whose reduced form fires checkers in several categories is
#: grouped by the first match.  Repros with *no* surviving diagnostic
#: get group "unclassified", which has no expected categories — they
#: contribute divergence counts to ``repro precision`` but never TP/FN.
CATEGORY_GROUP = (
    ("UninitMem", "uninit"),
    ("PointerCmp", "ptr_sub"),
    ("IntError", "integer_error"),
    ("MemError", "memory_error"),
    ("EvalOrder", "eval_order"),
    ("LINE", "line_macro"),
    ("Misc", "ub"),
)

UNCLASSIFIED_GROUP = "unclassified"


def classify_group(categories: set[str]) -> str:
    """Precision-corpus group for a repro firing *categories*."""
    for category, group in CATEGORY_GROUP:
        if category in categories:
            return group
    return UNCLASSIFIED_GROUP


def corpus_key(
    checkers: set[str] | frozenset[str],
    culprit: str,
    partition: tuple[tuple[str, ...], ...],
) -> str:
    """Dedupe key of a repro's equivalence class (16 hex chars)."""
    checker_sig = ",".join(sorted(checkers))
    partition_sig = ";".join(",".join(group) for group in partition)
    blob = f"{checker_sig}#{culprit}#{partition_sig}"
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


@dataclass
class BankedRepro:
    """One banked equivalence class: sources, attribution, provenance."""

    key: str
    #: Generator provenance (seed regenerates the unreduced original).
    seed: int
    profile: str
    generator_version: int
    ub_shapes: tuple[str, ...]
    #: Reduced divergent program and its stabilized twin.
    source: str
    good_source: str
    inputs: list[bytes]
    #: Checkers the UB oracle fires on the reduced program, and their
    #: exact diagnostic fingerprints (drill-down metadata).
    checkers: tuple[str, ...]
    fingerprints: tuple[str, ...]
    group: str
    #: Canonical implementation partition of the reduced divergence.
    partition: tuple[tuple[str, ...], ...]
    #: Bisection pair pinned from the *original* diff.
    impl_ref: str
    impl_target: str
    #: Pass attribution before and after reduction.  ``culprit_drifted``
    #: records the documented ``repro bisect`` instability: reduction
    #: preserves the divergence *verdict* (the predicate pins it) but
    #: not necessarily its *attribution* — see docs/GENERATIVE.md.
    culprit_original: str = BASELINE_CULPRIT
    culprit_reduced: str = BASELINE_CULPRIT
    culprit_drifted: bool = False
    original_nodes: int = 0
    reduced_nodes: int = 0
    reduction_steps: int = 0
    reduction_tests: int = 0

    def to_json(self) -> dict:
        return {
            "key": self.key,
            "seed": self.seed,
            "profile": self.profile,
            "generator_version": self.generator_version,
            "ub_shapes": list(self.ub_shapes),
            "inputs_hex": [i.hex() for i in self.inputs],
            "checkers": list(self.checkers),
            "fingerprints": list(self.fingerprints),
            "group": self.group,
            "partition": [list(group) for group in self.partition],
            "impl_ref": self.impl_ref,
            "impl_target": self.impl_target,
            "culprit_original": self.culprit_original,
            "culprit_reduced": self.culprit_reduced,
            "culprit_drifted": self.culprit_drifted,
            "original_nodes": self.original_nodes,
            "reduced_nodes": self.reduced_nodes,
            "reduction_steps": self.reduction_steps,
            "reduction_tests": self.reduction_tests,
        }

    @staticmethod
    def from_json(data: dict, source: str, good_source: str) -> "BankedRepro":
        return BankedRepro(
            key=data["key"],
            seed=data["seed"],
            profile=data["profile"],
            generator_version=data["generator_version"],
            ub_shapes=tuple(data["ub_shapes"]),
            source=source,
            good_source=good_source,
            inputs=[bytes.fromhex(i) for i in data["inputs_hex"]],
            checkers=tuple(data["checkers"]),
            fingerprints=tuple(data["fingerprints"]),
            group=data["group"],
            partition=tuple(tuple(group) for group in data["partition"]),
            impl_ref=data["impl_ref"],
            impl_target=data["impl_target"],
            culprit_original=data["culprit_original"],
            culprit_reduced=data["culprit_reduced"],
            culprit_drifted=data["culprit_drifted"],
            original_nodes=data["original_nodes"],
            reduced_nodes=data["reduced_nodes"],
            reduction_steps=data["reduction_steps"],
            reduction_tests=data["reduction_tests"],
        )

    def test_case(self) -> TestCase:
        """This repro as a precision-scoreboard case.

        The reduced program is the *bad* variant (its divergence is the
        engine-confirmed ground truth) and the stabilized twin is the
        *good* variant; ``cwe=0`` marks generative provenance.
        """
        return TestCase(
            uid=f"gen_{self.profile}_{self.key}",
            cwe=0,
            group=self.group,
            bad_source=self.source,
            good_source=self.good_source,
            mech="generative",
            flow=self.culprit_original,
            inputs=list(self.inputs),
        )


class CorpusBank:
    """A corpus directory: load, dedupe, append, persist.

    The bank is append-only from the campaign's point of view; ``add``
    returns False (and stores nothing) for a key that is already banked,
    which is what makes checkpoint-resumed and fault-injected campaigns
    converge on the same corpus instead of double-banking.
    """

    MANIFEST = "manifest.json"
    PROGRAMS_DIR = "programs"

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self._repros: dict[str, BankedRepro] = {}
        if self.manifest_path.exists():
            self._load()

    # --------------------------------------------------------------- queries

    @property
    def manifest_path(self) -> Path:
        return self.root / self.MANIFEST

    @property
    def programs_dir(self) -> Path:
        return self.root / self.PROGRAMS_DIR

    def __len__(self) -> int:
        return len(self._repros)

    def __contains__(self, key: str) -> bool:
        return key in self._repros

    def __iter__(self):
        return iter(self.repros())

    def repros(self) -> list[BankedRepro]:
        """All banked repros, in key order (stable across runs)."""
        return [self._repros[key] for key in sorted(self._repros)]

    def keys(self) -> list[str]:
        return sorted(self._repros)

    def get(self, key: str) -> BankedRepro | None:
        return self._repros.get(key)

    def test_cases(self) -> list[TestCase]:
        """The whole corpus as precision-scoreboard cases, key order."""
        return [repro.test_case() for repro in self.repros()]

    # ------------------------------------------------------------ mutation

    def add(self, repro: BankedRepro) -> bool:
        """Bank *repro* unless its class is already present.

        Program files land before the manifest references them, and the
        manifest write is atomic — a kill mid-add leaves a corpus that
        loads cleanly (at worst with orphaned program files).
        """
        if repro.key in self._repros:
            return False
        self.programs_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_text(self._source_path(repro.key), repro.source)
        atomic_write_text(self._good_path(repro.key), repro.good_source)
        self._repros[repro.key] = repro
        self._write_manifest()
        return True

    # ------------------------------------------------------------ internals

    def _source_path(self, key: str) -> Path:
        return self.programs_dir / f"{key}.c"

    def _good_path(self, key: str) -> Path:
        return self.programs_dir / f"{key}.good.c"

    def _write_manifest(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": BANK_SCHEMA_VERSION,
            "repros": [self._repros[key].to_json() for key in sorted(self._repros)],
        }
        atomic_write_json(self.manifest_path, payload)

    def _load(self) -> None:
        try:
            data = json.loads(self.manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(
                f"corpus manifest {self.manifest_path} is unreadable: {exc} "
                f"(salvage with `repro bank fsck {self.root}`)"
            ) from exc
        if data.get("version") != BANK_SCHEMA_VERSION:
            raise ReproError(
                f"corpus manifest version {data.get('version')!r}; "
                f"expected {BANK_SCHEMA_VERSION}"
            )
        for record in data["repros"]:
            key = record["key"]
            try:
                source = self._source_path(key).read_text()
                good = self._good_path(key).read_text()
            except OSError as exc:
                raise ReproError(
                    f"corpus program for banked repro {key} is missing: {exc} "
                    f"(salvage with `repro bank fsck {self.root}`)"
                ) from exc
            self._repros[key] = BankedRepro.from_json(record, source, good)
