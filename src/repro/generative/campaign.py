"""The generate→diff→reduce→bank campaign behind ``repro generate``.

One campaign walks a contiguous seed range through the full pipeline:

1. **generate** — :func:`repro.generative.generator.generate_program`
   synthesizes a checker-clean program for the seed;
2. **diff** — the CompDiff engine (optionally on the supervised worker
   pool) cross-checks it over the campaign inputs;
3. **reduce** — divergent programs are delta-debugged down under a
   *signature-pinned* :class:`~repro.generative.reducer.StillDiverges`
   predicate, so the reduced repro exhibits the same implementation
   partition as the original, not a cheaper unrelated one;
4. **bank** — the reduced repro, its stabilized twin, its UB-oracle
   diagnostics, and its pass attribution land in the
   :class:`~repro.generative.bank.CorpusBank`, deduped by equivalence
   class.

Attribution is bisected twice — once on the original program, once on
the reduced one, against the *same pinned implementation pair* — and
any disagreement is recorded as ``culprit_drifted`` in the banked
metadata rather than papered over: reduction preserves the divergence
verdict by construction, but pass attribution is a property of the
whole program and may legitimately move (docs/GENERATIVE.md).

Campaigns are resumable: progress checkpoints ride the same atomic
magic+CRC+pickle record as the byte-input fuzzer
(:mod:`repro.persist`), and the bank's keyed dedupe makes replaying the
seeds between the last checkpoint and a crash idempotent — a resumed
campaign converges on the same corpus as an uninterrupted one.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.campaigns.sigint import DeferredInterrupt
from repro.core.bisect import bisect_divergence, choose_bisection_pair
from repro.core.compdiff import CompDiff, DiffResult
from repro.core.triage import signature_of
from repro.errors import CheckpointError
from repro.generative.bank import (
    BASELINE_CULPRIT,
    BankedRepro,
    CorpusBank,
    classify_group,
    corpus_key,
)
from repro.generative.generator import GENERATOR_VERSION, generate_program
from repro.generative.reducer import (
    DEFAULT_STEP_BUDGET,
    DEFAULT_TEST_BUDGET,
    Reducer,
    StillDiverges,
    single_step_variants,
)
from repro.minic import count_nodes, load
from repro.persist import read_record, write_record
from repro.static_analysis.diagnostics import to_diagnostics
from repro.static_analysis.ub_oracle import CHECKER_CATEGORY, UBOracle

#: Checkpoint record magic (distinct from the fuzzer's ``RPRCKPT1``).
MAGIC = b"RPRGENC1"
#: Checkpoint file name inside the checkpoint directory.
CHECKPOINT_FILE = "generate.ckpt"

#: Good twin of last resort when no single-step stabilization of the
#: reduced repro is both non-divergent and oracle-clean.
FALLBACK_GOOD = 'int main(void) {\n    printf("stable\\n");\n    return 0;\n}\n'


@dataclass
class GenerativeOptions:
    """Campaign configuration (everything verdict-relevant is digested)."""

    #: First generator seed; the campaign walks ``seed .. seed+budget-1``.
    seed: int = 0
    #: Seeds to process.  A budget, not a behavior: resuming with a
    #: larger budget extends a finished campaign.
    budget: int = 20
    profile: str = "ub"
    inputs: list[bytes] = field(default_factory=lambda: [b""])
    #: Reduce before banking (disable to bank raw divergent programs).
    reduce: bool = True
    step_budget: int = DEFAULT_STEP_BUDGET
    test_budget: int = DEFAULT_TEST_BUDGET
    #: Candidate cap for the good-twin stabilization search.
    stabilize_budget: int = 40
    #: Stop early once this many *new* repros banked (None = run out
    #: the budget).  A budget, not a behavior — excluded from digest.
    min_banked: int | None = None
    #: Directory for progress checkpoints (None = no checkpointing).
    checkpoint_dir: str | None = None
    #: Checkpoint cadence in processed seeds.
    checkpoint_every: int = 5
    #: CompDiff worker processes (>1 = the supervised pool).
    workers: int = 1

    def digest(self) -> str:
        """Digest of every option that changes what gets banked."""
        parts = (
            GENERATOR_VERSION,
            self.seed,
            self.profile,
            tuple(self.inputs),
            self.reduce,
            self.step_budget,
            self.test_budget,
            self.stabilize_budget,
        )
        return hashlib.sha256(repr(parts).encode("utf-8")).hexdigest()


@dataclass
class GenerativeCheckpoint:
    """Campaign progress at a seed boundary."""

    options_digest: str
    #: Seeds ``seed .. seed+offset-1`` are fully processed and banked.
    offset: int
    generated: int
    divergent: int
    banked_new: int
    duplicates: int
    drifted: int
    keys: list[str] = field(default_factory=list)


@dataclass
class GenerativeResult:
    """Outcome of one campaign run."""

    generated: int = 0
    divergent: int = 0
    #: Repros newly banked by this run.
    banked_new: int = 0
    #: Divergent seeds whose equivalence class was already banked.
    duplicates: int = 0
    #: Banked repros whose reduced form attributes to a different pass.
    drifted: int = 0
    #: Corpus keys produced by this run's seeds (banked or duplicate),
    #: in discovery order.
    keys: list[str] = field(default_factory=list)
    #: Bank size after the run.
    corpus_size: int = 0
    #: Seed offset this run resumed from (None = fresh start).
    resumed_at: int | None = None

    def render(self) -> str:
        lines = [
            f"generative campaign: {self.generated} generated, "
            f"{self.divergent} divergent, {self.banked_new} newly banked "
            f"({self.duplicates} duplicate classes, {self.drifted} with "
            f"culprit drift)",
            f"corpus size: {self.corpus_size}",
        ]
        if self.resumed_at is not None:
            lines.append(f"resumed at seed offset {self.resumed_at}")
        return "\n".join(lines)


class GenerativeCampaign:
    """Drives one seed range through generate→diff→reduce→bank.

    ``seed_slice`` restricts the walk to global offsets ``[start, stop)``
    of the budget — the hook the sharded runtime
    (:mod:`repro.campaigns.runtime`) partitions a campaign with; the
    default covers the whole budget.  ``skip_offsets`` are quarantined
    poison seeds: they still advance the checkpoint but are never
    processed.  ``progress`` is called with each global offset at the
    seed boundary *before* that seed runs (shard workers hang their
    heartbeat and fault injection on it).  ``interruptible`` controls
    deferred-SIGINT handling; shard workers disable it so the supervisor
    owns interrupt semantics.
    """

    def __init__(
        self,
        options: GenerativeOptions,
        bank: CorpusBank,
        engine: CompDiff | None = None,
        policy=None,
        fault_plan=None,
        seed_slice: tuple[int, int] | None = None,
        skip_offsets: frozenset[int] = frozenset(),
        progress: Optional[Callable[[int], None]] = None,
        interruptible: bool = True,
    ) -> None:
        self.options = options
        self.bank = bank
        self.seed_slice = seed_slice
        self.skip_offsets = frozenset(skip_offsets)
        self.progress = progress
        self.interruptible = interruptible
        self._owns_engine = engine is None
        if engine is None:
            engine = CompDiff(
                workers=options.workers, policy=policy, fault_plan=fault_plan
            )
        self.engine = engine
        self.oracle = UBOracle(mode="interproc")
        self._intra_oracle = UBOracle(mode="intra")

    def __enter__(self) -> "GenerativeCampaign":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the engine's worker pool if this campaign owns it."""
        if self._owns_engine:
            self.engine.close()

    # ------------------------------------------------------------- campaign

    def run(self) -> GenerativeResult:
        options = self.options
        lo, hi = self.seed_slice if self.seed_slice is not None else (0, options.budget)
        result = GenerativeResult()
        start = lo
        checkpoint = self._load_checkpoint()
        if checkpoint is not None:
            start = max(lo, checkpoint.offset)
            result.generated = checkpoint.generated
            result.divergent = checkpoint.divergent
            result.banked_new = checkpoint.banked_new
            result.duplicates = checkpoint.duplicates
            result.drifted = checkpoint.drifted
            result.keys = list(checkpoint.keys)
            result.resumed_at = start
        processed_through = start
        with DeferredInterrupt(enabled=self.interruptible) as intr:
            for offset in range(start, hi):
                if intr.pending:
                    if options.checkpoint_dir is not None:
                        self._save_checkpoint(processed_through, result)
                    raise KeyboardInterrupt(
                        "campaign interrupted; checkpoint flushed"
                    )
                if (
                    options.min_banked is not None
                    and result.banked_new >= options.min_banked
                ):
                    break
                if self.progress is not None:
                    self.progress(offset)
                if offset not in self.skip_offsets:
                    self._process(options.seed + offset, result)
                processed_through = offset + 1
                if (
                    options.checkpoint_dir is not None
                    and (offset + 1 - start) % options.checkpoint_every == 0
                ):
                    self._save_checkpoint(processed_through, result)
        if options.checkpoint_dir is not None:
            self._save_checkpoint(processed_through, result)
        result.corpus_size = len(self.bank)
        return result

    # ------------------------------------------------------------- one seed

    def _process(self, seed: int, result: GenerativeResult) -> None:
        options = self.options
        generated = generate_program(seed, options.profile)
        result.generated += 1
        name = f"gen-{options.profile}-{seed}"
        outcome = self.engine.check_source(generated.source, options.inputs, name=name)
        if not outcome.divergent:
            return
        result.divergent += 1
        diff = next(d for d in outcome.diffs if d.divergent)
        signature = signature_of(diff)
        impl_ref, impl_target = choose_bisection_pair(diff)
        culprit_original = self._attribute(
            generated.source, diff, impl_ref, impl_target, name
        )

        source = generated.source
        original_nodes = count_nodes(load(source))
        reduced_nodes = original_nodes
        steps = tests = 0
        if options.reduce:
            predicate = StillDiverges(
                self.engine,
                options.inputs,
                name=name,
                same_signature=True,
                signature=signature,
            )
            reduction = Reducer(
                predicate,
                step_budget=options.step_budget,
                test_budget=options.test_budget,
            ).reduce(source)
            source = reduction.reduced_source
            original_nodes = reduction.original_nodes
            reduced_nodes = reduction.reduced_nodes
            steps = len(reduction.steps)
            tests = reduction.tests_run

        culprit_reduced = self._attribute(source, diff, impl_ref, impl_target, name)
        diagnostics = to_diagnostics(self.oracle.report(load(source), name=name).findings)
        checkers = {d.checker for d in diagnostics}
        categories = {CHECKER_CATEGORY.get(c, "Misc") for c in checkers}
        key = corpus_key(checkers, culprit_original, signature.partition)
        result.keys.append(key)
        if key in self.bank:
            result.duplicates += 1
            return
        repro = BankedRepro(
            key=key,
            seed=seed,
            profile=options.profile,
            generator_version=generated.generator_version,
            ub_shapes=generated.ub_shapes,
            source=source,
            good_source=self._stabilize(source, name),
            inputs=list(options.inputs),
            checkers=tuple(sorted(checkers)),
            fingerprints=tuple(sorted(d.fingerprint for d in diagnostics)),
            group=classify_group(categories),
            partition=signature.partition,
            impl_ref=impl_ref,
            impl_target=impl_target,
            culprit_original=culprit_original,
            culprit_reduced=culprit_reduced,
            culprit_drifted=culprit_reduced != culprit_original,
            original_nodes=original_nodes,
            reduced_nodes=reduced_nodes,
            reduction_steps=steps,
            reduction_tests=tests,
        )
        if self.bank.add(repro):
            result.banked_new += 1
            if repro.culprit_drifted:
                result.drifted += 1
        else:  # pragma: no cover - key checked above
            result.duplicates += 1

    def _attribute(
        self,
        source: str,
        diff: DiffResult,
        impl_ref: str,
        impl_target: str,
        name: str,
    ) -> str:
        """Culprit pass name for *source* under the pinned pair."""
        bisection = bisect_divergence(
            source,
            diff.input,
            impl_ref=impl_ref,
            impl_target=impl_target,
            name=name,
        )
        if bisection.attributed:
            return bisection.culprit.pass_name
        return BASELINE_CULPRIT

    def _stabilize(self, source: str, name: str) -> str:
        """A non-divergent, oracle-clean single-step neighbor of *source*.

        The good twin anchors the false-positive column when the banked
        corpus is scored by ``repro precision``: it must be genuinely
        clean, so candidates are screened against the engine *and* both
        oracle modes.  Falls back to a trivial program when no neighbor
        within the budget qualifies.
        """
        budget = self.options.stabilize_budget
        for candidate in single_step_variants(source):
            if budget <= 0:
                break
            budget -= 1
            outcome = self.engine.check_source(
                candidate, self.options.inputs, name=f"{name}-good"
            )
            if outcome.divergent:
                continue
            program = load(candidate)
            if self.oracle.report(program, name=f"{name}-good").findings:
                continue
            if self._intra_oracle.report(program, name=f"{name}-good").findings:
                continue
            return candidate
        return FALLBACK_GOOD

    # ---------------------------------------------------------- checkpoints

    def _checkpoint_path(self) -> str:
        assert self.options.checkpoint_dir is not None
        return os.path.join(self.options.checkpoint_dir, CHECKPOINT_FILE)

    def _save_checkpoint(self, offset: int, result: GenerativeResult) -> None:
        write_record(
            self._checkpoint_path(),
            MAGIC,
            GenerativeCheckpoint(
                options_digest=self.options.digest(),
                offset=offset,
                generated=result.generated,
                divergent=result.divergent,
                banked_new=result.banked_new,
                duplicates=result.duplicates,
                drifted=result.drifted,
                keys=list(result.keys),
            ),
        )

    def _load_checkpoint(self) -> GenerativeCheckpoint | None:
        if self.options.checkpoint_dir is None:
            return None
        path = self._checkpoint_path()
        if not os.path.exists(path):
            return None
        checkpoint = read_record(path, MAGIC, GenerativeCheckpoint)
        if checkpoint.options_digest != self.options.digest():
            raise CheckpointError(
                "generative checkpoint was written with different campaign "
                "options; refusing to resume (move or delete "
                f"{path!r} to start fresh)"
            )
        return checkpoint
