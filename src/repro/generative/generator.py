"""Seeded, grammar-driven MiniC program generator.

CSmith-style closed-form generation (see ROADMAP and the evolutionary
generative-fuzzing paper in PAPERS.md), adapted to this reproduction's
needs: every emitted program is

* **well-typed and checker-clean** — it passes :func:`repro.minic.load`
  unconditionally, so downstream layers never see front-end rejects;
* **terminating under fuel** — every loop is a counted ``for`` whose
  induction variable the generated code never writes, every call edge
  goes to an earlier function (a DAG), and the one recursive shape
  decreases a guarded counter — so the reference implementation always
  halts well inside the default execution budget;
* **byte-deterministic per seed** — the same ``(seed, profile)`` pair
  regenerates the identical source, which is what makes campaign
  checkpoint/resume and corpus dedupe exact.

The *profile* knob biases generation toward UB-adjacent shapes: signed
arithmetic at the ``INT_MAX`` boundary, oversized shifts, uninit-prone
branches, cross-object pointer comparisons, unsequenced call arguments,
dead trapping divisions, and call-boundary flows that only the
interprocedural checkers can connect.  Each shape corresponds to a knob
on :class:`~repro.compiler.implementations.CompilerConfig` that the ten
implementations resolve differently, so biased programs have a high
prior of actually diverging under CompDiff.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

#: Bump when generated output changes shape: corpus entries record the
#: generator version so a bank can tell which grammar produced them.
GENERATOR_VERSION = 1

#: UB-adjacent shape identifiers (the generator's unstable-code menu).
SHAPE_OVERFLOW_GUARD = "overflow_guard"
SHAPE_UNINIT_BRANCH = "uninit_branch"
SHAPE_ARG_ORDER = "arg_order"
SHAPE_PTR_COMPARE = "ptr_compare"
SHAPE_WIDEN_MUL = "widen_mul"
SHAPE_OVERSIZED_SHIFT = "oversized_shift"
SHAPE_DEAD_DIV = "dead_div"
SHAPE_CALL_UNINIT = "call_uninit"
SHAPE_CALL_OVERFLOW = "call_overflow"

ALL_SHAPES = (
    SHAPE_OVERFLOW_GUARD,
    SHAPE_UNINIT_BRANCH,
    SHAPE_ARG_ORDER,
    SHAPE_PTR_COMPARE,
    SHAPE_WIDEN_MUL,
    SHAPE_OVERSIZED_SHIFT,
    SHAPE_DEAD_DIV,
    SHAPE_CALL_UNINIT,
    SHAPE_CALL_OVERFLOW,
)


@dataclass(frozen=True)
class GeneratorProfile:
    """Structural and bias knobs for one family of generated programs."""

    name: str
    #: Helper function count range (main is extra).
    functions: tuple[int, int] = (2, 4)
    #: Statements per block range.
    stmts: tuple[int, int] = (2, 5)
    #: Maximum nesting depth of if/for blocks.
    max_depth: int = 2
    #: Counted-loop trip-count range (termination bound).
    loop_bound: tuple[int, int] = (2, 8)
    #: How many UB-adjacent shapes to splice in.
    ub_sites: tuple[int, int] = (1, 3)
    #: shape -> selection weight (unlisted shapes are never emitted).
    shape_weights: tuple[tuple[str, int], ...] = tuple(
        (shape, 1) for shape in ALL_SHAPES
    )
    #: Probability an expression atom taps the fuzz input channel.
    input_prob: float = 0.2
    #: Probability of emitting the bounded-recursion helper shape.
    recursion_prob: float = 0.3

    def pick_shape(self, rng: random.Random) -> str:
        shapes = [shape for shape, _ in self.shape_weights]
        weights = [weight for _, weight in self.shape_weights]
        return rng.choices(shapes, weights=weights, k=1)[0]


#: Named profiles selectable from the CLI (``repro generate --profile``).
PROFILES: dict[str, GeneratorProfile] = {
    # Structurally identical generation with zero UB sites: the control
    # arm — these programs should essentially never diverge.
    "plain": GeneratorProfile(name="plain", ub_sites=(0, 0), input_prob=0.1),
    # The default: every shape on the menu, weighted toward the ones
    # with the broadest implementation-partition diversity.
    "ub": GeneratorProfile(
        name="ub",
        shape_weights=(
            (SHAPE_OVERFLOW_GUARD, 3),
            (SHAPE_UNINIT_BRANCH, 3),
            (SHAPE_ARG_ORDER, 2),
            (SHAPE_PTR_COMPARE, 2),
            (SHAPE_WIDEN_MUL, 2),
            (SHAPE_OVERSIZED_SHIFT, 2),
            (SHAPE_DEAD_DIV, 1),
            (SHAPE_CALL_UNINIT, 2),
            (SHAPE_CALL_OVERFLOW, 2),
        ),
    ),
    # Call-boundary bias: flows the interprocedural checkers own.
    "interproc": GeneratorProfile(
        name="interproc",
        functions=(3, 5),
        ub_sites=(2, 4),
        shape_weights=(
            (SHAPE_CALL_UNINIT, 4),
            (SHAPE_CALL_OVERFLOW, 4),
            (SHAPE_OVERFLOW_GUARD, 1),
            (SHAPE_UNINIT_BRANCH, 1),
        ),
    ),
}


@dataclass
class GeneratedProgram:
    """One generated program plus its generation metadata."""

    seed: int
    profile: str
    source: str
    #: UB-adjacent shapes actually spliced in (generation ground truth).
    ub_shapes: tuple[str, ...] = ()
    functions: int = 0
    generator_version: int = GENERATOR_VERSION


class _Scope:
    """Names visible at the current generation point."""

    def __init__(self, parent: "_Scope | None" = None) -> None:
        self.parent = parent
        #: int-typed names that may be read.
        self.readable: list[str] = []
        #: int-typed names that may be written (excludes loop counters).
        self.mutable: list[str] = []

    def all_readable(self) -> list[str]:
        names: list[str] = []
        scope: _Scope | None = self
        while scope is not None:
            names.extend(scope.readable)
            scope = scope.parent
        return names

    def all_mutable(self) -> list[str]:
        names: list[str] = []
        scope: _Scope | None = self
        while scope is not None:
            names.extend(scope.mutable)
            scope = scope.parent
        return names


@dataclass
class _Function:
    """A helper function under construction."""

    name: str
    params: list[str]
    #: Rendered body statements (each entry = list of lines, one indent).
    blocks: list[list[str]] = field(default_factory=list)
    return_expr: str = "0"

    def render(self) -> list[str]:
        params = ", ".join(f"int {p}" for p in self.params) or "void"
        lines = [f"int {self.name}({params}) {{"]
        for block in self.blocks:
            lines.extend(f"    {line}" for line in block)
        lines.append(f"    return {self.return_expr};")
        lines.append("}")
        return lines


class ProgramGenerator:
    """Single-use generator for one ``(seed, profile)`` pair."""

    def __init__(self, seed: int, profile: str | GeneratorProfile = "ub") -> None:
        if isinstance(profile, str):
            if profile not in PROFILES:
                raise KeyError(
                    f"unknown generator profile {profile!r}; have {sorted(PROFILES)}"
                )
            profile = PROFILES[profile]
        self.seed = seed
        self.profile = profile
        self.rng = random.Random(f"minic-gen:{GENERATOR_VERSION}:{profile.name}:{seed}")
        self._counter = 0
        self._globals: list[str] = []
        self._global_names: list[str] = []
        #: Top-level support definitions emitted by shapes (rendered lines).
        self._support: list[list[str]] = []
        self._shapes_used: list[str] = []

    # ------------------------------------------------------------ utilities

    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def _const(self) -> int:
        r = self.rng
        if r.random() < 0.2:
            return r.choice([0, 1, 2, 7, 8, 15, 16, 255, 256, 1000])
        return r.randint(-99, 99)

    # ---------------------------------------------------------- expressions

    def _atom(self, scope: _Scope) -> str:
        r = self.rng
        names = scope.all_readable()
        if names and r.random() < 0.6:
            return r.choice(names)
        if r.random() < self.profile.input_prob:
            return f"(input_byte({r.randint(0, 7)}) & {r.choice([15, 31, 63])})"
        return str(self._const())

    def _expr(self, scope: _Scope, depth: int = 0) -> str:
        r = self.rng
        if depth >= 2 or r.random() < 0.35:
            return self._atom(scope)
        op = r.choice(["+", "-", "*", "&", "|", "^", "%", "<<", ">>"])
        lhs = self._expr(scope, depth + 1)
        if op == "%":
            return f"({lhs} % {r.randint(2, 31)})"
        if op in ("<<", ">>"):
            return f"({lhs} {op} {r.randint(0, 7)})"
        rhs = self._expr(scope, depth + 1)
        return f"({lhs} {op} {rhs})"

    def _cond(self, scope: _Scope) -> str:
        op = self.rng.choice(["<", "<=", ">", ">=", "==", "!="])
        return f"({self._expr(scope, 1)} {op} {self._expr(scope, 1)})"

    # ----------------------------------------------------------- statements

    def _block(
        self, scope: _Scope, depth: int, callees: list[tuple[str, int]]
    ) -> list[str]:
        r = self.rng
        lines: list[str] = []
        for _ in range(r.randint(*self.profile.stmts)):
            lines.extend(self._statement(scope, depth, callees))
        return lines

    def _statement(
        self, scope: _Scope, depth: int, callees: list[tuple[str, int]]
    ) -> list[str]:
        r = self.rng
        choices = ["decl", "assign", "print"]
        if depth < self.profile.max_depth:
            choices += ["if", "for"]
        if callees:
            choices.append("call")
        kind = r.choice(choices)
        if kind == "decl":
            name = self._fresh("v")
            lines = [f"int {name} = {self._expr(scope)};"]
            scope.readable.append(name)
            scope.mutable.append(name)
            return lines
        if kind == "assign":
            targets = scope.all_mutable()
            if not targets:
                return [f"printf(\"x %d\\n\", {self._expr(scope)});"]
            target = r.choice(targets)
            op = r.choice(["=", "+=", "-=", "*=", "^="])
            return [f"{target} {op} {self._expr(scope)};"]
        if kind == "print":
            return [f"printf(\"p %d\\n\", {self._expr(scope)});"]
        if kind == "call":
            callee, arity = r.choice(callees)
            args = ", ".join(self._expr(scope, 1) for _ in range(arity))
            name = self._fresh("c")
            scope.readable.append(name)
            scope.mutable.append(name)
            return [f"int {name} = {callee}({args});"]
        if kind == "if":
            inner_then = _Scope(scope)
            inner_else = _Scope(scope)
            lines = [f"if ({self._cond(scope)}) {{"]
            lines.extend(
                f"    {line}" for line in self._block(inner_then, depth + 1, callees)
            )
            if r.random() < 0.5:
                lines.append("} else {")
                lines.extend(
                    f"    {line}"
                    for line in self._block(inner_else, depth + 1, callees)
                )
            lines.append("}")
            return lines
        # Counted for loop: the induction variable is readable but never
        # joins the mutable pool, so generated code cannot perturb the
        # trip count — the termination invariant.
        counter = self._fresh("i")
        bound = r.randint(*self.profile.loop_bound)
        inner = _Scope(scope)
        inner.readable.append(counter)
        # No calls inside loop bodies: a call chain where every frame
        # multiplies by its trip count would make total work exponential
        # in the helper count, defeating the fuel bound.
        lines = [f"for (int {counter} = 0; {counter} < {bound}; {counter} = {counter} + 1) {{"]
        lines.extend(f"    {line}" for line in self._block(inner, depth + 1, []))
        lines.append("}")
        return lines

    # -------------------------------------------------------------- shapes

    def _emit_shape(self, shape: str) -> list[str]:
        """Render one UB-adjacent shape as a self-contained statement block.

        Shapes reference only fresh names (plus their own support
        globals/functions), so they can be spliced at any statement
        boundary of any function without breaking checker-cleanliness.
        """
        r = self.rng
        self._shapes_used.append(shape)
        tag = self._fresh("s")
        if shape == SHAPE_OVERFLOW_GUARD:
            # Listing 1: the nsw-folded overflow guard.  base + delta
            # wraps at O0 but the guard folds to true under exploit_ub.
            slack = r.randint(0, 5)
            base = 2147483647 - slack
            delta = r.randint(slack + 1, slack + 6)
            return [
                f"int {tag}g = {base};",
                f"if (({tag}g + {delta}) > {tag}g) {{",
                f"    printf(\"{tag} guard 1\\n\");",
                "} else {",
                f"    printf(\"{tag} guard 0\\n\");",
                "}",
            ]
        if shape == SHAPE_UNINIT_BRANCH:
            # The read of an uninitialized stack slot: fill byte and slot
            # placement differ per implementation.
            return [
                f"int {tag}u;",
                f"int {tag}m = {r.randint(1, 50)};",
                f"if (({tag}u & 255) < {r.randint(64, 192)}) {{",
                f"    printf(\"{tag} lo %d\\n\", ({tag}u + {tag}m));",
                "} else {",
                f"    printf(\"{tag} hi\\n\");",
                "}",
            ]
        if shape == SHAPE_ARG_ORDER:
            # Unsequenced side effects in call arguments: gcc evaluates
            # right-to-left, clang left-to-right.
            self._support.append([f"int {tag}state = {r.randint(1, 5)};"])
            self._support.append(
                [
                    f"int {tag}inc(void) {{",
                    f"    {tag}state = ({tag}state + {r.randint(1, 3)});",
                    f"    return {tag}state;",
                    "}",
                ]
            )
            self._support.append(
                [
                    f"int {tag}dbl(void) {{",
                    f"    {tag}state = ({tag}state * 2);",
                    f"    return {tag}state;",
                    "}",
                ]
            )
            return [f"printf(\"{tag} %d %d\\n\", {tag}inc(), {tag}dbl());"]
        if shape == SHAPE_PTR_COMPARE:
            # Cross-object pointer comparison: data-segment ordering is a
            # layout policy ("decl" vs "alpha" vs "size_desc").  The two
            # globals are named so declaration and alphabetical order
            # disagree.
            self._support.append([f"int {tag}z = {r.randint(1, 9)};"])
            self._support.append([f"int {tag}a = {r.randint(1, 9)};"])
            return [
                f"if (&{tag}z < &{tag}a) {{",
                f"    printf(\"{tag} lt\\n\");",
                "} else {",
                f"    printf(\"{tag} ge\\n\");",
                "}",
            ]
        if shape == SHAPE_WIDEN_MUL:
            # int*int feeding a long context: 64-bit evaluation under
            # widen_int_mul vs 32-bit wraparound elsewhere.
            factor = r.randint(46342, 70000)
            return [
                f"int {tag}w = {factor};",
                f"long {tag}r = (long)({tag}w * {tag}w);",
                f"printf(\"{tag} %ld\\n\", {tag}r);",
            ]
        if shape == SHAPE_OVERSIZED_SHIFT:
            return [
                f"int {tag}n = {r.randint(32, 40)};",
                f"printf(\"{tag} %d\\n\", ({r.randint(1, 7)} << {tag}n));",
            ]
        if shape == SHAPE_DEAD_DIV:
            # An unused trapping division: deleted by DCE at O1+, traps
            # at O0 — the exit statuses split the implementations.
            return [
                f"int {tag}z = 0;",
                f"int {tag}d = ({r.randint(1, 99)} / {tag}z);",
                f"printf(\"{tag} live\\n\");",
            ]
        if shape == SHAPE_CALL_UNINIT:
            # Call-boundary uninit flow: the callee returns an
            # uninitialized slot on the branch the caller's constant
            # argument selects — invisible intraprocedurally.
            self._support.append(
                [
                    f"int {tag}leak(int k) {{",
                    "    if ((k & 1) == 1) {",
                    "        return (k * 3);",
                    "    }",
                    f"    int {tag}q;",
                    f"    return ({tag}q & 255);",
                    "}",
                ]
            )
            even = r.randint(1, 40) * 2
            return [f"printf(\"{tag} %d\\n\", {tag}leak({even}));"]
        if shape == SHAPE_CALL_OVERFLOW:
            # Call-boundary overflow guard: the INT_MAX-adjacent value
            # crosses a call, so only summary-based analysis connects the
            # guard to its unreachable-by-folding else branch.
            slack = r.randint(0, 5)
            delta = r.randint(slack + 1, slack + 6)
            self._support.append(
                [
                    f"int {tag}probe(int x) {{",
                    f"    if ((x + {delta}) > x) {{",
                    "        return 1;",
                    "    }",
                    "    return 0;",
                    "}",
                ]
            )
            return [
                f"int {tag}v = {2147483647 - slack};",
                f"printf(\"{tag} %d\\n\", {tag}probe({tag}v));",
            ]
        raise KeyError(f"unknown shape {shape!r}")  # pragma: no cover

    def _emit_recursion(self) -> tuple[list[str], str, int]:
        """The bounded-recursion helper: strictly decreasing, guarded."""
        r = self.rng
        name = self._fresh("rec")
        self._support.append(
            [
                f"int {name}(int n) {{",
                "    if (n <= 0) {",
                f"        return {r.randint(1, 9)};",
                "    }",
                f"    return (n + {name}(n - {r.randint(1, 2)}));",
                "}",
            ]
        )
        return [f"printf(\"{name} %d\\n\", {name}({r.randint(3, 9)}));"], name, 1

    # ------------------------------------------------------------ assembly

    def generate(self) -> GeneratedProgram:
        r = self.rng
        # Globals shared by all helpers.
        for _ in range(r.randint(1, 3)):
            name = self._fresh("g")
            self._globals.append(f"int {name} = {self._const()};")
            self._global_names.append(name)

        helper_count = r.randint(*self.profile.functions)
        helpers: list[_Function] = []
        callees: list[tuple[str, int]] = []
        for index in range(helper_count):
            func = _Function(name=f"fn{index}", params=[])
            for _ in range(r.randint(1, 3)):
                func.params.append(self._fresh("a"))
            scope = _Scope()
            scope.readable.extend(self._global_names)
            scope.mutable.extend(self._global_names)
            scope.readable.extend(func.params)
            scope.mutable.extend(func.params)
            # Call DAG: helpers only ever call earlier helpers.
            func.blocks.append(self._block(scope, 0, list(callees)))
            func.return_expr = self._expr(scope)
            helpers.append(func)
            callees.append((func.name, len(func.params)))

        main = _Function(name="main", params=[])
        main_scope = _Scope()
        main_scope.readable.extend(self._global_names)
        main_scope.mutable.extend(self._global_names)
        for func in helpers:
            result = self._fresh("r")
            args = ", ".join(str(self._const()) for _ in func.params)
            main.blocks.append(
                [
                    f"int {result} = {func.name}({args});",
                    f"printf(\"{func.name} %d\\n\", {result});",
                ]
            )
            main_scope.readable.append(result)
            main_scope.mutable.append(result)
        main.blocks.append(self._block(main_scope, 0, list(callees)))
        main.return_expr = "0"

        if r.random() < self.profile.recursion_prob:
            call_lines, _, _ = self._emit_recursion()
            main.blocks.insert(r.randint(0, len(main.blocks)), call_lines)

        # Splice the UB-adjacent shapes at random statement boundaries.
        site_count = r.randint(*self.profile.ub_sites)
        targets: list[_Function] = helpers + [main]
        for _ in range(site_count):
            shape_lines = self._emit_shape(self.profile.pick_shape(r))
            target = r.choice(targets)
            target.blocks.insert(r.randint(0, len(target.blocks)), shape_lines)

        lines: list[str] = []
        for decl in self._globals:
            lines.append(decl)
        for support in self._support:
            lines.append("")
            lines.extend(support)
        for func in helpers:
            lines.append("")
            lines.extend(func.render())
        lines.append("")
        lines.extend(main.render())
        source = "\n".join(lines) + "\n"
        return GeneratedProgram(
            seed=self.seed,
            profile=self.profile.name,
            source=source,
            ub_shapes=tuple(self._shapes_used),
            functions=helper_count + 1,
        )


def generate_program(seed: int, profile: str | GeneratorProfile = "ub") -> GeneratedProgram:
    """Generate one program for ``(seed, profile)`` (deterministic)."""
    return ProgramGenerator(seed, profile).generate()
