"""AST-level delta-debugging reducer for divergent MiniC programs.

Classic ddmin works on byte ranges; this reducer works on the parsed
AST (diopter/C-Reduce style), so every candidate it proposes is still a
*program* — and only candidates that re-parse and re-check cleanly are
ever handed to the interestingness predicate.  The transformation menu,
coarsest first:

* **drop function** — remove an entire unreferenced function;
* **inline constant** — replace a call expression with ``0``, which is
  what eventually makes its callee unreferenced;
* **drop statement** — remove one statement from any block;
* **unroll to straight line** — replace a loop with a single unrolled
  copy of its body;
* **flatten branch** — replace an ``if`` with one of its arms;
* **simplify expression** — replace a compound expression with one of
  its operands or a literal ``0``;
* **drop global** — remove an unreferenced global or struct.

The engine runs a greedy fixpoint loop: sweep the menu in order, accept
any candidate the predicate still finds interesting, and restart until a
full sweep accepts nothing (the 1-minimal fixpoint) or the per-reduction
step budget runs out.  Acceptance is *monotone by construction* — a
candidate is only ever adopted after the predicate confirmed it — and
the trace of accepted snapshots is kept on the result so tests can
re-verify every step (``tests/test_generative_reducer.py``).

Predicates are pluggable callables over source text.  Three ship here,
matching the ISSUE's menu: :class:`StillDiverges` (CompDiff verdict),
:class:`SameCulprit` (``repro bisect`` attribution), and
:class:`SameFingerprint` (UB-oracle diagnostic fingerprints); compose
them with :class:`AllOf`.
"""

from __future__ import annotations

import copy
import hashlib
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.errors import ReproError
from repro.minic import ast, load, count_nodes, to_source

#: Default cap on accepted reduction steps per program.
DEFAULT_STEP_BUDGET = 200
#: Default cap on predicate evaluations per program (the expensive part).
DEFAULT_TEST_BUDGET = 2500


# --------------------------------------------------------------------------
# Interestingness predicates
# --------------------------------------------------------------------------


class Predicate(Protocol):
    """An interestingness test over candidate source text."""

    def __call__(self, source: str) -> bool: ...  # pragma: no cover


class StillDiverges:
    """Interesting iff CompDiff still flags the program on *inputs*.

    ``same_signature=True`` additionally pins the divergence signature
    (the implementation partition), so reduction cannot slide from one
    discrepancy class onto a different, cheaper one.
    """

    def __init__(
        self,
        engine,
        inputs: list[bytes],
        name: str = "reduce",
        same_signature: bool = False,
        signature=None,
    ) -> None:
        from repro.core.triage import signature_of

        self.engine = engine
        self.inputs = list(inputs)
        self.name = name
        self.same_signature = same_signature
        self._signature_of = signature_of
        self.signature = signature

    def __call__(self, source: str) -> bool:
        try:
            outcome = self.engine.check_source(source, self.inputs, name=self.name)
        except ReproError:
            return False
        if not outcome.divergent:
            return False
        if not self.same_signature:
            return True
        for diff in outcome.diffs:
            if diff.divergent and self._signature_of(diff) == self.signature:
                return True
        return False


class SameCulprit:
    """Interesting iff ``repro bisect`` attributes the divergence to the
    same pass (by name) between the pinned implementation pair.

    The pair is pinned from the *original* diff rather than re-chosen
    per candidate: re-picking would let reduction drift onto a different
    implementation pair, at which point "same culprit" is vacuous (see
    docs/GENERATIVE.md on attribution drift).
    """

    def __init__(
        self,
        input_bytes: bytes,
        impl_ref: str,
        impl_target: str,
        pass_name: str,
        name: str = "reduce",
    ) -> None:
        self.input_bytes = input_bytes
        self.impl_ref = impl_ref
        self.impl_target = impl_target
        self.pass_name = pass_name
        self.name = name

    def __call__(self, source: str) -> bool:
        from repro.core.bisect import bisect_divergence

        try:
            result = bisect_divergence(
                source,
                self.input_bytes,
                impl_ref=self.impl_ref,
                impl_target=self.impl_target,
                name=self.name,
            )
        except ReproError:
            return False
        return (
            result.attributed
            and result.culprit is not None
            and result.culprit.pass_name == self.pass_name
        )


class SameFingerprint:
    """Interesting iff the UB oracle still reports the pinned diagnostic
    fingerprints.

    ``mode="any"`` keeps at least one of the pinned fingerprints alive
    (the campaign default — a reduction is allowed to shed secondary
    findings); ``mode="all"`` requires every pinned fingerprint to
    survive.
    """

    def __init__(self, fingerprints: set[str], mode: str = "any", oracle=None) -> None:
        if mode not in ("any", "all"):
            raise ValueError(f"mode must be 'any' or 'all', got {mode!r}")
        if oracle is None:
            from repro.static_analysis import UBOracle

            oracle = UBOracle(mode="interproc")
        self.fingerprints = set(fingerprints)
        self.mode = mode
        self.oracle = oracle

    def __call__(self, source: str) -> bool:
        from repro.static_analysis.diagnostics import to_diagnostics

        try:
            report = self.oracle.report(load(source))
        except ReproError:
            return False
        seen = {d.fingerprint for d in to_diagnostics(report.findings)}
        if self.mode == "all":
            return self.fingerprints <= seen
        return bool(self.fingerprints & seen)


class AllOf:
    """Conjunction of predicates, evaluated left to right."""

    def __init__(self, *predicates: Callable[[str], bool]) -> None:
        self.predicates = predicates

    def __call__(self, source: str) -> bool:
        return all(predicate(source) for predicate in self.predicates)


# --------------------------------------------------------------------------
# AST transformations
# --------------------------------------------------------------------------


def _referenced_names(program: ast.Program) -> set[str]:
    """Every identifier read anywhere in *program* (calls included)."""
    names: set[str] = set()

    def visit_expr(expr: ast.Expr) -> None:
        for node in ast.walk_expr(expr):
            if isinstance(node, ast.Ident):
                names.add(node.name)

    for decl in program.decls:
        if isinstance(decl, ast.GlobalVar) and decl.init is not None:
            visit_expr(decl.init)
        if isinstance(decl, ast.FuncDef):
            for stmt in ast.walk_stmts(decl.body):
                for expr in ast.statement_exprs(stmt):
                    visit_expr(expr)
    return names


def _blocks_of(func: ast.FuncDef) -> list[list[ast.Stmt]]:
    """Every mutable statement list in *func*, outermost first."""
    blocks: list[list[ast.Stmt]] = []
    for stmt in ast.walk_stmts(func.body):
        if isinstance(stmt, ast.Block):
            blocks.append(stmt.body)
        elif isinstance(stmt, ast.Switch):
            for case in stmt.cases:
                blocks.append(case.body)
    return blocks


def _loop_sites(block: list[ast.Stmt]) -> list[int]:
    return [
        i
        for i, stmt in enumerate(block)
        if isinstance(stmt, (ast.While, ast.DoWhile, ast.For))
    ]


def _if_sites(block: list[ast.Stmt]) -> list[int]:
    return [i for i, stmt in enumerate(block) if isinstance(stmt, ast.If)]


class _Candidates:
    """Enumerates single-step transformations of one program snapshot.

    Every method yields ``(description, mutate)`` pairs, where *mutate*
    applies the transformation in place to a fresh deep copy.  The
    enumeration order is deterministic, which (with a deterministic
    predicate) makes the whole reduction deterministic.
    """

    def __init__(self, program: ast.Program) -> None:
        self.program = program

    # Pass 1: whole unreferenced definitions (coarsest grain).
    def drop_definitions(self):
        referenced = _referenced_names(self.program)
        for index, decl in enumerate(self.program.decls):
            if isinstance(decl, ast.FuncDef):
                if decl.name == "main" or decl.name in referenced:
                    continue
                label = f"drop function {decl.name}"
            elif isinstance(decl, ast.GlobalVar):
                if decl.name in referenced:
                    continue
                label = f"drop global {decl.name}"
            elif isinstance(decl, ast.StructDef):
                label = f"drop struct {decl.name}"
            else:  # pragma: no cover - no other decl kinds
                continue

            def mutate(prog: ast.Program, index=index) -> None:
                del prog.decls[index]

            yield label, mutate

    # Pass 2: drop one statement anywhere.
    def drop_statements(self):
        for f_idx, func in enumerate(self.program.functions()):
            for b_idx, block in enumerate(_blocks_of(func)):
                for s_idx in range(len(block)):
                    label = f"drop stmt {func.name}[{b_idx}][{s_idx}]"

                    def mutate(
                        prog: ast.Program, f_idx=f_idx, b_idx=b_idx, s_idx=s_idx
                    ) -> None:
                        target = prog.functions()[f_idx]
                        del _blocks_of(target)[b_idx][s_idx]

                    yield label, mutate

    # Pass 3: replace a call with the constant 0 (enables pass 1 later).
    def inline_constant_calls(self):
        from repro.minic.builtins import is_builtin

        for f_idx, func in enumerate(self.program.functions()):
            sites = 0
            for stmt in ast.walk_stmts(func.body):
                for top in ast.statement_exprs(stmt):
                    for node in ast.walk_expr(top):
                        if (
                            isinstance(node, ast.Call)
                            and isinstance(node.func, ast.Ident)
                            and not is_builtin(node.func.name)
                        ):
                            sites += 1
            for site in range(sites):
                label = f"inline call #{site} in {func.name} -> 0"

                def mutate(prog: ast.Program, f_idx=f_idx, site=site) -> None:
                    _replace_call(prog.functions()[f_idx], site)

                yield label, mutate

    # Pass 4: unroll a loop into one straight-line copy of its body.
    def unroll_loops(self):
        for f_idx, func in enumerate(self.program.functions()):
            for b_idx, block in enumerate(_blocks_of(func)):
                for s_idx in _loop_sites(block):
                    label = f"unroll loop {func.name}[{b_idx}][{s_idx}]"

                    def mutate(
                        prog: ast.Program, f_idx=f_idx, b_idx=b_idx, s_idx=s_idx
                    ) -> None:
                        target = prog.functions()[f_idx]
                        inner = _blocks_of(target)[b_idx]
                        inner[s_idx] = _unrolled(inner[s_idx])

                    yield label, mutate

    # Pass 5: flatten an if into one of its arms.
    def flatten_branches(self):
        for f_idx, func in enumerate(self.program.functions()):
            for b_idx, block in enumerate(_blocks_of(func)):
                for s_idx in _if_sites(block):
                    for arm in ("then", "else"):
                        if arm == "else" and getattr(block[s_idx], "otherwise") is None:
                            continue
                        label = f"flatten if {func.name}[{b_idx}][{s_idx}] -> {arm}"

                        def mutate(
                            prog: ast.Program,
                            f_idx=f_idx,
                            b_idx=b_idx,
                            s_idx=s_idx,
                            arm=arm,
                        ) -> None:
                            target = prog.functions()[f_idx]
                            inner = _blocks_of(target)[b_idx]
                            branch = inner[s_idx]
                            chosen = branch.then if arm == "then" else branch.otherwise
                            inner[s_idx] = chosen

                        yield label, mutate

    # Pass 6: shrink one compound expression to an operand or literal.
    def simplify_expressions(self):
        sites = 0
        for func in self.program.functions():
            for stmt in ast.walk_stmts(func.body):
                for top in ast.statement_exprs(stmt):
                    for node in ast.walk_expr(top):
                        if isinstance(node, (ast.Binary, ast.Conditional, ast.Cast)):
                            sites += 1
        for site in range(sites):
            for how in ("lhs", "rhs", "zero"):
                label = f"simplify expr #{site} -> {how}"

                def mutate(prog: ast.Program, site=site, how=how) -> None:
                    _simplify_expr_site(prog, site, how)

                yield label, mutate

    def passes(self):
        yield "drop-definition", self.drop_definitions()
        yield "drop-statement", self.drop_statements()
        yield "inline-constant", self.inline_constant_calls()
        yield "unroll-loop", self.unroll_loops()
        yield "flatten-branch", self.flatten_branches()
        yield "simplify-expression", self.simplify_expressions()


def _replace_call(func: ast.FuncDef, site: int) -> None:
    """Replace the *site*-th non-builtin call in *func* with ``0``."""
    from repro.minic.builtins import is_builtin

    seen = 0

    def rewrite(expr: ast.Expr) -> ast.Expr:
        nonlocal seen
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Ident)
            and not is_builtin(expr.func.name)
        ):
            if seen == site:
                seen += 1
                return ast.IntLit(expr.line, expr.col, value=0)
            seen += 1
        _rewrite_children(expr, rewrite)
        return expr

    _rewrite_exprs(func, rewrite)


def _simplify_expr_site(program: ast.Program, site: int, how: str) -> None:
    """Shrink the *site*-th compound expression in *program*."""
    seen = 0

    def rewrite(expr: ast.Expr) -> ast.Expr:
        nonlocal seen
        if isinstance(expr, (ast.Binary, ast.Conditional, ast.Cast)):
            if seen == site:
                seen += 1
                if how == "zero":
                    return ast.IntLit(expr.line, expr.col, value=0)
                if isinstance(expr, ast.Binary):
                    return expr.lhs if how == "lhs" else expr.rhs
                if isinstance(expr, ast.Conditional):
                    return expr.then if how == "lhs" else expr.otherwise
                return expr.operand  # Cast: both arms collapse to operand
            seen += 1
        _rewrite_children(expr, rewrite)
        return expr

    for func in program.functions():
        _rewrite_exprs(func, rewrite)


def _rewrite_children(expr: ast.Expr, rewrite) -> None:
    """Apply *rewrite* to each direct child expression of *expr*."""
    if isinstance(expr, ast.Unary):
        expr.operand = rewrite(expr.operand)
    elif isinstance(expr, ast.Binary):
        expr.lhs = rewrite(expr.lhs)
        expr.rhs = rewrite(expr.rhs)
    elif isinstance(expr, ast.Assign):
        expr.value = rewrite(expr.value)
    elif isinstance(expr, ast.Conditional):
        expr.cond = rewrite(expr.cond)
        expr.then = rewrite(expr.then)
        expr.otherwise = rewrite(expr.otherwise)
    elif isinstance(expr, ast.Call):
        expr.args = [rewrite(arg) for arg in expr.args]
    elif isinstance(expr, ast.Index):
        expr.index = rewrite(expr.index)
    elif isinstance(expr, (ast.Cast, ast.SizeofExpr)):
        expr.operand = rewrite(expr.operand)


def _rewrite_exprs(func: ast.FuncDef, rewrite) -> None:
    """Apply *rewrite* to every top-level expression position in *func*."""
    for stmt in ast.walk_stmts(func.body):
        if isinstance(stmt, ast.ExprStmt):
            stmt.expr = rewrite(stmt.expr)
        elif isinstance(stmt, ast.VarDecl) and stmt.init is not None:
            stmt.init = rewrite(stmt.init)
        elif isinstance(stmt, ast.If):
            stmt.cond = rewrite(stmt.cond)
        elif isinstance(stmt, ast.While):
            stmt.cond = rewrite(stmt.cond)
        elif isinstance(stmt, ast.DoWhile):
            stmt.cond = rewrite(stmt.cond)
        elif isinstance(stmt, ast.For):
            if stmt.cond is not None:
                stmt.cond = rewrite(stmt.cond)
            if stmt.step is not None:
                stmt.step = rewrite(stmt.step)
        elif isinstance(stmt, ast.Switch):
            stmt.cond = rewrite(stmt.cond)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            stmt.value = rewrite(stmt.value)


def _unrolled(loop: ast.Stmt) -> ast.Stmt:
    """One straight-line copy of *loop*'s body (plus a For's init)."""
    body: list[ast.Stmt] = []
    if isinstance(loop, ast.For):
        if loop.init is not None:
            body.append(loop.init)
        body.append(loop.body)
    elif isinstance(loop, (ast.While, ast.DoWhile)):
        body.append(loop.body)
    else:  # pragma: no cover - callers filter to loops
        raise TypeError(f"not a loop: {type(loop).__name__}")
    return ast.Block(loop.line, loop.col, body=body)


# --------------------------------------------------------------------------
# Reduction engine
# --------------------------------------------------------------------------


@dataclass
class ReductionStep:
    """One accepted transformation."""

    description: str
    nodes_before: int
    nodes_after: int
    #: Source snapshot *after* this step (for monotonicity re-checks).
    source: str = field(repr=False, default="")


@dataclass
class ReductionResult:
    """Outcome of reducing one program."""

    original_source: str
    reduced_source: str
    original_nodes: int
    reduced_nodes: int
    steps: list[ReductionStep] = field(default_factory=list)
    #: Predicate evaluations consumed (candidate tests, not acceptances).
    tests_run: int = 0
    #: True when a full sweep accepted nothing (1-minimal fixpoint);
    #: False when a budget stopped the reduction early.
    reached_fixpoint: bool = False

    @property
    def reduction_ratio(self) -> float:
        if self.original_nodes == 0:
            return 1.0
        return self.reduced_nodes / self.original_nodes


class Reducer:
    """Greedy fixpoint delta-debugging over the transformation menu."""

    def __init__(
        self,
        predicate: Callable[[str], bool],
        step_budget: int = DEFAULT_STEP_BUDGET,
        test_budget: int = DEFAULT_TEST_BUDGET,
    ) -> None:
        if step_budget < 1:
            raise ValueError(f"step_budget must be >= 1, got {step_budget}")
        self.predicate = predicate
        self.step_budget = step_budget
        self.test_budget = test_budget

    def reduce(self, source: str) -> ReductionResult:
        """Reduce *source*, which must already satisfy the predicate."""
        program = load(source)
        result = ReductionResult(
            original_source=source,
            reduced_source=source,
            original_nodes=count_nodes(program),
            reduced_nodes=count_nodes(program),
        )
        if not self.predicate(source):
            raise ReproError(
                "reduction requires an interesting starting point; the "
                "predicate rejected the original program"
            )
        current = source
        #: Candidate sources already tested and rejected for the current
        #: snapshot generation (avoids re-testing identical dead ends).
        rejected: set[str] = set()
        while True:
            accepted_any = False
            candidates = _Candidates(load(current))
            for pass_name, pass_candidates in candidates.passes():
                for description, mutate in pass_candidates:
                    if len(result.steps) >= self.step_budget:
                        result.reduced_source = current
                        return self._finish(result, current)
                    if result.tests_run >= self.test_budget:
                        result.reduced_source = current
                        return self._finish(result, current)
                    candidate = self._apply(current, mutate)
                    if candidate is None or candidate == current:
                        continue
                    digest = hashlib.sha256(candidate.encode()).hexdigest()
                    if digest in rejected:
                        continue
                    result.tests_run += 1
                    if not self.predicate(candidate):
                        rejected.add(digest)
                        continue
                    nodes_before = count_nodes(load(current))
                    nodes_after = count_nodes(load(candidate))
                    result.steps.append(
                        ReductionStep(
                            description=f"{pass_name}: {description}",
                            nodes_before=nodes_before,
                            nodes_after=nodes_after,
                            source=candidate,
                        )
                    )
                    current = candidate
                    rejected.clear()
                    accepted_any = True
                    # Re-enumerate against the new snapshot: indices into
                    # the old AST are stale after a mutation.
                    break
                else:
                    continue
                break
            if not accepted_any:
                result.reached_fixpoint = True
                result.reduced_source = current
                return self._finish(result, current)

    @staticmethod
    def _apply(source: str, mutate) -> str | None:
        """Apply one mutation to a fresh parse of *source*.

        Returns the reprinted candidate, or None when the mutated AST no
        longer parses/checks (e.g. a dropped declaration with surviving
        uses) — such candidates are discarded before the predicate ever
        sees them.
        """
        program = load(source)
        mutated = copy.deepcopy(program)
        try:
            mutate(mutated)
            candidate = to_source(mutated)
            load(candidate)  # still parseable and checker-clean?
        except ReproError:
            return None
        return candidate

    @staticmethod
    def _finish(result: ReductionResult, current: str) -> ReductionResult:
        result.reduced_nodes = count_nodes(load(current))
        return result


def single_step_variants(source: str):
    """Yield every valid one-step transformation of *source*.

    Each yielded candidate re-parses and re-checks cleanly.  The
    campaign's good-twin stabilization search walks these with an
    *inverted* interestingness test (non-divergent and oracle-clean).
    """
    for _pass_name, candidates in _Candidates(load(source)).passes():
        for _description, mutate in candidates:
            candidate = Reducer._apply(source, mutate)
            if candidate is not None and candidate != source:
                yield candidate
