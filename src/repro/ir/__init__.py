"""Register-based bytecode IR shared by the compilers and the VM.

The IR is deliberately close to a de-SSA'd LLVM subset: functions hold
basic blocks of three-address instructions over virtual registers, with an
explicit frame-slot table for stack objects and a module-level global data
table.  Optimization passes (:mod:`repro.compiler.passes`) rewrite this IR;
the virtual machine (:mod:`repro.vm`) interprets it directly.
"""

from repro.ir.instructions import (
    AddrGlobal,
    AddrSlot,
    BinOp,
    Branch,
    BugSite,
    Call,
    CallBuiltin,
    Cast,
    Const,
    Instr,
    Jump,
    Load,
    Move,
    Reg,
    Ret,
    Store,
    UnOp,
)
from repro.ir.module import BasicBlock, FrameSlot, Function, GlobalData, Module
from repro.ir.builder import FunctionBuilder

__all__ = [
    "AddrGlobal",
    "AddrSlot",
    "BasicBlock",
    "BinOp",
    "Branch",
    "BugSite",
    "Call",
    "CallBuiltin",
    "Cast",
    "Const",
    "FrameSlot",
    "Function",
    "FunctionBuilder",
    "GlobalData",
    "Instr",
    "Jump",
    "Load",
    "Module",
    "Move",
    "Reg",
    "Ret",
    "Store",
    "UnOp",
]
