"""Imperative construction helper for IR functions."""

from __future__ import annotations

import itertools

from repro.ir.instructions import Branch, Instr, Jump, Reg, Ret
from repro.ir.module import BasicBlock, FrameSlot, Function
from repro.minic.types import Type


class FunctionBuilder:
    """Builds a :class:`~repro.ir.module.Function` block by block.

    Guarantees the invariant the VM relies on: every block ends in exactly
    one terminator, and no instruction follows a terminator.
    """

    def __init__(self, name: str, params: list[tuple[str, Type]], ret_type: Type) -> None:
        self.func = Function(name=name, params=params, ret_type=ret_type)
        self._labels = itertools.count(1)
        entry = BasicBlock("entry")
        self.func.blocks["entry"] = entry
        self._current: BasicBlock | None = entry

    # -- registers / slots ---------------------------------------------------

    def new_reg(self) -> Reg:
        return self.func.new_reg()

    def add_slot(self, name: str, size: int, align: int, line: int = 0, is_buffer: bool = False) -> int:
        index = len(self.func.slots)
        self.func.slots.append(
            FrameSlot(name=name, size=size, align=align, index=index, line=line, is_buffer=is_buffer)
        )
        return index

    # -- blocks ----------------------------------------------------------------

    def new_block(self, hint: str = "bb") -> str:
        label = f"{hint}.{next(self._labels)}"
        self.func.blocks[label] = BasicBlock(label)
        return label

    def switch_to(self, label: str) -> None:
        self._current = self.func.blocks[label]

    @property
    def current_label(self) -> str | None:
        return self._current.label if self._current is not None else None

    @property
    def terminated(self) -> bool:
        """True when the current block already ends in a terminator (or no
        block is active), so further straight-line emission is dead."""
        return self._current is None or self._current.terminator is not None

    # -- emission ---------------------------------------------------------------

    def emit(self, instr: Instr) -> Instr:
        if self._current is None or self._current.terminator is not None:
            # Unreachable code after return/break: emit into a fresh dead
            # block so the structure stays well formed; DCE removes it.
            dead = self.new_block("dead")
            self.switch_to(dead)
        self._current.instrs.append(instr)
        if isinstance(instr, (Jump, Branch, Ret)):
            self._current = None
        return instr

    def jump(self, target: str, line: int = 0) -> None:
        self.emit(Jump(target, line=line))

    def branch(self, cond, if_true: str, if_false: str, line: int = 0) -> None:
        self.emit(Branch(cond, if_true, if_false, line=line))

    def ret(self, value=None, line: int = 0) -> None:
        self.emit(Ret(value, line=line))

    # -- finalization ---------------------------------------------------------------

    def finish(self) -> Function:
        """Terminate any fall-through block with ``ret`` and return the function."""
        for block in self.func.blocks.values():
            if block.terminator is None:
                block.instrs.append(Ret(None))
        return self.func
