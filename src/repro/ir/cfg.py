"""Control-flow graph utilities over IR functions."""

from __future__ import annotations

from collections import defaultdict

from repro.ir.module import Function


def reachable_blocks(func: Function) -> set[str]:
    """Labels of blocks reachable from the entry block."""
    seen: set[str] = set()
    stack = [func.entry]
    while stack:
        label = stack.pop()
        if label in seen or label not in func.blocks:
            continue
        seen.add(label)
        stack.extend(func.blocks[label].successors())
    return seen


def predecessors(func: Function) -> dict[str, set[str]]:
    """Map block label -> labels of predecessor blocks."""
    preds: dict[str, set[str]] = defaultdict(set)
    for block in func.blocks.values():
        for succ in block.successors():
            preds[succ].add(block.label)
    preds.setdefault(func.entry, set())
    return dict(preds)


def remove_unreachable(func: Function) -> int:
    """Delete unreachable blocks; returns the number removed."""
    keep = reachable_blocks(func)
    dead = [label for label in func.blocks if label not in keep]
    for label in dead:
        del func.blocks[label]
    return len(dead)


def block_order_rpo(func: Function) -> list[str]:
    """Reverse postorder over reachable blocks (approximates execution order)."""
    seen: set[str] = set()
    order: list[str] = []

    def visit(label: str) -> None:
        if label in seen or label not in func.blocks:
            return
        seen.add(label)
        for succ in func.blocks[label].successors():
            visit(succ)
        order.append(label)

    visit(func.entry)
    order.reverse()
    return order
