"""Reusable dataflow analyses over :mod:`repro.ir` CFGs.

The package splits into one framework module and three concrete clients:

* :mod:`~repro.ir.dataflow.framework` — dominators plus the iterative
  worklist solver (:func:`solve`) parameterized by a
  :class:`DataflowAnalysis`;
* :mod:`~repro.ir.dataflow.pointsto` — flow-insensitive register
  points-to facts shared by the flow-sensitive analyses;
* :mod:`~repro.ir.dataflow.reaching` — initialization state /
  uninitialized-use detection;
* :mod:`~repro.ir.dataflow.intervals` — signed-integer intervals with
  overflow, UB-shift, and zero-divisor checks;
* :mod:`~repro.ir.dataflow.provenance` — pointer null/OOB/liveness
  tiers and cross-object pointer comparisons.

`repro.static_analysis.ub_oracle` packages the three clients as a
static "tool" whose findings feed divergence triage and directed
fuzzing.
"""

from repro.ir.dataflow.framework import (
    MAX_VISITS_PER_BLOCK,
    DataflowAnalysis,
    DataflowResult,
    dominates,
    dominators,
    immediate_dominators,
    loop_headers,
    solve,
)
from repro.ir.dataflow.intervals import IntervalAnalysis, IntFinding, find_integer_ub
from repro.ir.dataflow.pointsto import MemObject, Pointer, PointsTo
from repro.ir.dataflow.provenance import (
    ProvenanceAnalysis,
    PtrFinding,
    find_pointer_ub,
)
from repro.ir.dataflow.reaching import InitAnalysis, UninitUse, find_uninit_uses

__all__ = [
    "MAX_VISITS_PER_BLOCK",
    "DataflowAnalysis",
    "DataflowResult",
    "dominates",
    "dominators",
    "immediate_dominators",
    "loop_headers",
    "solve",
    "IntervalAnalysis",
    "IntFinding",
    "find_integer_ub",
    "MemObject",
    "Pointer",
    "PointsTo",
    "ProvenanceAnalysis",
    "PtrFinding",
    "find_pointer_ub",
    "InitAnalysis",
    "UninitUse",
    "find_uninit_uses",
]
