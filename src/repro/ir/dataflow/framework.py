"""Iterative dataflow framework over :mod:`repro.ir` CFGs.

An analysis supplies lattice operations (boundary/top/join) plus a block
transfer function; :func:`solve` runs the classic worklist algorithm in
reverse postorder (forward) or postorder (backward) until the block
states stop changing.  The solver carries a hard visit cap so clients
can *assert* that a fixpoint was reached instead of looping forever on a
lattice with unbounded ascending chains — analyses with infinite-height
lattices (intervals) hook :meth:`DataflowAnalysis.widen` to force
convergence.

Dominator computation lives here too (the usual iterative intersection
formulation); it is both a building block for clients that need
loop-head identification and a directly tested artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.ir.cfg import block_order_rpo, predecessors
from repro.ir.module import Function

#: Per-block visit budget before the solver gives up.  Generous: with
#: widening every analysis here stabilizes within a handful of visits.
MAX_VISITS_PER_BLOCK = 64


def dominators(func: Function) -> dict[str, set[str]]:
    """Dominator *sets* for every reachable block.

    ``label in dominators(f)[b]`` iff every path from entry to ``b``
    passes through ``label``.  Unreachable blocks are absent.
    """
    order = block_order_rpo(func)
    reachable = set(order)
    preds = predecessors(func)
    doms: dict[str, set[str]] = {func.entry: {func.entry}}
    for label in order:
        if label != func.entry:
            doms[label] = set(reachable)
    changed = True
    while changed:
        changed = False
        for label in order:
            if label == func.entry:
                continue
            live = [p for p in preds.get(label, ()) if p in reachable]
            new = set.intersection(*(doms[p] for p in live)) if live else set()
            new.add(label)
            if new != doms[label]:
                doms[label] = new
                changed = True
    return doms


def immediate_dominators(func: Function) -> dict[str, str | None]:
    """Immediate dominator per reachable block (entry maps to None)."""
    doms = dominators(func)
    idom: dict[str, str | None] = {func.entry: None}
    for label, dom in doms.items():
        if label == func.entry:
            continue
        strict = dom - {label}
        # The immediate dominator is the strict dominator dominated by
        # all the others, i.e. the one with the largest dominator set.
        idom[label] = max(strict, key=lambda d: (len(doms[d]), d)) if strict else None
    return idom


def dominates(doms: dict[str, set[str]], a: str, b: str) -> bool:
    """Does block *a* dominate block *b* (given :func:`dominators` output)?"""
    return a in doms.get(b, set())


def loop_headers(func: Function) -> set[str]:
    """Blocks that are targets of a back edge (successor dominates source)."""
    doms = dominators(func)
    headers: set[str] = set()
    for label in doms:
        for succ in func.blocks[label].successors():
            if succ in doms and dominates(doms, succ, label):
                headers.add(succ)
    return headers


class DataflowAnalysis:
    """Base class for a dataflow problem.

    States are opaque to the solver: they only need ``==`` for the
    change test.  ``transfer_block`` must return a *fresh* state (never
    mutate its input — the solver caches block states by reference).
    """

    #: "forward" (states flow along edges) or "backward" (against them).
    direction: str = "forward"

    def boundary(self, func: Function) -> Any:
        """State at the CFG boundary (entry for forward, exits for backward)."""
        raise NotImplementedError

    def top(self, func: Function) -> Any:
        """Initial optimistic state for non-boundary blocks."""
        raise NotImplementedError

    def join(self, states: list[Any]) -> Any:
        """Combine predecessor (or successor) out-states."""
        raise NotImplementedError

    def transfer_block(self, func: Function, label: str, state: Any) -> Any:
        """Apply the block's instructions to *state*; return the new state."""
        raise NotImplementedError

    def widen(self, label: str, old: Any, new: Any, visits: int) -> Any:
        """Accelerate convergence at *label* after repeated visits.

        Default: no widening (finite lattices converge on their own).
        """
        return new


@dataclass
class DataflowResult:
    """Solver output: per-block states plus convergence telemetry."""

    block_in: dict[str, Any] = field(default_factory=dict)
    block_out: dict[str, Any] = field(default_factory=dict)
    #: Total block-transfer applications performed.
    iterations: int = 0
    #: False when the visit cap fired before the states stabilized.
    converged: bool = True

    def state_before(self, label: str) -> Any:
        return self.block_in.get(label)


def solve(
    func: Function,
    analysis: DataflowAnalysis,
    max_visits_per_block: int = MAX_VISITS_PER_BLOCK,
    dead_edges: set[tuple[str, str]] | None = None,
) -> DataflowResult:
    """Run the worklist algorithm for *analysis* over *func*'s CFG.

    ``dead_edges`` removes (source, target) CFG edges the caller has
    proven infeasible (constant branch conditions — see
    :func:`repro.ir.dataflow.pruning.infeasible_edges`) before solving;
    blocks that become unreachable are dropped from the result entirely,
    so scan phases iterating ``block_in`` never visit them.  Forward
    analyses only — backward clients don't prune.
    """
    order = block_order_rpo(func)
    preds = predecessors(func)
    succs = {label: func.blocks[label].successors() for label in order}
    if dead_edges:
        succs = {
            label: [s for s in succ if (label, s) not in dead_edges]
            for label, succ in succs.items()
        }
        live = {func.entry}
        frontier = [func.entry]
        while frontier:
            label = frontier.pop()
            for succ in succs.get(label, ()):
                if succ not in live:
                    live.add(succ)
                    frontier.append(succ)
        order = [label for label in order if label in live]
        preds = {
            label: {
                p
                for p in preds.get(label, set())
                if p in live and (p, label) not in dead_edges
            }
            for label in order
        }
    if analysis.direction == "backward":
        order = list(reversed(order))
        edges_in = succs
        edges_out = {label: sorted(preds.get(label, ())) for label in order}
    else:
        edges_in = {label: sorted(preds.get(label, ())) for label in order}
        edges_out = succs
    reachable = set(order)
    position = {label: i for i, label in enumerate(order)}

    result = DataflowResult()
    boundary_labels = _boundary_labels(func, analysis, order)
    for label in order:
        result.block_in[label] = (
            analysis.boundary(func) if label in boundary_labels else analysis.top(func)
        )

    # Worklist keyed by RPO position: deterministic and loop-friendly.
    pending = set(order)
    worklist = list(order)
    visits: dict[str, int] = {}
    budget = max_visits_per_block * max(1, len(order))
    while worklist:
        worklist.sort(key=lambda lbl: position[lbl], reverse=True)
        label = worklist.pop()
        pending.discard(label)
        incoming = [
            result.block_out[edge]
            for edge in edges_in[label]
            if edge in reachable and edge in result.block_out
        ]
        if incoming:
            joined = analysis.join(incoming)
            if label in boundary_labels:
                joined = analysis.join([joined, analysis.boundary(func)])
        else:
            joined = result.block_in[label]
        count = visits.get(label, 0) + 1
        visits[label] = count
        joined = analysis.widen(label, result.block_in[label], joined, count)
        result.block_in[label] = joined
        out = analysis.transfer_block(func, label, joined)
        result.iterations += 1
        if result.iterations > budget:
            result.converged = False
            result.block_out[label] = out
            break
        if label not in result.block_out or result.block_out[label] != out:
            result.block_out[label] = out
            for succ in edges_out[label]:
                if succ in reachable and succ not in pending:
                    pending.add(succ)
                    worklist.append(succ)
    return result


def _boundary_labels(
    func: Function, analysis: DataflowAnalysis, order: list[str]
) -> set[str]:
    if analysis.direction == "forward":
        return {func.entry}
    exits = {
        label
        for label in order
        if not func.blocks[label].successors()
    }
    return exits or set(order[:1])
