"""Signed-integer interval analysis: overflow, UB shifts, zero divisors.

A forward analysis whose state maps virtual registers and scalar stack
slots to value intervals ``(lo, hi)`` (``None`` = unknown).  Arithmetic
transfers compute the *unwrapped* mathematical interval first — that is
where signed-overflow UB is visible — and then wrap the stored value to
the instruction's type, matching the VM's two's-complement semantics.

Interval lattices have unbounded ascending chains, so loop convergence
comes from widening: after a block has been visited twice, any bound
still growing is pushed to the 64-bit extreme.

Finding tiers:

* CONFIRMED — the operation misbehaves on *every* abstract value
  (e.g. a divisor interval of exactly ``[0, 0]``);
* POSSIBLE — some abstract values misbehave (partial overflow, a
  divisor interval straddling zero, a suspicious-magnitude operand
  combined with an unknown one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ir.dataflow.framework import DataflowAnalysis, DataflowResult, solve
from repro.ir.dataflow.pointsto import WRITES_THROUGH_ARG0, PointsTo
from repro.ir.instructions import (
    BinOp,
    Call,
    CallBuiltin,
    Cast,
    Const,
    Load,
    Move,
    Reg,
    Ret,
    Store,
    UnOp,
)
from repro.ir.module import Function, Module
from repro.minic.types import IntType

Interval = Optional[tuple[int, int]]

#: Hard clamp so widened bounds stay machine-integers.
CLAMP_MIN = -(1 << 63)
CLAMP_MAX = (1 << 63) - 1
#: Visits of one block before widening kicks in.
WIDEN_AFTER = 2

#: Builtins with a known, useful result range.
BUILTIN_RANGES: dict[str, tuple[int, int]] = {
    "input_byte": (-1, 255),
    "input_size": (0, CLAMP_MAX),
    "strlen": (0, CLAMP_MAX),
    "memcmp": (CLAMP_MIN, CLAMP_MAX),
}


@dataclass(frozen=True)
class IntFinding:
    """One integer-UB observation at a specific instruction."""

    checker: str  # "signed_overflow" | "shift_ub" | "div_zero"
    confidence: str  # "confirmed" | "possible"
    line: int
    function: str
    block: str
    instr_index: int
    message: str


def _clamp(value: int) -> int:
    return min(max(value, CLAMP_MIN), CLAMP_MAX)


def _hull(a: Interval, b: Interval) -> Interval:
    if a is None or b is None:
        return None
    return (min(a[0], b[0]), max(a[1], b[1]))


def _single_def_consts(func: Function) -> dict[int, Optional[int]]:
    """Registers holding one statically-known integer constant.

    Flow-insensitive: a register qualifies only if every definition
    resolves to the same constant through Const/Move/Cast chains.  A
    redefinition with a different (or unresolvable) value kills the fact.
    """
    def resolve(operand) -> Optional[int]:
        if isinstance(operand, bool):
            return None
        if isinstance(operand, int):
            return operand
        if isinstance(operand, Reg):
            return consts.get(operand.id)
        return None

    consts: dict[int, Optional[int]] = {}
    for block in func.blocks.values():
        for instr in block.instrs:
            dst = instr.defines()
            if dst is None:
                continue
            value: Optional[int] = None
            if isinstance(instr, Const) and isinstance(instr.value, int) \
                    and not isinstance(instr.value, bool):
                value = instr.value
            elif isinstance(instr, (Move, Cast)):
                value = resolve(instr.src)
            elif isinstance(instr, BinOp) and instr.op in ("add", "sub", "mul"):
                lhs, rhs = resolve(instr.lhs), resolve(instr.rhs)
                if lhs is not None and rhs is not None:
                    value = lhs + rhs if instr.op == "add" else \
                        lhs - rhs if instr.op == "sub" else lhs * rhs
            consts[dst.id] = value if dst.id not in consts or \
                consts[dst.id] == value else None
    return consts


class IntervalAnalysis(DataflowAnalysis):
    """Forward interval propagation over one function."""

    direction = "forward"

    def __init__(
        self,
        func: Function,
        module: Module,
        points_to: PointsTo | None = None,
        interproc=None,
        param_seed: dict | None = None,
    ):
        self.func = func
        self.module = module
        self.pt = points_to if points_to is not None else PointsTo(func, module)
        #: Optional :class:`repro.static_analysis.interproc.InterprocContext`:
        #: supplies summary return intervals and flow-sensitive parameter
        #: environments in place of the syntactic const-only fallbacks.
        self.interproc = interproc
        escaped = self.pt.escaped_objects()
        #: Scalar (non-buffer, word-sized, unescaped) slots tracked by index.
        self.tracked_slots = {
            index
            for index, slot in enumerate(func.slots)
            if not slot.is_buffer and slot.size <= 8 and
            not any(obj.kind == "slot" and obj.key == index for obj in escaped)
        }
        #: callee name -> return-value interval (Juliet's constant-source
        #: helpers and similar trivially-summarizable functions).
        self._return_cache: dict[str, Interval] = {}
        if param_seed is not None:
            # Explicit override: summary computation must stay context-free
            # (a summary's digest covers the function and its callees, not
            # its callers), so it passes {}.
            self._param_seed = dict(param_seed)
        else:
            self._param_seed = self._param_intervals()
            if interproc is not None:
                for index, value in interproc.param_env.get(func.name, {}).items():
                    key = ("r", index)
                    current = self._param_seed.get(key)
                    # Both seeds are sound hulls of the actual arguments;
                    # keep the tighter bound per endpoint.
                    if current is None:
                        self._param_seed[key] = value
                    elif value is not None:
                        lo = max(current[0], value[0])
                        hi = min(current[1], value[1])
                        self._param_seed[key] = (lo, hi) if lo <= hi else value

    def _param_intervals(self) -> dict:
        """Hull of constant arguments over every module call site.

        The context-sensitivity analog of :meth:`_return_interval`: when
        *every* caller passes a resolvable constant for a parameter, the
        entry state can seed that parameter's interval — the shape of
        Listing 1, where ``main`` passes ``INT_MAX - 100`` into the
        function holding the unstable overflow guard.  Any unresolvable
        argument makes the parameter unknown.
        """
        n_params = len(self.func.params)
        if n_params == 0:
            return {}
        hulls: list[Interval] = [None] * n_params
        seen_call = False
        for caller in self.module.functions.values():
            consts = _single_def_consts(caller)
            for block in caller.blocks.values():
                for instr in block.instrs:
                    if not isinstance(instr, Call) or instr.callee != self.func.name:
                        continue
                    seen_call = True
                    for index in range(n_params):
                        value = instr.args[index] if index < len(instr.args) else None
                        if isinstance(value, Reg):
                            value = consts.get(value.id)
                        if isinstance(value, bool) or not isinstance(value, int):
                            hulls[index] = "unknown"
                        elif hulls[index] != "unknown":
                            point = (value, value)
                            hulls[index] = point if hulls[index] is None \
                                else _hull(hulls[index], point)
        if not seen_call:
            return {}
        return {
            ("r", index): hull
            for index, hull in enumerate(hulls)
            if hull is not None and hull != "unknown"
        }

    # ------------------------------------------------------------- lattice

    def boundary(self, func: Function):
        return dict(self._param_seed)

    def top(self, func: Function):
        return {}

    def join(self, states):
        merged = dict(states[0])
        for state in states[1:]:
            for key, interval in state.items():
                if key in merged:
                    merged[key] = _hull(merged[key], interval)
                else:
                    merged[key] = interval
        # Keys absent from one side are unknown there.
        for key in list(merged):
            if any(key not in state for state in states):
                merged[key] = None
        return merged

    def widen(self, label, old, new, visits):
        if visits <= WIDEN_AFTER or not isinstance(old, dict):
            return new
        widened = dict(new)
        for key, interval in new.items():
            previous = old.get(key)
            if interval is None or previous is None:
                continue
            lo = CLAMP_MIN if interval[0] < previous[0] else interval[0]
            hi = CLAMP_MAX if interval[1] > previous[1] else interval[1]
            widened[key] = (lo, hi)
        return widened

    # ------------------------------------------------------------ transfer

    def transfer_block(self, func: Function, label: str, state):
        out = dict(state)
        for instr in func.blocks[label].instrs:
            self.transfer_instr(instr, out)
        return out

    def transfer_instr(self, instr, state, findings=None, where=None) -> None:
        """Apply one instruction; optionally record findings during a scan."""
        if isinstance(instr, Const):
            if isinstance(instr.value, int) and isinstance(instr.type, IntType):
                state[("r", instr.dst.id)] = (instr.value, instr.value)
            else:
                state[("r", instr.dst.id)] = None
        elif isinstance(instr, Move):
            state[("r", instr.dst.id)] = self._operand(instr.src, state)
        elif isinstance(instr, BinOp):
            state[("r", instr.dst.id)] = self._binop(instr, state, findings, where)
        elif isinstance(instr, UnOp):
            src = self._operand(instr.src, state)
            if instr.op == "neg" and src is not None:
                state[("r", instr.dst.id)] = (_clamp(-src[1]), _clamp(-src[0]))
            elif instr.op == "not":
                state[("r", instr.dst.id)] = (0, 1)
            else:
                state[("r", instr.dst.id)] = None
        elif isinstance(instr, Cast):
            state[("r", instr.dst.id)] = self._cast(instr, state)
        elif isinstance(instr, Load):
            state[("r", instr.dst.id)] = self._load(instr, state)
        elif isinstance(instr, Store):
            self._store(instr, state)
        elif isinstance(instr, (Call, CallBuiltin)):
            if isinstance(instr, CallBuiltin):
                if instr.name in WRITES_THROUGH_ARG0 and instr.args:
                    ptr = self.pt.pointer(instr.args[0])
                    if ptr is not None and ptr.obj.kind == "slot":
                        state[("s", ptr.obj.key)] = None
                known = BUILTIN_RANGES.get(instr.name)
            else:
                known = self._return_interval(instr.callee)
            if instr.defines() is not None:
                state[("r", instr.defines().id)] = known

    def _return_interval(self, callee: str) -> Interval:
        """Hull of *callee*'s returned constants, or None.

        Juliet hides the critical value behind a ``source()`` helper whose
        body is ``return <const>;`` (possibly under branches); summarizing
        those — every ``Ret`` operand resolvable through a single-def
        Const/Move/Cast chain — makes the call result as precise as the
        constant itself.  Anything else (loops, arithmetic, recursion)
        stays unknown.
        """
        if self.interproc is not None:
            summary = self.interproc.summary(callee)
            if summary is not None:
                return summary.returns
        if callee in self._return_cache:
            return self._return_cache[callee]
        self._return_cache[callee] = None  # provisional: breaks recursion
        func = self.module.functions.get(callee)
        if func is None:
            return None
        consts = _single_def_consts(func)
        rets: list = []
        for block in func.blocks.values():
            for instr in block.instrs:
                if isinstance(instr, Ret):
                    rets.append(instr.value)
        hull: Interval = None
        for value in rets:
            if isinstance(value, Reg):
                value = consts.get(value.id)
            if isinstance(value, bool) or not isinstance(value, int):
                return None
            hull = (value, value) if hull is None else _hull(hull, (value, value))
        self._return_cache[callee] = hull
        return hull

    # --------------------------------------------------------- value lookup

    def _operand(self, operand, state) -> Interval:
        if isinstance(operand, bool):
            return (int(operand), int(operand))
        if isinstance(operand, int):
            return (operand, operand)
        if isinstance(operand, float):
            return None
        if isinstance(operand, Reg):
            return state.get(("r", operand.id))
        return None

    @staticmethod
    def _type_range(type_) -> Interval:
        if isinstance(type_, IntType):
            return (type_.min_value, type_.max_value)
        return None

    def _load(self, instr: Load, state) -> Interval:
        ptr = self.pt.pointer(instr.addr)
        if (
            ptr is not None
            and ptr.obj.kind == "slot"
            and ptr.obj.key in self.tracked_slots
        ):
            return state.get(("s", ptr.obj.key))
        # Sub-word loads still yield a useful range; full-word loads from
        # untracked memory are unknown (a full-width range would make
        # every downstream addition look like a potential overflow).
        if isinstance(instr.type, IntType) and instr.type.bits < 32:
            return self._type_range(instr.type)
        return None

    def _store(self, instr: Store, state) -> None:
        ptr = self.pt.pointer(instr.addr)
        if ptr is None or ptr.obj.kind != "slot" or ptr.obj.key not in self.tracked_slots:
            return
        value = self._operand(instr.src, state)
        if value is not None and isinstance(instr.type, IntType):
            lo, hi = value
            value = (instr.type.wrap(lo), instr.type.wrap(hi)) if (
                instr.type.contains(lo) and instr.type.contains(hi)
            ) else self._type_range(instr.type)
        state[("s", ptr.obj.key)] = value

    def _cast(self, instr: Cast, state) -> Interval:
        src = self._operand(instr.src, state)
        if not isinstance(instr.to_type, IntType):
            return None
        if src is None:
            if isinstance(instr.from_type, IntType) and instr.from_type.bits < 32:
                return self._type_range(instr.from_type)
            return None
        lo, hi = src
        if instr.to_type.contains(lo) and instr.to_type.contains(hi):
            return (lo, hi)
        return self._type_range(instr.to_type)

    # ------------------------------------------------------------ arithmetic

    def _binop(self, instr: BinOp, state, findings, where) -> Interval:
        op = instr.op
        type_ = instr.type
        lhs = self._operand(instr.lhs, state)
        rhs = self._operand(instr.rhs, state)
        if op in ("eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge"):
            return (0, 1)
        if not isinstance(type_, IntType):
            return None
        if op in ("sdiv", "udiv", "srem", "urem"):
            self._check_division(instr, rhs, findings, where)
            if lhs is not None and rhs is not None and lhs[0] == lhs[1] and rhs[0] == rhs[1]:
                if rhs[0] != 0:
                    value = abs(lhs[0]) // abs(rhs[0]) if op in ("sdiv", "udiv") else abs(
                        lhs[0]
                    ) % abs(rhs[0])
                    sign = -1 if (lhs[0] < 0) != (rhs[0] < 0) and op in ("sdiv",) else 1
                    return (sign * value, sign * value)
            return None
        if op in ("shl", "lshr", "ashr"):
            self._check_shift(instr, rhs, findings, where)
            if lhs is not None and rhs is not None and lhs[0] == lhs[1] and rhs[0] == rhs[1]:
                if 0 <= rhs[0] < type_.bits:
                    raw = {
                        "shl": lhs[0] << rhs[0],
                        "lshr": (lhs[0] & ((1 << type_.bits) - 1)) >> rhs[0],
                        "ashr": lhs[0] >> rhs[0],
                    }[op]
                    wrapped = type_.wrap(raw)
                    return (wrapped, wrapped)
            return None
        if op == "and":
            if isinstance(instr.rhs, int) and instr.rhs >= 0:
                return (0, instr.rhs)
            if isinstance(instr.lhs, int) and instr.lhs >= 0:
                return (0, instr.lhs)
            if lhs is not None and rhs is not None and lhs[0] >= 0 and rhs[0] >= 0:
                return (0, min(lhs[1], rhs[1]))
            return None
        if op in ("or", "xor"):
            if lhs is not None and rhs is not None and lhs[0] >= 0 and rhs[0] >= 0:
                bound = max(lhs[1], rhs[1])
                width = bound.bit_length()
                return (0, (1 << width) - 1)
            return None
        if op not in ("add", "sub", "mul"):
            return None
        raw = self._raw_arith(op, lhs, rhs)
        if type_.signed:
            self._check_overflow(instr, lhs, rhs, raw, findings, where)
        if raw is None:
            return None
        lo, hi = raw
        if type_.contains(lo) and type_.contains(hi):
            return (lo, hi)
        return self._type_range(type_)

    @staticmethod
    def _raw_arith(op: str, lhs: Interval, rhs: Interval) -> Interval:
        if lhs is None or rhs is None:
            return None
        a_lo, a_hi = lhs
        b_lo, b_hi = rhs
        if op == "add":
            return (_clamp(a_lo + b_lo), _clamp(a_hi + b_hi))
        if op == "sub":
            return (_clamp(a_lo - b_hi), _clamp(a_hi - b_lo))
        corners = [a_lo * b_lo, a_lo * b_hi, a_hi * b_lo, a_hi * b_hi]
        return (_clamp(min(corners)), _clamp(max(corners)))

    # ------------------------------------------------------------- findings

    def _emit(self, findings, where, instr, checker, confidence, message) -> None:
        if findings is None or where is None:
            return
        label, idx = where
        findings.append(
            IntFinding(
                checker=checker,
                confidence=confidence,
                line=instr.line,
                function=self.func.name,
                block=label,
                instr_index=idx,
                message=message,
            )
        )

    def _check_overflow(self, instr, lhs, rhs, raw, findings, where) -> None:
        type_ = instr.type
        if raw is not None:
            lo, hi = raw
            if type_.contains(lo) and type_.contains(hi):
                return
            always = hi < type_.min_value or lo > type_.max_value
            self._emit(
                findings,
                where,
                instr,
                "signed_overflow",
                "confirmed" if always else "possible",
                f"signed {instr.op} on {type_} may produce [{lo}, {hi}] "
                f"outside [{type_.min_value}, {type_.max_value}]",
            )
            return
        # One side unknown: only a suspicious-magnitude partner makes the
        # overflow plausible enough to report (keeps `x + 1` quiet).
        known = lhs if lhs is not None else rhs
        if known is None:
            return
        magnitude = max(abs(known[0]), abs(known[1]))
        if instr.op in ("add", "sub"):
            suspicious = magnitude >= (type_.max_value + 1) // 2
        else:  # mul
            suspicious = magnitude >= (1 << (type_.bits // 2))
        if suspicious:
            self._emit(
                findings,
                where,
                instr,
                "signed_overflow",
                "possible",
                f"signed {instr.op} of unknown value with large operand "
                f"[{known[0]}, {known[1]}] may overflow {type_}",
            )

    def _check_shift(self, instr, amount, findings, where) -> None:
        if amount is None:
            return
        bits = instr.type.bits if isinstance(instr.type, IntType) else 64
        lo, hi = amount
        if lo >= 0 and hi < bits:
            return
        always = lo >= bits or hi < 0
        self._emit(
            findings,
            where,
            instr,
            "shift_ub",
            "confirmed" if always else "possible",
            f"shift amount in [{lo}, {hi}] is undefined for {bits}-bit {instr.op}",
        )

    def _check_division(self, instr, divisor, findings, where) -> None:
        if divisor is None:
            self._emit(
                findings,
                where,
                instr,
                "div_zero",
                "possible",
                f"{instr.op} by a value the analysis cannot bound away from zero",
            )
            return
        lo, hi = divisor
        if lo > 0 or hi < 0:
            return
        self._emit(
            findings,
            where,
            instr,
            "div_zero",
            "confirmed" if lo == 0 and hi == 0 else "possible",
            f"{instr.op} divisor interval [{lo}, {hi}] contains zero",
        )


def find_integer_ub(
    func: Function, module: Module, points_to: PointsTo | None = None
) -> tuple[list[IntFinding], DataflowResult]:
    """Solve intervals for *func* and scan every instruction for UB."""
    analysis = IntervalAnalysis(func, module, points_to=points_to)
    result = solve(func, analysis)
    findings: list[IntFinding] = []
    for label in result.block_in:
        state = dict(result.block_in[label])
        for idx, instr in enumerate(func.blocks[label].instrs):
            analysis.transfer_instr(instr, state, findings=findings, where=(label, idx))
    return findings, result
