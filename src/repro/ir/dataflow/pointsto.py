"""Register points-to facts: which memory object does a register address?

The lowered IR computes addresses into fresh virtual registers
(``AddrSlot`` / ``AddrGlobal`` / ``malloc``) and derives further
addresses by ``add``/``sub``/``Move``/``Cast``.  Because the lowering
mints a new register per temporary, almost every address-carrying
register has exactly one definition, so a cheap flow-insensitive
resolution over single-definition registers recovers precise
(object, byte-offset) facts.  Registers with multiple definitions (loop
phis via slots never produce these) or values loaded from memory stay
unknown — the analyses treat unknown addresses conservatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ir.instructions import (
    AddrGlobal,
    AddrSlot,
    BinOp,
    Call,
    CallBuiltin,
    Cast,
    Const,
    Instr,
    Move,
    Reg,
    Store,
)
from repro.ir.module import Function, Module

#: Builtins that allocate a fresh heap object into their destination.
HEAP_ALLOCATORS = frozenset({"malloc", "calloc", "realloc"})

#: Builtins that write through their first pointer argument (initialize
#: the destination object, at whole-object granularity).
WRITES_THROUGH_ARG0 = frozenset(
    {"memset", "memcpy", "memmove", "strcpy", "strncpy", "strcat", "read_input"}
)

#: Builtins that only *read* through their pointer arguments.
READ_ONLY_BUILTINS = frozenset(
    {
        "printf",
        "eprintf",
        "puts",
        "strlen",
        "strcmp",
        "strncmp",
        "memcmp",
        "atoi",
        "free",
        "__bugsite",
    }
)


@dataclass(frozen=True)
class MemObject:
    """One abstract memory object: a stack slot, global, or heap site."""

    kind: str  # "slot" | "global" | "heap"
    #: slot index (int), global name (str), or "<block>:<idx>" heap site.
    key: object
    #: Declared byte size; None when unknown (e.g. malloc of a variable).
    size: Optional[int] = None
    line: int = 0
    name: str = ""

    def describe(self) -> str:
        if self.kind == "slot":
            return f"stack object '{self.name or self.key}'"
        if self.kind == "global":
            return f"global '{self.key}'"
        return f"heap block (allocated at line {self.line})"


@dataclass(frozen=True)
class Pointer:
    """An abstract address: base object plus byte offset (None = unknown)."""

    obj: MemObject
    offset: Optional[int] = 0

    def shifted(self, delta: Optional[int]) -> "Pointer":
        if delta is None or self.offset is None:
            return Pointer(self.obj, None)
        return Pointer(self.obj, self.offset + delta)


class PointsTo:
    """Resolved register→:class:`Pointer` facts for one function."""

    def __init__(self, func: Function, module: Module) -> None:
        self.func = func
        self.module = module
        self.by_reg: dict[int, Pointer] = {}
        self.heap_objects: list[MemObject] = []
        self._resolve()

    # ------------------------------------------------------------ queries

    def pointer(self, operand) -> Optional[Pointer]:
        """The pointer fact for an operand, if it is a resolved register."""
        if isinstance(operand, Reg):
            return self.by_reg.get(operand.id)
        return None

    def objects(self) -> list[MemObject]:
        """All stack-slot and heap objects of the function, in order."""
        slots = [self._slot_object(i) for i in range(len(self.func.slots))]
        return slots + list(self.heap_objects)

    def escaped_objects(self) -> set[MemObject]:
        """Objects whose address escapes to a call or into memory.

        An escaped object may be written (or retained) by code the
        analyses cannot see, so they must treat its contents as unknown
        but initialized.  Read-only builtins do not escape their
        arguments; neither does ``free``.
        """
        escaped: set[MemObject] = set()
        for block in self.func.blocks.values():
            for instr in block.instrs:
                if isinstance(instr, Store):
                    src = self.pointer(instr.src)
                    if src is not None:
                        # Parking a pointer in a local slot is not an
                        # escape — the slot analyses track it.  Storing
                        # it into heap/global/unknown memory is.
                        dst = self.pointer(instr.addr)
                        if dst is None or dst.obj.kind != "slot":
                            escaped.add(src.obj)
                elif isinstance(instr, Call):
                    for arg in instr.args:
                        ptr = self.pointer(arg)
                        if ptr is not None:
                            escaped.add(ptr.obj)
                elif isinstance(instr, CallBuiltin):
                    if instr.name in READ_ONLY_BUILTINS or instr.name in HEAP_ALLOCATORS:
                        continue
                    if instr.name in WRITES_THROUGH_ARG0:
                        continue  # modeled precisely by the init analysis
                    for arg in instr.args:
                        ptr = self.pointer(arg)
                        if ptr is not None:
                            escaped.add(ptr.obj)
        return escaped

    # ---------------------------------------------------------- resolution

    def _slot_object(self, index: int) -> MemObject:
        slot = self.func.slots[index]
        return MemObject(
            kind="slot", key=index, size=slot.size, line=slot.line, name=slot.name
        )

    def _global_object(self, name: str) -> MemObject:
        data = self.module.globals.get(name)
        size = data.size if data is not None else None
        return MemObject(kind="global", key=name, size=size, name=name)

    def _resolve(self) -> None:
        defs: dict[int, tuple[Instr, str, int]] = {}
        def_count: dict[int, int] = {}
        for i in range(len(self.func.params)):
            def_count[i] = def_count.get(i, 0) + 1  # implicit argument defs
        for label, block in self.func.blocks.items():
            for idx, instr in enumerate(block.instrs):
                dst = instr.defines()
                if dst is not None:
                    def_count[dst.id] = def_count.get(dst.id, 0) + 1
                    defs[dst.id] = (instr, label, idx)
        self._defs = defs
        self._def_count = def_count
        heap_seen: dict[tuple[str, int], MemObject] = {}
        # Alternate direct resolution with single-store pointer-slot
        # resolution: `int *p = malloc(..); ... p[i]` round-trips the
        # heap pointer through p's stack slot, and recovering it needs
        # the store facts that the direct pass just established.
        outer_changed = True
        while outer_changed:
            changed = True
            while changed:
                changed = False
                for rid, (instr, label, idx) in defs.items():
                    if def_count.get(rid, 0) != 1 or rid in self.by_reg:
                        continue
                    ptr = self._value_of(instr, label, idx, heap_seen)
                    if ptr is not None:
                        self.by_reg[rid] = ptr
                        changed = True
            outer_changed = self._resolve_slot_loads(defs, def_count)
        self.heap_objects = [heap_seen[key] for key in sorted(heap_seen)]

    def _resolve_slot_loads(
        self,
        defs: dict[int, tuple[Instr, str, int]],
        def_count: dict[int, int],
    ) -> bool:
        """Resolve loads from slots that hold exactly one known pointer.

        A pointer-sized scalar slot whose address is used *only* as a
        load/store target and that receives exactly one pointer-typed
        store propagates that pointer to every load — sound up to the
        load-before-store ordering, which the lowering's
        declaration-with-initializer shape never produces.
        """
        from repro.minic.types import PointerType

        stores: dict[int, list] = {}
        loads: dict[int, list[int]] = {}
        tainted: set[int] = set()
        for block in self.func.blocks.values():
            for instr in block.instrs:
                addr_operands = []
                if isinstance(instr, Store):
                    addr_operands.append(instr.addr)
                    if isinstance(instr.type, PointerType):
                        ptr = self.pointer(instr.addr)
                        if ptr is not None and ptr.obj.kind == "slot" and ptr.offset == 0:
                            stores.setdefault(ptr.obj.key, []).append(instr.src)
                    src_ptr = self.pointer(instr.src)
                    if src_ptr is not None and src_ptr.obj.kind == "slot":
                        tainted.add(src_ptr.obj.key)
                elif hasattr(instr, "addr"):
                    addr_operands.append(instr.addr)
                for operand in instr.uses():
                    if operand in addr_operands:
                        continue
                    ptr = self.pointer(operand)
                    if ptr is not None and ptr.obj.kind == "slot":
                        tainted.add(ptr.obj.key)
        changed = False
        for block in self.func.blocks.values():
            for instr in block.instrs:
                if not hasattr(instr, "addr") or instr.defines() is None:
                    continue
                rid = instr.defines().id
                if rid in self.by_reg or def_count.get(rid, 0) != 1:
                    continue
                addr = self.pointer(instr.addr)
                if addr is None or addr.obj.kind != "slot" or addr.offset != 0:
                    continue
                index = addr.obj.key
                slot = self.func.slots[index]
                if slot.is_buffer or slot.size != 8 or index in tainted:
                    continue
                slot_stores = stores.get(index, [])
                if len(slot_stores) != 1:
                    continue
                value = self.pointer(slot_stores[0])
                if value is not None:
                    self.by_reg[rid] = value
                    changed = True
        return changed

    def _value_of(
        self,
        instr: Instr,
        label: str,
        idx: int,
        heap_seen: dict[tuple[str, int], MemObject],
    ) -> Optional[Pointer]:
        if isinstance(instr, AddrSlot):
            return Pointer(self._slot_object(instr.slot), 0)
        if isinstance(instr, AddrGlobal):
            return Pointer(self._global_object(instr.name), 0)
        if isinstance(instr, CallBuiltin) and instr.name in HEAP_ALLOCATORS:
            key = (label, idx)
            if key not in heap_seen:
                heap_seen[key] = MemObject(
                    kind="heap",
                    key=f"{label}:{idx}",
                    size=self._alloc_size(instr),
                    line=instr.line,
                )
            return Pointer(heap_seen[key], 0)
        if isinstance(instr, (Move, Cast)) and isinstance(instr.src, Reg):
            base = self.by_reg.get(instr.src.id)
            return base
        if isinstance(instr, BinOp) and instr.op in ("add", "sub"):
            lhs, rhs = instr.lhs, instr.rhs
            base = self.pointer(lhs)
            other = rhs
            if base is None and instr.op == "add":
                base = self.pointer(rhs)
                other = lhs
            if base is None:
                return None
            if isinstance(other, int):
                delta = -other if instr.op == "sub" else other
                return base.shifted(delta)
            return base.shifted(None)
        return None

    def _const_value(self, operand, depth: int = 0) -> Optional[int]:
        """Resolve an operand to an int constant through Const/Cast/Move
        chains of single-definition registers."""
        if isinstance(operand, bool):
            return int(operand)
        if isinstance(operand, int):
            return operand
        if not isinstance(operand, Reg) or depth > 8:
            return None
        if self._def_count.get(operand.id, 0) != 1:
            return None
        entry = self._defs.get(operand.id)
        if entry is None:
            return None
        instr = entry[0]
        if isinstance(instr, Const):
            return instr.value if isinstance(instr.value, int) else None
        if isinstance(instr, (Move, Cast)):
            return self._const_value(instr.src, depth + 1)
        return None

    def _alloc_size(self, instr: CallBuiltin) -> Optional[int]:
        args = [self._const_value(a) for a in instr.args]
        if instr.name == "malloc" and len(args) == 1 and args[0] is not None:
            return args[0]
        if instr.name == "calloc" and len(args) == 2 and None not in args:
            return args[0] * args[1]
        return None
