"""Pointer provenance: null/dangling/out-of-bounds tiers per access.

Builds on the flow-insensitive :class:`~repro.ir.dataflow.pointsto.PointsTo`
facts with a forward flow-sensitive layer that tracks

* the pointer value held by each unescaped pointer-sized stack slot
  (``("pslot", index)`` keys) — null, a (object, offset) pair, or both;
* heap-block liveness (``("live", site)`` keys: LIVE / FREED / MAYBE);
* pointer values of registers loaded back out of those slots.

The scan phase classifies every memory access into the provenance tiers
the paper's Table 5 taxonomy needs: null dereference, out-of-bounds
(using the interval analysis to bound computed offsets), use-after-free
and double-free, plus relational comparisons / subtraction of pointers
into *different* objects (the PointerCmp divergence class).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ir.dataflow.framework import DataflowAnalysis, DataflowResult, solve
from repro.ir.dataflow.intervals import IntervalAnalysis
from repro.ir.dataflow.pointsto import (
    HEAP_ALLOCATORS,
    WRITES_THROUGH_ARG0,
    MemObject,
    Pointer,
    PointsTo,
)
from repro.ir.instructions import (
    BinOp,
    Call,
    CallBuiltin,
    Cast,
    Instr,
    Load,
    Move,
    Reg,
    Store,
)
from repro.ir.module import Function, Module
from repro.minic.types import PointerType

LIVE = "live"
FREED = "freed"
MAYBE_FREED = "maybe_freed"

#: Relational comparisons that are UB on pointers to distinct objects.
RELATIONAL_CMPS = frozenset({"slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge"})

#: Builtins whose trailing integer argument bounds the bytes written /
#: read through the first pointer argument.
LENGTH_ARG_BUILTINS = frozenset({"memset", "memcpy", "memmove", "read_input"})


@dataclass(frozen=True)
class PtrVal:
    """Abstract pointer value: maybe-null plus an optional (obj, offset)."""

    obj: Optional[MemObject]  # None with may_null=True means "definitely null"
    offset: Optional[int] = 0
    may_null: bool = False

    @property
    def is_null(self) -> bool:
        return self.obj is None and self.may_null

    def shifted(self, delta: Optional[int]) -> "PtrVal":
        if self.obj is None:
            return self
        if delta is None or self.offset is None:
            return PtrVal(self.obj, None, self.may_null)
        return PtrVal(self.obj, self.offset + delta, self.may_null)


NULL = PtrVal(obj=None, offset=None, may_null=True)


def _join_ptr(a: Optional[PtrVal], b: Optional[PtrVal]) -> Optional[PtrVal]:
    if a is None or b is None:
        return None
    if a.is_null and b.is_null:
        return NULL
    if a.is_null:
        return PtrVal(b.obj, b.offset, True)
    if b.is_null:
        return PtrVal(a.obj, a.offset, True)
    if a.obj != b.obj:
        return None
    offset = a.offset if a.offset == b.offset else None
    return PtrVal(a.obj, offset, a.may_null or b.may_null)


def _join_live(a: str, b: str) -> str:
    if a == b:
        return a
    return MAYBE_FREED


@dataclass(frozen=True)
class PtrFinding:
    """One pointer-provenance observation at a specific instruction."""

    checker: str  # null_deref | oob_access | use_after_free | double_free
    #         | bad_free | pointer_cmp
    confidence: str  # "confirmed" | "possible"
    line: int
    function: str
    block: str
    instr_index: int
    message: str
    #: Interprocedural trace ("func:line" frames) when the faulting
    #: access happens inside a summarized callee, not at this line.
    via: tuple[str, ...] = ()


class ProvenanceAnalysis(DataflowAnalysis):
    """Forward pointer-state analysis over one function."""

    direction = "forward"

    def __init__(
        self,
        func: Function,
        module: Module,
        points_to: PointsTo | None = None,
        interproc=None,
    ):
        self.func = func
        self.module = module
        self.pt = points_to if points_to is not None else PointsTo(func, module)
        #: Optional InterprocContext: callee free/deref summaries replace
        #: the havoc-everything treatment of module-internal calls.
        self.interproc = interproc
        escaped = self.pt.escaped_objects()
        #: Pointer-sized, unescaped scalar slots that ever hold a pointer.
        self.pointer_slots = self._find_pointer_slots(escaped)
        #: Single-definition map for decomposing computed addresses.
        self.defs = self._single_defs()

    def _find_pointer_slots(self, escaped: set[MemObject]) -> set[int]:
        candidates: set[int] = set()
        for block in self.func.blocks.values():
            for instr in block.instrs:
                if isinstance(instr, Store) and isinstance(instr.type, PointerType):
                    ptr = self.pt.pointer(instr.addr)
                    if ptr is not None and ptr.obj.kind == "slot" and ptr.offset == 0:
                        candidates.add(ptr.obj.key)
        return {
            index
            for index in candidates
            if self.func.slots[index].size == 8
            and not self.func.slots[index].is_buffer
            and not any(o.kind == "slot" and o.key == index for o in escaped)
        }

    def _single_defs(self) -> dict[int, Instr]:
        defs: dict[int, Instr] = {}
        counts: dict[int, int] = {i: 1 for i in range(len(self.func.params))}
        for block in self.func.blocks.values():
            for instr in block.instrs:
                dst = instr.defines()
                if dst is not None:
                    counts[dst.id] = counts.get(dst.id, 0) + 1
                    defs[dst.id] = instr
        return {rid: instr for rid, instr in defs.items() if counts.get(rid) == 1}

    # ------------------------------------------------------------- lattice

    def boundary(self, func: Function):
        return {}

    def top(self, func: Function):
        return {}

    def join(self, states):
        merged = dict(states[0])
        for state in states[1:]:
            for key, value in state.items():
                if key not in merged:
                    # Absent liveness means "never freed here"; absent
                    # pointer value means unknown.
                    merged[key] = value if key[0] == "live" else None
                elif key[0] == "live":
                    merged[key] = _join_live(merged[key], value)
                else:
                    merged[key] = _join_ptr(merged[key], value)
        for key in list(merged):
            if key[0] != "live" and any(key not in state for state in states):
                merged[key] = None
        merged = {k: v for k, v in merged.items() if v is not None}
        return merged

    # ------------------------------------------------------------ transfer

    def transfer_block(self, func: Function, label: str, state):
        out = dict(state)
        for instr in func.blocks[label].instrs:
            self.transfer_instr(instr, out)
        return out

    def transfer_instr(self, instr, state, findings=None, where=None) -> None:
        """Apply one instruction; optionally record findings during a scan."""
        if isinstance(instr, Store):
            self._do_store(instr, state, findings, where)
        elif isinstance(instr, Load):
            self._do_load(instr, state, findings, where)
        elif isinstance(instr, (Move, Cast)):
            if isinstance(instr.src, Reg):
                value = state.get(("r", instr.src.id))
                if value is not None:
                    state[("r", instr.dst.id)] = value
            elif isinstance(instr.src, int) and instr.src == 0:
                # O0 materializes NULL as `cast 0 : int -> ptr`; losing
                # the constant here would hide every stored null.
                state[("r", instr.dst.id)] = NULL
        elif isinstance(instr, BinOp):
            self._do_binop(instr, state, findings, where)
        elif isinstance(instr, CallBuiltin):
            self._do_builtin(instr, state, findings, where)
        elif isinstance(instr, Call):
            summary = (
                self.interproc.summary(instr.callee)
                if self.interproc is not None
                else None
            )
            for index, arg in enumerate(instr.args):
                ptr = self.ptr_of(arg, state)
                if ptr is None or ptr.obj is None or ptr.obj.kind != "heap":
                    continue
                key = ("live", ptr.obj.key)
                if summary is None:
                    # Opaque callee may free any heap block it can reach.
                    if state.get(key, LIVE) != FREED:
                        state[key] = MAYBE_FREED
                    continue
                effect = summary.frees.get(index)
                if effect is None:
                    if ptr.offset == 0:
                        continue  # Summary proves this argument is never freed.
                    if state.get(key, LIVE) != FREED:
                        state[key] = MAYBE_FREED
                elif effect.conf == "must":
                    state[key] = FREED
                elif state.get(key, LIVE) != FREED:
                    state[key] = MAYBE_FREED

    # --------------------------------------------------------- value lookup

    def ptr_of(self, operand, state) -> Optional[PtrVal]:
        """The abstract pointer value of *operand* at this program point."""
        if isinstance(operand, int) and operand == 0:
            return NULL
        if not isinstance(operand, Reg):
            return None
        flow = state.get(("r", operand.id))
        if flow is not None:
            return flow
        static = self.pt.pointer(operand)
        if static is not None:
            return PtrVal(static.obj, static.offset, False)
        return None

    # ------------------------------------------------------------ transfers

    def _do_store(self, instr: Store, state, findings, where) -> None:
        self._check_access(instr.addr, instr.type.size(), instr, state, findings, where, "write")
        ptr = self.pt.pointer(instr.addr)
        if ptr is None or ptr.obj.kind != "slot" or ptr.obj.key not in self.pointer_slots:
            return
        key = ("pslot", ptr.obj.key)
        if isinstance(instr.type, PointerType):
            value = self.ptr_of(instr.src, state)
            if value is not None:
                state[key] = value
            else:
                state.pop(key, None)
        else:
            state.pop(key, None)

    def _do_load(self, instr: Load, state, findings, where) -> None:
        self._check_access(instr.addr, instr.type.size(), instr, state, findings, where, "read")
        ptr = self.pt.pointer(instr.addr)
        if (
            isinstance(instr.type, PointerType)
            and ptr is not None
            and ptr.obj.kind == "slot"
            and ptr.obj.key in self.pointer_slots
            and ptr.offset == 0
        ):
            value = state.get(("pslot", ptr.obj.key))
            if value is not None:
                state[("r", instr.dst.id)] = value
            else:
                state.pop(("r", instr.dst.id), None)

    def _do_binop(self, instr: BinOp, state, findings, where) -> None:
        lhs = self.ptr_of(instr.lhs, state)
        rhs = self.ptr_of(instr.rhs, state)
        if instr.op in RELATIONAL_CMPS or instr.op == "sub":
            if (
                lhs is not None
                and rhs is not None
                and lhs.obj is not None
                and rhs.obj is not None
                and lhs.obj != rhs.obj
            ):
                verb = "subtraction" if instr.op == "sub" else "relational comparison"
                self._emit(
                    findings,
                    where,
                    instr,
                    "pointer_cmp",
                    "confirmed",
                    f"{verb} of pointers into unrelated objects "
                    f"({lhs.obj.describe()} vs {rhs.obj.describe()}) — the result "
                    "depends on object layout",
                )
            return
        if instr.op not in ("add", "sub"):
            return
        base, other = (lhs, instr.rhs) if lhs is not None and lhs.obj is not None else (
            rhs if instr.op == "add" else None,
            instr.lhs,
        )
        if base is None or base.obj is None:
            return
        delta = other if isinstance(other, int) else None
        if delta is not None and instr.op == "sub":
            delta = -delta
        state[("r", instr.dst.id)] = base.shifted(delta)

    def _do_builtin(self, instr: CallBuiltin, state, findings, where) -> None:
        name = instr.name
        if name in HEAP_ALLOCATORS:
            ptr = self.pt.pointer(instr.dst) if instr.dst is not None else None
            if ptr is not None and ptr.obj.kind == "heap":
                state[("live", ptr.obj.key)] = LIVE
            if name == "realloc" and instr.args:
                old = self.ptr_of(instr.args[0], state)
                if old is not None and old.obj is not None and old.obj.kind == "heap":
                    state[("live", old.obj.key)] = FREED
            return
        if name == "free":
            if not instr.args:
                return
            ptr = self.ptr_of(instr.args[0], state)
            if ptr is None or ptr.is_null:
                return  # free(NULL) is defined; unknown pointers are skipped
            if ptr.obj is None:
                return
            if ptr.obj.kind != "heap":
                self._emit(
                    findings,
                    where,
                    instr,
                    "bad_free",
                    "confirmed",
                    f"free() of non-heap {ptr.obj.describe()}",
                )
                return
            key = ("live", ptr.obj.key)
            liveness = state.get(key, LIVE)
            if liveness == FREED:
                self._emit(
                    findings,
                    where,
                    instr,
                    "double_free",
                    "confirmed",
                    f"second free() of {ptr.obj.describe()}",
                )
            elif liveness == MAYBE_FREED:
                self._emit(
                    findings,
                    where,
                    instr,
                    "double_free",
                    "possible",
                    f"free() of {ptr.obj.describe()} already freed on some path",
                )
            state[key] = FREED
            return
        if name in WRITES_THROUGH_ARG0 and instr.args:
            size = None
            if name in LENGTH_ARG_BUILTINS:
                length = instr.args[-1]
                if isinstance(length, int):
                    size = length
            self._check_access(instr.args[0], size, instr, state, findings, where, "write")

    # ------------------------------------------------------------- findings

    def _emit(
        self, findings, where, instr, checker, confidence, message, via=()
    ) -> None:
        if findings is None or where is None:
            return
        label, idx = where
        findings.append(
            PtrFinding(
                checker=checker,
                confidence=confidence,
                line=instr.line,
                function=self.func.name,
                block=label,
                instr_index=idx,
                message=message,
                via=tuple(via),
            )
        )

    def _check_access(
        self, addr, access_size, instr, state, findings, where, mode
    ) -> None:
        if findings is None:
            return
        ptr = self.ptr_of(addr, state)
        if ptr is None:
            return
        if ptr.is_null:
            self._emit(
                findings, where, instr, "null_deref", "confirmed",
                f"null pointer {mode} dereference",
            )
            return
        if ptr.may_null:
            self._emit(
                findings, where, instr, "null_deref", "possible",
                f"{mode} through a pointer that is null on some path",
            )
        if ptr.obj is None:
            return
        if ptr.obj.kind == "heap":
            liveness = state.get(("live", ptr.obj.key), LIVE)
            if liveness == FREED:
                self._emit(
                    findings, where, instr, "use_after_free", "confirmed",
                    f"{mode} through {ptr.obj.describe()} after free()",
                )
            elif liveness == MAYBE_FREED:
                self._emit(
                    findings, where, instr, "use_after_free", "possible",
                    f"{mode} through {ptr.obj.describe()} freed on some path",
                )
        self._check_bounds(addr, ptr, access_size, instr, findings, where, mode)

    def _check_bounds(
        self, addr, ptr: PtrVal, access_size, instr, findings, where, mode
    ) -> None:
        obj = ptr.obj
        if obj is None or obj.size is None:
            return
        interval = self._offset_interval(addr, ptr, where)
        if interval is None:
            return
        lo, hi = interval
        size = access_size if access_size is not None else 1
        if hi + size <= obj.size and lo >= 0:
            return
        always = lo + size > obj.size or hi < 0
        self._emit(
            findings,
            where,
            instr,
            "oob_access",
            "confirmed" if always else "possible",
            f"{mode} of {size} byte(s) at offset [{lo}, {hi}] "
            f"{'exceeds' if always else 'may exceed'} {obj.describe()} "
            f"of {obj.size} bytes",
        )

    def _offset_interval(self, addr, ptr: PtrVal, where) -> Optional[tuple[int, int]]:
        if ptr.offset is not None:
            return (ptr.offset, ptr.offset)
        # Computed offset: decompose `addr = base + idx` and ask the
        # interval analysis how large idx can get at this point.
        if self._interval_states is None or not isinstance(addr, Reg):
            return None
        instr = self.defs.get(addr.id)
        if not isinstance(instr, BinOp) or instr.op not in ("add", "sub"):
            return None
        base = self.pt.pointer(instr.lhs)
        index = instr.rhs
        if base is None and instr.op == "add":
            base = self.pt.pointer(instr.rhs)
            index = instr.lhs
        if base is None or base.offset is None or not isinstance(index, Reg):
            return None
        label, idx = where
        states = self._interval_states.get(label)
        if states is None or idx >= len(states):
            return None
        interval = states[idx].get(("r", index.id))
        if interval is None:
            return None
        lo, hi = interval
        if instr.op == "sub":
            lo, hi = -hi, -lo
        return (base.offset + lo, base.offset + hi)

    #: Per-(block → per-instruction interval state); set by the scan driver.
    _interval_states: Optional[dict[str, list[dict]]] = None


def _scan_call_site(
    analysis: ProvenanceAnalysis, interproc, instr: Call, state, findings, where
) -> None:
    """Project a summarized callee's pointer effects onto its arguments.

    Runs *before* the call's transfer so the pre-call liveness is what
    the checks observe.  Null dereference is reported only for a
    definitely-null argument — a may-null value flowing into a callee
    that guards before dereferencing is the common benign shape, and
    flagging it would cost the precision the scoreboard measures.
    """
    summary = interproc.summary(instr.callee)
    if summary is None:
        return
    for index, arg in enumerate(instr.args):
        ptr = analysis.ptr_of(arg, state)
        if ptr is None:
            continue
        deref = summary.derefs.get(index)
        if ptr.is_null:
            if deref is not None:
                analysis._emit(
                    findings,
                    where,
                    instr,
                    "null_deref",
                    "confirmed" if deref.conf == "must" else "possible",
                    f"null pointer passed to {instr.callee}() which "
                    "dereferences it",
                    via=deref.chain,
                )
            continue
        if ptr.obj is None:
            continue
        access = summary.accesses.get(index)
        if (
            access is not None
            and ptr.offset is not None
            and ptr.obj.size is not None
        ):
            lo = access[0] + ptr.offset
            hi = access[1] + ptr.offset
            if not (lo >= 0 and hi <= ptr.obj.size):
                always = lo >= ptr.obj.size or hi <= 0
                analysis._emit(
                    findings,
                    where,
                    instr,
                    "oob_access",
                    "confirmed" if always else "possible",
                    f"{instr.callee}() accesses bytes [{lo}, {hi}) of "
                    f"{ptr.obj.describe()} of {ptr.obj.size} bytes",
                    via=(summary.name,),
                )
        if ptr.obj.kind != "heap":
            continue
        liveness = state.get(("live", ptr.obj.key), LIVE)
        uses = deref if deref is not None else summary.reads.get(index)
        if uses is not None and liveness in (FREED, MAYBE_FREED):
            confirmed = liveness == FREED and uses.conf == "must"
            analysis._emit(
                findings,
                where,
                instr,
                "use_after_free",
                "confirmed" if confirmed else "possible",
                f"{instr.callee}() uses {ptr.obj.describe()} "
                + ("after free()" if liveness == FREED else "freed on some path"),
                via=uses.chain,
            )
        frees = summary.frees.get(index)
        if frees is not None and liveness in (FREED, MAYBE_FREED):
            confirmed = liveness == FREED and frees.conf == "must"
            analysis._emit(
                findings,
                where,
                instr,
                "double_free",
                "confirmed" if confirmed else "possible",
                f"{instr.callee}() frees {ptr.obj.describe()} "
                + (
                    "already freed"
                    if liveness == FREED
                    else "already freed on some path"
                ),
                via=frees.chain,
            )


def find_pointer_ub(
    func: Function,
    module: Module,
    points_to: PointsTo | None = None,
    interval_analysis: IntervalAnalysis | None = None,
    interval_result: DataflowResult | None = None,
    interproc=None,
    dead_edges: set | None = None,
) -> tuple[list[PtrFinding], DataflowResult]:
    """Solve provenance for *func* and scan every access for pointer UB."""
    analysis = ProvenanceAnalysis(func, module, points_to=points_to, interproc=interproc)
    result = solve(func, analysis, dead_edges=dead_edges)
    if interval_analysis is None or interval_result is None:
        interval_analysis = IntervalAnalysis(
            func, module, points_to=analysis.pt, interproc=interproc
        )
        interval_result = solve(func, interval_analysis, dead_edges=dead_edges)
    # Record the interval state *before* each instruction so computed
    # array offsets can be bounded at their access points.
    interval_states: dict[str, list[dict]] = {}
    for label in interval_result.block_in:
        istate = dict(interval_result.block_in[label])
        per_instr: list[dict] = []
        for instr in func.blocks[label].instrs:
            per_instr.append(dict(istate))
            interval_analysis.transfer_instr(instr, istate)
        interval_states[label] = per_instr
    analysis._interval_states = interval_states
    findings: list[PtrFinding] = []
    for label in result.block_in:
        state = dict(result.block_in[label])
        for idx, instr in enumerate(func.blocks[label].instrs):
            if interproc is not None and isinstance(instr, Call):
                _scan_call_site(
                    analysis, interproc, instr, state, findings, (label, idx)
                )
            analysis.transfer_instr(instr, state, findings=findings, where=(label, idx))
    analysis._interval_states = None
    return findings, result
