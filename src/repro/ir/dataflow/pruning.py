"""Constant-branch edge pruning for the flow-sensitive analyses.

Juliet's flow shapes guard the planted bug behind conditions that are
statically constant (``if (flag)`` with ``flag = 0`` stored above, or a
literal ``if (1)``).  The plain worklist solver joins both branch edges
regardless, which costs exactly the precision the interprocedural layer
needs: a pointer that is NULL only on the statically-dead arm still
joins to may-null, an uninitialized object still joins to MAYBE.

:func:`infeasible_edges` evaluates every ``Branch`` condition against
the interval analysis' end-of-block state — including one level of
comparison refinement (``branch (a < b)`` where both operand intervals
are known) — and returns the CFG edges that can never be taken.
:func:`prune_function` iterates interval-solve → prune until the edge
set stabilizes, since removing an edge can make more conditions
constant.  The result feeds ``solve(..., dead_edges=...)`` for all
three analyses, which is the path-sensitivity backbone of the
interprocedural mode (``UBOracle(mode="interproc")``).
"""

from __future__ import annotations

from typing import Optional

from repro.ir.dataflow.framework import DataflowResult, solve
from repro.ir.dataflow.intervals import IntervalAnalysis, Interval
from repro.ir.instructions import BinOp, Branch, Reg, UnOp
from repro.ir.module import Function, Module

#: Prune → re-solve rounds before accepting the current edge set.
MAX_PRUNE_ROUNDS = 3


def _single_defs(func: Function) -> dict[int, object]:
    defs: dict[int, object] = {}
    counts: dict[int, int] = {i: 1 for i in range(len(func.params))}
    for block in func.blocks.values():
        for instr in block.instrs:
            dst = instr.defines()
            if dst is not None:
                counts[dst.id] = counts.get(dst.id, 0) + 1
                defs[dst.id] = instr
    return {rid: instr for rid, instr in defs.items() if counts.get(rid) == 1}


def _compare(op: str, a: Interval, b: Interval) -> Interval:
    """Evaluate a comparison over intervals to (0,0)/(1,1) when decided."""
    if a is None or b is None:
        return None
    a_lo, a_hi = a
    b_lo, b_hi = b
    if op in ("ult", "ule", "ugt", "uge"):
        # Unsigned compares agree with signed ones on non-negative ranges.
        if a_lo < 0 or b_lo < 0:
            return None
        op = {"ult": "slt", "ule": "sle", "ugt": "sgt", "uge": "sge"}[op]
    if op == "eq":
        if a_hi < b_lo or b_hi < a_lo:
            return (0, 0)
        if a_lo == a_hi == b_lo == b_hi:
            return (1, 1)
        return None
    if op == "ne":
        inverted = _compare("eq", a, b)
        if inverted is None:
            return None
        return (1, 1) if inverted == (0, 0) else (0, 0)
    if op == "slt":
        if a_hi < b_lo:
            return (1, 1)
        if a_lo >= b_hi:
            return (0, 0)
        return None
    if op == "sle":
        if a_hi <= b_lo:
            return (1, 1)
        if a_lo > b_hi:
            return (0, 0)
        return None
    if op == "sgt":
        inverted = _compare("sle", a, b)
    elif op == "sge":
        inverted = _compare("slt", a, b)
    else:
        return None
    if inverted is None:
        return None
    return (1, 1) if inverted == (0, 0) else (0, 0)


def _condition_interval(
    cond,
    state: dict,
    analysis: IntervalAnalysis,
    defs: dict[int, object],
    depth: int = 0,
) -> Interval:
    """The branch condition's interval, refined through compares/negation."""
    value = analysis._operand(cond, state)
    if value is not None and (value[0] > 0 or value[1] < 0 or value == (0, 0)):
        return value
    if not isinstance(cond, Reg) or depth > 2:
        return value
    instr = defs.get(cond.id)
    if isinstance(instr, BinOp):
        lhs = analysis._operand(instr.lhs, state)
        rhs = analysis._operand(instr.rhs, state)
        refined = _compare(instr.op, lhs, rhs)
        if refined is not None:
            return refined
    elif isinstance(instr, UnOp) and instr.op == "not":
        src = _condition_interval(instr.src, state, analysis, defs, depth + 1)
        if src is not None:
            if src == (0, 0):
                return (1, 1)
            if src[0] > 0 or src[1] < 0:
                return (0, 0)
    return value


def infeasible_edges(
    func: Function,
    analysis: IntervalAnalysis,
    result: DataflowResult,
) -> set[tuple[str, str]]:
    """CFG edges whose branch condition is decided by the intervals."""
    defs = _single_defs(func)
    dead: set[tuple[str, str]] = set()
    for label in result.block_out:
        terminator = func.blocks[label].terminator
        if not isinstance(terminator, Branch):
            continue
        state = result.block_out[label]
        if not isinstance(state, dict):
            continue
        value = _condition_interval(terminator.cond, state, analysis, defs)
        if value is None:
            continue
        if value == (0, 0):
            dead.add((label, terminator.if_true))
        elif value[0] > 0 or value[1] < 0:
            dead.add((label, terminator.if_false))
    return dead


def prune_function(
    func: Function,
    module: Module,
    points_to=None,
    interproc=None,
    max_rounds: int = MAX_PRUNE_ROUNDS,
) -> tuple[set[tuple[str, str]], IntervalAnalysis, DataflowResult]:
    """Iterate interval-solve → edge pruning to a stable dead-edge set.

    Returns the final edges plus the last interval analysis/result (both
    computed *with* the pruning applied), which callers reuse for the
    scan phases so every analysis sees the same CFG view.
    """
    dead: set[tuple[str, str]] = set()
    analysis = IntervalAnalysis(func, module, points_to=points_to, interproc=interproc)
    result = solve(func, analysis, dead_edges=dead)
    for _ in range(max_rounds):
        found = infeasible_edges(func, analysis, result)
        if not (found - dead):
            break
        dead |= found
        analysis = IntervalAnalysis(
            func, module, points_to=points_to, interproc=interproc
        )
        result = solve(func, analysis, dead_edges=dead)
    return dead, analysis, result
