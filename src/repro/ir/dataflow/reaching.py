"""Reaching-definition / uninitialized-use analysis.

A forward may-analysis at whole-object granularity: every stack slot and
heap allocation site is UNINIT until a store (or an initializing call)
reaches it, INIT once a definition reaches it on *every* path, and MAYBE
when only some paths define it.  A load from an UNINIT object is a
confirmed uninitialized read; from a MAYBE object, a possible one — the
distinction CompDiff's divergence triage surfaces as CONFIRMED versus
POSSIBLE evidence.

Objects whose address escapes (passed to an unmodeled call or stored
into memory) are assumed initialized at the escape point; this trades
recall for precision, matching how the baseline static-tool analogs
handle intractable flows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.dataflow.framework import DataflowAnalysis, DataflowResult, solve
from repro.ir.dataflow.pointsto import (
    HEAP_ALLOCATORS,
    READ_ONLY_BUILTINS,
    WRITES_THROUGH_ARG0,
    MemObject,
    PointsTo,
)
from repro.ir.instructions import BinOp, Call, CallBuiltin, Cast, Load, Move, Reg, Ret, Store
from repro.ir.module import Function, Module

UNINIT = "uninit"
INIT = "init"
MAYBE = "maybe"

_JOIN = {
    (UNINIT, UNINIT): UNINIT,
    (INIT, INIT): INIT,
}


def _join_states(a: str, b: str) -> str:
    return _JOIN.get((a, b), MAYBE)


def _param_aliases(func: Function) -> dict[int, int]:
    """Register id -> index of the parameter it is derived from.

    Parameters arrive in registers 0..n-1; Move/Cast/pointer-arithmetic
    chains keep addressing the same underlying object at whole-object
    granularity, which is all the init analysis distinguishes.
    """
    alias: dict[int, int] = {i: i for i in range(len(func.params))}
    changed = True
    while changed:
        changed = False
        for block in func.blocks.values():
            for instr in block.instrs:
                dst = instr.defines()
                if dst is None or dst.id in alias:
                    continue
                src = None
                if isinstance(instr, (Move, Cast)):
                    src = instr.src
                elif isinstance(instr, BinOp) and instr.op in ("add", "sub"):
                    if isinstance(instr.lhs, Reg) and instr.lhs.id in alias:
                        src = instr.lhs
                    elif instr.op == "add" and isinstance(instr.rhs, Reg):
                        src = instr.rhs
                if isinstance(src, Reg) and src.id in alias:
                    alias[dst.id] = alias[src.id]
                    changed = True
    return alias


def param_write_summary(func: Function) -> dict[int, str]:
    """Which pointer parameters *func* writes through: ``must`` or ``may``.

    ``must`` — a store through the parameter reaches every return, so the
    caller's object is definitely initialized after the call.  ``may`` —
    some path writes (or the pointer is passed on to another call), the
    conditional-initializer shape behind CWE-457's address-taken
    variants.  Parameters absent from the result are never written.
    """
    alias = _param_aliases(func)

    def written(instr) -> set[int]:
        if isinstance(instr, Store) and isinstance(instr.addr, Reg):
            if instr.addr.id in alias:
                return {alias[instr.addr.id]}
        if isinstance(instr, CallBuiltin) and instr.name in WRITES_THROUGH_ARG0:
            if instr.args and isinstance(instr.args[0], Reg) and instr.args[0].id in alias:
                return {alias[instr.args[0].id]}
        return set()

    may: set[int] = set()
    for block in func.blocks.values():
        for instr in block.instrs:
            may |= written(instr)
            if isinstance(instr, Call):
                for arg in instr.args:
                    if isinstance(arg, Reg) and arg.id in alias:
                        may.add(alias[arg.id])

    class _MustWrite(DataflowAnalysis):
        direction = "forward"

        def boundary(self, f):
            return frozenset()

        def top(self, f):
            return frozenset(range(len(func.params)))

        def join(self, states):
            merged = states[0]
            for state in states[1:]:
                merged = merged & state
            return merged

        def transfer_block(self, f, label, state):
            out = set(state)
            for instr in f.blocks[label].instrs:
                out |= written(instr)
            return frozenset(out)

    result = solve(func, _MustWrite())
    must: frozenset | None = None
    if result.converged:
        for label, block in func.blocks.items():
            if isinstance(block.terminator, Ret):
                out = result.block_out[label]
                must = out if must is None else must & out
    summary: dict[int, str] = {}
    for index in sorted(may):
        summary[index] = "must" if must is not None and index in must else "may"
    return summary


@dataclass(frozen=True)
class UninitUse:
    """One load observed before any reaching definition."""

    obj: MemObject
    line: int
    function: str
    block: str
    instr_index: int
    #: "uninit" (no path defines it) or "maybe" (some paths do).
    state: str
    #: Interprocedural trace ("func:line" frames) when the read happens
    #: inside a summarized callee rather than at this instruction.
    via: tuple[str, ...] = ()


class InitAnalysis(DataflowAnalysis):
    """Forward initialization-state analysis over one function."""

    direction = "forward"

    def __init__(
        self,
        func: Function,
        module: Module,
        points_to: PointsTo | None = None,
        interproc=None,
    ):
        self.func = func
        self.module = module
        self.pt = points_to if points_to is not None else PointsTo(func, module)
        #: Optional InterprocContext: transitive must/may write summaries
        #: replace the local single-level :func:`param_write_summary`.
        self.interproc = interproc
        self.tracked = tuple(self.pt.objects())
        self.escaped = self._escaped_for_init()
        self._summaries: dict[str, dict[int, str] | None] = {}

    def _callee_summary(self, name: str) -> dict[int, str] | None:
        """Param-write summary for a module-internal callee (None = opaque)."""
        if self.interproc is not None:
            summary = self.interproc.summary(name)
            if summary is not None:
                return summary.writes
        if name not in self._summaries:
            callee = self.module.functions.get(name)
            self._summaries[name] = (
                param_write_summary(callee) if callee is not None else None
            )
        return self._summaries[name]

    def _escaped_for_init(self) -> set[MemObject]:
        """Escapes that force assuming-initialized for *this* analysis.

        Unlike :meth:`PointsTo.escaped_objects`, an address handed to a
        *module-internal* call does not escape here: the callee's
        param-write summary models its effect precisely, which is what
        catches the CWE-457 address-taken conditional-init shape.
        """
        escaped: set[MemObject] = set()
        for block in self.func.blocks.values():
            for instr in block.instrs:
                if isinstance(instr, Store):
                    src = self.pt.pointer(instr.src)
                    if src is not None:
                        dst = self.pt.pointer(instr.addr)
                        if dst is None or dst.obj.kind != "slot":
                            escaped.add(src.obj)
                elif isinstance(instr, Call):
                    if instr.callee in self.module.functions:
                        continue
                    for arg in instr.args:
                        ptr = self.pt.pointer(arg)
                        if ptr is not None:
                            escaped.add(ptr.obj)
                elif isinstance(instr, CallBuiltin):
                    if (
                        instr.name in READ_ONLY_BUILTINS
                        or instr.name in HEAP_ALLOCATORS
                        or instr.name in WRITES_THROUGH_ARG0
                    ):
                        continue
                    for arg in instr.args:
                        ptr = self.pt.pointer(arg)
                        if ptr is not None:
                            escaped.add(ptr.obj)
        return escaped

    # ------------------------------------------------------------- lattice

    def boundary(self, func: Function):
        return {obj: UNINIT for obj in self.tracked}

    def top(self, func: Function):
        # Optimistic: lets loop bodies see the state the entry actually
        # provides rather than pessimizing to MAYBE immediately.
        return {obj: UNINIT for obj in self.tracked}

    def join(self, states):
        merged = dict(states[0])
        for state in states[1:]:
            for obj, value in state.items():
                merged[obj] = _join_states(merged.get(obj, UNINIT), value)
        return merged

    # ------------------------------------------------------------ transfer

    def transfer_block(self, func: Function, label: str, state):
        out = dict(state)
        for instr in func.blocks[label].instrs:
            self.transfer_instr(instr, out)
        return out

    def transfer_instr(self, instr, state) -> None:
        """Apply one instruction's effect to *state* in place."""
        if isinstance(instr, Store):
            ptr = self.pt.pointer(instr.addr)
            if ptr is not None:
                state[ptr.obj] = INIT
            return
        if isinstance(instr, CallBuiltin):
            if instr.name in HEAP_ALLOCATORS:
                ptr = self.pt.pointer(instr.dst) if instr.dst is not None else None
                if ptr is not None:
                    # calloc zeroes; malloc'd memory starts undefined.
                    state[ptr.obj] = INIT if instr.name == "calloc" else UNINIT
                return
            if instr.name in WRITES_THROUGH_ARG0 and instr.args:
                ptr = self.pt.pointer(instr.args[0])
                if ptr is not None:
                    state[ptr.obj] = INIT
                return
            return
        if isinstance(instr, Call):
            summary = self._callee_summary(instr.callee)
            for index, arg in enumerate(instr.args):
                ptr = self.pt.pointer(arg)
                if ptr is None:
                    continue
                if summary is None or ptr.offset != 0:
                    # Opaque callee (or interior pointer): it may
                    # initialize anything it was handed.
                    state[ptr.obj] = INIT
                    continue
                kind = summary.get(index)
                if kind == "must":
                    state[ptr.obj] = INIT
                elif kind == "may":
                    state[ptr.obj] = _join_states(state.get(ptr.obj, UNINIT), INIT)
                # Never written by the callee: state is unchanged.


def find_uninit_uses(
    func: Function,
    module: Module,
    points_to: PointsTo | None = None,
    interproc=None,
    dead_edges: set | None = None,
) -> tuple[list[UninitUse], DataflowResult]:
    """Solve the init analysis and scan every load against its in-state.

    With an interprocedural context, an uninitialized (or maybe-
    initialized) object handed to a callee whose summary reads that
    parameter before writing it is reported *at the call site*, carrying
    the summary's cross-function trace — the Juliet ``*_badSink`` shape
    no intraprocedural scan can see.
    """
    analysis = InitAnalysis(func, module, points_to=points_to, interproc=interproc)
    result = solve(func, analysis, dead_edges=dead_edges)
    uses: list[UninitUse] = []
    for label in result.block_in:
        state = dict(result.block_in[label])
        for idx, instr in enumerate(func.blocks[label].instrs):
            if isinstance(instr, Load):
                ptr = analysis.pt.pointer(instr.addr)
                if (
                    ptr is not None
                    and ptr.obj not in analysis.escaped
                    and state.get(ptr.obj, INIT) in (UNINIT, MAYBE)
                ):
                    uses.append(
                        UninitUse(
                            obj=ptr.obj,
                            line=instr.line,
                            function=func.name,
                            block=label,
                            instr_index=idx,
                            state=state.get(ptr.obj, INIT),
                        )
                    )
            elif interproc is not None and isinstance(instr, Call):
                summary = interproc.summary(instr.callee)
                if summary is not None and summary.reads:
                    for index, arg in enumerate(instr.args):
                        effect = summary.reads.get(index)
                        if effect is None:
                            continue
                        ptr = analysis.pt.pointer(arg)
                        if (
                            ptr is None
                            or ptr.offset != 0
                            or ptr.obj in analysis.escaped
                        ):
                            continue
                        obj_state = state.get(ptr.obj, INIT)
                        if obj_state not in (UNINIT, MAYBE):
                            continue
                        confirmed = obj_state == UNINIT and effect.conf == "must"
                        uses.append(
                            UninitUse(
                                obj=ptr.obj,
                                line=instr.line,
                                function=func.name,
                                block=label,
                                instr_index=idx,
                                state=UNINIT if confirmed else MAYBE,
                                via=effect.chain,
                            )
                        )
            analysis.transfer_instr(instr, state)
    return uses, result
