"""IR instruction set.

Operands are either a :class:`Reg` (virtual register) or a Python ``int`` /
``float`` immediate.  Integer instructions carry the :class:`~repro.minic
.types.IntType` that defines their width and signedness; all integer
arithmetic wraps at that width in the VM — *undefined* behavior such as
signed overflow is given a concrete per-implementation semantics by the
compiler configuration, never by the VM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.minic.types import Type

#: Comparison opcodes yield 0/1 in a 32-bit register.
INT_BINOPS = frozenset(
    {
        "add",
        "sub",
        "mul",
        "sdiv",
        "udiv",
        "srem",
        "urem",
        "shl",
        "lshr",
        "ashr",
        "and",
        "or",
        "xor",
    }
)
INT_CMPS = frozenset({"eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge"})
FLOAT_BINOPS = frozenset({"fadd", "fsub", "fmul", "fdiv"})
FLOAT_CMPS = frozenset({"feq", "fne", "flt", "fle", "fgt", "fge"})

COMMUTATIVE = frozenset({"add", "mul", "and", "or", "xor", "eq", "ne", "fadd", "fmul"})

#: Maps a comparison to its form with swapped operands.
SWAPPED_CMP = {
    "eq": "eq",
    "ne": "ne",
    "slt": "sgt",
    "sle": "sge",
    "sgt": "slt",
    "sge": "sle",
    "ult": "ugt",
    "ule": "uge",
    "ugt": "ult",
    "uge": "ule",
}

#: Maps a comparison to its negation.
NEGATED_CMP = {
    "eq": "ne",
    "ne": "eq",
    "slt": "sge",
    "sle": "sgt",
    "sgt": "sle",
    "sge": "slt",
    "ult": "uge",
    "ule": "ugt",
    "ugt": "ule",
    "uge": "ult",
}


@dataclass(frozen=True)
class Reg:
    """A virtual register, unique within one function."""

    id: int

    def __repr__(self) -> str:
        return f"%{self.id}"


Operand = Union[Reg, int, float]


@dataclass
class Instr:
    """Base class for all instructions."""

    #: Source line for diagnostics and sanitizer reports.
    line: int = field(default=0, kw_only=True)

    def uses(self) -> list[Operand]:
        """Operands read by this instruction."""
        return []

    def defines(self) -> Optional[Reg]:
        """Register written by this instruction, if any."""
        return None

    def replace_uses(self, mapping: dict[Reg, Operand]) -> None:
        """Rewrite register uses through *mapping* (used by copy-prop)."""


def _subst(value: Operand, mapping: dict[Reg, Operand]) -> Operand:
    if isinstance(value, Reg) and value in mapping:
        return mapping[value]
    return value


@dataclass
class Const(Instr):
    dst: Reg
    value: Union[int, float]
    type: Type

    def defines(self) -> Optional[Reg]:
        return self.dst

    def __repr__(self) -> str:
        return f"{self.dst} = const {self.value} : {self.type}"


@dataclass
class Move(Instr):
    dst: Reg
    src: Operand
    type: Type

    def uses(self) -> list[Operand]:
        return [self.src]

    def defines(self) -> Optional[Reg]:
        return self.dst

    def replace_uses(self, mapping: dict[Reg, Operand]) -> None:
        self.src = _subst(self.src, mapping)

    def __repr__(self) -> str:
        return f"{self.dst} = {self.src}"


@dataclass
class BinOp(Instr):
    dst: Reg
    op: str
    lhs: Operand
    rhs: Operand
    type: Type
    #: "No signed wrap": the front end marked this signed operation as UB on
    #: overflow, licensing the optimizer to reason as if it never wraps.
    nsw: bool = False

    def uses(self) -> list[Operand]:
        return [self.lhs, self.rhs]

    def defines(self) -> Optional[Reg]:
        return self.dst

    def replace_uses(self, mapping: dict[Reg, Operand]) -> None:
        self.lhs = _subst(self.lhs, mapping)
        self.rhs = _subst(self.rhs, mapping)

    @property
    def is_comparison(self) -> bool:
        return self.op in INT_CMPS or self.op in FLOAT_CMPS

    def __repr__(self) -> str:
        nsw = " nsw" if self.nsw else ""
        return f"{self.dst} = {self.op}{nsw} {self.lhs}, {self.rhs} : {self.type}"


@dataclass
class UnOp(Instr):
    dst: Reg
    op: str  # "neg" | "not" | "fneg"
    src: Operand
    type: Type

    def uses(self) -> list[Operand]:
        return [self.src]

    def defines(self) -> Optional[Reg]:
        return self.dst

    def replace_uses(self, mapping: dict[Reg, Operand]) -> None:
        self.src = _subst(self.src, mapping)

    def __repr__(self) -> str:
        return f"{self.dst} = {self.op} {self.src} : {self.type}"


@dataclass
class Cast(Instr):
    dst: Reg
    src: Operand
    from_type: Type
    to_type: Type

    def uses(self) -> list[Operand]:
        return [self.src]

    def defines(self) -> Optional[Reg]:
        return self.dst

    def replace_uses(self, mapping: dict[Reg, Operand]) -> None:
        self.src = _subst(self.src, mapping)

    def __repr__(self) -> str:
        return f"{self.dst} = cast {self.src} : {self.from_type} -> {self.to_type}"


@dataclass
class Load(Instr):
    dst: Reg
    addr: Operand
    type: Type

    def uses(self) -> list[Operand]:
        return [self.addr]

    def defines(self) -> Optional[Reg]:
        return self.dst

    def replace_uses(self, mapping: dict[Reg, Operand]) -> None:
        self.addr = _subst(self.addr, mapping)

    def __repr__(self) -> str:
        return f"{self.dst} = load [{self.addr}] : {self.type}"


@dataclass
class Store(Instr):
    addr: Operand
    src: Operand
    type: Type

    def uses(self) -> list[Operand]:
        return [self.addr, self.src]

    def replace_uses(self, mapping: dict[Reg, Operand]) -> None:
        self.addr = _subst(self.addr, mapping)
        self.src = _subst(self.src, mapping)

    def __repr__(self) -> str:
        return f"store [{self.addr}] = {self.src} : {self.type}"


@dataclass
class AddrSlot(Instr):
    dst: Reg
    slot: int  # index into the function's frame-slot table

    def defines(self) -> Optional[Reg]:
        return self.dst

    def __repr__(self) -> str:
        return f"{self.dst} = addr_slot #{self.slot}"


@dataclass
class AddrGlobal(Instr):
    dst: Reg
    name: str

    def defines(self) -> Optional[Reg]:
        return self.dst

    def __repr__(self) -> str:
        return f"{self.dst} = addr_global @{self.name}"


@dataclass
class Call(Instr):
    dst: Optional[Reg]
    callee: str
    args: list[Operand]

    def uses(self) -> list[Operand]:
        return list(self.args)

    def defines(self) -> Optional[Reg]:
        return self.dst

    def replace_uses(self, mapping: dict[Reg, Operand]) -> None:
        self.args = [_subst(a, mapping) for a in self.args]

    def __repr__(self) -> str:
        args = ", ".join(map(repr, self.args))
        prefix = f"{self.dst} = " if self.dst else ""
        return f"{prefix}call @{self.callee}({args})"


@dataclass
class CallBuiltin(Instr):
    dst: Optional[Reg]
    name: str
    args: list[Operand]
    #: Static types of the arguments (drives printf formatting and width
    #: handling in the runtime).
    arg_types: list[Type]

    def uses(self) -> list[Operand]:
        return list(self.args)

    def defines(self) -> Optional[Reg]:
        return self.dst

    def replace_uses(self, mapping: dict[Reg, Operand]) -> None:
        self.args = [_subst(a, mapping) for a in self.args]

    def __repr__(self) -> str:
        args = ", ".join(map(repr, self.args))
        prefix = f"{self.dst} = " if self.dst else ""
        return f"{prefix}builtin {self.name}({args})"


@dataclass
class BugSite(Instr):
    """Evaluation-only marker: records that a seeded bug site was reached."""

    site: int

    def __repr__(self) -> str:
        return f"bugsite #{self.site}"


@dataclass
class Jump(Instr):
    target: str

    def __repr__(self) -> str:
        return f"jump {self.target}"


@dataclass
class Branch(Instr):
    cond: Operand
    if_true: str
    if_false: str

    def uses(self) -> list[Operand]:
        return [self.cond]

    def replace_uses(self, mapping: dict[Reg, Operand]) -> None:
        self.cond = _subst(self.cond, mapping)

    def __repr__(self) -> str:
        return f"branch {self.cond} ? {self.if_true} : {self.if_false}"


@dataclass
class Ret(Instr):
    value: Optional[Operand] = None

    def uses(self) -> list[Operand]:
        return [] if self.value is None else [self.value]

    def replace_uses(self, mapping: dict[Reg, Operand]) -> None:
        if self.value is not None:
            self.value = _subst(self.value, mapping)

    def __repr__(self) -> str:
        return f"ret {self.value}" if self.value is not None else "ret"


Terminator = (Jump, Branch, Ret)
