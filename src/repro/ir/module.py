"""IR containers: frame slots, basic blocks, functions, and modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.ir.instructions import Branch, Instr, Jump, Reg, Ret
from repro.minic.types import Type


@dataclass
class FrameSlot:
    """One stack object in a function frame.

    The *declared* size lives here; the actual address is decided at run
    time by the binary's :class:`~repro.vm.memory.LayoutPolicy`, which is
    what makes stack-smash and uninitialized-read consequences diverge
    across compiler implementations.
    """

    name: str
    size: int
    align: int
    #: Declaration order index (layout policies may reorder).
    index: int
    line: int = 0
    #: True when the slot is an array/struct buffer (used by ASan redzones
    #: and by layout policies that segregate buffers, like real stack
    #: protector reordering).
    is_buffer: bool = False


@dataclass
class BasicBlock:
    label: str
    instrs: list[Instr] = field(default_factory=list)

    @property
    def terminator(self) -> Optional[Instr]:
        if self.instrs and isinstance(self.instrs[-1], (Jump, Branch, Ret)):
            return self.instrs[-1]
        return None

    def successors(self) -> list[str]:
        term = self.terminator
        if isinstance(term, Jump):
            return [term.target]
        if isinstance(term, Branch):
            return [term.if_true, term.if_false]
        return []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        body = "\n".join(f"  {i!r}" for i in self.instrs)
        return f"{self.label}:\n{body}"


@dataclass
class Function:
    name: str
    params: list[tuple[str, Type]]
    ret_type: Type
    blocks: dict[str, BasicBlock] = field(default_factory=dict)
    entry: str = "entry"
    slots: list[FrameSlot] = field(default_factory=list)
    num_regs: int = 0

    def block_order(self) -> list[BasicBlock]:
        """Blocks in insertion order (entry first)."""
        return list(self.blocks.values())

    def instructions(self) -> Iterator[Instr]:
        for block in self.blocks.values():
            yield from block.instrs

    def new_reg(self) -> Reg:
        reg = Reg(self.num_regs)
        self.num_regs += 1
        return reg

    def frame_size(self) -> int:
        return sum(slot.size for slot in self.slots)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        blocks = "\n".join(repr(b) for b in self.blocks.values())
        params = ", ".join(f"{n}: {t}" for n, t in self.params)
        return f"func @{self.name}({params}) -> {self.ret_type}\n{blocks}"


@dataclass
class GlobalData:
    """A module-level data object (global, static local, string literal)."""

    name: str
    size: int
    align: int
    #: Initial contents; None means uninitialized (fill decided by the
    #: implementation's garbage policy — globals in C are zeroed, so the
    #: lowering always provides zero init for real globals and uses None
    #: only for objects whose initial content is intentionally undefined).
    init: Optional[bytes] = None
    is_const: bool = False
    #: (offset, symbol) pairs: at load time the base address of *symbol*
    #: (a global) is written at *offset* as a little-endian u64.  Used for
    #: global pointers initialized with string literals or ``&global``.
    relocations: list[tuple[int, str]] = field(default_factory=list)


@dataclass
class Module:
    """A compiled translation unit before layout/linking."""

    name: str
    functions: dict[str, Function] = field(default_factory=dict)
    globals: dict[str, GlobalData] = field(default_factory=dict)
    #: Source-level metadata for tooling.
    source: str = ""
    #: Constants that appear as comparison operands — exported to the
    #: fuzzer's auto-dictionary, loosely mirroring AFL++ CmpLog.
    magic_constants: list[int] = field(default_factory=list)
    #: String-literal operands of strcmp/strncmp/memcmp, for the same
    #: auto-dictionary purpose.
    magic_strings: list[bytes] = field(default_factory=list)
    #: Seeded bug-site ids present in this module (ground truth).
    bug_sites: list[int] = field(default_factory=list)

    def function(self, name: str) -> Function:
        return self.functions[name]

    def instruction_count(self) -> int:
        return sum(
            len(block.instrs)
            for func in self.functions.values()
            for block in func.blocks.values()
        )
