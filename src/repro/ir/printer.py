"""IR pretty-printer: human-readable listings of modules and functions.

The textual format is for humans and tests (`repro ir` in the CLI); it is
not parsed back.  Listing layout follows the usual SSA-dump conventions:
globals first, then each function with indented blocks.
"""

from __future__ import annotations

from repro.ir.module import Function, GlobalData, Module


def format_global(data: GlobalData) -> str:
    init = ""
    if data.init is not None:
        preview = data.init[:16].hex()
        suffix = "..." if len(data.init) > 16 else ""
        init = f" = 0x{preview}{suffix}" if any(data.init) else " = zeroinit"
    reloc = ""
    if data.relocations:
        targets = ", ".join(f"+{offset}->@{sym}" for offset, sym in data.relocations)
        reloc = f" reloc[{targets}]"
    const = " const" if data.is_const else ""
    return f"@{data.name}: {data.size} bytes align {data.align}{const}{init}{reloc}"


def format_function(func: Function) -> str:
    params = ", ".join(f"%{i}: {t}" for i, (_, t) in enumerate(func.params))
    lines = [f"func @{func.name}({params}) -> {func.ret_type} {{"]
    if func.slots:
        lines.append("  ; frame slots:")
        for slot in func.slots:
            kind = " buffer" if slot.is_buffer else ""
            lines.append(
                f"  ;   #{slot.index} {slot.name}: {slot.size} bytes align {slot.align}{kind}"
            )
    for block in func.blocks.values():
        lines.append(f"{block.label}:")
        for instr in block.instrs:
            lines.append(f"    {instr!r}")
    lines.append("}")
    return "\n".join(lines)


def format_module(module: Module) -> str:
    sections = [f"; module {module.name}"]
    if module.bug_sites:
        sections.append(f"; bug sites: {module.bug_sites}")
    for data in module.globals.values():
        sections.append(format_global(data))
    for func in module.functions.values():
        sections.append("")
        sections.append(format_function(func))
    return "\n".join(sections) + "\n"
