"""IR verifier: structural invariants the VM and passes rely on.

Checked invariants:

* every block ends with exactly one terminator, and no instruction
  follows a terminator;
* every branch/jump target exists; the entry block exists;
* slot indices referenced by AddrSlot are within the frame table;
* globals referenced by AddrGlobal exist in the module;
* register ids are within the function's declared register count;
* called functions exist (builtins are checked against the registry);
* shift/arithmetic opcodes are known to the interpreter.

Passes are expected to preserve these; `verify_module` runs after each
compile when the ``REPRO_VERIFY_IR`` environment variable is set, and
always in the test suite.
"""

from __future__ import annotations

from repro.ir.instructions import (
    INT_BINOPS,
    INT_CMPS,
    FLOAT_BINOPS,
    FLOAT_CMPS,
    AddrGlobal,
    AddrSlot,
    BinOp,
    Branch,
    Call,
    CallBuiltin,
    Jump,
    Reg,
    Ret,
    UnOp,
)
from repro.ir.module import Function, Module
from repro.minic.builtins import BUILTIN_SIGNATURES

_VALID_BINOPS = INT_BINOPS | INT_CMPS | FLOAT_BINOPS | FLOAT_CMPS
_VALID_UNOPS = frozenset({"neg", "not", "fneg"})
_TERMINATORS = (Jump, Branch, Ret)


class VerificationError(AssertionError):
    """An IR invariant does not hold."""


def verify_function(func: Function, module: Module) -> list[str]:
    """Return a list of invariant violations (empty = valid)."""
    problems: list[str] = []

    def complain(message: str) -> None:
        problems.append(f"{func.name}: {message}")

    if func.entry not in func.blocks:
        complain(f"entry block {func.entry!r} missing")
    labels = set(func.blocks)
    for label, block in func.blocks.items():
        if not block.instrs:
            complain(f"block {label} is empty")
            continue
        terminator = block.instrs[-1]
        if not isinstance(terminator, _TERMINATORS):
            complain(f"block {label} does not end in a terminator")
        for position, instr in enumerate(block.instrs):
            if isinstance(instr, _TERMINATORS) and position != len(block.instrs) - 1:
                complain(f"block {label} has a terminator mid-block at {position}")
            for operand in instr.uses():
                if isinstance(operand, Reg) and not 0 <= operand.id < func.num_regs:
                    complain(f"{label}[{position}]: register {operand} out of range")
            defined = instr.defines()
            if defined is not None and not 0 <= defined.id < func.num_regs:
                complain(f"{label}[{position}]: defines out-of-range {defined}")
            if isinstance(instr, AddrSlot) and not 0 <= instr.slot < len(func.slots):
                complain(f"{label}[{position}]: slot #{instr.slot} out of range")
            if isinstance(instr, AddrGlobal) and instr.name not in module.globals:
                complain(f"{label}[{position}]: unknown global @{instr.name}")
            if isinstance(instr, BinOp) and instr.op not in _VALID_BINOPS:
                complain(f"{label}[{position}]: unknown binop {instr.op!r}")
            if isinstance(instr, UnOp) and instr.op not in _VALID_UNOPS:
                complain(f"{label}[{position}]: unknown unop {instr.op!r}")
            if isinstance(instr, Call) and instr.callee not in module.functions:
                complain(f"{label}[{position}]: call to unknown @{instr.callee}")
            if isinstance(instr, CallBuiltin):
                if instr.name not in BUILTIN_SIGNATURES:
                    complain(f"{label}[{position}]: unknown builtin {instr.name!r}")
                if len(instr.args) != len(instr.arg_types):
                    complain(f"{label}[{position}]: arg/arg_types length mismatch")
            if isinstance(instr, Jump) and instr.target not in labels:
                complain(f"{label}: jump to unknown block {instr.target!r}")
            if isinstance(instr, Branch):
                for target in (instr.if_true, instr.if_false):
                    if target not in labels:
                        complain(f"{label}: branch to unknown block {target!r}")
    for slot in func.slots:
        if slot.size <= 0:
            complain(f"slot {slot.name} has non-positive size {slot.size}")
    return problems


def verify_module(module: Module) -> None:
    """Raise :class:`VerificationError` if any invariant is violated."""
    problems: list[str] = []
    if "main" in module.functions and module.functions["main"].params:
        problems.append("main must take no parameters")
    for func in module.functions.values():
        problems.extend(verify_function(func, module))
    if problems:
        raise VerificationError(
            f"IR verification failed for module {module.name!r}:\n  "
            + "\n  ".join(problems)
        )
