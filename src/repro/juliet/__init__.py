"""Juliet-like benchmark suite (NIST Juliet 1.3 analog, Table 2).

Generates labelled MiniC test programs across the 20 CWE categories the
paper selected, each with a *bad* variant containing exactly one seeded
flaw and a *good* variant with the flaw repaired.  Counts default to
one tenth of the paper's per-CWE totals (proportions preserved); the
``scale`` knob adjusts the size.

The generator varies Juliet-style *flow variants* (how the triggering
value reaches the flaw: straight-line, constant-guard, global-flag,
helper-function, pointer alias, loop accumulation) because static-analysis
detection rates depend on exactly this kind of data/control-flow distance.
"""

from repro.juliet.cwe import CWE_REGISTRY, CweInfo, GROUPS, group_of
from repro.juliet.generator import TestCase, generate_cwe
from repro.juliet.suite import JulietSuite, build_suite

__all__ = [
    "CWE_REGISTRY",
    "CweInfo",
    "GROUPS",
    "JulietSuite",
    "TestCase",
    "build_suite",
    "generate_cwe",
    "group_of",
]
