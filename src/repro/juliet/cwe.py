"""CWE registry: the 20 categories of the paper's Table 2."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CweInfo:
    cwe: int
    description: str
    #: Number of tests in the paper's extraction (Table 2).
    paper_tests: int


#: Table 2, verbatim.
CWE_REGISTRY: dict[int, CweInfo] = {
    info.cwe: info
    for info in (
        CweInfo(121, "Stack Based Buffer Overflow", 2951),
        CweInfo(122, "Heap Based Buffer Overflow", 3575),
        CweInfo(124, "Buffer Underwrite", 1024),
        CweInfo(126, "Buffer Overread", 721),
        CweInfo(127, "Buffer Underread", 1022),
        CweInfo(415, "Double Free", 820),
        CweInfo(416, "Use After Free", 394),
        CweInfo(475, "Undefined Behavior for Input to API", 18),
        CweInfo(588, "Access Child of Non Struct. Pointer", 80),
        CweInfo(590, "Free Memory Not on Heap", 2280),
        CweInfo(685, "Function Call With Incorrect #Args.", 18),
        CweInfo(758, "Undefined Behavior", 523),
        CweInfo(190, "Integer Overflow", 1564),
        CweInfo(191, "Integer Underflow", 1169),
        CweInfo(369, "Divide by Zero", 437),
        CweInfo(476, "NULL Pointer Dereference", 306),
        CweInfo(680, "Integer Overflow to Buffer Overflow", 196),
        CweInfo(457, "Use of Uninitialized Variable", 928),
        CweInfo(665, "Improper Initialization", 98),
        CweInfo(469, "Use of Pointer Sub. to Determine Size", 18),
    )
}

#: Table 3's row grouping ("merge tests with similar causes").
GROUPS: dict[str, tuple[int, ...]] = {
    "memory_error": (121, 122, 124, 126, 127, 415, 416, 590),
    "api_ub": (475,),
    "bad_struct_ptr": (588,),
    "bad_func_call": (685,),
    "ub": (758,),
    "integer_error": (190, 191, 680),
    "div_zero": (369,),
    "null_deref": (476,),
    "uninit": (457, 665),
    "ptr_sub": (469,),
}

#: Human-readable labels matching Table 3's Description column.
GROUP_LABELS: dict[str, str] = {
    "memory_error": "Memory error",
    "api_ub": "UB for input to API",
    "bad_struct_ptr": "Bad struct. pointer",
    "bad_func_call": "Bad function call",
    "ub": "UB",
    "integer_error": "Integer error",
    "div_zero": "Divide by zero",
    "null_deref": "Null pointer deref.",
    "uninit": "Uninitialized memory",
    "ptr_sub": "UB of pointer Sub.",
}

_GROUP_BY_CWE = {cwe: name for name, cwes in GROUPS.items() for cwe in cwes}


def group_of(cwe: int) -> str:
    return _GROUP_BY_CWE[cwe]


def total_paper_tests() -> int:
    return sum(info.paper_tests for info in CWE_REGISTRY.values())
