"""Juliet-style control/data-flow variants.

NIST Juliet wraps each flaw in dozens of "flow variants" — the same bug
with the triggering value routed through constants, globals, helper
functions, pointer aliases, or loops.  Static-analysis detection rates
depend heavily on this distance between source and sink, so the generator
reproduces the six most load-bearing shapes.
"""

from __future__ import annotations

from dataclasses import dataclass

FLOWS = ("plain", "const_true", "global_flag", "func", "ptr_alias", "loop")


@dataclass(frozen=True)
class FlowParts:
    """Code fragments that route a trigger value into a local variable."""

    globals: str
    helpers: str
    stmts: str


def flow_int(flow: str, name: str, value: str, uid: str) -> FlowParts:
    """Produce code that assigns *value* (an int expression) to ``int name``
    through the given *flow* shape.  *uid* uniquifies helper names."""
    if flow == "plain":
        return FlowParts("", "", f"int {name} = {value};")
    if flow == "const_true":
        return FlowParts(
            "",
            "",
            f"int {name} = 0;\n    if (1) {{ {name} = {value}; }}",
        )
    if flow == "global_flag":
        return FlowParts(
            f"int g_flag_{uid} = 1;",
            "",
            f"int {name} = 0;\n    if (g_flag_{uid}) {{ {name} = {value}; }}",
        )
    if flow == "func":
        return FlowParts(
            "",
            f"static int source_{uid}(void) {{ return {value}; }}",
            f"int {name} = source_{uid}();",
        )
    if flow == "ptr_alias":
        return FlowParts(
            "",
            "",
            f"int real_{uid} = {value};\n"
            f"    int *alias_{uid} = &real_{uid};\n"
            f"    int {name} = *alias_{uid};",
        )
    if flow == "loop":
        return FlowParts(
            "",
            "",
            f"int {name} = 0;\n"
            f"    int it_{uid};\n"
            f"    for (it_{uid} = 0; it_{uid} < ({value}); it_{uid}++) {{ {name}++; }}",
        )
    raise ValueError(f"unknown flow {flow!r}")


def assemble(parts: FlowParts, body: str, extra_globals: str = "", extra_helpers: str = "") -> str:
    """Assemble a full program: globals, helpers, then main with *body*.

    ``{flow}`` inside *body* is replaced with the flow statements.
    """
    sections = []
    for section in (extra_globals, parts.globals, extra_helpers, parts.helpers):
        if section:
            sections.append(section)
    main = body.replace("{flow}", parts.stmts)
    sections.append(main)
    return "\n\n".join(sections) + "\n"
