"""Test-case factory for the Juliet-like suite."""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.juliet.cwe import CWE_REGISTRY, group_of
from repro.juliet.templates import TEMPLATES


@dataclass
class TestCase:
    """One Juliet-style test: a bad variant and its repaired good twin."""

    uid: str
    cwe: int
    group: str
    bad_source: str
    good_source: str
    #: Mechanism tag (ground-truth metadata for analysis, never given to
    #: the tools under evaluation).
    mech: str
    #: Flow variant the trigger value is routed through.
    flow: str
    #: Inputs to execute (Juliet tests are self-contained; empty stdin).
    inputs: list[bytes] = field(default_factory=lambda: [b""])


def generate_cwe(cwe: int, count: int, rng: random.Random | None = None) -> list[TestCase]:
    """Generate *count* test cases for *cwe* (deterministic given the rng)."""
    if cwe not in TEMPLATES:
        raise KeyError(f"no template for CWE-{cwe}; have {sorted(TEMPLATES)}")
    if rng is None:
        rng = random.Random(cwe * 7919)
    template = TEMPLATES[cwe]
    group = group_of(cwe)
    cases = []
    for index in range(count):
        snippet = template(rng)
        cases.append(
            TestCase(
                uid=f"CWE{cwe}_{snippet.mech}_{snippet.flow}_{index:04d}",
                cwe=cwe,
                group=group,
                bad_source=snippet.bad,
                good_source=snippet.good,
                mech=snippet.mech,
                flow=snippet.flow,
            )
        )
    return cases


def scaled_count(cwe: int, scale: float, minimum: int = 2) -> int:
    """Number of tests for *cwe* at *scale* of the paper's Table 2 count."""
    return max(minimum, round(CWE_REGISTRY[cwe].paper_tests * scale))
