"""Suite assembly: the scaled-down Juliet extraction of Table 2."""

from __future__ import annotations

import pathlib
import random
from dataclasses import dataclass, field

from repro.juliet.cwe import CWE_REGISTRY, GROUP_LABELS, GROUPS
from repro.juliet.generator import TestCase, generate_cwe, scaled_count

#: Default scale: 1/50 of the paper's 18,142 tests (~370 programs), sized
#: so the full Table 3 evaluation (10 implementations + 3 sanitizers + 3
#: static tools on every bad AND good variant) completes in bench time.
DEFAULT_SCALE = 0.02


@dataclass
class JulietSuite:
    """A generated benchmark suite with ground truth."""

    seed: int
    scale: float
    cases: list[TestCase] = field(default_factory=list)

    @property
    def by_cwe(self) -> dict[int, list[TestCase]]:
        result: dict[int, list[TestCase]] = {}
        for case in self.cases:
            result.setdefault(case.cwe, []).append(case)
        return result

    @property
    def by_group(self) -> dict[str, list[TestCase]]:
        result: dict[str, list[TestCase]] = {}
        for case in self.cases:
            result.setdefault(case.group, []).append(case)
        return result

    def overview_rows(self) -> list[tuple[int, str, int, int]]:
        """Table 2 regeneration: (CWE, description, paper #tests, ours)."""
        counts = {cwe: len(cases) for cwe, cases in self.by_cwe.items()}
        rows = []
        for cwe, info in CWE_REGISTRY.items():
            rows.append((cwe, info.description, info.paper_tests, counts.get(cwe, 0)))
        return rows

    def export(self, directory: str | pathlib.Path) -> int:
        """Write the suite to disk in the NIST-artifact layout.

        One directory per CWE, one ``<uid>_bad.c`` / ``<uid>_good.c`` pair
        per test case, plus a ``MANIFEST.tsv`` with ground-truth metadata.
        Returns the number of files written.
        """
        root = pathlib.Path(directory)
        root.mkdir(parents=True, exist_ok=True)
        manifest = ["uid\tcwe\tgroup\tmech\tflow"]
        written = 0
        for case in self.cases:
            cwe_dir = root / f"CWE{case.cwe}"
            cwe_dir.mkdir(exist_ok=True)
            (cwe_dir / f"{case.uid}_bad.c").write_text(case.bad_source)
            (cwe_dir / f"{case.uid}_good.c").write_text(case.good_source)
            written += 2
            manifest.append(
                f"{case.uid}\t{case.cwe}\t{case.group}\t{case.mech}\t{case.flow}"
            )
        (root / "MANIFEST.tsv").write_text("\n".join(manifest) + "\n")
        return written + 1

    def render_overview(self) -> str:
        lines = [f"{'CWE-ID':>8}  {'Description':<42} {'#Paper':>7} {'#Ours':>6}"]
        total_paper = 0
        total_ours = 0
        for cwe, description, paper, ours in self.overview_rows():
            lines.append(f"{f'CWE-{cwe}':>8}  {description:<42} {paper:>7} {ours:>6}")
            total_paper += paper
            total_ours += ours
        lines.append(f"{'Total':>8}  {'':<42} {total_paper:>7} {total_ours:>6}")
        return "\n".join(lines)


def build_suite(scale: float = DEFAULT_SCALE, seed: int = 20230325) -> JulietSuite:
    """Generate the full suite at *scale* of the paper's per-CWE counts.

    Deterministic: the same (scale, seed) always produces identical
    sources, so evaluation results are reproducible.
    """
    suite = JulietSuite(seed=seed, scale=scale)
    for cwe in CWE_REGISTRY:
        rng = random.Random(seed * 131071 + cwe)
        suite.cases.extend(generate_cwe(cwe, scaled_count(cwe, scale), rng))
    return suite


def group_label(group: str) -> str:
    return GROUP_LABELS[group]


def group_cwes(group: str) -> tuple[int, ...]:
    return GROUPS[group]
