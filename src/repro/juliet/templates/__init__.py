"""Per-CWE test-case templates.

Each template function takes a seeded ``random.Random`` and returns a
:class:`Snippet` — a bad/good source pair plus the mechanism tag that the
generator records as ground-truth metadata.  The mechanism mix within each
CWE is calibrated so tool detection rates *emerge* from real behavior
(e.g. a fraction of memory errors deliberately do not propagate to output,
which is what caps CompDiff's recall below the sanitizers' on Table 3's
memory row).
"""

from __future__ import annotations

from dataclasses import dataclass
import random


@dataclass(frozen=True)
class Snippet:
    bad: str
    good: str
    mech: str
    flow: str


def weighted(rng: random.Random, options: list[tuple[str, float]]) -> str:
    """Pick an option name by weight."""
    names = [name for name, _ in options]
    weights = [weight for _, weight in options]
    return rng.choices(names, weights=weights, k=1)[0]


from repro.juliet.templates.memory import MEMORY_TEMPLATES
from repro.juliet.templates.integer import INTEGER_TEMPLATES
from repro.juliet.templates.uninit import UNINIT_TEMPLATES
from repro.juliet.templates.misc import MISC_TEMPLATES

TEMPLATES = {**MEMORY_TEMPLATES, **INTEGER_TEMPLATES, **UNINIT_TEMPLATES, **MISC_TEMPLATES}

__all__ = ["Snippet", "TEMPLATES", "weighted"]
