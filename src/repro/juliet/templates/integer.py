"""Integer-error templates: CWE 190/191/680/369."""

from __future__ import annotations

import random

from repro.juliet.flows import FLOWS, assemble, flow_int


def _snippet(bad: str, good: str, mech: str, flow: str):
    from repro.juliet.templates import Snippet

    return Snippet(bad=bad, good=good, mech=mech, flow=flow)


def _pick(rng: random.Random, options):
    from repro.juliet.templates import weighted

    return weighted(rng, options)


def _uid(rng: random.Random) -> str:
    return f"{rng.randrange(1 << 20):05x}"


# ------------------------------------------------------------------ CWE-190


def gen_190(rng: random.Random):
    """Signed/unsigned integer overflow.

    The mechanism mix is the point: two's-complement hardware wraps the
    *value* identically everywhere, so a printed overflowed sum is stable
    (UBSan's bread and butter, invisible to CompDiff); only folded
    overflow *guards* and widened multiplies diverge.
    """
    mech = _pick(
        rng,
        [
            ("wrap_print", 0.33),  # UBSan only
            ("unsigned_wrap", 0.51),  # nothing (defined behavior, still a bug)
            ("guard_fold", 0.08),  # UBSan + CompDiff (Listing 1)
            ("widen_mul", 0.08),  # UBSan + CompDiff (clang -O1 widening)
        ],
    )
    flow = rng.choice(FLOWS)
    uid = _uid(rng)
    base = rng.choice([2147483647, 2147483600, 2000000000])
    add = rng.randrange(100, 1000)
    if mech == "wrap_print":
        body = f"""int main(void) {{
    int a = {base};
    {{flow}}
    int c = a + b;
    printf("c=%d\\n", c);
    return 0;
}}"""
        bad = assemble(flow_int(flow, "b", str(add), uid), body)
        good = assemble(flow_int(flow, "b", str(-add), uid), body)
    elif mech == "unsigned_wrap":
        body = f"""int main(void) {{
    unsigned int a = {base}u * 2u;
    {{flow}}
    unsigned int c = a + (unsigned int)b;
    printf("c=%u\\n", c);
    return 0;
}}"""
        bad = assemble(flow_int(flow, "b", str(add + (1 << 29)), uid), body)
        good = assemble(flow_int(flow, "b", "1", uid), body)
    elif mech == "guard_fold":
        body = f"""int main(void) {{
    int a = {base};
    {{flow}}
    if (a + b < a) {{
        printf("overflow rejected\\n");
        return 1;
    }}
    printf("sum=%d\\n", a + b);
    return 0;
}}"""
        bad = assemble(flow_int(flow, "b", str(add), uid), body)
        good = assemble(flow_int(flow, "b", str(-add), uid), body)
    else:  # widen_mul
        factor = rng.choice([65537, 100003, 1000033])
        body = f"""int main(void) {{
    int a = {factor};
    {{flow}}
    long total = a * b;
    printf("t=%ld\\n", total);
    return 0;
}}"""
        bad = assemble(flow_int(flow, "b", str(factor), uid), body)
        good = assemble(flow_int(flow, "b", "3", uid), body)
    return _snippet(bad, good, mech, flow)


# ------------------------------------------------------------------ CWE-191


def gen_191(rng: random.Random):
    """Integer underflow."""
    mech = _pick(
        rng,
        [
            ("wrap_print", 0.34),
            ("unsigned_wrap", 0.50),
            ("guard_fold", 0.16),
        ],
    )
    flow = rng.choice(FLOWS)
    uid = _uid(rng)
    sub = rng.randrange(100, 1000)
    if mech == "wrap_print":
        body = """int main(void) {
    int a = -2147483647;
    {flow}
    int c = a - b;
    printf("c=%d\\n", c);
    return 0;
}"""
        bad = assemble(flow_int(flow, "b", str(sub), uid), body)
        good = assemble(flow_int(flow, "b", str(-sub), uid), body)
    elif mech == "unsigned_wrap":
        body = """int main(void) {
    unsigned int a = 5u;
    {flow}
    unsigned int c = a - (unsigned int)b;
    printf("c=%u\\n", c);
    return 0;
}"""
        bad = assemble(flow_int(flow, "b", str(sub), uid), body)
        good = assemble(flow_int(flow, "b", "2", uid), body)
    else:  # guard_fold: a - b > a  <=>  b < 0 under nsw
        body = """int main(void) {
    int a = -2147483000;
    {flow}
    if (a - b > a) {
        printf("underflow rejected\\n");
        return 1;
    }
    printf("diff=%d\\n", a - b);
    return 0;
}"""
        bad = assemble(flow_int(flow, "b", str(sub + 1000), uid), body)
        good = assemble(flow_int(flow, "b", str(-sub), uid), body)
    return _snippet(bad, good, mech, flow)


# ------------------------------------------------------------------ CWE-680


def gen_680(rng: random.Random):
    """Integer overflow leading to under-allocation and heap overflow."""
    flow = rng.choice(("plain", "const_true", "global_flag", "func"))
    uid = _uid(rng)
    # n * 4 wraps to a small positive size.
    n = 0x40000000 + rng.choice([4, 8, 12])
    writes = rng.choice([24, 32])
    body = f"""int main(void) {{
    {{flow}}
    int bytes = n * 4;
    char *data = malloc(bytes);
    char *neighbor = malloc(8);
    strcpy(neighbor, "SAFE");
    if (data == NULL) {{ return 2; }}
    int i;
    for (i = 0; i < {writes}; i++) {{ data[i] = 'B'; }}
    printf("n=%s\\n", neighbor);
    return 0;
}}"""
    bad = assemble(flow_int(flow, "n", str(n), uid), body)
    good = assemble(flow_int(flow, "n", str(writes), uid), body)
    return _snippet(bad, good, "alloc_overflow", flow)


# ------------------------------------------------------------------ CWE-369


def gen_369(rng: random.Random):
    """Division by zero.

    CompDiff only sees the unused-result cases (DCE deletes the trapping
    division at -O1+), because a *used* division traps identically in
    every binary — the same output, hence no discrepancy (Table 3: 29%).
    """
    mech = _pick(
        rng,
        [
            ("int_used", 0.25),  # UBSan only
            ("int_unused", 0.28),  # UBSan + CompDiff (via DCE)
            ("float_zero", 0.39),  # neither dynamic tool (inf is stable)
            ("literal_unused", 0.08),  # + syntactic static tools
        ],
    )
    flow = rng.choice(FLOWS)
    uid = _uid(rng)
    x = rng.randrange(10, 10_000)
    if mech == "int_used":
        body = f"""int main(void) {{
    {{flow}}
    int d = zero + (int)input_size();
    printf("q=%d\\n", {x} / d);
    return 0;
}}"""
        bad = assemble(flow_int(flow, "zero", "0", uid), body)
        good = assemble(flow_int(flow, "zero", "7", uid), body)
    elif mech == "int_unused":
        body = f"""int main(void) {{
    {{flow}}
    int d = zero + (int)input_size();
    int q = {x} / d;
    printf("done\\n");
    return 0;
}}"""
        bad = assemble(flow_int(flow, "zero", "0", uid), body)
        good = assemble(flow_int(flow, "zero", "9", uid), body)
    elif mech == "float_zero":
        body = f"""int main(void) {{
    {{flow}}
    double d = 0.0 + zero;
    double q = {x}.0 / d;
    printf("q=%f\\n", q);
    return 0;
}}"""
        bad = assemble(flow_int(flow, "zero", "0", uid), body)
        good = assemble(flow_int(flow, "zero", "4", uid), body)
    else:  # literal_unused
        body = f"""int main(void) {{
    int q = {x} / 0;
    printf("done\\n");
    return 0;
}}"""
        bad = assemble(flow_int("plain", "unused", "0", uid), body)
        good_body = body.replace("/ 0;", "/ 5;")
        good = assemble(flow_int("plain", "unused", "0", uid), good_body)
        flow = "plain"
    return _snippet(bad, good, mech, flow)


INTEGER_TEMPLATES = {190: gen_190, 191: gen_191, 680: gen_680, 369: gen_369}
