"""Interprocedural extension corpus (not part of the standard suite).

The standard Juliet-style templates keep the flaw and its trigger in the
same function on purpose — that is the shape the paper's Table 3 tools
were calibrated against, and the per-CWE generators must stay
byte-stable (their seeded rng draw sequences define the committed suite
composition).  This module is a *separate* corpus of bad/good pairs
whose defining property is that the flaw only becomes visible across a
call boundary: the trigger value or the flawed operation sits in a
callee, so an intraprocedural analysis is structurally blind to it
while the summary-based interprocedural oracle is not.

Every shape keeps the divergence mechanism of a proven standard
template (printed stack garbage, fold-vs-mask shifts, folded overflow
guards, layout-dependent adjacent overwrite, folded null loads) so the
differential oracle can still confirm the bad variants — that is what
makes the corpus usable as precision ground truth.

Cases carry ``IPX``-prefixed uids so they can never collide with the
standard suite, and :func:`interproc_cases` is deterministic in its
arguments (no module-level rng).
"""

from __future__ import annotations

from repro.juliet.cwe import group_of
from repro.juliet.flows import assemble, flow_int
from repro.juliet.generator import TestCase

#: Flow variants the interprocedural interval refinement can resolve at
#: the call site (plain/const_true fold via edge pruning; func folds via
#: the callee's return-interval summary).
_FLOWS = ("plain", "const_true", "func")


def _case(shape: str, cwe: int, index: int, flow: str, bad: str, good: str) -> TestCase:
    return TestCase(
        uid=f"IPX{cwe}_{shape}_{flow}_{index:04d}",
        cwe=cwe,
        group=group_of(cwe),
        bad_source=bad,
        good_source=good,
        mech=f"interproc_{shape}",
        flow=flow,
    )


def _uninit_chain(index: int, flow: str) -> TestCase:
    """CWE-457 through a two-deep call chain.

    The conditionally-initialized local is only *read* inside the leaf
    callee; main just passes its address along.  Printing the
    indeterminate value diverges exactly like the standard print_value
    mechanism — but an intraprocedural analysis never connects the read
    in ``read_ipx`` to the uninitialized object in ``main``.
    """
    uid = f"ipx{index:04d}"
    helpers = f"""static int read_ipx_{uid}(int *p) {{
    return *p;
}}

static int chain_ipx_{uid}(int *p) {{
    return read_ipx_{uid}(p);
}}"""
    body = f"""int main(void) {{
    int value;
    {{flow}}
    if (doinit) {{ value = 42; }}
    printf("v=%d\\n", chain_ipx_{uid}(&value));
    return 0;
}}"""
    bad = assemble(flow_int(flow, "doinit", "0", uid), body, extra_helpers=helpers)
    good = assemble(flow_int(flow, "doinit", "1", uid), body, extra_helpers=helpers)
    return _case("uninit_chain", 457, index, flow, bad, good)


def _fill_chain(index: int, flow: str) -> TestCase:
    """CWE-457 where the *good* variant is the interesting one.

    A helper chain is supposed to initialize through the pointer.  The
    good variant writes unconditionally — a must-write summary proves
    the local initialized, silencing the false positive an
    intraprocedural analysis raises when it cannot see into the callee.
    The bad variant gates the write on a set global flag and skips it,
    so the print diverges on stack garbage.
    """
    uid = f"ipx{index:04d}"
    put = f"""static void put_ipx_{uid}(int *p) {{
    *p = 42;
}}"""
    bad_fill = f"""{put}

static void fill_ipx_{uid}(int *p) {{
    if (g_skip_ipx_{uid}) {{ return; }}
    put_ipx_{uid}(p);
}}"""
    good_fill = f"""{put}

static void fill_ipx_{uid}(int *p) {{
    put_ipx_{uid}(p);
}}"""
    body = f"""int main(void) {{
    int value;
    fill_ipx_{uid}(&value);
    printf("v=%d\\n", value);
    return 0;
}}"""
    parts = flow_int("plain", "unused", "0", uid)
    # The flow machinery is not used here (the trigger is the guard
    # inside the callee); assemble with an empty flow site.
    bad = assemble(
        parts,
        body.replace("{flow}", ""),
        extra_globals=f"int g_skip_ipx_{uid} = 1;",
        extra_helpers=bad_fill,
    )
    good = assemble(parts, body.replace("{flow}", ""), extra_helpers=good_fill)
    return _case("fill_chain", 457, index, "plain", bad, good)


def _shift_chain(index: int, flow: str) -> TestCase:
    """CWE-758 oversized shift where the shift lives in a callee.

    Implementations that inline the one-line helper fold ``1 << 40`` at
    compile time; the rest mask the amount at runtime — the standard
    oversized_shift divergence, moved across a call boundary so only a
    parameter-environment analysis sees the amount.
    """
    uid = f"ipx{index:04d}"
    helpers = f"""static int shl_ipx_{uid}(int amount) {{
    return 1 << amount;
}}"""
    body = f"""int main(void) {{
    {{flow}}
    printf("x=%d\\n", shl_ipx_{uid}(sh));
    return 0;
}}"""
    bad = assemble(flow_int(flow, "sh", "40", uid), body, extra_helpers=helpers)
    good = assemble(flow_int(flow, "sh", "5", uid), body, extra_helpers=helpers)
    return _case("shift_chain", 758, index, flow, bad, good)


def _overflow_chain(index: int, flow: str) -> TestCase:
    """CWE-190 folded overflow guard inside a helper (Listing 1 shape).

    The helper's ``a + b < a`` guard is sound only under wrapping;
    implementations that inline and fold it under the no-overflow
    assumption print the wrapped sum while the rest reject.  The
    overflowing operands are only visible interprocedurally.
    """
    uid = f"ipx{index:04d}"
    helpers = f"""static int checked_sum_ipx_{uid}(int a, int b) {{
    if (a + b < a) {{
        printf("overflow rejected\\n");
        return 1;
    }}
    printf("sum=%d\\n", a + b);
    return 0;
}}"""
    body = f"""int main(void) {{
    int a = 2147483600;
    {{flow}}
    return checked_sum_ipx_{uid}(a, b);
}}"""
    bad = assemble(flow_int(flow, "b", "500", uid), body, extra_helpers=helpers)
    good = assemble(flow_int(flow, "b", "-500", uid), body, extra_helpers=helpers)
    return _case("overflow_chain", 190, index, flow, bad, good)


def _oob_chain(index: int, flow: str) -> TestCase:
    """CWE-121 fixed-size memset through a pointer parameter.

    The callee always clears 16 bytes; the bad variant hands it a
    12-byte buffer, clobbering the adjacent local (layout-dependent,
    so the printed neighbor diverges — the adjacent_print mechanism).
    Only the access-range summary connects the constant inside the
    callee to the undersized object at the call site.
    """
    uid = f"ipx{index:04d}"
    helpers = f"""static void blast_ipx_{uid}(char *p) {{
    memset(p, 'A', 16);
}}"""
    body_bad = f"""int main(void) {{
    char data[12];
    char neighbor[8] = "SAFE";
    blast_ipx_{uid}(data);
    printf("n=%s d=%c\\n", neighbor, data[0]);
    return 0;
}}"""
    body_good = body_bad.replace("char data[12];", "char data[16];")
    parts = flow_int("plain", "unused", "0", uid)
    bad = assemble(parts, body_bad.replace("{flow}", ""), extra_helpers=helpers)
    good = assemble(parts, body_good.replace("{flow}", ""), extra_helpers=helpers)
    return _case("oob_chain", 121, index, "plain", bad, good)


def _null_chain(index: int, flow: str) -> TestCase:
    """CWE-476 dereference inside a deliberately tiny callee.

    The standard opaque_callee mechanism keeps the callee large so no
    implementation inlines it (the crash is then identical everywhere).
    This one is a single load, so inlining implementations fold the
    null dereference away while the rest trap — and the call-site
    dereference summary plus edge pruning prove the argument null.
    """
    uid = f"ipx{index:04d}"
    helpers = f"""static int deref_ipx_{uid}(int *p) {{
    return *p;
}}"""
    body = f"""int main(void) {{
    int box = 7;
    int *p = &box;
    {{flow}}
    if (usenull) {{ p = 0; }}
    printf("x=%d\\n", deref_ipx_{uid}(p));
    return 0;
}}"""
    bad = assemble(flow_int(flow, "usenull", "1", uid), body, extra_helpers=helpers)
    good = assemble(flow_int(flow, "usenull", "0", uid), body, extra_helpers=helpers)
    return _case("null_chain", 476, index, flow, bad, good)


_SHAPES = (
    _uninit_chain,
    _fill_chain,
    _shift_chain,
    _overflow_chain,
    _oob_chain,
    _null_chain,
)


def interproc_cases(per_shape: int = 3) -> list[TestCase]:
    """The extension corpus: *per_shape* cases of each shape.

    Deterministic in *per_shape* — cases differ only in which flow
    variant routes the trigger, cycling through :data:`_FLOWS`.
    """
    cases: list[TestCase] = []
    index = 0
    for shape in _SHAPES:
        for i in range(per_shape):
            cases.append(shape(index, _FLOWS[i % len(_FLOWS)]))
            index += 1
    return cases
