"""Memory-error templates: CWE 121/122/124/126/127/415/416/590/475."""

from __future__ import annotations

import random

from repro.juliet.flows import FLOWS, assemble, flow_int


def _snippet(bad: str, good: str, mech: str, flow: str):
    from repro.juliet.templates import Snippet

    return Snippet(bad=bad, good=good, mech=mech, flow=flow)


def _pick(rng: random.Random, options):
    from repro.juliet.templates import weighted

    return weighted(rng, options)


def _uid(rng: random.Random) -> str:
    return f"{rng.randrange(1 << 20):05x}"


# ------------------------------------------------------------------ CWE-121


def gen_121(rng: random.Random):
    """Stack buffer overflow (write)."""
    mech = _pick(
        rng,
        [
            ("adjacent_print", 0.66),  # CompDiff + ASan
            ("adjacent_silent", 0.12),  # ASan only
            ("skip_redzone_print", 0.12),  # CompDiff only (jumps the redzone)
            ("far_silent", 0.10),  # neither
        ],
    )
    flow = rng.choice(FLOWS)
    uid = _uid(rng)
    size = rng.choice([16, 24, 32, 48])
    if mech == "adjacent_print":
        delta = rng.randrange(0, 6)
    elif mech == "adjacent_silent":
        delta = rng.randrange(0, 6)
    elif mech == "skip_redzone_print":
        delta = 16 + rng.randrange(0, 4)  # past the 16-byte redzone
    else:
        delta = 192 + rng.randrange(0, 16)
    prints = (
        'printf("n=%s d=%c\\n", neighbor, data[0]);'
        if mech.endswith("print")
        else 'printf("done d=%c\\n", data[0]);'
    )
    body = f"""int main(void) {{
    char data[{size}];
    char neighbor[8] = "SAFE";
    {{flow}}
    memset(data, 'A', {size});
    data[idx] = 'X';
    {prints}
    return 0;
}}"""
    bad = assemble(flow_int(flow, "idx", str(size + delta), uid), body)
    good = assemble(flow_int(flow, "idx", str(size - 1), uid), body)
    return _snippet(bad, good, mech, flow)


# ------------------------------------------------------------------ CWE-122


def gen_122(rng: random.Random):
    """Heap buffer overflow (write)."""
    mech = _pick(
        rng,
        [
            ("adjacent_print", 0.62),
            ("adjacent_silent", 0.16),
            ("gap_reach_print", 0.12),  # only roomy-allocator layouts reach
            ("far_silent", 0.10),
        ],
    )
    flow = rng.choice(FLOWS)
    uid = _uid(rng)
    size = rng.choice([16, 32, 48])
    if mech in ("adjacent_print", "adjacent_silent"):
        delta = rng.randrange(0, 6)
    elif mech == "gap_reach_print":
        delta = 16 + rng.randrange(0, 4)
    else:
        delta = 256 + rng.randrange(0, 16)
    prints = (
        'printf("n=%s\\n", neighbor);'
        if mech.endswith("print")
        else 'printf("done\\n");'
    )
    body = f"""int main(void) {{
    char *data = malloc({size});
    char *neighbor = malloc(8);
    strcpy(neighbor, "SAFE");
    memset(data, 'A', {size});
    {{flow}}
    data[idx] = 'X';
    {prints}
    free(data);
    free(neighbor);
    return 0;
}}"""
    bad = assemble(flow_int(flow, "idx", str(size + delta), uid), body)
    good = assemble(flow_int(flow, "idx", str(size - 1), uid), body)
    return _snippet(bad, good, mech, flow)


# ------------------------------------------------------------------ CWE-124


def gen_124(rng: random.Random):
    """Buffer underwrite."""
    mech = _pick(rng, [("under_print", 0.72), ("under_silent", 0.18), ("deep_silent", 0.10)])
    flow = rng.choice(FLOWS)
    uid = _uid(rng)
    size = rng.choice([16, 32])
    delta = rng.randrange(1, 6) if mech != "deep_silent" else 160 + rng.randrange(0, 8)
    prints = (
        'printf("v=%s\\n", victim);' if mech == "under_print" else 'printf("done\\n");'
    )
    body = f"""int main(void) {{
    char victim[8] = "SAFE";
    char data[{size}];
    char *p = data;
    {{flow}}
    memset(data, 'A', {size});
    p[0 - off] = 'X';
    {prints}
    return 0;
}}"""
    bad = assemble(flow_int(flow, "off", str(delta), uid), body)
    good = assemble(flow_int(flow, "off", "0", uid), body)
    return _snippet(bad, good, mech, flow)


# ------------------------------------------------------------------ CWE-126


def gen_126(rng: random.Random):
    """Buffer overread."""
    mech = _pick(
        rng,
        [
            ("read_print", 0.70),  # value printed: fill/layout divergence
            ("read_silent", 0.14),
            ("skip_redzone_print", 0.16),
        ],
    )
    flow = rng.choice(FLOWS)
    uid = _uid(rng)
    size = rng.choice([16, 24, 32])
    heap = rng.random() < 0.4
    if mech == "skip_redzone_print":
        delta = 16 + rng.randrange(0, 4)
    else:
        delta = rng.randrange(1, 8)
    prints = (
        'printf("c=%d\\n", data[idx]);'
        if mech.endswith("print")
        else "int c = data[idx];\n    printf(\"done\\n\");"
    )
    if heap:
        alloc = f"char *data = malloc({size});"
        extra = 'char *after = malloc(8);\n    strcpy(after, "JUNKY");'
    else:
        alloc = f"char data[{size}];"
        extra = 'char after[8] = "JUNKY";'
    body = f"""int main(void) {{
    {alloc}
    {extra}
    memset(data, 'A', {size});
    {{flow}}
    {prints}
    return 0;
}}"""
    bad = assemble(flow_int(flow, "idx", str(size + delta), uid), body)
    good = assemble(flow_int(flow, "idx", str(size - 1), uid), body)
    return _snippet(bad, good, mech, flow)


# ------------------------------------------------------------------ CWE-127


def gen_127(rng: random.Random):
    """Buffer underread."""
    mech = _pick(rng, [("read_print", 0.75), ("read_silent", 0.25)])
    flow = rng.choice(FLOWS)
    uid = _uid(rng)
    size = rng.choice([16, 32])
    delta = rng.randrange(1, 8)
    prints = (
        'printf("c=%d\\n", p[0 - off]);'
        if mech == "read_print"
        else "int c = p[0 - off];\n    printf(\"done\\n\");"
    )
    body = f"""int main(void) {{
    char before[8] = "HIDDEN";
    char data[{size}];
    char *p = data;
    memset(data, 'A', {size});
    {{flow}}
    {prints}
    return 0;
}}"""
    bad = assemble(flow_int(flow, "off", str(delta), uid), body)
    good = assemble(flow_int(flow, "off", "0", uid), body)
    return _snippet(bad, good, mech, flow)


# ------------------------------------------------------------------ CWE-415


def gen_415(rng: random.Random):
    """Double free."""
    mech = _pick(rng, [("alias_print", 0.75), ("tail_silent", 0.25)])
    flow = rng.choice(("plain", "const_true", "global_flag", "func"))
    uid = _uid(rng)
    size = rng.choice([16, 32])
    tail = (
        """char *q = malloc(SZ);
    char *r = malloc(SZ);
    q[0] = 'Q';
    r[0] = 'R';
    printf("q=%c r=%c\\n", q[0], r[0]);""".replace("SZ", str(size))
        if mech == "alias_print"
        else 'printf("done\\n");'
    )
    # The flow variant gates the second free (Juliet style).
    body = f"""int main(void) {{
    char *data = malloc({size});
    data[0] = 'a';
    free(data);
    {{flow}}
    if (doit) {{
        free(data);
    }}
    {tail}
    return 0;
}}"""
    bad = assemble(flow_int(flow, "doit", "1", uid), body)
    good = assemble(flow_int(flow, "doit", "0", uid), body)
    return _snippet(bad, good, mech, flow)


# ------------------------------------------------------------------ CWE-416


def gen_416(rng: random.Random):
    """Use after free."""
    mech = _pick(
        rng,
        [
            ("realloc_alias_print", 0.5),  # stale pointer reads new owner's data
            ("stale_read_print", 0.35),  # poisoned vs stale contents
            ("stale_silent", 0.15),
        ],
    )
    flow = rng.choice(("plain", "const_true", "func"))
    uid = _uid(rng)
    if mech == "realloc_alias_print":
        use = """char *other = malloc(16);
    strcpy(other, "NEWB");
    printf("p=%s\\n", data);"""
    elif mech == "stale_read_print":
        # %d, not %s: freed memory need not contain a terminator.
        use = 'printf("c=%d\\n", data[1]);'
    else:
        use = "char c = data[0];\n    printf(\"done\\n\");"
    body = f"""int main(void) {{
    char *data = malloc(16);
    strcpy(data, "OLD!");
    {{flow}}
    if (doit) {{
        free(data);
    }}
    {use}
    return 0;
}}"""
    bad = assemble(flow_int(flow, "doit", "1", uid), body)
    good = assemble(flow_int(flow, "doit", "0", uid), body)
    return _snippet(bad, good, mech, flow)


# ------------------------------------------------------------------ CWE-590


def gen_590(rng: random.Random):
    """Free of memory not on the heap."""
    mech = _pick(rng, [("stack", 0.5), ("global", 0.3), ("midblock", 0.2)])
    flow = rng.choice(("plain", "const_true", "global_flag", "func", "ptr_alias"))
    uid = _uid(rng)
    if mech == "stack":
        setup = "char buf[16];\n    char *data = buf;"
    elif mech == "global":
        setup = "char *data = g_storage;"
    else:
        setup = "char *block = malloc(32);\n    char *data = block + 8;"
    extra_globals = "char g_storage[16];" if mech == "global" else ""
    body = f"""int main(void) {{
    {setup}
    data[0] = 'x';
    {{flow}}
    if (doit) {{
        free(data);
    }}
    printf("survived\\n");
    return 0;
}}"""
    bad = assemble(flow_int(flow, "doit", "1", uid), body, extra_globals=extra_globals)
    good_setup_free = body.replace("free(data);", "/* correctly not freed */ data[0] = 'y';")
    good = assemble(flow_int(flow, "doit", "1", uid), good_setup_free, extra_globals=extra_globals)
    return _snippet(bad, good, mech, flow)


# ------------------------------------------------------------------ CWE-475


def gen_475(rng: random.Random):
    """Undefined behavior for input to API: overlapping memcpy."""
    flow = rng.choice(("plain", "const_true"))
    uid = _uid(rng)
    shift = rng.choice([2, 4, 6])
    length = rng.choice([10, 12])
    body = f"""int main(void) {{
    char buf[32];
    int i;
    for (i = 0; i < 32; i++) {{ buf[i] = 'A' + i % 26; }}
    {{flow}}
    memcpy(buf + off, buf, {length});
    for (i = 0; i < 20; i++) {{ printf("%c", buf[i]); }}
    printf("\\n");
    return 0;
}}"""
    bad = assemble(flow_int(flow, "off", str(shift), uid), body)
    good = assemble(flow_int(flow, "off", "20", uid), body)
    return _snippet(bad, good, "memcpy_overlap", flow)


MEMORY_TEMPLATES = {
    121: gen_121,
    122: gen_122,
    124: gen_124,
    126: gen_126,
    127: gen_127,
    415: gen_415,
    416: gen_416,
    590: gen_590,
    475: gen_475,
}
