"""Miscellaneous-UB templates: CWE 588/685/758/476/469."""

from __future__ import annotations

import random

from repro.juliet.flows import assemble, flow_int


def _snippet(bad: str, good: str, mech: str, flow: str):
    from repro.juliet.templates import Snippet

    return Snippet(bad=bad, good=good, mech=mech, flow=flow)


def _pick(rng: random.Random, options):
    from repro.juliet.templates import weighted

    return weighted(rng, options)


def _uid(rng: random.Random) -> str:
    return f"{rng.randrange(1 << 20):05x}"


# ------------------------------------------------------------------ CWE-588


def gen_588(rng: random.Random):
    """Access of a child of a non-struct pointer."""
    mech = _pick(rng, [("scalar_cast", 0.5), ("intra_object", 0.5)])
    flow = "plain"
    structs = """struct Pair {
    int first;
    int second;
};"""
    if mech == "scalar_cast":
        # Reads 4 bytes past a lone int: hits the ASan redzone, and reads
        # layout-dependent garbage everywhere else.
        body = """int main(void) {
    int v = 7;
    struct Pair *p = (struct Pair*)&v;
    printf("a=%d b=%d\\n", p->first, p->second);
    return 0;
}"""
        good_body = """int main(void) {
    struct Pair w;
    w.first = 7;
    w.second = 8;
    struct Pair *p = &w;
    printf("a=%d b=%d\\n", p->first, p->second);
    return 0;
}"""
    else:
        # Reads uninitialized bytes *within* a larger object: ASan's
        # redzones cannot see intra-object overflow (the 49% row).
        structs += """

struct Quad {
    int a;
    int b;
    int c;
    int d;
};"""
        body = """int main(void) {
    int arr[4];
    arr[0] = 1;
    arr[1] = 2;
    struct Quad *p = (struct Quad*)&arr[0];
    printf("c=%d d=%d\\n", p->c, p->d);
    return 0;
}"""
        good_body = """int main(void) {
    int arr[4];
    arr[0] = 1;
    arr[1] = 2;
    arr[2] = 3;
    arr[3] = 4;
    struct Quad *p = (struct Quad*)&arr[0];
    printf("c=%d d=%d\\n", p->c, p->d);
    return 0;
}"""
    bad = structs + "\n\n" + body + "\n"
    good = structs + "\n\n" + good_body + "\n"
    return _snippet(bad, good, mech, flow)


# ------------------------------------------------------------------ CWE-685


def gen_685(rng: random.Random):
    """Function call with too few arguments."""
    flow = "plain"
    uid = _uid(rng)
    scale = rng.choice([10, 100, 1000])
    helpers = f"""int combine_{uid}(int a, int b) {{
    return a * {scale} + b;
}}"""
    body = f"""int main(void) {{
    int r = combine_{uid}(7);
    printf("r=%d\\n", r);
    return 0;
}}"""
    good_body = f"""int main(void) {{
    int r = combine_{uid}(7, 3);
    printf("r=%d\\n", r);
    return 0;
}}"""
    bad = helpers + "\n\n" + body + "\n"
    good = helpers + "\n\n" + good_body + "\n"
    return _snippet(bad, good, "missing_arg", flow)


# ------------------------------------------------------------------ CWE-758


def gen_758(rng: random.Random):
    """General undefined behavior without a dedicated sanitizer check."""
    mech = _pick(
        rng,
        [
            ("oversized_shift", 0.30),  # UBSan + CompDiff (fold vs masked)
            ("float_cast_overflow", 0.30),  # CompDiff only
            ("pointer_wrap_guard", 0.40),  # CompDiff only
        ],
    )
    # Shift/cast UB in Juliet is overwhelmingly straight-line code; the
    # fold-dependent mechanisms only fire on shapes the optimizer sees
    # through, so complex flows are the minority here.
    flow = _pick(
        rng,
        [("plain", 0.45), ("const_true", 0.3), ("global_flag", 0.1), ("ptr_alias", 0.08), ("loop", 0.07)],
    )
    uid = _uid(rng)
    if mech == "oversized_shift":
        count = rng.choice([33, 36, 40, 48])
        body = """int main(void) {
    {flow}
    printf("x=%d\\n", 1 << sh);
    return 0;
}"""
        bad = assemble(flow_int(flow, "sh", str(count), uid), body)
        good = assemble(flow_int(flow, "sh", str(count % 31), uid), body)
    elif mech == "float_cast_overflow":
        magnitude = rng.choice(["4.6e18", "9.2e18", "1.5e19"])
        body = f"""int main(void) {{
    {{flow}}
    double d = {magnitude} * scale;
    long x = (long)d;
    printf("x=%ld\\n", x);
    return 0;
}}"""
        bad = assemble(flow_int(flow, "scale", "4", uid), body)
        good = assemble(flow_int(flow, "scale", "0", uid), body)
        flow = flow
    else:  # pointer_wrap_guard
        body = """int main(void) {
    char buf[16];
    char *p = buf;
    unsigned long n = 18446744073709551000ul;
    {flow}
    if (use != 0 && p + n < p) {
        printf("wrapped\\n");
        return 1;
    }
    printf("no wrap\\n");
    return 0;
}"""
        bad = assemble(flow_int(flow, "use", "1", uid), body)
        good_body = body.replace("p + n < p", "n > 4096ul")
        good = assemble(flow_int(flow, "use", "1", uid), good_body)
    return _snippet(bad, good, mech, flow)


# ------------------------------------------------------------------ CWE-476


def gen_476(rng: random.Random):
    """Null pointer dereference."""
    mech = _pick(
        rng,
        [
            ("load_folded", 0.45),  # crash at -O0, elided at -O1+
            ("store_folded", 0.45),
            ("opaque_callee", 0.10),  # crashes identically everywhere
        ],
    )
    flow = "plain"
    uid = _uid(rng)
    if mech == "load_folded":
        body = """int main(void) {
    int v = 77;
    int *p = NULL;
    {flow}
    if (pick) { p = &v; }
    printf("x=%d\\n", *p);
    return 0;
}"""
        bad = assemble(flow_int("plain", "pick", "0", uid), body)
        good = assemble(flow_int("plain", "pick", "1", uid), body)
    elif mech == "store_folded":
        body = """int main(void) {
    int v = 0;
    int *p = NULL;
    {flow}
    if (pick) { p = &v; }
    *p = 9;
    printf("v=%d\\n", v);
    return 0;
}"""
        bad = assemble(flow_int("plain", "pick", "0", uid), body)
        good = assemble(flow_int("plain", "pick", "1", uid), body)
    else:  # opaque_callee: pointer crosses a non-inlinable call boundary
        helpers = f"""static int consume_{uid}(int *p) {{
    int acc = 0;
    int i;
    for (i = 0; i < 8; i++) {{ acc += i * 3; }}
    acc = acc * 7 % 1000;
    acc = acc + 13;
    acc = acc * 3 % 997;
    acc = acc + 1;
    acc = acc * 5 % 991;
    acc = acc + 7;
    acc = acc * 11 % 983;
    acc = acc + 9;
    acc = acc * 13 % 977;
    return acc + *p;
}}"""
        body = f"""int main(void) {{
    int v = 5;
    int *p = NULL;
    {{flow}}
    if (pick) {{ p = &v; }}
    printf("x=%d\\n", consume_{uid}(p));
    return 0;
}}"""
        bad = assemble(flow_int("plain", "pick", "0", uid), body, extra_helpers=helpers)
        good = assemble(flow_int("plain", "pick", "1", uid), body, extra_helpers=helpers)
    return _snippet(bad, good, mech, flow)


# ------------------------------------------------------------------ CWE-469


def gen_469(rng: random.Random):
    """Pointer subtraction across distinct objects to compute a size."""
    mech = _pick(rng, [("stack_arrays", 0.5), ("globals", 0.3), ("heap_blocks", 0.2)])
    flow = "plain"
    if mech == "stack_arrays":
        body = """int main(void) {
    int first[4];
    int second[4];
    first[0] = 1;
    second[0] = 2;
    long count = &second[0] - &first[0];
    printf("count=%ld\\n", count);
    return 0;
}"""
        good_body = """int main(void) {
    int first[4];
    first[0] = 1;
    long count = &first[4] - &first[0];
    printf("count=%ld\\n", count);
    return 0;
}"""
        extra = ""
    elif mech == "globals":
        extra = "int g_one[6];\nint g_two[3];"
        body = """int main(void) {
    long count = &g_two[0] - &g_one[0];
    printf("count=%ld\\n", count);
    return 0;
}"""
        good_body = """int main(void) {
    long count = &g_one[6] - &g_one[0];
    printf("count=%ld\\n", count);
    return 0;
}"""
    else:
        extra = ""
        body = """int main(void) {
    char *a = malloc(24);
    char *b = malloc(24);
    long count = b - a;
    printf("count=%ld\\n", count);
    return 0;
}"""
        good_body = """int main(void) {
    char *a = malloc(24);
    long count = (a + 24) - a;
    printf("count=%ld\\n", count);
    return 0;
}"""
    prefix = (extra + "\n\n") if extra else ""
    return _snippet(prefix + body + "\n", prefix + good_body + "\n", mech, flow)


MISC_TEMPLATES = {588: gen_588, 685: gen_685, 758: gen_758, 476: gen_476, 469: gen_469}
