"""Uninitialized-memory templates: CWE 457/665."""

from __future__ import annotations

import random

from repro.juliet.flows import assemble, flow_int


def _snippet(bad: str, good: str, mech: str, flow: str):
    from repro.juliet.templates import Snippet

    return Snippet(bad=bad, good=good, mech=mech, flow=flow)


def _pick(rng: random.Random, options):
    from repro.juliet.templates import weighted

    return weighted(rng, options)


def _uid(rng: random.Random) -> str:
    return f"{rng.randrange(1 << 20):05x}"


# ------------------------------------------------------------------ CWE-457


def gen_457(rng: random.Random):
    """Use of an uninitialized variable.

    MSan's scope (branch decisions only) versus CompDiff's (any output
    effect) is the core of Table 3's uninitialized-memory row: the value
    of an indeterminate local is the implementation's stack garbage, so
    *printing* it diverges across implementations while MSan stays silent.
    """
    mech = _pick(
        rng,
        [
            ("print_value", 0.24),  # CompDiff only (+ static scalar checkers)
            ("addr_taken", 0.22),  # CompDiff only; static tools mute
            # address-taken locals to avoid FPs
            ("print_heap", 0.18),  # CompDiff only (malloc garbage)
            ("copy_then_print", 0.18),  # CompDiff only (shadow propagates)
            ("branch_use", 0.08),  # MSan + CompDiff
            ("silent", 0.10),  # nobody
        ],
    )
    flow = rng.choice(("plain", "const_true", "global_flag", "func"))
    uid = _uid(rng)
    if mech == "addr_taken":
        # The helper is *supposed* to initialize through the pointer but
        # bails early in the bad variant; static uninit checkers skip
        # address-taken locals precisely to avoid this shape's FPs.
        body = """int main(void) {
    int value;
    {flow}
    fill(&value, doinit);
    printf("v=%d\\n", value);
    return 0;
}"""
        helpers = """static void fill(int *out, int enable) {
    if (enable == 0) { return; }
    *out = 42;
}"""
        bad = assemble(flow_int(flow, "doinit", "0", uid), body, extra_helpers=helpers)
        good = assemble(flow_int(flow, "doinit", "1", uid), body, extra_helpers=helpers)
        return _snippet(bad, good, mech, flow)
    if mech == "print_value":
        # Conditionally initialized: the init path is dead in the bad
        # variant (Listing 4's empty-istream shape).
        body = """int main(void) {
    int value;
    {flow}
    if (doinit) { value = 42; }
    printf("v=%d\\n", value);
    return 0;
}"""
    elif mech == "print_heap":
        body = """int main(void) {
    int *box = (int*)malloc(8);
    {flow}
    if (doinit) { box[1] = 42; }
    printf("v=%d\\n", box[1]);
    free((char*)box);
    return 0;
}"""
    elif mech == "copy_then_print":
        body = """int main(void) {
    int src[4];
    int dst[4];
    {flow}
    if (doinit) { memset((char*)src, 0, 16); }
    memcpy((char*)dst, (char*)src, 16);
    printf("v=%d\\n", dst[2]);
    return 0;
}"""
    elif mech == "branch_use":
        body = """int main(void) {
    int value;
    {flow}
    if (doinit) { value = 7; }
    if (value > 50) { printf("big\\n"); }
    else { printf("small\\n"); }
    return 0;
}"""
    else:  # silent
        body = """int main(void) {
    int value;
    {flow}
    if (doinit) { value = 7; }
    int shadow = value + 1;
    printf("done\\n");
    return 0;
}"""
    bad = assemble(flow_int(flow, "doinit", "0", uid), body)
    good = assemble(flow_int(flow, "doinit", "1", uid), body)
    return _snippet(bad, good, mech, flow)


# ------------------------------------------------------------------ CWE-665


def gen_665(rng: random.Random):
    """Improper initialization (partial init, missing terminator)."""
    mech = _pick(
        rng,
        [
            ("strncpy_short", 0.45),
            ("partial_memset", 0.40),
            ("silent", 0.15),
        ],
    )
    flow = rng.choice(("plain", "const_true", "global_flag"))
    uid = _uid(rng)
    if mech == "strncpy_short":
        # Too-short strncpy: bytes past `count` stay indeterminate.
        body = """int main(void) {
    char s[12];
    {flow}
    strncpy(s, "ABCDEFGHIJ", count);
    printf("tail=%d\\n", s[9]);
    return 0;
}"""
        bad = assemble(flow_int(flow, "count", "4", uid), body)
        good = assemble(flow_int(flow, "count", "10", uid), body)
    elif mech == "partial_memset":
        body = """int main(void) {
    char b[16];
    {flow}
    memset(b, 'A', count);
    printf("mid=%d\\n", b[12]);
    return 0;
}"""
        bad = assemble(flow_int(flow, "count", "8", uid), body)
        good = assemble(flow_int(flow, "count", "16", uid), body)
    else:
        body = """int main(void) {
    char b[16];
    {flow}
    memset(b, 'A', count);
    char c = b[12];
    printf("done\\n");
    return 0;
}"""
        bad = assemble(flow_int(flow, "count", "8", uid), body)
        good = assemble(flow_int(flow, "count", "16", uid), body)
    return _snippet(bad, good, mech, flow)


UNINIT_TEMPLATES = {457: gen_457, 665: gen_665}
