"""MiniC: a small C-like language with faithful undefined-behavior surface.

MiniC is the program substrate of this reproduction.  It supports the C
constructs that the paper's unstable-code examples rely on — fixed-width
integers, pointers and pointer arithmetic, arrays, structs, static storage,
``printf``-style output, and the ``__LINE__`` macro — and leaves the same
behaviors undefined that C leaves undefined (signed overflow, out-of-bounds
access, cross-object pointer comparison, uninitialized reads, unsequenced
side effects in call arguments, ...).

Public entry points:

* :func:`tokenize` — source text to token stream.
* :func:`parse` — source text to AST (:class:`~repro.minic.ast.Program`).
* :func:`check` — resolve names/types in place, returning the program.
* :func:`load` — parse + check in one call.
"""

from repro.minic.lexer import Token, TokenKind, tokenize
from repro.minic.parser import parse
from repro.minic.checker import check
from repro.minic.printer import count_nodes, to_source
from repro.minic import ast
from repro.minic import types


def load(source: str, filename: str = "<minic>") -> "ast.Program":
    """Parse and semantically check MiniC *source*, returning the AST."""
    program = parse(source, filename=filename)
    return check(program)


__all__ = [
    "Token",
    "TokenKind",
    "tokenize",
    "parse",
    "check",
    "load",
    "to_source",
    "count_nodes",
    "ast",
    "types",
]
