"""AST node definitions for MiniC.

Nodes are plain mutable dataclasses.  The semantic checker annotates
expression nodes in place with their computed type (``ty``) and identifier
nodes with their resolved symbol.  Every node records the source line/column
of its first token; statements additionally matter for the ``__LINE__``
implementation-defined policy (see
:class:`repro.compiler.implementations.CompilerConfig.line_macro_policy`).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Optional

from repro.minic.types import Type


@dataclass
class Node:
    line: int
    col: int


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Expr(Node):
    #: Filled in by the checker: the C type of the expression's value.
    ty: Optional[Type] = dc_field(default=None, init=False, repr=False)
    #: Filled in by the checker: True if the expression designates storage.
    is_lvalue: bool = dc_field(default=False, init=False, repr=False)


@dataclass
class IntLit(Expr):
    value: int
    #: Literal suffix hints: "u", "l", "ul" or "".
    suffix: str = ""


@dataclass
class FloatLit(Expr):
    value: float
    is_single: bool = False


@dataclass
class CharLit(Expr):
    value: int


@dataclass
class StrLit(Expr):
    value: str


@dataclass
class NullLit(Expr):
    pass


@dataclass
class LineMacro(Expr):
    """``__LINE__`` — resolved per compiler implementation policy."""

    #: Line of the token itself (set from the token position = self.line) and
    #: line of the enclosing statement, filled during parsing/lowering.
    statement_line: int = 0


@dataclass
class Ident(Expr):
    name: str
    #: Resolved by the checker: a Symbol from repro.minic.checker.
    symbol: object = dc_field(default=None, init=False, repr=False)


@dataclass
class Unary(Expr):
    op: str  # one of - ! ~ * & ++ -- (prefix), p++ p-- (postfix)
    operand: Expr


@dataclass
class Binary(Expr):
    op: str  # + - * / % << >> < <= > >= == != & | ^ && ||
    lhs: Expr
    rhs: Expr


@dataclass
class Assign(Expr):
    op: str  # = += -= *= /= %= <<= >>= &= |= ^=
    target: Expr
    value: Expr


@dataclass
class Conditional(Expr):
    cond: Expr
    then: Expr
    otherwise: Expr


@dataclass
class Call(Expr):
    func: Expr
    args: list[Expr]


@dataclass
class Index(Expr):
    base: Expr
    index: Expr


@dataclass
class Member(Expr):
    base: Expr
    name: str
    arrow: bool  # True for ->, False for .


@dataclass
class Cast(Expr):
    target_type: Type
    operand: Expr


@dataclass
class SizeofType(Expr):
    target_type: Type


@dataclass
class SizeofExpr(Expr):
    operand: Expr


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class VarDecl(Stmt):
    name: str
    var_type: Type
    init: Optional[Expr]
    is_static: bool = False
    #: Resolved by the checker.
    symbol: object = dc_field(default=None, init=False, repr=False)


@dataclass
class Block(Stmt):
    body: list[Stmt]


@dataclass
class If(Stmt):
    cond: Expr
    then: Stmt
    otherwise: Optional[Stmt]


@dataclass
class While(Stmt):
    cond: Expr
    body: Stmt


@dataclass
class DoWhile(Stmt):
    body: Stmt
    cond: Expr


@dataclass
class For(Stmt):
    init: Optional[Stmt]  # VarDecl or ExprStmt
    cond: Optional[Expr]
    step: Optional[Expr]
    body: Stmt


@dataclass
class SwitchCase(Node):
    #: None for the default case.
    value: Optional[int]
    body: list[Stmt]


@dataclass
class Switch(Stmt):
    cond: Expr
    cases: list[SwitchCase]


@dataclass
class Return(Stmt):
    value: Optional[Expr]


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# --------------------------------------------------------------------------
# Top-level declarations
# --------------------------------------------------------------------------


@dataclass
class Param(Node):
    name: str
    param_type: Type
    symbol: object = dc_field(default=None, init=False, repr=False)


@dataclass
class FuncDef(Node):
    name: str
    ret_type: Type
    params: list[Param]
    body: Block
    is_static: bool = False
    varargs: bool = False


@dataclass
class GlobalVar(Node):
    name: str
    var_type: Type
    init: Optional[Expr]
    is_static: bool = False
    symbol: object = dc_field(default=None, init=False, repr=False)


@dataclass
class StructDef(Node):
    name: str
    struct_type: Type  # a StructType with laid-out fields


@dataclass
class Program(Node):
    decls: list[Node]
    filename: str = "<minic>"

    def functions(self) -> list[FuncDef]:
        return [d for d in self.decls if isinstance(d, FuncDef)]

    def function(self, name: str) -> Optional[FuncDef]:
        for d in self.decls:
            if isinstance(d, FuncDef) and d.name == name:
                return d
        return None

    def globals(self) -> list[GlobalVar]:
        return [d for d in self.decls if isinstance(d, GlobalVar)]


def walk_expr(expr: Expr):
    """Yield *expr* and every sub-expression, depth-first."""
    yield expr
    children: list[Expr] = []
    if isinstance(expr, Unary):
        children = [expr.operand]
    elif isinstance(expr, Binary):
        children = [expr.lhs, expr.rhs]
    elif isinstance(expr, Assign):
        children = [expr.target, expr.value]
    elif isinstance(expr, Conditional):
        children = [expr.cond, expr.then, expr.otherwise]
    elif isinstance(expr, Call):
        children = [expr.func, *expr.args]
    elif isinstance(expr, Index):
        children = [expr.base, expr.index]
    elif isinstance(expr, Member):
        children = [expr.base]
    elif isinstance(expr, (Cast, SizeofExpr)):
        children = [expr.operand]
    for child in children:
        yield from walk_expr(child)


def walk_stmts(stmt: Stmt):
    """Yield *stmt* and every nested statement, depth-first."""
    yield stmt
    if isinstance(stmt, Block):
        for s in stmt.body:
            yield from walk_stmts(s)
    elif isinstance(stmt, If):
        yield from walk_stmts(stmt.then)
        if stmt.otherwise is not None:
            yield from walk_stmts(stmt.otherwise)
    elif isinstance(stmt, While):
        yield from walk_stmts(stmt.body)
    elif isinstance(stmt, DoWhile):
        yield from walk_stmts(stmt.body)
    elif isinstance(stmt, For):
        if stmt.init is not None:
            yield from walk_stmts(stmt.init)
        yield from walk_stmts(stmt.body)
    elif isinstance(stmt, Switch):
        for case in stmt.cases:
            for s in case.body:
                yield from walk_stmts(s)


def statement_exprs(stmt: Stmt):
    """Yield the top-level expressions directly contained in *stmt*."""
    if isinstance(stmt, ExprStmt):
        yield stmt.expr
    elif isinstance(stmt, VarDecl) and stmt.init is not None:
        yield stmt.init
    elif isinstance(stmt, If):
        yield stmt.cond
    elif isinstance(stmt, While):
        yield stmt.cond
    elif isinstance(stmt, DoWhile):
        yield stmt.cond
    elif isinstance(stmt, For):
        if stmt.cond is not None:
            yield stmt.cond
        if stmt.step is not None:
            yield stmt.step
    elif isinstance(stmt, Switch):
        yield stmt.cond
    elif isinstance(stmt, Return) and stmt.value is not None:
        yield stmt.value
