"""Built-in function signatures available to every MiniC program.

These model the libc/runtime surface the paper's targets rely on: stdio
output, string/memory helpers, the heap, math routines, and the fuzzer
input channel.  ``read_input``/``input_size``/``input_byte`` stand in for
``read(0, ...)`` / ``stdin``: the harness maps the current fuzz input onto
them, mirroring AFL++'s file/stdin delivery.

``__bugsite(id)`` is evaluation-only ground-truth instrumentation: it
records that a seeded bug site was reached during an execution.  It has no
observable effect on program semantics and is used by the evaluation
drivers to attribute output discrepancies to seeded bugs, standing in for
the manual triage the paper performs (§3.2, §5).
"""

from __future__ import annotations

from repro.minic import types as ty

#: name -> (return type, parameter types, varargs)
BUILTIN_SIGNATURES: dict[str, tuple[ty.Type, tuple[ty.Type, ...], bool]] = {
    # stdio
    "printf": (ty.INT, (ty.PointerType(ty.CHAR),), True),
    "eprintf": (ty.INT, (ty.PointerType(ty.CHAR),), True),
    "putchar": (ty.INT, (ty.INT,), False),
    "puts": (ty.INT, (ty.PointerType(ty.CHAR),), False),
    # process control
    "exit": (ty.VOID, (ty.INT,), False),
    "abort": (ty.VOID, (), False),
    # heap
    "malloc": (ty.PointerType(ty.CHAR), (ty.LONG,), False),
    "calloc": (ty.PointerType(ty.CHAR), (ty.LONG, ty.LONG), False),
    "free": (ty.VOID, (ty.PointerType(ty.CHAR),), False),
    "realloc": (ty.PointerType(ty.CHAR), (ty.PointerType(ty.CHAR), ty.LONG), False),
    # string/memory
    "memset": (ty.PointerType(ty.CHAR), (ty.PointerType(ty.CHAR), ty.INT, ty.LONG), False),
    "memcpy": (
        ty.PointerType(ty.CHAR),
        (ty.PointerType(ty.CHAR), ty.PointerType(ty.CHAR), ty.LONG),
        False,
    ),
    "memmove": (
        ty.PointerType(ty.CHAR),
        (ty.PointerType(ty.CHAR), ty.PointerType(ty.CHAR), ty.LONG),
        False,
    ),
    "memcmp": (ty.INT, (ty.PointerType(ty.CHAR), ty.PointerType(ty.CHAR), ty.LONG), False),
    "strlen": (ty.LONG, (ty.PointerType(ty.CHAR),), False),
    "strcpy": (ty.PointerType(ty.CHAR), (ty.PointerType(ty.CHAR), ty.PointerType(ty.CHAR)), False),
    "strncpy": (
        ty.PointerType(ty.CHAR),
        (ty.PointerType(ty.CHAR), ty.PointerType(ty.CHAR), ty.LONG),
        False,
    ),
    "strcat": (ty.PointerType(ty.CHAR), (ty.PointerType(ty.CHAR), ty.PointerType(ty.CHAR)), False),
    "strcmp": (ty.INT, (ty.PointerType(ty.CHAR), ty.PointerType(ty.CHAR)), False),
    "strncmp": (ty.INT, (ty.PointerType(ty.CHAR), ty.PointerType(ty.CHAR), ty.LONG), False),
    "atoi": (ty.INT, (ty.PointerType(ty.CHAR),), False),
    # math
    "abs": (ty.INT, (ty.INT,), False),
    "labs": (ty.LONG, (ty.LONG,), False),
    "pow": (ty.DOUBLE, (ty.DOUBLE, ty.DOUBLE), False),
    "exp2": (ty.DOUBLE, (ty.DOUBLE,), False),
    "sqrt": (ty.DOUBLE, (ty.DOUBLE,), False),
    "fabs": (ty.DOUBLE, (ty.DOUBLE,), False),
    # fuzz input channel
    "read_input": (ty.LONG, (ty.PointerType(ty.CHAR), ty.LONG), False),
    "input_size": (ty.LONG, (), False),
    "input_byte": (ty.INT, (ty.LONG,), False),
    # evaluation-only ground truth marker (no observable semantics)
    "__bugsite": (ty.VOID, (ty.INT,), False),
}


def is_builtin(name: str) -> bool:
    return name in BUILTIN_SIGNATURES
