"""Semantic checker for MiniC.

Resolves identifiers to symbols, computes and annotates expression types,
and rejects programs that are not valid MiniC.  The checker is deliberately
permissive where C is permissive (implicit scalar conversions, loose pointer
casts) because the evaluation corpus contains code that is *wrong* but must
still compile — undefined behavior is a run-time property here, never a
compile-time error.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import CheckError
from repro.minic import ast
from repro.minic import types as ty
from repro.minic.builtins import BUILTIN_SIGNATURES

_symbol_ids = itertools.count(1)


@dataclass
class Symbol:
    """A resolved program entity (variable, parameter, or function)."""

    name: str
    type: ty.Type
    kind: str  # "global" | "local" | "param" | "func" | "builtin"
    is_static: bool = False
    uid: int = field(default_factory=lambda: next(_symbol_ids))
    #: For statics-in-functions: the mangled global name.
    mangled: str = ""

    def __hash__(self) -> int:
        return self.uid

    def __eq__(self, other: object) -> bool:
        return self is other


class _Scope:
    def __init__(self, parent: "_Scope | None" = None) -> None:
        self.parent = parent
        self.names: dict[str, Symbol] = {}

    def define(self, symbol: Symbol, line: int, col: int) -> None:
        if symbol.name in self.names:
            raise CheckError(f"redefinition of {symbol.name!r}", line, col)
        self.names[symbol.name] = symbol

    def lookup(self, name: str) -> Symbol | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class Checker:
    """Single-use semantic checker for one program."""

    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.globals = _Scope()
        self._current_func: ast.FuncDef | None = None
        self._static_counter = 0

    # -- entry point -------------------------------------------------------

    def run(self) -> ast.Program:
        for decl in self.program.decls:
            if isinstance(decl, ast.FuncDef):
                func_type = ty.FunctionType(
                    decl.ret_type,
                    tuple(p.param_type for p in decl.params),
                    varargs=decl.varargs,
                )
                self.globals.define(
                    Symbol(decl.name, func_type, "func", is_static=decl.is_static),
                    decl.line,
                    decl.col,
                )
            elif isinstance(decl, ast.GlobalVar):
                symbol = Symbol(decl.name, decl.var_type, "global", is_static=decl.is_static)
                self.globals.define(symbol, decl.line, decl.col)
                decl.symbol = symbol
        for decl in self.program.decls:
            if isinstance(decl, ast.GlobalVar) and decl.init is not None:
                self._check_expr(decl.init, self.globals)
            if isinstance(decl, ast.FuncDef):
                self._check_function(decl)
        return self.program

    # -- declarations -----------------------------------------------------

    def _check_function(self, func: ast.FuncDef) -> None:
        self._current_func = func
        scope = _Scope(self.globals)
        for param in func.params:
            symbol = Symbol(param.name, ty.decay(param.param_type), "param")
            param.symbol = symbol
            if param.name:
                scope.define(symbol, param.line, param.col)
        self._check_block(func.body, scope)
        self._current_func = None

    def _check_block(self, block: ast.Block, parent: _Scope) -> None:
        scope = _Scope(parent)
        for stmt in block.body:
            self._check_stmt(stmt, scope)

    # -- statements ----------------------------------------------------------

    def _check_stmt(self, stmt: ast.Stmt, scope: _Scope) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt, scope)
        elif isinstance(stmt, ast.VarDecl):
            self._check_var_decl(stmt, scope)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.If):
            self._check_expr(stmt.cond, scope)
            self._check_stmt(stmt.then, scope)
            if stmt.otherwise is not None:
                self._check_stmt(stmt.otherwise, scope)
        elif isinstance(stmt, ast.While):
            self._check_expr(stmt.cond, scope)
            self._check_stmt(stmt.body, scope)
        elif isinstance(stmt, ast.DoWhile):
            self._check_stmt(stmt.body, scope)
            self._check_expr(stmt.cond, scope)
        elif isinstance(stmt, ast.For):
            inner = _Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner)
            if stmt.cond is not None:
                self._check_expr(stmt.cond, inner)
            if stmt.step is not None:
                self._check_expr(stmt.step, inner)
            self._check_stmt(stmt.body, inner)
        elif isinstance(stmt, ast.Switch):
            cond_type = self._check_expr(stmt.cond, scope)
            if not cond_type.is_integer:
                raise CheckError("switch condition must be an integer", stmt.line, stmt.col)
            values = [case.value for case in stmt.cases if case.value is not None]
            if len(values) != len(set(values)):
                raise CheckError("duplicate case value", stmt.line, stmt.col)
            inner = _Scope(scope)
            for case in stmt.cases:
                for case_stmt in case.body:
                    self._check_stmt(case_stmt, inner)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._check_expr(stmt.value, scope)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            pass
        else:  # pragma: no cover - parser produces no other nodes
            raise CheckError(f"unknown statement {type(stmt).__name__}", stmt.line, stmt.col)

    def _check_var_decl(self, stmt: ast.VarDecl, scope: _Scope) -> None:
        if stmt.var_type.is_void:
            raise CheckError("variable of void type", stmt.line, stmt.col)
        kind = "local"
        mangled = ""
        if stmt.is_static:
            kind = "global"
            assert self._current_func is not None
            self._static_counter += 1
            mangled = f"{self._current_func.name}.{stmt.name}.{self._static_counter}"
        symbol = Symbol(stmt.name, stmt.var_type, kind, is_static=stmt.is_static, mangled=mangled)
        stmt.symbol = symbol
        if stmt.init is not None:
            self._check_expr(stmt.init, scope)
        scope.define(symbol, stmt.line, stmt.col)

    # -- expressions -------------------------------------------------------------

    def _check_expr(self, expr: ast.Expr, scope: _Scope) -> ty.Type:
        result = self._compute_type(expr, scope)
        expr.ty = result
        return result

    def _compute_type(self, expr: ast.Expr, scope: _Scope) -> ty.Type:
        if isinstance(expr, ast.IntLit):
            return self._int_literal_type(expr)
        if isinstance(expr, ast.FloatLit):
            return ty.FLOAT if expr.is_single else ty.DOUBLE
        if isinstance(expr, ast.CharLit):
            return ty.INT
        if isinstance(expr, ast.StrLit):
            return ty.PointerType(ty.CHAR)
        if isinstance(expr, ast.NullLit):
            return ty.PointerType(ty.VOID)
        if isinstance(expr, ast.LineMacro):
            return ty.INT
        if isinstance(expr, ast.Ident):
            return self._check_ident(expr, scope)
        if isinstance(expr, ast.Unary):
            return self._check_unary(expr, scope)
        if isinstance(expr, ast.Binary):
            return self._check_binary(expr, scope)
        if isinstance(expr, ast.Assign):
            return self._check_assign(expr, scope)
        if isinstance(expr, ast.Conditional):
            self._check_expr(expr.cond, scope)
            then_type = self._check_expr(expr.then, scope)
            else_type = self._check_expr(expr.otherwise, scope)
            if then_type.is_arithmetic and else_type.is_arithmetic:
                return ty.usual_arithmetic_conversion(then_type, else_type)
            return ty.decay(then_type)
        if isinstance(expr, ast.Call):
            return self._check_call(expr, scope)
        if isinstance(expr, ast.Index):
            return self._check_index(expr, scope)
        if isinstance(expr, ast.Member):
            return self._check_member(expr, scope)
        if isinstance(expr, ast.Cast):
            self._check_expr(expr.operand, scope)
            return expr.target_type
        if isinstance(expr, ast.SizeofType):
            return ty.ULONG
        if isinstance(expr, ast.SizeofExpr):
            self._check_expr(expr.operand, scope)
            return ty.ULONG
        raise CheckError(f"unknown expression {type(expr).__name__}", expr.line, expr.col)

    def _int_literal_type(self, expr: ast.IntLit) -> ty.Type:
        suffix = expr.suffix
        unsigned = "u" in suffix
        is_long = "l" in suffix
        candidates: list[ty.IntType]
        if unsigned and is_long:
            candidates = [ty.ULONG]
        elif unsigned:
            candidates = [ty.UINT, ty.ULONG]
        elif is_long:
            candidates = [ty.LONG]
        else:
            candidates = [ty.INT, ty.LONG, ty.ULONG]
        for candidate in candidates:
            if candidate.contains(expr.value):
                return candidate
        return ty.ULONG

    def _check_ident(self, expr: ast.Ident, scope: _Scope) -> ty.Type:
        symbol = scope.lookup(expr.name)
        if symbol is None:
            if expr.name in BUILTIN_SIGNATURES:
                ret, params, varargs = BUILTIN_SIGNATURES[expr.name]
                symbol = Symbol(expr.name, ty.FunctionType(ret, params, varargs), "builtin")
            else:
                raise CheckError(f"undefined identifier {expr.name!r}", expr.line, expr.col)
        expr.symbol = symbol
        expr.is_lvalue = symbol.kind in ("global", "local", "param")
        return symbol.type

    def _check_unary(self, expr: ast.Unary, scope: _Scope) -> ty.Type:
        operand_type = self._check_expr(expr.operand, scope)
        op = expr.op
        if op == "*":
            decayed = ty.decay(operand_type)
            if not isinstance(decayed, ty.PointerType):
                raise CheckError("dereference of non-pointer", expr.line, expr.col)
            expr.is_lvalue = True
            return decayed.pointee
        if op == "&":
            if not expr.operand.is_lvalue:
                raise CheckError("address-of non-lvalue", expr.line, expr.col)
            return ty.PointerType(operand_type)
        if op == "!":
            return ty.INT
        if op in ("-", "~"):
            if not operand_type.is_arithmetic:
                raise CheckError(f"unary {op} on non-arithmetic type", expr.line, expr.col)
            return ty.integer_promote(operand_type)
        if op in ("++", "--", "p++", "p--"):
            if not expr.operand.is_lvalue:
                raise CheckError(f"{op} on non-lvalue", expr.line, expr.col)
            return ty.decay(operand_type)
        raise CheckError(f"unknown unary operator {op!r}", expr.line, expr.col)

    def _check_binary(self, expr: ast.Binary, scope: _Scope) -> ty.Type:
        lhs_type = ty.decay(self._check_expr(expr.lhs, scope))
        rhs_type = ty.decay(self._check_expr(expr.rhs, scope))
        op = expr.op
        if op == ",":
            return rhs_type
        if op in ("&&", "||"):
            return ty.INT
        if op in ("==", "!=", "<", "<=", ">", ">="):
            return ty.INT
        if op in ("<<", ">>"):
            if not lhs_type.is_integer:
                raise CheckError("shift of non-integer", expr.line, expr.col)
            return ty.integer_promote(lhs_type)
        if op in ("+", "-"):
            lhs_ptr = isinstance(lhs_type, ty.PointerType)
            rhs_ptr = isinstance(rhs_type, ty.PointerType)
            if lhs_ptr and rhs_ptr:
                if op == "-":
                    return ty.LONG
                raise CheckError("pointer + pointer", expr.line, expr.col)
            if lhs_ptr:
                return lhs_type
            if rhs_ptr:
                if op == "-":
                    raise CheckError("integer - pointer", expr.line, expr.col)
                return rhs_type
        if not (lhs_type.is_arithmetic and rhs_type.is_arithmetic):
            raise CheckError(f"invalid operands to {op!r}", expr.line, expr.col)
        if op in ("%", "&", "|", "^") and (lhs_type.is_float or rhs_type.is_float):
            raise CheckError(f"floating operand to {op!r}", expr.line, expr.col)
        return ty.usual_arithmetic_conversion(lhs_type, rhs_type)

    def _check_assign(self, expr: ast.Assign, scope: _Scope) -> ty.Type:
        target_type = self._check_expr(expr.target, scope)
        self._check_expr(expr.value, scope)
        if not expr.target.is_lvalue:
            raise CheckError("assignment to non-lvalue", expr.line, expr.col)
        if isinstance(target_type, ty.ArrayType):
            raise CheckError("assignment to array", expr.line, expr.col)
        return target_type

    def _check_call(self, expr: ast.Call, scope: _Scope) -> ty.Type:
        if not isinstance(expr.func, ast.Ident):
            raise CheckError("only direct calls are supported", expr.line, expr.col)
        name = expr.func.name
        if name == "__array_init":
            for arg in expr.args:
                self._check_expr(arg, scope)
            return ty.VOID
        func_type = self._check_ident(expr.func, scope)
        if not isinstance(func_type, ty.FunctionType):
            raise CheckError(f"{name!r} is not a function", expr.line, expr.col)
        for arg in expr.args:
            self._check_expr(arg, scope)
        required = len(func_type.params)
        given = len(expr.args)
        # Mirror C's lenient treatment of calls through mismatched
        # prototypes: too *few* arguments is CWE-685 territory and must
        # compile (the call site invokes UB at run time); extra arguments
        # beyond a non-varargs prototype likewise.
        if given < required and name in BUILTIN_SIGNATURES:
            raise CheckError(f"too few arguments to builtin {name!r}", expr.line, expr.col)
        return func_type.ret

    def _check_index(self, expr: ast.Index, scope: _Scope) -> ty.Type:
        base_type = ty.decay(self._check_expr(expr.base, scope))
        self._check_expr(expr.index, scope)
        if not isinstance(base_type, ty.PointerType):
            raise CheckError("subscript of non-pointer", expr.line, expr.col)
        expr.is_lvalue = True
        return base_type.pointee

    def _check_member(self, expr: ast.Member, scope: _Scope) -> ty.Type:
        base_type = self._check_expr(expr.base, scope)
        if expr.arrow:
            decayed = ty.decay(base_type)
            if not isinstance(decayed, ty.PointerType):
                raise CheckError("-> on non-pointer", expr.line, expr.col)
            base_type = decayed.pointee
        if not isinstance(base_type, ty.StructType):
            raise CheckError("member access on non-struct", expr.line, expr.col)
        struct_field = base_type.field_named(expr.name)
        if struct_field is None:
            raise CheckError(
                f"no field {expr.name!r} in struct {base_type.name}", expr.line, expr.col
            )
        expr.is_lvalue = True
        return struct_field.type


def check(program: ast.Program) -> ast.Program:
    """Resolve and type-check *program* in place, returning it."""
    return Checker(program).run()
