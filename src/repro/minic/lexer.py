"""Tokenizer for MiniC source text."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import LexError

KEYWORDS = {
    "void",
    "char",
    "short",
    "int",
    "long",
    "float",
    "double",
    "signed",
    "unsigned",
    "struct",
    "static",
    "const",
    "if",
    "else",
    "while",
    "for",
    "do",
    "switch",
    "case",
    "default",
    "enum",
    "return",
    "break",
    "continue",
    "sizeof",
    "NULL",
    "__LINE__",
}

# Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<=",
    ">>=",
    "...",
    "->",
    "++",
    "--",
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "&",
    "|",
    "^",
    "~",
    "?",
    ":",
    ";",
    ",",
    ".",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
]

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    "\\": "\\",
    "'": "'",
    '"': '"',
    "a": "\a",
    "b": "\b",
    "f": "\f",
    "v": "\v",
}


class TokenKind(enum.Enum):
    """Lexical category of a token."""

    KEYWORD = "keyword"
    IDENT = "ident"
    INT = "int"
    FLOAT = "float"
    CHAR = "char"
    STRING = "string"
    OP = "op"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position."""

    kind: TokenKind
    text: str
    line: int
    col: int
    value: object = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.col})"


def tokenize(source: str, filename: str = "<minic>") -> list[Token]:
    """Convert MiniC *source* into a token list terminated by an EOF token.

    Comments (``//`` and ``/* */``) are skipped.  Adjacent string literals
    are *not* concatenated here; the parser handles that.
    """
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def error(message: str) -> LexError:
        return LexError(message, line, col)

    while i < n:
        ch = source[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise error("unterminated block comment")
            skipped = source[i : end + 2]
            newlines = skipped.count("\n")
            if newlines:
                line += newlines
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = end + 2
            continue
        if ch in "0123456789" or (ch == "." and i + 1 < n and source[i + 1] in "0123456789"):
            token, i, col = _lex_number(source, i, line, col)
            tokens.append(token)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, line, col))
            col += len(text)
            continue
        if ch == "'":
            token, i, col = _lex_char(source, i, line, col)
            tokens.append(token)
            continue
        if ch == '"':
            token, i, col = _lex_string(source, i, line, col)
            tokens.append(token)
            continue
        op = _match_operator(source, i)
        if op is not None:
            tokens.append(Token(TokenKind.OP, op, line, col))
            i += len(op)
            col += len(op)
            continue
        raise error(f"unexpected character {ch!r}")

    tokens.append(Token(TokenKind.EOF, "", line, col))
    return tokens


def _match_operator(source: str, i: int) -> str | None:
    for op in _OPERATORS:
        if source.startswith(op, i):
            return op
    return None


def _lex_number(source: str, i: int, line: int, col: int) -> tuple[Token, int, int]:
    start = i
    n = len(source)
    is_float = False
    if source.startswith(("0x", "0X"), i):
        i += 2
        while i < n and (source[i] in "0123456789abcdefABCDEF"):
            i += 1
        digits = source[start:i]
        if len(digits) == 2:
            raise LexError("hex literal with no digits", line, col)
        value: object = int(digits, 16)
    else:
        while i < n and source[i] in "0123456789":
            i += 1
        if i < n and source[i] == "." and (i + 1 >= n or source[i + 1] != "."):
            is_float = True
            i += 1
            while i < n and source[i] in "0123456789":
                i += 1
        if i < n and source[i] in "eE":
            peek = i + 1
            if peek < n and source[peek] in "+-":
                peek += 1
            if peek < n and source[peek] in "0123456789":
                is_float = True
                i = peek
                while i < n and source[i] in "0123456789":
                    i += 1
        digits = source[start:i]
        value = float(digits) if is_float else int(digits, 10)
    suffix_start = i
    while i < n and source[i] in "uUlLfF":
        i += 1
    suffix = source[suffix_start:i].lower()
    text = source[start:i]
    if is_float or (suffix in ("f",) and "." in digits):
        kind = TokenKind.FLOAT
    else:
        kind = TokenKind.INT
    token = Token(kind, text, line, col, value=value)
    return token, i, col + (i - start)


def _decode_escape(source: str, i: int, line: int, col: int) -> tuple[str, int]:
    """Decode one character at *i* (which may start an escape sequence)."""
    ch = source[i]
    if ch != "\\":
        return ch, i + 1
    if i + 1 >= len(source):
        raise LexError("dangling escape", line, col)
    esc = source[i + 1]
    if esc == "x":
        j = i + 2
        hex_digits = ""
        while j < len(source) and source[j] in "0123456789abcdefABCDEF":
            hex_digits += source[j]
            j += 1
        if not hex_digits:
            raise LexError("\\x with no hex digits", line, col)
        return chr(int(hex_digits, 16) & 0xFF), j
    if esc in _ESCAPES:
        return _ESCAPES[esc], i + 2
    raise LexError(f"unknown escape \\{esc}", line, col)


def _lex_char(source: str, i: int, line: int, col: int) -> tuple[Token, int, int]:
    start = i
    i += 1  # opening quote
    if i >= len(source):
        raise LexError("unterminated character literal", line, col)
    ch, i = _decode_escape(source, i, line, col)
    if i >= len(source) or source[i] != "'":
        raise LexError("unterminated character literal", line, col)
    i += 1
    text = source[start:i]
    token = Token(TokenKind.CHAR, text, line, col, value=ord(ch))
    return token, i, col + (i - start)


def _lex_string(source: str, i: int, line: int, col: int) -> tuple[Token, int, int]:
    start = i
    i += 1  # opening quote
    chars: list[str] = []
    while True:
        if i >= len(source) or source[i] == "\n":
            raise LexError("unterminated string literal", line, col)
        if source[i] == '"':
            i += 1
            break
        ch, i = _decode_escape(source, i, line, col)
        chars.append(ch)
    text = source[start:i]
    token = Token(TokenKind.STRING, text, line, col, value="".join(chars))
    return token, i, col + (i - start)
