"""Recursive-descent parser for MiniC."""

from __future__ import annotations

from repro.errors import ParseError
from repro.minic import ast
from repro.minic.lexer import Token, TokenKind, tokenize
from repro.minic import types as ty

# Binary operator precedence (C-like).  Higher binds tighter.
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>=", "&=", "|=", "^="}

_TYPE_KEYWORDS = {
    "void",
    "char",
    "short",
    "int",
    "long",
    "float",
    "double",
    "signed",
    "unsigned",
    "struct",
    "enum",
    "const",
}


class Parser:
    """Parses a token stream into a :class:`repro.minic.ast.Program`."""

    def __init__(self, tokens: list[Token], filename: str = "<minic>") -> None:
        self._tokens = tokens
        self._pos = 0
        self._filename = filename
        self._struct_types: dict[str, ty.StructType] = {}
        #: Enumerator constants, substituted as int literals at parse time
        #: (C enums are plain int constants).
        self._enum_constants: dict[str, int] = {}
        self._enum_names: set[str] = set()
        #: Line of the first token of the statement currently being parsed;
        #: consumed by ``__LINE__`` policy handling.
        self._statement_line = 0

    # -- token helpers ----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _check(self, text: str) -> bool:
        token = self._peek()
        return token.kind in (TokenKind.OP, TokenKind.KEYWORD) and token.text == text

    def _accept(self, text: str) -> Token | None:
        if self._check(text):
            return self._advance()
        return None

    def _expect(self, text: str) -> Token:
        token = self._peek()
        if not self._check(text):
            raise ParseError(
                f"expected {text!r}, found {token.text or '<eof>'!r}",
                token.line,
                token.col,
            )
        return self._advance()

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(message, token.line, token.col)

    # -- program structure -------------------------------------------------

    def parse_program(self) -> ast.Program:
        first = self._peek()
        decls: list[ast.Node] = []
        while self._peek().kind is not TokenKind.EOF:
            decls.extend(self._parse_top_level())
        return ast.Program(first.line, first.col, decls, filename=self._filename)

    def _parse_top_level(self) -> list[ast.Node]:
        token = self._peek()
        if self._check("struct") and self._peek(2).text == "{":
            return [self._parse_struct_def()]
        if self._check("enum") and self._peek(2).text == "{":
            self._parse_enum_def()
            return []
        is_static = self._accept("static") is not None
        base = self._parse_type_base()
        # A bare "struct Foo;" forward declaration.
        if self._accept(";"):
            return []
        decls: list[ast.Node] = []
        while True:
            var_type, name_token = self._parse_declarator(base)
            if self._check("(") and not decls:
                return [self._parse_function(var_type, name_token, is_static)]
            init = None
            if self._accept("="):
                init = self._parse_initializer()
            decls.append(
                ast.GlobalVar(
                    name_token.line,
                    name_token.col,
                    name=name_token.text,
                    var_type=var_type,
                    init=init,
                    is_static=is_static,
                )
            )
            if not self._accept(","):
                break
        self._expect(";")
        if not decls:
            raise ParseError("empty declaration", token.line, token.col)
        return decls

    def _parse_struct_def(self) -> ast.StructDef:
        kw = self._expect("struct")
        name_token = self._advance()
        if name_token.kind is not TokenKind.IDENT:
            raise ParseError("expected struct name", name_token.line, name_token.col)
        self._expect("{")
        # Register an incomplete placeholder so self-referential members
        # (``struct Node *next``) resolve; pointers to incomplete structs
        # are valid C.
        self._struct_types[name_token.text] = ty.StructType(name_token.text)
        members: list[tuple[str, ty.Type]] = []
        while not self._check("}"):
            base = self._parse_type_base()
            while True:
                member_type, member_token = self._parse_declarator(base)
                members.append((member_token.text, member_type))
                if not self._accept(","):
                    break
            self._expect(";")
        self._expect("}")
        self._expect(";")
        struct_type = ty.layout_struct(name_token.text, members)
        self._struct_types[name_token.text] = struct_type
        return ast.StructDef(kw.line, kw.col, name=name_token.text, struct_type=struct_type)

    def _parse_enum_def(self) -> None:
        self._expect("enum")
        name_token = self._advance()
        if name_token.kind is not TokenKind.IDENT:
            raise ParseError("expected enum name", name_token.line, name_token.col)
        self._enum_names.add(name_token.text)
        self._expect("{")
        next_value = 0
        while not self._check("}"):
            member = self._advance()
            if member.kind is not TokenKind.IDENT:
                raise ParseError("expected enumerator name", member.line, member.col)
            if self._accept("="):
                value_token = self._peek()
                negative = self._accept("-") is not None
                value_token = self._advance()
                if value_token.kind is not TokenKind.INT:
                    raise ParseError(
                        "enumerator value must be an integer literal",
                        value_token.line,
                        value_token.col,
                    )
                next_value = -int(value_token.value) if negative else int(value_token.value)
            self._enum_constants[member.text] = next_value
            next_value += 1
            if not self._accept(","):
                break
        self._expect("}")
        self._expect(";")

    def _parse_function(
        self, ret_type: ty.Type, name_token: Token, is_static: bool
    ) -> ast.FuncDef:
        self._expect("(")
        params: list[ast.Param] = []
        varargs = False
        if not self._check(")"):
            if self._check("void") and self._peek(1).text == ")":
                self._advance()
            else:
                while True:
                    if self._accept("..."):
                        varargs = True
                        break
                    base = self._parse_type_base()
                    param_type, param_token = self._parse_declarator(base, allow_abstract=True)
                    param_type = ty.decay(param_type)
                    params.append(
                        ast.Param(
                            param_token.line,
                            param_token.col,
                            name=param_token.text,
                            param_type=param_type,
                        )
                    )
                    if not self._accept(","):
                        break
        self._expect(")")
        body = self._parse_block()
        return ast.FuncDef(
            name_token.line,
            name_token.col,
            name=name_token.text,
            ret_type=ret_type,
            params=params,
            body=body,
            is_static=is_static,
            varargs=varargs,
        )

    # -- types --------------------------------------------------------------

    def _at_type(self) -> bool:
        token = self._peek()
        return token.kind is TokenKind.KEYWORD and token.text in _TYPE_KEYWORDS

    def _parse_type_base(self) -> ty.Type:
        """Parse a type specifier (without declarator suffixes)."""
        while self._accept("const"):
            pass
        if self._check("enum"):
            self._advance()
            name_token = self._advance()
            if name_token.kind is not TokenKind.IDENT or name_token.text not in self._enum_names:
                raise ParseError(
                    f"unknown enum {name_token.text!r}", name_token.line, name_token.col
                )
            while self._accept("const"):
                pass
            return ty.INT
        if self._accept("struct"):
            name_token = self._advance()
            if name_token.kind is not TokenKind.IDENT:
                raise ParseError("expected struct name", name_token.line, name_token.col)
            struct_type = self._struct_types.get(name_token.text)
            if struct_type is None:
                # Forward reference: empty struct refined on use is not
                # supported; treat as error to keep semantics simple.
                raise ParseError(
                    f"unknown struct {name_token.text!r}", name_token.line, name_token.col
                )
            result: ty.Type = struct_type
        else:
            words: list[str] = []
            while self._peek().kind is TokenKind.KEYWORD and self._peek().text in (
                "void",
                "char",
                "short",
                "int",
                "long",
                "float",
                "double",
                "signed",
                "unsigned",
                "const",
            ):
                word = self._advance().text
                if word != "const":
                    words.append(word)
            if not words:
                raise self._error("expected type")
            result = _resolve_scalar_type(words, self._peek())
        while self._accept("const"):
            pass
        return result

    def _parse_declarator(
        self, base: ty.Type, allow_abstract: bool = False
    ) -> tuple[ty.Type, Token]:
        """Parse ``* ... name [N]...`` returning (type, name token)."""
        result = base
        while self._accept("*"):
            while self._accept("const"):
                pass
            result = ty.PointerType(result)
        name_token = self._peek()
        if name_token.kind is TokenKind.IDENT:
            self._advance()
        elif allow_abstract:
            name_token = Token(TokenKind.IDENT, "", name_token.line, name_token.col)
        else:
            raise ParseError(
                f"expected identifier, found {name_token.text!r}",
                name_token.line,
                name_token.col,
            )
        # Array suffixes bind outside-in: int a[2][3] is array(2, array(3, int)).
        dims: list[int] = []
        while self._accept("["):
            size_token = self._peek()
            if size_token.kind is not TokenKind.INT:
                raise ParseError("expected array size literal", size_token.line, size_token.col)
            self._advance()
            dims.append(int(size_token.value))
            self._expect("]")
        for dim in reversed(dims):
            result = ty.ArrayType(result, dim)
        return result, name_token

    def _parse_type_name(self) -> ty.Type:
        """Parse an abstract type (for casts and sizeof)."""
        base = self._parse_type_base()
        result = base
        while self._accept("*"):
            while self._accept("const"):
                pass
            result = ty.PointerType(result)
        return result

    # -- statements ----------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        open_token = self._expect("{")
        body: list[ast.Stmt] = []
        while not self._check("}"):
            body.append(self._parse_statement())
        self._expect("}")
        return ast.Block(open_token.line, open_token.col, body=body)

    def _parse_statement(self) -> ast.Stmt:
        token = self._peek()
        previous_statement_line = self._statement_line
        self._statement_line = token.line
        try:
            return self._parse_statement_inner(token)
        finally:
            self._statement_line = previous_statement_line

    def _parse_statement_inner(self, token: Token) -> ast.Stmt:
        if self._check("{"):
            return self._parse_block()
        if self._check("if"):
            return self._parse_if()
        if self._check("while"):
            return self._parse_while()
        if self._check("do"):
            return self._parse_do_while()
        if self._check("for"):
            return self._parse_for()
        if self._check("switch"):
            return self._parse_switch()
        if self._accept("return"):
            value = None if self._check(";") else self._parse_expression()
            self._expect(";")
            return ast.Return(token.line, token.col, value=value)
        if self._accept("break"):
            self._expect(";")
            return ast.Break(token.line, token.col)
        if self._accept("continue"):
            self._expect(";")
            return ast.Continue(token.line, token.col)
        if self._check("static") or self._at_type():
            return self._parse_local_decl()
        if self._accept(";"):
            return ast.Block(token.line, token.col, body=[])
        expr = self._parse_expression()
        self._expect(";")
        return ast.ExprStmt(token.line, token.col, expr=expr)

    def _parse_local_decl(self) -> ast.Stmt:
        token = self._peek()
        is_static = self._accept("static") is not None
        base = self._parse_type_base()
        decls: list[ast.Stmt] = []
        while True:
            var_type, name_token = self._parse_declarator(base)
            init = None
            if self._accept("="):
                init = self._parse_initializer()
            decls.append(
                ast.VarDecl(
                    name_token.line,
                    name_token.col,
                    name=name_token.text,
                    var_type=var_type,
                    init=init,
                    is_static=is_static,
                )
            )
            if not self._accept(","):
                break
        self._expect(";")
        if len(decls) == 1:
            return decls[0]
        return ast.Block(token.line, token.col, body=decls)

    def _parse_initializer(self) -> ast.Expr:
        # Brace initializers are supported only as string-like byte lists for
        # char arrays and flat integer lists; richer forms are not needed by
        # the generators.
        if self._check("{"):
            open_token = self._expect("{")
            elements: list[ast.Expr] = []
            while not self._check("}"):
                elements.append(self._parse_assignment())
                if not self._accept(","):
                    break
            self._expect("}")
            call = ast.Call(
                open_token.line,
                open_token.col,
                func=ast.Ident(open_token.line, open_token.col, name="__array_init"),
                args=elements,
            )
            return call
        return self._parse_assignment()

    def _parse_if(self) -> ast.If:
        kw = self._expect("if")
        self._expect("(")
        cond = self._parse_expression()
        self._expect(")")
        then = self._parse_statement()
        otherwise = None
        if self._accept("else"):
            otherwise = self._parse_statement()
        return ast.If(kw.line, kw.col, cond=cond, then=then, otherwise=otherwise)

    def _parse_while(self) -> ast.While:
        kw = self._expect("while")
        self._expect("(")
        cond = self._parse_expression()
        self._expect(")")
        body = self._parse_statement()
        return ast.While(kw.line, kw.col, cond=cond, body=body)

    def _parse_do_while(self) -> ast.DoWhile:
        kw = self._expect("do")
        body = self._parse_statement()
        self._expect("while")
        self._expect("(")
        cond = self._parse_expression()
        self._expect(")")
        self._expect(";")
        return ast.DoWhile(kw.line, kw.col, body=body, cond=cond)

    def _parse_for(self) -> ast.For:
        kw = self._expect("for")
        self._expect("(")
        init: ast.Stmt | None = None
        if not self._check(";"):
            if self._at_type() or self._check("static"):
                init = self._parse_local_decl()
            else:
                expr = self._parse_expression()
                self._expect(";")
                init = ast.ExprStmt(kw.line, kw.col, expr=expr)
        else:
            self._expect(";")
        cond = None if self._check(";") else self._parse_expression()
        self._expect(";")
        step = None if self._check(")") else self._parse_expression()
        self._expect(")")
        body = self._parse_statement()
        return ast.For(kw.line, kw.col, init=init, cond=cond, step=step, body=body)

    def _parse_switch(self) -> ast.Switch:
        kw = self._expect("switch")
        self._expect("(")
        cond = self._parse_expression()
        self._expect(")")
        self._expect("{")
        cases: list[ast.SwitchCase] = []
        seen_default = False
        while not self._check("}"):
            case_token = self._peek()
            if self._accept("case"):
                negative = self._accept("-") is not None
                value_token = self._advance()
                if value_token.kind is TokenKind.INT or value_token.kind is TokenKind.CHAR:
                    value = int(value_token.value)
                elif (
                    value_token.kind is TokenKind.IDENT
                    and value_token.text in self._enum_constants
                ):
                    value = self._enum_constants[value_token.text]
                else:
                    raise ParseError(
                        "case label must be an integer constant",
                        value_token.line,
                        value_token.col,
                    )
                if negative:
                    value = -value
            elif self._accept("default"):
                if seen_default:
                    raise ParseError("duplicate default label", case_token.line, case_token.col)
                seen_default = True
                value = None
            else:
                raise ParseError(
                    "expected 'case' or 'default'", case_token.line, case_token.col
                )
            self._expect(":")
            body: list[ast.Stmt] = []
            while not (self._check("case") or self._check("default") or self._check("}")):
                body.append(self._parse_statement())
            cases.append(ast.SwitchCase(case_token.line, case_token.col, value=value, body=body))
        self._expect("}")
        return ast.Switch(kw.line, kw.col, cond=cond, cases=cases)

    # -- expressions -----------------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        expr = self._parse_assignment()
        while self._accept(","):
            rhs = self._parse_assignment()
            expr = ast.Binary(expr.line, expr.col, op=",", lhs=expr, rhs=rhs)
        return expr

    def _parse_assignment(self) -> ast.Expr:
        lhs = self._parse_conditional()
        token = self._peek()
        if token.kind is TokenKind.OP and token.text in _ASSIGN_OPS:
            self._advance()
            rhs = self._parse_assignment()
            return ast.Assign(token.line, token.col, op=token.text, target=lhs, value=rhs)
        return lhs

    def _parse_conditional(self) -> ast.Expr:
        cond = self._parse_binary(1)
        if self._accept("?"):
            then = self._parse_expression()
            self._expect(":")
            otherwise = self._parse_conditional()
            return ast.Conditional(cond.line, cond.col, cond=cond, then=then, otherwise=otherwise)
        return cond

    def _parse_binary(self, min_precedence: int) -> ast.Expr:
        lhs = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind is not TokenKind.OP:
                return lhs
            precedence = _BINARY_PRECEDENCE.get(token.text)
            if precedence is None or precedence < min_precedence:
                return lhs
            self._advance()
            rhs = self._parse_binary(precedence + 1)
            lhs = ast.Binary(token.line, token.col, op=token.text, lhs=lhs, rhs=rhs)

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.OP and token.text in ("-", "+", "!", "~", "*", "&"):
            self._advance()
            operand = self._parse_unary()
            if token.text == "+":
                return operand
            return ast.Unary(token.line, token.col, op=token.text, operand=operand)
        if token.kind is TokenKind.OP and token.text in ("++", "--"):
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(token.line, token.col, op=token.text, operand=operand)
        if self._check("sizeof"):
            self._advance()
            if self._check("(") and self._is_type_ahead(1):
                self._expect("(")
                target = self._parse_type_name()
                self._expect(")")
                return ast.SizeofType(token.line, token.col, target_type=target)
            operand = self._parse_unary()
            return ast.SizeofExpr(token.line, token.col, operand=operand)
        if self._check("(") and self._is_type_ahead(1):
            self._expect("(")
            target = self._parse_type_name()
            self._expect(")")
            operand = self._parse_unary()
            return ast.Cast(token.line, token.col, target_type=target, operand=operand)
        return self._parse_postfix()

    def _is_type_ahead(self, offset: int) -> bool:
        token = self._peek(offset)
        return token.kind is TokenKind.KEYWORD and token.text in _TYPE_KEYWORDS

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if self._accept("("):
                args: list[ast.Expr] = []
                if not self._check(")"):
                    while True:
                        args.append(self._parse_assignment())
                        if not self._accept(","):
                            break
                self._expect(")")
                expr = ast.Call(expr.line, expr.col, func=expr, args=args)
            elif self._accept("["):
                index = self._parse_expression()
                self._expect("]")
                expr = ast.Index(expr.line, expr.col, base=expr, index=index)
            elif self._accept("."):
                name_token = self._advance()
                expr = ast.Member(token.line, token.col, base=expr, name=name_token.text, arrow=False)
            elif self._accept("->"):
                name_token = self._advance()
                expr = ast.Member(token.line, token.col, base=expr, name=name_token.text, arrow=True)
            elif token.kind is TokenKind.OP and token.text in ("++", "--"):
                self._advance()
                expr = ast.Unary(token.line, token.col, op=f"p{token.text}", operand=expr)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.INT:
            self._advance()
            suffix = "".join(c for c in token.text.lower() if c in "ul")
            return ast.IntLit(token.line, token.col, value=int(token.value), suffix=suffix)
        if token.kind is TokenKind.FLOAT:
            self._advance()
            return ast.FloatLit(
                token.line, token.col, value=float(token.value), is_single="f" in token.text.lower()
            )
        if token.kind is TokenKind.CHAR:
            self._advance()
            return ast.CharLit(token.line, token.col, value=int(token.value))
        if token.kind is TokenKind.STRING:
            self._advance()
            value = str(token.value)
            while self._peek().kind is TokenKind.STRING:
                value += str(self._advance().value)
            return ast.StrLit(token.line, token.col, value=value)
        if self._check("NULL"):
            self._advance()
            return ast.NullLit(token.line, token.col)
        if self._check("__LINE__"):
            self._advance()
            node = ast.LineMacro(token.line, token.col)
            node.statement_line = self._statement_line or token.line
            return node
        if token.kind is TokenKind.IDENT:
            self._advance()
            if token.text in self._enum_constants:
                return ast.IntLit(token.line, token.col, value=self._enum_constants[token.text])
            return ast.Ident(token.line, token.col, name=token.text)
        if self._accept("("):
            expr = self._parse_expression()
            self._expect(")")
            return expr
        raise self._error(f"unexpected token {token.text or '<eof>'!r}")


def _resolve_scalar_type(words: list[str], token: Token) -> ty.Type:
    counts = {w: words.count(w) for w in set(words)}
    unsigned = counts.pop("unsigned", 0) > 0
    signed = counts.pop("signed", 0) > 0
    if unsigned and signed:
        raise ParseError("both signed and unsigned", token.line, token.col)
    key = tuple(sorted(w for w in words if w not in ("signed", "unsigned")))
    mapping: dict[tuple[str, ...], ty.Type] = {
        (): ty.INT,
        ("void",): ty.VOID,
        ("char",): ty.CHAR,
        ("short",): ty.SHORT,
        ("int", "short"): ty.SHORT,
        ("int",): ty.INT,
        ("long",): ty.LONG,
        ("int", "long"): ty.LONG,
        ("long", "long"): ty.LONG,
        ("int", "long", "long"): ty.LONG,
        ("float",): ty.FLOAT,
        ("double",): ty.DOUBLE,
        ("double", "long"): ty.DOUBLE,
    }
    base = mapping.get(key)
    if base is None:
        raise ParseError(f"unsupported type {' '.join(words)!r}", token.line, token.col)
    if unsigned:
        if not isinstance(base, ty.IntType):
            raise ParseError("unsigned non-integer type", token.line, token.col)
        return ty.IntType(base.bits, signed=False)
    return base


def parse(source: str, filename: str = "<minic>") -> ast.Program:
    """Parse MiniC *source* into an (unchecked) AST."""
    tokens = tokenize(source, filename=filename)
    return Parser(tokens, filename=filename).parse_program()
