"""MiniC AST pretty-printer: the inverse of :func:`repro.minic.parse`.

:func:`to_source` renders a (checked or unchecked) AST back into source
text that re-parses to a semantically identical program.  It is the
substrate of the generative pipeline (:mod:`repro.generative`): the
program generator emits ASTs, the delta-debugging reducer transforms
ASTs, and both rely on this module to turn the result into the source
form every other layer (compiler, checker, corpus bank) consumes.

Two properties matter and are pinned by ``tests/test_minic_printer.py``:

* **round-trip**: ``load(to_source(load(src)))`` succeeds and the
  reprinted program's observable behavior matches the original on every
  implementation;
* **idempotence**: printing is a fixpoint — reprinting a reprinted
  program yields byte-identical text — so reduced repros bank
  deterministically.

Expressions are parenthesized from the parser's precedence table, so
printed trees never re-associate; brace initializers round-trip through
the parser's ``__array_init`` call encoding.
"""

from __future__ import annotations

from repro.minic import ast
from repro.minic import types as ty

#: Sentinel callee the parser uses to encode brace initializer lists.
ARRAY_INIT = "__array_init"

_INDENT = "    "

#: Characters escaped inside string literals (subset the lexer accepts).
_STR_ESCAPES = {
    "\\": "\\\\",
    '"': '\\"',
    "\n": "\\n",
    "\t": "\\t",
    "\r": "\\r",
    "\0": "\\0",
}


def _escape_string(value: str) -> str:
    out = []
    for ch in value:
        if ch in _STR_ESCAPES:
            out.append(_STR_ESCAPES[ch])
        elif 32 <= ord(ch) < 127:
            out.append(ch)
        else:
            out.append(f"\\x{ord(ch) & 0xFF:02x}")
    return "".join(out)


def type_text(t: ty.Type) -> str:
    """The type-specifier spelling of *t* (no declarator suffixes)."""
    if isinstance(t, ty.PointerType):
        return f"{type_text(t.pointee)}*"
    if isinstance(t, ty.ArrayType):
        # Only reachable for casts/sizeof, where arrays decay anyway.
        return f"{type_text(t.element)}*"
    if isinstance(t, ty.StructType):
        return f"struct {t.name}"
    return str(t)


def _declarator(t: ty.Type, name: str) -> str:
    """C declarator form of ``t name`` (pointers and array suffixes)."""
    dims: list[int] = []
    while isinstance(t, ty.ArrayType):
        dims.append(t.length)
        t = t.element
    stars = ""
    while isinstance(t, ty.PointerType):
        stars += "*"
        t = t.pointee
    base = f"struct {t.name}" if isinstance(t, ty.StructType) else str(t)
    suffix = "".join(f"[{dim}]" for dim in dims)
    return f"{base} {stars}{name}{suffix}"


class Printer:
    """Single-use source renderer for one program."""

    def __init__(self) -> None:
        self._lines: list[str] = []
        self._depth = 0

    # ------------------------------------------------------------- structure

    def render(self, program: ast.Program) -> str:
        for decl in program.decls:
            self._top_level(decl)
        return "\n".join(self._lines) + "\n"

    def _emit(self, text: str) -> None:
        self._lines.append(_INDENT * self._depth + text)

    def _top_level(self, decl: ast.Node) -> None:
        if isinstance(decl, ast.StructDef):
            self._emit(f"struct {decl.name} {{")
            self._depth += 1
            for field in decl.struct_type.fields:
                self._emit(f"{_declarator(field.type, field.name)};")
            self._depth -= 1
            self._emit("};")
        elif isinstance(decl, ast.GlobalVar):
            prefix = "static " if decl.is_static else ""
            init = f" = {self.expr(decl.init)}" if decl.init is not None else ""
            self._emit(f"{prefix}{_declarator(decl.var_type, decl.name)}{init};")
        elif isinstance(decl, ast.FuncDef):
            self._function(decl)
        else:  # pragma: no cover - no other top-level nodes exist
            raise TypeError(f"cannot print top-level {type(decl).__name__}")

    def _function(self, func: ast.FuncDef) -> None:
        if func.params:
            params = ", ".join(
                _declarator(p.param_type, p.name) for p in func.params
            )
            if func.varargs:
                params += ", ..."
        else:
            params = "..." if func.varargs else "void"
        prefix = "static " if func.is_static else ""
        self._emit(f"{prefix}{_declarator(func.ret_type, func.name)}({params}) {{")
        self._depth += 1
        for stmt in func.body.body:
            self.stmt(stmt)
        self._depth -= 1
        self._emit("}")

    # ------------------------------------------------------------ statements

    def stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._emit("{")
            self._depth += 1
            for inner in stmt.body:
                self.stmt(inner)
            self._depth -= 1
            self._emit("}")
        elif isinstance(stmt, ast.ExprStmt):
            self._emit(f"{self.expr(stmt.expr)};")
        elif isinstance(stmt, ast.VarDecl):
            prefix = "static " if stmt.is_static else ""
            init = f" = {self.expr(stmt.init)}" if stmt.init is not None else ""
            self._emit(f"{prefix}{_declarator(stmt.var_type, stmt.name)}{init};")
        elif isinstance(stmt, ast.If):
            self._emit(f"if ({self.expr(stmt.cond)}) {{")
            self._branch_body(stmt.then)
            if stmt.otherwise is not None:
                self._emit("} else {")
                self._branch_body(stmt.otherwise)
            self._emit("}")
        elif isinstance(stmt, ast.While):
            self._emit(f"while ({self.expr(stmt.cond)}) {{")
            self._branch_body(stmt.body)
            self._emit("}")
        elif isinstance(stmt, ast.DoWhile):
            self._emit("do {")
            self._branch_body(stmt.body)
            self._emit(f"}} while ({self.expr(stmt.cond)});")
        elif isinstance(stmt, ast.For):
            init = ""
            if isinstance(stmt.init, ast.VarDecl):
                prefix = "static " if stmt.init.is_static else ""
                value = (
                    f" = {self.expr(stmt.init.init)}"
                    if stmt.init.init is not None
                    else ""
                )
                init = f"{prefix}{_declarator(stmt.init.var_type, stmt.init.name)}{value}"
            elif isinstance(stmt.init, ast.ExprStmt):
                init = self.expr(stmt.init.expr)
            cond = self.expr(stmt.cond) if stmt.cond is not None else ""
            step = self.expr(stmt.step) if stmt.step is not None else ""
            self._emit(f"for ({init}; {cond}; {step}) {{")
            self._branch_body(stmt.body)
            self._emit("}")
        elif isinstance(stmt, ast.Switch):
            self._emit(f"switch ({self.expr(stmt.cond)}) {{")
            for case in stmt.cases:
                label = "default" if case.value is None else f"case {case.value}"
                self._emit(f"{label}:")
                self._depth += 1
                for inner in case.body:
                    self.stmt(inner)
                self._depth -= 1
            self._emit("}")
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                self._emit("return;")
            else:
                self._emit(f"return {self.expr(stmt.value)};")
        elif isinstance(stmt, ast.Break):
            self._emit("break;")
        elif isinstance(stmt, ast.Continue):
            self._emit("continue;")
        else:  # pragma: no cover - exhaustive over ast statement nodes
            raise TypeError(f"cannot print statement {type(stmt).__name__}")

    def _branch_body(self, body: ast.Stmt) -> None:
        """Print a control-flow arm always brace-wrapped (one level in)."""
        self._depth += 1
        if isinstance(body, ast.Block):
            for inner in body.body:
                self.stmt(inner)
        else:
            self.stmt(body)
        self._depth -= 1

    # ----------------------------------------------------------- expressions

    def expr(self, expr: ast.Expr) -> str:
        """Render one expression, fully parenthesizing compound forms."""
        if isinstance(expr, ast.IntLit):
            return f"{expr.value}{expr.suffix.upper()}"
        if isinstance(expr, ast.FloatLit):
            text = repr(float(expr.value))
            if "e" not in text and "." not in text and "inf" not in text:
                text += ".0"
            return f"{text}f" if expr.is_single else text
        if isinstance(expr, ast.CharLit):
            ch = chr(expr.value & 0xFF)
            if ch in _STR_ESCAPES:
                return f"'{_STR_ESCAPES[ch]}'"
            if 32 <= (expr.value & 0xFF) < 127 and ch != "'":
                return f"'{ch}'"
            return str(expr.value)
        if isinstance(expr, ast.StrLit):
            return f'"{_escape_string(expr.value)}"'
        if isinstance(expr, ast.NullLit):
            return "NULL"
        if isinstance(expr, ast.LineMacro):
            return "__LINE__"
        if isinstance(expr, ast.Ident):
            return expr.name
        if isinstance(expr, ast.Unary):
            if expr.op in ("p++", "p--"):
                return f"({self.expr(expr.operand)}){expr.op[1:]}"
            return f"{expr.op}({self.expr(expr.operand)})"
        if isinstance(expr, ast.Binary):
            if expr.op == ",":
                return f"({self.expr(expr.lhs)}, {self.expr(expr.rhs)})"
            return f"({self.expr(expr.lhs)} {expr.op} {self.expr(expr.rhs)})"
        if isinstance(expr, ast.Assign):
            return f"({self.expr(expr.target)} {expr.op} ({self.expr(expr.value)}))"
        if isinstance(expr, ast.Conditional):
            return (
                f"({self.expr(expr.cond)} ? {self.expr(expr.then)}"
                f" : {self.expr(expr.otherwise)})"
            )
        if isinstance(expr, ast.Call):
            if isinstance(expr.func, ast.Ident) and expr.func.name == ARRAY_INIT:
                return "{" + ", ".join(self.expr(a) for a in expr.args) + "}"
            args = ", ".join(self.expr(a) for a in expr.args)
            func = (
                expr.func.name
                if isinstance(expr.func, ast.Ident)
                else f"({self.expr(expr.func)})"
            )
            return f"{func}({args})"
        if isinstance(expr, ast.Index):
            base = (
                expr.base.name
                if isinstance(expr.base, ast.Ident)
                else f"({self.expr(expr.base)})"
            )
            return f"{base}[{self.expr(expr.index)}]"
        if isinstance(expr, ast.Member):
            op = "->" if expr.arrow else "."
            return f"({self.expr(expr.base)}){op}{expr.name}"
        if isinstance(expr, ast.Cast):
            return f"({type_text(expr.target_type)})({self.expr(expr.operand)})"
        if isinstance(expr, ast.SizeofType):
            return f"sizeof({type_text(expr.target_type)})"
        if isinstance(expr, ast.SizeofExpr):
            return f"sizeof({self.expr(expr.operand)})"
        raise TypeError(  # pragma: no cover - exhaustive over ast expr nodes
            f"cannot print expression {type(expr).__name__}"
        )


def to_source(program: ast.Program) -> str:
    """Render *program* as parseable MiniC source text."""
    return Printer().render(program)


def count_nodes(program: ast.Program) -> int:
    """Total AST size: declarations + statements + expressions.

    The reducer's progress metric — reduction ratios in banked metadata
    and the ≤25 % fixture bound are measured in these units.
    """
    total = 0
    for decl in program.decls:
        total += 1
        if isinstance(decl, ast.GlobalVar) and decl.init is not None:
            total += sum(1 for _ in ast.walk_expr(decl.init))
        if isinstance(decl, ast.FuncDef):
            total += len(decl.params)
            for stmt in ast.walk_stmts(decl.body):
                total += 1
                for top in ast.statement_exprs(stmt):
                    total += sum(1 for _ in ast.walk_expr(top))
    return total
