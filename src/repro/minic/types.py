"""MiniC type system.

Models the C scalar types with the LP64 sizes the paper's targets use
(``char`` 1, ``short`` 2, ``int`` 4, ``long`` 8, pointers 8 bytes), plus
pointers, fixed-size arrays, structs, and function types.  Struct layout is
the conventional aligned layout and is identical across all simulated
compiler implementations — cross-implementation divergence comes from the
layout of *distinct objects* (stack slots, globals, heap blocks), never from
intra-struct layout, matching real x86-64 ABIs.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class Type:
    """Base class for MiniC types."""

    def size(self) -> int:
        raise NotImplementedError

    def align(self) -> int:
        return self.size()

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_arithmetic(self) -> bool:
        return self.is_integer or self.is_float

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_struct(self) -> bool:
        return isinstance(self, StructType)


@dataclass(frozen=True)
class VoidType(Type):
    def size(self) -> int:
        return 0

    def align(self) -> int:
        return 1

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class IntType(Type):
    """Fixed-width two's-complement integer type."""

    bits: int
    signed: bool

    def size(self) -> int:
        return self.bits // 8

    def __str__(self) -> str:
        names = {8: "char", 16: "short", 32: "int", 64: "long"}
        base = names[self.bits]
        return base if self.signed else f"unsigned {base}"

    @property
    def min_value(self) -> int:
        return -(1 << (self.bits - 1)) if self.signed else 0

    @property
    def max_value(self) -> int:
        if self.signed:
            return (1 << (self.bits - 1)) - 1
        return (1 << self.bits) - 1

    def wrap(self, value: int) -> int:
        """Reduce *value* into this type's representable range (wraparound)."""
        mask = (1 << self.bits) - 1
        value &= mask
        if self.signed and value > self.max_value:
            value -= 1 << self.bits
        return value

    def contains(self, value: int) -> bool:
        return self.min_value <= value <= self.max_value


@dataclass(frozen=True)
class FloatType(Type):
    """IEEE-754 binary floating type (32- or 64-bit)."""

    bits: int

    def size(self) -> int:
        return self.bits // 8

    def __str__(self) -> str:
        return "float" if self.bits == 32 else "double"


@dataclass(frozen=True)
class PointerType(Type):
    pointee: Type

    def size(self) -> int:
        return 8

    def __str__(self) -> str:
        return f"{self.pointee}*"


@dataclass(frozen=True)
class ArrayType(Type):
    element: Type
    length: int

    def size(self) -> int:
        return self.element.size() * self.length

    def align(self) -> int:
        return self.element.align()

    def __str__(self) -> str:
        return f"{self.element}[{self.length}]"


@dataclass(frozen=True)
class StructField:
    name: str
    type: Type
    offset: int


@dataclass(frozen=True)
class StructType(Type):
    """A named struct with conventionally aligned field layout."""

    name: str
    fields: tuple[StructField, ...] = field(default=())

    def size(self) -> int:
        if not self.fields:
            return 0
        end = max(f.offset + f.type.size() for f in self.fields)
        alignment = self.align()
        return (end + alignment - 1) // alignment * alignment

    def align(self) -> int:
        if not self.fields:
            return 1
        return max(f.type.align() for f in self.fields)

    def field_named(self, name: str) -> StructField | None:
        for f in self.fields:
            if f.name == name:
                return f
        return None

    def __str__(self) -> str:
        return f"struct {self.name}"


@dataclass(frozen=True)
class FunctionType(Type):
    ret: Type
    params: tuple[Type, ...]
    varargs: bool = False

    def size(self) -> int:
        return 8  # function designators decay to pointers

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        if self.varargs:
            params = f"{params}, ..." if params else "..."
        return f"{self.ret}({params})"


def layout_struct(name: str, members: list[tuple[str, Type]]) -> StructType:
    """Compute aligned offsets for *members* and build a :class:`StructType`."""
    fields: list[StructField] = []
    offset = 0
    for member_name, member_type in members:
        alignment = member_type.align()
        offset = (offset + alignment - 1) // alignment * alignment
        fields.append(StructField(member_name, member_type, offset))
        offset += member_type.size()
    return StructType(name, tuple(fields))


# Canonical scalar instances.
VOID = VoidType()
CHAR = IntType(8, signed=True)
UCHAR = IntType(8, signed=False)
SHORT = IntType(16, signed=True)
USHORT = IntType(16, signed=False)
INT = IntType(32, signed=True)
UINT = IntType(32, signed=False)
LONG = IntType(64, signed=True)
ULONG = IntType(64, signed=False)
FLOAT = FloatType(32)
DOUBLE = FloatType(64)
BOOL = INT  # MiniC comparisons yield int, as in C.


def integer_promote(ty: Type) -> Type:
    """C integer promotion: types narrower than int promote to int."""
    if isinstance(ty, IntType) and ty.bits < 32:
        return INT
    return ty


def usual_arithmetic_conversion(a: Type, b: Type) -> Type:
    """The C 'usual arithmetic conversions' for a binary operator."""
    if isinstance(a, FloatType) or isinstance(b, FloatType):
        bits = max(
            a.bits if isinstance(a, FloatType) else 0,
            b.bits if isinstance(b, FloatType) else 0,
            32,
        )
        return FloatType(max(bits, 32)) if bits <= 32 else DOUBLE
    a = integer_promote(a)
    b = integer_promote(b)
    assert isinstance(a, IntType) and isinstance(b, IntType)
    if a == b:
        return a
    if a.signed == b.signed:
        return a if a.bits >= b.bits else b
    signed, unsigned = (a, b) if a.signed else (b, a)
    if unsigned.bits >= signed.bits:
        return unsigned
    # The signed type can represent all unsigned values (e.g. long vs uint).
    return signed


def decay(ty: Type) -> Type:
    """Array-to-pointer decay used in expression contexts."""
    if isinstance(ty, ArrayType):
        return PointerType(ty.element)
    if isinstance(ty, FunctionType):
        return PointerType(ty)
    return ty
