"""Parallel differential execution: worker pool, compile cache, metrics.

The serial oracle pays ``k`` binary executions per input plus ``k``
compilations per program — the wall-clock hot path of every campaign
(§3.1/Algorithm 1 run the oracle on *every* generated input).  This
package amortizes both costs:

* :class:`~repro.parallel.engine.ParallelEngine` — a persistent
  ``multiprocessing`` worker pool; each worker holds warm
  :class:`~repro.vm.forkserver.ForkServer` instances per
  ``(program, implementation)`` and a local compile cache.
* :class:`~repro.parallel.cache.CompileCache` — content-addressed
  ``(source fingerprint, implementation fingerprint)`` → binary cache
  with LRU eviction and hit/miss accounting.
* :class:`~repro.parallel.stats.EngineStats` — structured execution
  metrics: per-implementation exec counts, cache hit rate, timeout-retry
  counts, and batch latency percentiles.

Users normally reach all of this through the ``workers=N`` knob on
:class:`repro.core.compdiff.CompDiff`,
:class:`repro.fuzzing.FuzzerOptions`, or
:func:`repro.evaluation.evaluate_juliet`; ``workers=1`` (the default)
preserves the fully deterministic single-process path.  See
``docs/PARALLELISM.md`` for the architecture.
"""

from repro.parallel.cache import (
    CacheStats,
    CompileCache,
    cache_key,
    config_fingerprint,
    program_fingerprint,
)
from repro.parallel.engine import (
    BatchJob,
    ParallelEngine,
    ProgramPayload,
    ServerGroup,
)
from repro.parallel.faults import FaultPlan
from repro.parallel.stats import EngineStats
from repro.parallel.supervisor import (
    QuarantineEntry,
    SupervisedPool,
    SupervisorPolicy,
)

__all__ = [
    "BatchJob",
    "CacheStats",
    "CompileCache",
    "EngineStats",
    "FaultPlan",
    "ParallelEngine",
    "ProgramPayload",
    "QuarantineEntry",
    "ServerGroup",
    "SupervisedPool",
    "SupervisorPolicy",
    "cache_key",
    "config_fingerprint",
    "program_fingerprint",
]
