"""Content-addressed compile cache for the differential engine.

Compiling one program for all ten implementations costs several
milliseconds — more than executing most inputs — and campaigns, subset
ablations, and repeated ``check()`` calls recompile identical programs
over and over.  The cache keys compiled binaries by
``(program fingerprint, implementation fingerprint, build options)`` so
any engine (serial or parallel, parent or worker process) can reuse an
artifact the moment the same source shows up again.

Fingerprints are *structural*: two :func:`repro.minic.load` calls on the
same source produce distinct AST objects (and distinct checker-assigned
symbol uids), yet must map to the same cache key.  We therefore pickle
the AST through a pickler that replaces :class:`~repro.minic.checker.Symbol`
uids — the only load-order-dependent state the checker attaches — with a
stable structural reduction.
"""

from __future__ import annotations

import hashlib
import io
import pickle
from collections import OrderedDict
from dataclasses import dataclass, fields
from typing import Optional

from repro.compiler.binary import CompiledBinary, compile_program
from repro.compiler.implementations import CompilerConfig
from repro.compiler.passes.manager import pipeline_digest
from repro.minic import ast as minic_ast
from repro.minic.checker import Symbol

#: Default number of cached binaries before LRU eviction kicks in.
DEFAULT_CACHE_ENTRIES = 1024


def _symbol_identity(name: str, kind: str, is_static: bool, mangled: str, type_) -> tuple:
    """Reconstruction target for fingerprint pickles (never actually called
    to rebuild a Symbol — only its pickled reference matters)."""
    return (name, kind, is_static, mangled, type_)


class _FingerprintPickler(pickle.Pickler):
    """Pickler whose output is stable across re-loads of the same source.

    ``Symbol.uid`` values come from a process-global counter, so a plain
    ``pickle.dumps`` of a checked AST differs between two ``load()`` calls
    on identical source.  Everything else the parser/checker attach is a
    pure function of the source text.
    """

    def reducer_override(self, obj):  # type: ignore[override]
        if isinstance(obj, Symbol):
            return (
                _symbol_identity,
                (obj.name, obj.kind, obj.is_static, obj.mangled, obj.type),
            )
        return NotImplemented


def program_fingerprint(program: minic_ast.Program | str) -> str:
    """Content hash of a program (AST or raw source), stable across re-loads."""
    if isinstance(program, str):
        return "src:" + hashlib.sha256(program.encode("utf-8")).hexdigest()
    buffer = io.BytesIO()
    _FingerprintPickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(program)
    return "ast:" + hashlib.sha256(buffer.getvalue()).hexdigest()


def config_fingerprint(config: CompilerConfig) -> str:
    """Content hash of a compiler implementation's full knob vector *and*
    the pipeline it selects.

    The name alone is not trusted: two configs may share a name but differ
    in a knob (tests do this), and a knob change must miss the cache.  The
    ``extra`` escape hatch is excluded, matching the config's own
    equality semantics.

    The :func:`~repro.compiler.passes.manager.pipeline_digest` component
    makes cached artifacts invalidate when the *pipeline* changes even if
    the knob vector does not — bumping a pass's ``version``, reordering a
    pipeline, or changing a fixpoint bound all produce a new digest.
    """
    parts = []
    for field in fields(config):
        if field.name == "extra":
            continue
        parts.append(f"{field.name}={getattr(config, field.name)!r}")
    parts.append(f"pipeline={pipeline_digest(config)}")
    return hashlib.sha256(";".join(parts).encode("utf-8")).hexdigest()


def cache_key(
    program: minic_ast.Program | str,
    config: CompilerConfig,
    name: str = "",
    instrument_coverage: bool = False,
    sanitizer: str | None = None,
    program_fp: str | None = None,
) -> tuple:
    """The full content-addressed key for one compiled artifact."""
    fp = program_fp if program_fp is not None else program_fingerprint(program)
    return (fp, config_fingerprint(config), name, instrument_coverage, sanitizer)


@dataclass
class CacheStats:
    """Hit/miss/eviction accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class CompileCache:
    """LRU cache of :class:`CompiledBinary` artifacts.

    Cached binaries are shared objects: the VM never mutates a module, and
    every :class:`~repro.vm.forkserver.ForkServer` run builds its machine
    state from scratch, so handing the same binary to many servers (or the
    same server many inputs) cannot leak execution state between runs —
    ``tests/test_compile_cache.py`` pins this down.
    """

    def __init__(self, max_entries: int = DEFAULT_CACHE_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError("CompileCache needs max_entries >= 1")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: OrderedDict[tuple, CompiledBinary] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    # ------------------------------------------------------------- raw access

    def lookup(self, key: tuple) -> Optional[CompiledBinary]:
        """Return the cached binary for *key*, counting a hit or miss."""
        binary = self._entries.get(key)
        if binary is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return binary

    def store(self, key: tuple, binary: CompiledBinary) -> None:
        """Insert *binary*, evicting least-recently-used entries at the cap."""
        self._entries[key] = binary
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    # ------------------------------------------------------------ compilation

    def compile(
        self,
        program: minic_ast.Program,
        config: CompilerConfig,
        name: str = "",
        instrument_coverage: bool = False,
        sanitizer: str | None = None,
        program_fp: str | None = None,
    ) -> CompiledBinary:
        """``compile_program`` with content-addressed memoization."""
        key = cache_key(
            program,
            config,
            name=name,
            instrument_coverage=instrument_coverage,
            sanitizer=sanitizer,
            program_fp=program_fp,
        )
        binary = self.lookup(key)
        if binary is None:
            binary = compile_program(
                program,
                config,
                name=name,
                instrument_coverage=instrument_coverage,
                sanitizer=sanitizer,
            )
            self.store(key, binary)
        return binary
