"""Batched multi-process differential execution.

The serial :class:`~repro.core.compdiff.CompDiff` runs the ``k``
per-implementation executions of every input back to back in one
process.  :class:`ParallelEngine` fans that work out across a persistent
``multiprocessing`` worker pool:

* each worker process keeps **warm state** — a content-addressed
  :class:`~repro.parallel.cache.CompileCache` plus a registry of live
  :class:`~repro.vm.forkserver.ForkServer` instances per
  ``(program, implementation)`` — so a program is compiled at most once
  per worker and re-executions pay only for the VM run;
* the parent scatters ``(job, implementation-chunk)`` tasks, gathers raw
  :class:`~repro.vm.execution.ExecutionResult` objects, and performs the
  RQ6 partial-timeout retry rounds with exactly the serial engine's fuel
  schedule, so verdicts are byte-identical to ``workers=1``;
* all observation normalization and checksumming stays in the parent
  (in :class:`~repro.core.compdiff.CompDiff`), which is what guarantees
  result assembly order — and therefore ``DiffResult`` contents — cannot
  depend on worker scheduling.

Workers are spawned lazily on the first batch and live until
``close()``; the ``fork`` start method is preferred (cheap, inherits the
imported modules) with ``spawn`` as the portable fallback.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from repro.compiler.implementations import CompilerConfig
from repro.minic import ast as minic_ast
from repro.minic import load
from repro.parallel.cache import CompileCache
from repro.parallel.stats import EngineStats
from repro.vm import ForkServer
from repro.vm.execution import ExecutionResult

#: Hard cap on pool size; beyond this the scatter overhead dominates.
MAX_WORKERS = 32
#: Programs (and their fork servers) kept warm per worker before LRU drop.
WORKER_PROGRAM_CAP = 64


@dataclass(frozen=True)
class ProgramPayload:
    """A program in transit to a worker: content key plus serialized form.

    ``kind`` is ``"src"`` (raw MiniC source, parsed worker-side with the
    same :func:`repro.minic.load` the serial path uses) or ``"ast"``
    (pickled checked AST).
    """

    key: str
    kind: str
    blob: bytes
    name: str = ""

    @staticmethod
    def from_program(
        program: minic_ast.Program | str, name: str = "", key: str | None = None
    ) -> "ProgramPayload":
        from repro.parallel.cache import program_fingerprint

        fp = key if key is not None else program_fingerprint(program)
        if isinstance(program, str):
            return ProgramPayload(key=fp, kind="src", blob=program.encode("utf-8"), name=name)
        return ProgramPayload(key=fp, kind="ast", blob=pickle.dumps(program), name=name)


class ServerGroup(dict):
    """``CompDiff.build()`` result in parallel mode: a plain name→ForkServer
    mapping (fully usable serially) plus the payload the engine needs to
    route executions of this program to the worker pool."""

    def __init__(self, servers: dict[str, ForkServer], payload: ProgramPayload) -> None:
        super().__init__(servers)
        self.payload = payload


@dataclass(frozen=True)
class _Task:
    """One scatter unit: run *runs* under *configs* for one program."""

    job_idx: int
    payload: ProgramPayload
    configs: tuple[CompilerConfig, ...]
    base_fuel: int
    #: (input_idx, input_bytes, explicit fuel or None for the base fuel).
    runs: tuple[tuple[int, bytes, Optional[int]], ...]


@dataclass
class _Reply:
    """One task's gathered results plus worker-side accounting."""

    job_idx: int
    #: (input_idx, implementation name, result) triples.
    results: list[tuple[int, str, ExecutionResult]]
    cache_hits: int
    cache_misses: int
    cache_evictions: int
    seconds: float


# ---------------------------------------------------------------------------
# Worker side.  Module-level state + functions so both fork and spawn start
# methods can resolve them by reference.
# ---------------------------------------------------------------------------

_WORKER: dict = {}


def _worker_init(cache_entries: int) -> None:
    _WORKER["cache"] = CompileCache(max_entries=cache_entries)
    _WORKER["programs"] = OrderedDict()  # key -> checked Program AST
    _WORKER["servers"] = OrderedDict()  # (key, impl name) -> ForkServer


def _worker_program(payload: ProgramPayload) -> minic_ast.Program:
    programs: OrderedDict = _WORKER["programs"]
    program = programs.get(payload.key)
    if program is None:
        if payload.kind == "src":
            program = load(payload.blob.decode("utf-8"))
        else:
            program = pickle.loads(payload.blob)
        programs[payload.key] = program
        while len(programs) > WORKER_PROGRAM_CAP:
            evicted_key, _ = programs.popitem(last=False)
            servers: OrderedDict = _WORKER["servers"]
            for server_key in [k for k in servers if k[0] == evicted_key]:
                del servers[server_key]
    else:
        programs.move_to_end(payload.key)
    return program


def _worker_server(
    payload: ProgramPayload, config: CompilerConfig, base_fuel: int
) -> ForkServer:
    servers: OrderedDict = _WORKER["servers"]
    server_key = (payload.key, config.name)
    server = servers.get(server_key)
    if server is None:
        cache: CompileCache = _WORKER["cache"]
        program = _worker_program(payload)
        binary = cache.compile(program, config, name=payload.name, program_fp=payload.key)
        server = ForkServer(binary, fuel=base_fuel)
        servers[server_key] = server
    else:
        servers.move_to_end(server_key)
    return server


def _worker_run(task: _Task) -> _Reply:
    """Service one scatter unit inside a worker process."""
    started = time.perf_counter()
    cache: CompileCache = _WORKER["cache"]
    hits0, misses0 = cache.stats.hits, cache.stats.misses
    evictions0 = cache.stats.evictions
    results: list[tuple[int, str, ExecutionResult]] = []
    for config in task.configs:
        server = _worker_server(task.payload, config, task.base_fuel)
        for input_idx, input_bytes, fuel in task.runs:
            results.append((input_idx, config.name, server.run(input_bytes, fuel=fuel)))
    return _Reply(
        job_idx=task.job_idx,
        results=results,
        cache_hits=cache.stats.hits - hits0,
        cache_misses=cache.stats.misses - misses0,
        cache_evictions=cache.stats.evictions - evictions0,
        seconds=time.perf_counter() - started,
    )


# ---------------------------------------------------------------------------
# Parent side.
# ---------------------------------------------------------------------------


@dataclass
class BatchJob:
    """One program plus the inputs to run through the oracle."""

    program: minic_ast.Program | str
    inputs: list[bytes]
    name: str = ""
    payload: ProgramPayload = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.payload = ProgramPayload.from_program(self.program, name=self.name)


class ParallelEngine:
    """Persistent worker pool executing differential batches.

    The engine returns *raw* per-implementation results; turning them
    into :class:`~repro.core.compdiff.DiffResult` objects (normalization,
    checksumming, grouping) is the caller's job so the serial and
    parallel paths share that code verbatim.
    """

    def __init__(
        self,
        implementations: tuple[CompilerConfig, ...],
        fuel: int,
        workers: int,
        stats: EngineStats | None = None,
        cache_entries: int = 256,
    ) -> None:
        if workers < 2:
            raise ValueError("ParallelEngine needs workers >= 2; use CompDiff serially")
        self.implementations = tuple(implementations)
        self.fuel = fuel
        self.workers = min(int(workers), MAX_WORKERS)
        self.stats = stats if stats is not None else EngineStats()
        self.cache_entries = cache_entries
        self._pool = None

    # ------------------------------------------------------------- lifecycle

    def _ensure_pool(self):
        if self._pool is None:
            methods = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in methods else "spawn"
            context = multiprocessing.get_context(method)
            self._pool = context.Pool(
                processes=self.workers,
                initializer=_worker_init,
                initargs=(self.cache_entries,),
            )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------- batching

    def run_batch(self, jobs: list[BatchJob]) -> list[list[dict[str, ExecutionResult]]]:
        """Execute every job's inputs on every implementation.

        Returns, per job, per input, an implementation-name→result map
        ordered exactly like ``self.implementations`` — the same order
        the serial engine produces — with RQ6 timeout retries applied.
        """
        if not jobs:
            return []
        tasks = self._scatter_tasks(jobs)
        gathered: list[list[dict[str, ExecutionResult]]] = [
            [dict() for _ in job.inputs] for job in jobs
        ]
        self._dispatch(tasks, gathered)
        self._retry_partial_timeouts(jobs, gathered)
        ordered = [
            [self._in_implementation_order(row) for row in job_rows]
            for job_rows in gathered
        ]
        for job in jobs:
            self.stats.record_input(len(job.inputs))
        return ordered

    def run_one(self, payload: ProgramPayload, input_bytes: bytes) -> dict[str, ExecutionResult]:
        """Fan one input's k executions out across the pool."""
        job = BatchJob.__new__(BatchJob)
        job.program = ""
        job.inputs = [input_bytes]
        job.name = payload.name
        job.payload = payload
        return self.run_batch([job])[0][0]

    # -------------------------------------------------------------- internals

    def _in_implementation_order(
        self, row: dict[str, ExecutionResult]
    ) -> dict[str, ExecutionResult]:
        return {config.name: row[config.name] for config in self.implementations}

    def _scatter_tasks(self, jobs: list[BatchJob]) -> list[_Task]:
        """Split (job × implementation) work into pool-sized units.

        With many jobs each task covers one job across all k
        implementations (coarse, low overhead); with few jobs the k
        implementations are chunked so even a single ``check()`` call
        spreads across the pool.
        """
        chunks_per_job = max(1, math.ceil(self.workers / len(jobs)))
        chunks_per_job = min(chunks_per_job, len(self.implementations))
        impl_chunks = _split_evenly(self.implementations, chunks_per_job)
        tasks = []
        for job_idx, job in enumerate(jobs):
            runs = tuple(
                (input_idx, input_bytes, None)
                for input_idx, input_bytes in enumerate(job.inputs)
            )
            for chunk in impl_chunks:
                tasks.append(
                    _Task(
                        job_idx=job_idx,
                        payload=job.payload,
                        configs=chunk,
                        base_fuel=self.fuel,
                        runs=runs,
                    )
                )
        return tasks

    def _dispatch(
        self,
        tasks: list[_Task],
        gathered: list[list[dict[str, ExecutionResult]]],
    ) -> None:
        pool = self._ensure_pool()
        pending = [pool.apply_async(_worker_run, (task,)) for task in tasks]
        for handle in pending:
            reply: _Reply = handle.get()
            for input_idx, impl_name, result in reply.results:
                gathered[reply.job_idx][input_idx][impl_name] = result
                self.stats.record_exec(impl_name)
            self.stats.record_cache(
                reply.cache_hits, reply.cache_misses, reply.cache_evictions
            )
            self.stats.record_batch(reply.seconds)

    def _retry_partial_timeouts(
        self,
        jobs: list[BatchJob],
        gathered: list[list[dict[str, ExecutionResult]]],
    ) -> None:
        """RQ6, batched: re-run partial-timeout stragglers with the serial
        engine's exact fuel schedule (×FACTOR per round, up to the cap)."""
        from repro.core.compdiff import TIMEOUT_MAX_RETRIES, TIMEOUT_RETRY_FACTOR

        total = len(self.implementations)
        fuel = self.fuel
        for _ in range(TIMEOUT_MAX_RETRIES):
            fuel *= TIMEOUT_RETRY_FACTOR
            retries: list[_Task] = []
            for job_idx, job in enumerate(jobs):
                by_impl: dict[str, list[tuple[int, bytes, Optional[int]]]] = {}
                for input_idx, row in enumerate(gathered[job_idx]):
                    timed_out = [name for name, result in row.items() if result.timed_out]
                    if not timed_out or len(timed_out) == total:
                        continue
                    for name in timed_out:
                        by_impl.setdefault(name, []).append(
                            (input_idx, job.inputs[input_idx], fuel)
                        )
                for name, runs in by_impl.items():
                    config = next(c for c in self.implementations if c.name == name)
                    retries.append(
                        _Task(
                            job_idx=job_idx,
                            payload=job.payload,
                            configs=(config,),
                            base_fuel=self.fuel,
                            runs=tuple(runs),
                        )
                    )
            if not retries:
                return
            self.stats.record_retry(sum(len(task.runs) for task in retries))
            self._dispatch(retries, gathered)


def _split_evenly(
    items: tuple[CompilerConfig, ...], chunks: int
) -> list[tuple[CompilerConfig, ...]]:
    """Split *items* into *chunks* contiguous, size-balanced groups."""
    quotient, remainder = divmod(len(items), chunks)
    out = []
    start = 0
    for index in range(chunks):
        size = quotient + (1 if index < remainder else 0)
        if size == 0:
            continue
        out.append(tuple(items[start : start + size]))
        start += size
    return out
