"""Batched multi-process differential execution.

The serial :class:`~repro.core.compdiff.CompDiff` runs the ``k``
per-implementation executions of every input back to back in one
process.  :class:`ParallelEngine` fans that work out across a persistent
``multiprocessing`` worker pool:

* each worker process keeps **warm state** — a content-addressed
  :class:`~repro.parallel.cache.CompileCache` plus a registry of live
  :class:`~repro.vm.forkserver.ForkServer` instances per
  ``(program, implementation)`` — so a program is compiled at most once
  per worker and re-executions pay only for the VM run;
* the parent scatters ``(job, implementation-chunk)`` tasks, gathers raw
  :class:`~repro.vm.execution.ExecutionResult` objects, and performs the
  RQ6 partial-timeout retry rounds with exactly the serial engine's fuel
  schedule, so verdicts are byte-identical to ``workers=1``;
* all observation normalization and checksumming stays in the parent
  (in :class:`~repro.core.compdiff.CompDiff`), which is what guarantees
  result assembly order — and therefore ``DiffResult`` contents — cannot
  depend on worker scheduling.

Dispatch goes through :class:`~repro.parallel.supervisor.SupervisedPool`,
which detects dead and hung workers via per-wave wall-clock deadlines,
restarts the pool, re-dispatches lost tasks with bounded retries and
exponential backoff, and quarantines poison tasks that keep killing
workers.  Recovery is verdict-transparent: a retried task produces the
reply a fault-free run would have, and a quarantined task degrades its
program's cross-check to the surviving k-1 implementations (flagged in
the :class:`~repro.core.compdiff.DiffResult`) instead of aborting.

Workers are spawned lazily on the first batch and live until
``close()``; the ``fork`` start method is preferred (cheap, inherits the
imported modules) with ``spawn`` as the portable fallback.  See
``docs/ROBUSTNESS.md`` for the failure model.
"""

from __future__ import annotations

import math
import pickle
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from repro.compiler.implementations import CompilerConfig
from repro.errors import EngineConfigError, ReproError
from repro.minic import ast as minic_ast
from repro.minic import load
from repro.parallel.cache import CompileCache
from repro.parallel.faults import CORRUPT, CORRUPT_CRC_MASK, FaultPlan, execute_fault
from repro.parallel.stats import EngineStats
from repro.parallel.supervisor import QuarantineEntry, SupervisedPool, SupervisorPolicy
from repro.vm import ForkServer
from repro.vm.execution import ExecutionResult, deadline_result

#: Hard cap on pool size; beyond this the scatter overhead dominates.
MAX_WORKERS = 32
#: Programs (and their fork servers) kept warm per worker before LRU drop.
WORKER_PROGRAM_CAP = 64


@dataclass(frozen=True)
class ProgramPayload:
    """A program in transit to a worker: content key plus serialized form.

    ``kind`` is ``"src"`` (raw MiniC source, parsed worker-side with the
    same :func:`repro.minic.load` the serial path uses) or ``"ast"``
    (pickled checked AST).
    """

    key: str
    kind: str
    blob: bytes
    name: str = ""

    @staticmethod
    def from_program(
        program: minic_ast.Program | str, name: str = "", key: str | None = None
    ) -> "ProgramPayload":
        from repro.parallel.cache import program_fingerprint

        fp = key if key is not None else program_fingerprint(program)
        if isinstance(program, str):
            return ProgramPayload(key=fp, kind="src", blob=program.encode("utf-8"), name=name)
        return ProgramPayload(key=fp, kind="ast", blob=pickle.dumps(program), name=name)


class ServerGroup(dict):
    """``CompDiff.build()`` result: a plain name→ForkServer mapping (fully
    usable as a dict) plus routing state for the oracle's fast paths — in
    parallel mode the payload the engine needs to route executions of this
    program to the worker pool, and in serial mode the
    :class:`~repro.vm.lockstep.LockstepExecutor` that drives all k
    implementations from their shared decoded instruction tables."""

    def __init__(
        self,
        servers: dict[str, ForkServer],
        payload: ProgramPayload | None = None,
        executor=None,
    ) -> None:
        super().__init__(servers)
        self.payload = payload
        self.executor = executor


@dataclass(frozen=True)
class _Task:
    """One scatter unit: run *runs* under *configs* for one program."""

    #: Unique dispatch id, assigned parent-side in deterministic order;
    #: the supervisor keys retries/quarantine (and the fault plan keys
    #: injection decisions) off this.
    seq: int
    job_idx: int
    payload: ProgramPayload
    configs: tuple[CompilerConfig, ...]
    base_fuel: int
    #: (input_idx, input_bytes, explicit fuel or None for the base fuel).
    runs: tuple[tuple[int, bytes, Optional[int]], ...]
    #: Injected fault for this dispatch attempt (None outside fault tests).
    fault: Optional[str] = None


@dataclass
class _Reply:
    """One task's gathered results plus worker-side accounting."""

    job_idx: int
    #: (input_idx, implementation name, result) triples.  Each result
    #: carries its ``output_checksum``, computed worker-side once from the
    #: normalized observation — the parent never re-derives it.
    results: list[tuple[int, str, ExecutionResult]]
    #: (implementation name, reason) for configs that failed to
    #: compile/execute — degraded rather than fatal.
    failed: tuple[tuple[str, str], ...]
    cache_hits: int
    cache_misses: int
    cache_evictions: int
    seconds: float
    #: CRC32 over the pickled results — the parent's integrity check.
    crc: int = 0
    #: Executor deltas for this task (folded into EngineStats parent-side).
    lockstep_runs: int = 0
    fallback_runs: int = 0
    decode_hits: int = 0
    decode_misses: int = 0


def _results_crc(results: list[tuple[int, str, ExecutionResult]]) -> int:
    return zlib.crc32(pickle.dumps(results))


def _validate_reply(reply: _Reply) -> str | None:
    """Integrity check run in the parent; a mismatch means the reply was
    corrupted in transit and the task must be re-dispatched."""
    if not isinstance(reply, _Reply):
        return f"malformed reply of type {type(reply).__name__}"
    if _results_crc(reply.results) != reply.crc:
        return "corrupted reply (checksum mismatch)"
    return None


# ---------------------------------------------------------------------------
# Worker side.  Module-level state + functions so both fork and spawn start
# methods can resolve them by reference.
# ---------------------------------------------------------------------------

_WORKER: dict = {}


def _worker_init(cache_entries: int, normalizer=None) -> None:
    # Imported here (not module top) to keep repro.parallel importable
    # without pulling the repro.core package in first (circular import).
    from repro.core.normalize import OutputNormalizer

    _WORKER["cache"] = CompileCache(max_entries=cache_entries)
    _WORKER["programs"] = OrderedDict()  # key -> checked Program AST
    _WORKER["servers"] = OrderedDict()  # (key, impl name) -> ForkServer
    _WORKER["normalizer"] = normalizer if normalizer is not None else OutputNormalizer()


def _worker_program(payload: ProgramPayload) -> minic_ast.Program:
    programs: OrderedDict = _WORKER["programs"]
    program = programs.get(payload.key)
    if program is None:
        if payload.kind == "src":
            program = load(payload.blob.decode("utf-8"))
        else:
            program = pickle.loads(payload.blob)
        programs[payload.key] = program
        while len(programs) > WORKER_PROGRAM_CAP:
            evicted_key, _ = programs.popitem(last=False)
            servers: OrderedDict = _WORKER["servers"]
            for server_key in [k for k in servers if k[0] == evicted_key]:
                del servers[server_key]
    else:
        programs.move_to_end(payload.key)
    return program


def _worker_server(
    payload: ProgramPayload, config: CompilerConfig, base_fuel: int
) -> ForkServer:
    servers: OrderedDict = _WORKER["servers"]
    server_key = (payload.key, config.name)
    server = servers.get(server_key)
    if server is None:
        cache: CompileCache = _WORKER["cache"]
        program = _worker_program(payload)
        binary = cache.compile(program, config, name=payload.name, program_fp=payload.key)
        server = ForkServer(binary, fuel=base_fuel)
        servers[server_key] = server
    else:
        servers.move_to_end(server_key)
    return server


def _worker_run(task: _Task) -> _Reply:
    """Service one scatter unit inside a worker process."""
    if task.fault is not None:
        execute_fault(task.fault)
    from repro.core.hashing import observation_checksum

    started = time.perf_counter()
    cache: CompileCache = _WORKER["cache"]
    normalizer = _WORKER["normalizer"]
    hits0, misses0 = cache.stats.hits, cache.stats.misses
    evictions0 = cache.stats.evictions
    results: list[tuple[int, str, ExecutionResult]] = []
    failed: list[tuple[str, str]] = []
    executor = [0, 0, 0, 0]  # lockstep, fallback, decode hits, decode misses
    for config in task.configs:
        try:
            server = _worker_server(task.payload, config, task.base_fuel)
        except ReproError as exc:
            # Per-implementation build failure: degrade this program's
            # cross-check rather than killing the task (and the batch).
            failed.append((config.name, f"compile failed: {exc}"))
            continue
        counters0 = (
            server.lockstep_runs,
            server.fallback_runs,
            server.decode_hits,
            server.decode_misses,
        )
        try:
            for input_idx, input_bytes, fuel in task.runs:
                result = server.run(input_bytes, fuel=fuel)
                # The double-checksum fix: normalize and checksum exactly
                # once, where the execution happened, and carry it home.
                result.output_checksum = observation_checksum(
                    normalizer.normalize_observation(result.observation())
                )
                results.append((input_idx, config.name, result))
        except ReproError as exc:
            results = [r for r in results if r[1] != config.name]
            failed.append((config.name, f"execution failed: {exc}"))
        executor[0] += server.lockstep_runs - counters0[0]
        executor[1] += server.fallback_runs - counters0[1]
        executor[2] += server.decode_hits - counters0[2]
        executor[3] += server.decode_misses - counters0[3]
    crc = _results_crc(results)
    if task.fault == CORRUPT:
        crc ^= CORRUPT_CRC_MASK
    return _Reply(
        job_idx=task.job_idx,
        results=results,
        failed=tuple(failed),
        cache_hits=cache.stats.hits - hits0,
        cache_misses=cache.stats.misses - misses0,
        cache_evictions=cache.stats.evictions - evictions0,
        seconds=time.perf_counter() - started,
        crc=crc,
        lockstep_runs=executor[0],
        fallback_runs=executor[1],
        decode_hits=executor[2],
        decode_misses=executor[3],
    )


# ---------------------------------------------------------------------------
# Parent side.
# ---------------------------------------------------------------------------


@dataclass
class BatchJob:
    """One program plus the inputs to run through the oracle."""

    program: minic_ast.Program | str
    inputs: list[bytes]
    name: str = ""
    payload: ProgramPayload = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.payload = ProgramPayload.from_program(self.program, name=self.name)


class ParallelEngine:
    """Persistent supervised worker pool executing differential batches.

    The engine returns *raw* per-implementation results; turning them
    into :class:`~repro.core.compdiff.DiffResult` objects (normalization,
    checksumming, grouping) is the caller's job so the serial and
    parallel paths share that code verbatim.  Worker faults are absorbed
    by the supervisor (see module docstring); implementations that could
    not produce a result for an input appear as
    :func:`~repro.vm.execution.deadline_result` placeholders so the
    caller can drop them from the cross-check.
    """

    def __init__(
        self,
        implementations: tuple[CompilerConfig, ...],
        fuel: int,
        workers: int,
        stats: EngineStats | None = None,
        cache_entries: int = 256,
        policy: SupervisorPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        normalizer=None,
    ) -> None:
        if workers < 2:
            raise EngineConfigError(
                f"ParallelEngine needs workers >= 2, got {workers}; use CompDiff serially"
            )
        if not implementations:
            raise EngineConfigError("ParallelEngine needs at least one implementation")
        self.implementations = tuple(implementations)
        self.fuel = fuel
        self.workers = min(int(workers), MAX_WORKERS)
        self.stats = stats if stats is not None else EngineStats()
        self.cache_entries = cache_entries
        self.policy = policy if policy is not None else SupervisorPolicy()
        self.fault_plan = fault_plan
        if normalizer is None:
            from repro.core.normalize import OutputNormalizer

            normalizer = OutputNormalizer()
        self.normalizer = normalizer
        self._seq = 0
        self._supervisor = SupervisedPool(
            processes=self.workers,
            worker_fn=_worker_run,
            initializer=_worker_init,
            initargs=(self.cache_entries, self.normalizer),
            policy=self.policy,
            stats=self.stats,
            fault_plan=self.fault_plan,
            task_label=_task_label,
        )
        #: Quarantine log across this engine's lifetime (newest last).
        self.quarantine_log: list[QuarantineEntry] = []

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Shut the worker pool down (idempotent; also runs via atexit)."""
        self._supervisor.close()

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------- batching

    def run_batch(self, jobs: list[BatchJob]) -> list[list[dict[str, ExecutionResult]]]:
        """Execute every job's inputs on every implementation.

        Returns, per job, per input, an implementation-name→result map
        ordered exactly like ``self.implementations`` — the same order
        the serial engine produces — with RQ6 timeout retries applied.
        Implementations dropped by quarantine or per-implementation build
        failure appear as ``Status.DEADLINE`` placeholders; if fewer than
        two implementations survive for a job, a :class:`ReproError` is
        raised (a cross-check needs at least a pair).
        """
        if jobs is None:
            raise EngineConfigError("run_batch needs a list of jobs, got None")
        if not jobs:
            return []
        tasks = self._scatter_tasks(jobs)
        gathered: list[list[dict[str, ExecutionResult]]] = [
            [dict() for _ in job.inputs] for job in jobs
        ]
        self._dispatch(tasks, gathered)
        self._retry_partial_timeouts(jobs, gathered)
        self._check_survivors(jobs, gathered)
        ordered = [
            [self._in_implementation_order(row) for row in job_rows]
            for job_rows in gathered
        ]
        for job in jobs:
            self.stats.record_input(len(job.inputs))
        return ordered

    def run_one(self, payload: ProgramPayload, input_bytes: bytes) -> dict[str, ExecutionResult]:
        """Fan one input's k executions out across the pool."""
        job = BatchJob.__new__(BatchJob)
        job.program = ""
        job.inputs = [input_bytes]
        job.name = payload.name
        job.payload = payload
        return self.run_batch([job])[0][0]

    # -------------------------------------------------------------- internals

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    def _in_implementation_order(
        self, row: dict[str, ExecutionResult]
    ) -> dict[str, ExecutionResult]:
        return {
            config.name: row[config.name]
            for config in self.implementations
            if config.name in row
        }

    def _scatter_tasks(self, jobs: list[BatchJob]) -> list[_Task]:
        """Split (job × implementation) work into pool-sized units.

        With many jobs each task covers one job across all k
        implementations (coarse, low overhead); with few jobs the k
        implementations are chunked so even a single ``check()`` call
        spreads across the pool.
        """
        chunks_per_job = max(1, math.ceil(self.workers / len(jobs)))
        chunks_per_job = min(chunks_per_job, len(self.implementations))
        impl_chunks = _split_evenly(self.implementations, chunks_per_job)
        tasks = []
        for job_idx, job in enumerate(jobs):
            runs = tuple(
                (input_idx, input_bytes, None)
                for input_idx, input_bytes in enumerate(job.inputs)
            )
            if not runs:
                continue
            for chunk in impl_chunks:
                tasks.append(
                    _Task(
                        seq=self._next_seq(),
                        job_idx=job_idx,
                        payload=job.payload,
                        configs=chunk,
                        base_fuel=self.fuel,
                        runs=runs,
                    )
                )
        return tasks

    def _dispatch(
        self,
        tasks: list[_Task],
        gathered: list[list[dict[str, ExecutionResult]]],
    ) -> None:
        """Run one wave of tasks under supervision and fold in the replies.

        Replies are processed in task-seq order (not arrival order) so
        stats accounting and result assembly stay scheduling-independent.
        Quarantined tasks fill their cells with ``DEADLINE`` placeholders;
        per-implementation failures reported by healthy workers leave
        their cells absent — both are folded into ``DiffResult.dropped``
        by the caller.
        """
        if not tasks:
            return
        by_seq = {task.seq: task for task in tasks}
        replies, quarantined = self._supervisor.run_tasks(tasks, validate=_validate_reply)
        for seq in sorted(replies):
            reply: _Reply = replies[seq]
            for input_idx, impl_name, result in reply.results:
                gathered[reply.job_idx][input_idx][impl_name] = result
                self.stats.record_exec(impl_name)
            for impl_name, _reason in reply.failed:
                self.stats.record_degraded(impl_name)
            self.stats.record_cache(
                reply.cache_hits, reply.cache_misses, reply.cache_evictions
            )
            self.stats.record_batch(reply.seconds)
            self.stats.record_executor(
                lockstep=reply.lockstep_runs,
                fallback=reply.fallback_runs,
                decode_hits=reply.decode_hits,
                decode_misses=reply.decode_misses,
                batches=1,
                batch_runs=len(reply.results),
            )
        for seq in sorted(quarantined):
            entry = quarantined[seq]
            task = by_seq[seq]
            self.quarantine_log.append(entry)
            for config in task.configs:
                self.stats.record_degraded(config.name)
                placeholder = deadline_result(config.name, entry.reason)
                for input_idx, _input_bytes, _fuel in task.runs:
                    gathered[task.job_idx][input_idx].setdefault(
                        config.name, placeholder
                    )

    def _check_survivors(
        self,
        jobs: list[BatchJob],
        gathered: list[list[dict[str, ExecutionResult]]],
    ) -> None:
        """A cross-check needs >= 2 live implementations per job.

        Degradation below that — every implementation quarantined or
        failing to build (e.g. an unloadable program) — is a hard error,
        matching the serial engine's behavior of raising on front-end
        failures rather than silently reporting "no divergence".
        """
        for job, job_rows in zip(jobs, gathered):
            if not job.inputs:
                continue
            live = {
                name
                for row in job_rows
                for name, result in row.items()
                if not result.deadline_expired
            }
            if len(live) < 2:
                dead = {
                    name: result.stderr.decode("utf-8", "replace")
                    for row in job_rows
                    for name, result in row.items()
                    if result.deadline_expired
                }
                missing = [
                    config.name
                    for config in self.implementations
                    if config.name not in live and config.name not in dead
                ]
                for name in missing:
                    dead.setdefault(name, "no result produced")
                raise ReproError(
                    f"job {job.name or job.payload.key[:12]!r}: fewer than two "
                    f"implementations survived the cross-check: {dead}"
                )

    def _retry_partial_timeouts(
        self,
        jobs: list[BatchJob],
        gathered: list[list[dict[str, ExecutionResult]]],
    ) -> None:
        """RQ6, batched: re-run partial-timeout stragglers with the serial
        engine's exact fuel schedule (×FACTOR per round, up to the cap).

        Only fuel exhaustion (``Status.TIMEOUT``) is retried — cells whose
        wall-clock deadline expired (``Status.DEADLINE``) are dropped from
        the cross-check, never given more fuel."""
        from repro.core.compdiff import TIMEOUT_MAX_RETRIES, TIMEOUT_RETRY_FACTOR

        fuel = self.fuel
        for _ in range(TIMEOUT_MAX_RETRIES):
            fuel *= TIMEOUT_RETRY_FACTOR
            retries: list[_Task] = []
            for job_idx, job in enumerate(jobs):
                by_impl: dict[str, list[tuple[int, bytes, Optional[int]]]] = {}
                for input_idx, row in enumerate(gathered[job_idx]):
                    live = [
                        name for name, result in row.items()
                        if not result.deadline_expired
                    ]
                    timed_out = [name for name in live if row[name].timed_out]
                    if not timed_out or len(timed_out) == len(live):
                        continue
                    for name in timed_out:
                        by_impl.setdefault(name, []).append(
                            (input_idx, job.inputs[input_idx], fuel)
                        )
                for name, runs in by_impl.items():
                    config = next(c for c in self.implementations if c.name == name)
                    retries.append(
                        _Task(
                            seq=self._next_seq(),
                            job_idx=job_idx,
                            payload=job.payload,
                            configs=(config,),
                            base_fuel=self.fuel,
                            runs=tuple(runs),
                        )
                    )
            if not retries:
                return
            self.stats.record_retry(sum(len(task.runs) for task in retries))
            self._dispatch(retries, gathered)


def _task_label(task: _Task) -> str:
    configs = ",".join(config.name for config in task.configs)
    return f"{task.payload.name or task.payload.key[:12]}[{configs}]"


def _split_evenly(
    items: tuple[CompilerConfig, ...], chunks: int
) -> list[tuple[CompilerConfig, ...]]:
    """Split *items* into *chunks* contiguous, size-balanced groups."""
    if chunks < 1:
        raise EngineConfigError(f"cannot split into {chunks} chunks")
    if not items:
        raise EngineConfigError("cannot split an empty implementation set")
    quotient, remainder = divmod(len(items), chunks)
    out = []
    start = 0
    for index in range(chunks):
        size = quotient + (1 if index < remainder else 0)
        if size == 0:
            continue
        out.append(tuple(items[start : start + size]))
        start += size
    return out
