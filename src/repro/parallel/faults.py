"""Deterministic fault injection for the supervised worker pool.

Long differential campaigns die to three failure shapes: a worker process
that *crashes* mid-task, a worker that *hangs* past any useful deadline,
and a reply that arrives *corrupted*.  This module injects all three on a
seeded, reproducible schedule so the recovery invariants of
:mod:`repro.parallel.supervisor` can be proven in CI rather than asserted
in prose: with any fault plan active, campaign verdicts must be
byte-identical to a fault-free run (see ``tests/test_faults.py`` and
``docs/ROBUSTNESS.md``).

Decisions are a pure function of ``(plan seed, task seq, attempt)`` —
never of wall-clock time or scheduling — so a given plan always faults
the same tasks no matter how the pool interleaves them.  By default a
plan only faults a task's *first* attempt, modelling transient faults the
supervisor must recover from; ``poison`` entries fault every attempt,
modelling inputs that deterministically kill workers and must end up
quarantined.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field

#: Fault kinds a plan may inject.
CRASH = "crash"
HANG = "hang"
CORRUPT = "corrupt"
FAULT_KINDS = (CRASH, HANG, CORRUPT)

#: How long an injected hang sleeps.  Far past any sane task deadline; the
#: supervisor reclaims the worker by terminating the pool.
HANG_SECONDS = 600.0

#: XOR mask applied to a reply checksum to simulate payload corruption.
CORRUPT_CRC_MASK = 0x5A5A5A5A


@dataclass
class FaultPlan:
    """A seeded schedule of injectable worker faults.

    ``crash``/``hang``/``corrupt`` are per-task probabilities evaluated on
    the first attempt only (transient faults).  ``poison`` maps a task
    ``seq`` to a fault kind injected on *every* attempt — the quarantine
    path's test vector.
    """

    seed: int = 0
    crash: float = 0.0
    hang: float = 0.0
    corrupt: float = 0.0
    #: task seq -> fault kind, injected on every attempt (poison tasks).
    poison: dict[int, str] = field(default_factory=dict)
    #: Attempts (per task) that rate-based faults may hit; 1 = first only.
    max_faulted_attempts: int = 1

    def __post_init__(self) -> None:
        total = self.crash + self.hang + self.corrupt
        if not 0.0 <= total <= 1.0:
            raise ValueError(f"fault rates must sum to [0, 1], got {total}")
        for kind in self.poison.values():
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")

    def decide(self, seq: int, attempt: int) -> str | None:
        """The fault (if any) to inject into attempt *attempt* of task *seq*.

        Pure and order-independent: derived from a private RNG keyed by
        ``(seed, seq, attempt)``.
        """
        if seq in self.poison:
            return self.poison[seq]
        if attempt >= self.max_faulted_attempts:
            return None
        roll = random.Random(f"faultplan:{self.seed}:{seq}:{attempt}").random()
        if roll < self.crash:
            return CRASH
        if roll < self.crash + self.hang:
            return HANG
        if roll < self.crash + self.hang + self.corrupt:
            return CORRUPT
        return None


def execute_fault(kind: str) -> None:
    """Carry out an injected fault inside a worker process.

    ``crash`` exits the process without cleanup (the supervisor sees a
    lost task); ``hang`` sleeps far past any deadline (the supervisor
    reclaims the slot by restarting the pool).  ``corrupt`` is not handled
    here — the worker loop mangles the reply checksum instead, so the
    parent's integrity check is what catches it.
    """
    if kind == CRASH:
        os._exit(70)
    if kind == HANG:
        time.sleep(HANG_SECONDS)


# --------------------------------------------------------------------------
# Campaign-layer (shard) fault injection
# --------------------------------------------------------------------------

#: Exit code of a worker killed by an injected shard crash.
SHARD_CRASH_EXIT = 70
#: Exit code of a worker that corrupted its own checkpoint and died.
SHARD_CORRUPT_EXIT = 71


@dataclass
class ShardFaultPlan:
    """A seeded schedule of shard-level campaign faults.

    The shard analogue of :class:`FaultPlan`, one layer up: decisions are
    keyed by the campaign's *global seed offset* instead of a task
    ``seq``, and faults strike the shard worker process at the seed
    boundary — before the seed is processed — so the shard's checkpoint
    and bank are always boundary-consistent and recovery is exactly a
    replay.  The invariant the sharded runtime is held to
    (``tests/test_campaign_runtime.py``, ``make chaos``): with any plan
    active, the *merged* corpus is byte-identical to a fault-free run —
    except seeds a ``poison`` entry drives into the quarantine ledger,
    which are skipped by construction.

    ``crash``/``hang``/``corrupt`` are per-seed probabilities evaluated
    on the first attempt only.  ``once`` maps a seed offset to a fault
    kind injected deterministically on that offset's first attempt (the
    reproducible test vector for each recovery path).  ``poison`` maps a
    seed offset to a fault kind injected on *every* attempt — the
    quarantine ledger's test vector.
    """

    seed: int = 0
    crash: float = 0.0
    hang: float = 0.0
    corrupt: float = 0.0
    #: seed offset -> fault kind, injected on the first attempt only.
    once: dict[int, str] = field(default_factory=dict)
    #: seed offset -> fault kind, injected on every attempt (poison seeds).
    poison: dict[int, str] = field(default_factory=dict)
    #: Attempts (per seed) that rate-based/once faults may hit; 1 = first.
    max_faulted_attempts: int = 1

    def __post_init__(self) -> None:
        total = self.crash + self.hang + self.corrupt
        if not 0.0 <= total <= 1.0:
            raise ValueError(f"fault rates must sum to [0, 1], got {total}")
        for kind in list(self.once.values()) + list(self.poison.values()):
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")

    def decide(self, offset: int, attempt: int) -> str | None:
        """The fault (if any) to inject into attempt *attempt* of seed
        offset *offset*.  Pure and order-independent."""
        if offset in self.poison:
            return self.poison[offset]
        if attempt >= self.max_faulted_attempts:
            return None
        if offset in self.once:
            return self.once[offset]
        roll = random.Random(f"shardfault:{self.seed}:{offset}:{attempt}").random()
        if roll < self.crash:
            return CRASH
        if roll < self.crash + self.hang:
            return HANG
        if roll < self.crash + self.hang + self.corrupt:
            return CORRUPT
        return None


def execute_shard_fault(kind: str, checkpoint_path: str | None = None) -> None:
    """Carry out an injected shard fault inside a shard worker process.

    ``crash`` kills the worker at the seed boundary; ``hang`` sleeps far
    past any seed deadline (the supervisor reclaims the shard by killing
    it); ``corrupt`` flips bits in the shard's own checkpoint record —
    simulating the torn/bit-rotted state a real crash can leave — and
    then dies, so the next launch exercises the corrupt-state self-heal
    path (wipe and deterministically replay the shard's range).
    """
    if kind == CRASH:
        os._exit(SHARD_CRASH_EXIT)
    if kind == HANG:
        time.sleep(HANG_SECONDS)
    if kind == CORRUPT:
        if checkpoint_path is not None and os.path.exists(checkpoint_path):
            with open(checkpoint_path, "r+b") as handle:
                blob = bytearray(handle.read())
                if len(blob) > 12:
                    for i in range(12, len(blob)):
                        blob[i] ^= 0xFF
                handle.seek(0)
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
        os._exit(SHARD_CORRUPT_EXIT)
