"""Deterministic fault injection for the supervised worker pool.

Long differential campaigns die to three failure shapes: a worker process
that *crashes* mid-task, a worker that *hangs* past any useful deadline,
and a reply that arrives *corrupted*.  This module injects all three on a
seeded, reproducible schedule so the recovery invariants of
:mod:`repro.parallel.supervisor` can be proven in CI rather than asserted
in prose: with any fault plan active, campaign verdicts must be
byte-identical to a fault-free run (see ``tests/test_faults.py`` and
``docs/ROBUSTNESS.md``).

Decisions are a pure function of ``(plan seed, task seq, attempt)`` —
never of wall-clock time or scheduling — so a given plan always faults
the same tasks no matter how the pool interleaves them.  By default a
plan only faults a task's *first* attempt, modelling transient faults the
supervisor must recover from; ``poison`` entries fault every attempt,
modelling inputs that deterministically kill workers and must end up
quarantined.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field

#: Fault kinds a plan may inject.
CRASH = "crash"
HANG = "hang"
CORRUPT = "corrupt"
FAULT_KINDS = (CRASH, HANG, CORRUPT)

#: How long an injected hang sleeps.  Far past any sane task deadline; the
#: supervisor reclaims the worker by terminating the pool.
HANG_SECONDS = 600.0

#: XOR mask applied to a reply checksum to simulate payload corruption.
CORRUPT_CRC_MASK = 0x5A5A5A5A


@dataclass
class FaultPlan:
    """A seeded schedule of injectable worker faults.

    ``crash``/``hang``/``corrupt`` are per-task probabilities evaluated on
    the first attempt only (transient faults).  ``poison`` maps a task
    ``seq`` to a fault kind injected on *every* attempt — the quarantine
    path's test vector.
    """

    seed: int = 0
    crash: float = 0.0
    hang: float = 0.0
    corrupt: float = 0.0
    #: task seq -> fault kind, injected on every attempt (poison tasks).
    poison: dict[int, str] = field(default_factory=dict)
    #: Attempts (per task) that rate-based faults may hit; 1 = first only.
    max_faulted_attempts: int = 1

    def __post_init__(self) -> None:
        total = self.crash + self.hang + self.corrupt
        if not 0.0 <= total <= 1.0:
            raise ValueError(f"fault rates must sum to [0, 1], got {total}")
        for kind in self.poison.values():
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")

    def decide(self, seq: int, attempt: int) -> str | None:
        """The fault (if any) to inject into attempt *attempt* of task *seq*.

        Pure and order-independent: derived from a private RNG keyed by
        ``(seed, seq, attempt)``.
        """
        if seq in self.poison:
            return self.poison[seq]
        if attempt >= self.max_faulted_attempts:
            return None
        roll = random.Random(f"faultplan:{self.seed}:{seq}:{attempt}").random()
        if roll < self.crash:
            return CRASH
        if roll < self.crash + self.hang:
            return HANG
        if roll < self.crash + self.hang + self.corrupt:
            return CORRUPT
        return None


def execute_fault(kind: str) -> None:
    """Carry out an injected fault inside a worker process.

    ``crash`` exits the process without cleanup (the supervisor sees a
    lost task); ``hang`` sleeps far past any deadline (the supervisor
    reclaims the slot by restarting the pool).  ``corrupt`` is not handled
    here — the worker loop mangles the reply checksum instead, so the
    parent's integrity check is what catches it.
    """
    if kind == CRASH:
        os._exit(70)
    if kind == HANG:
        time.sleep(HANG_SECONDS)
