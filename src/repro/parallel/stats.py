"""Structured execution metrics for the differential engines.

One :class:`EngineStats` instance rides along with every
:class:`~repro.core.compdiff.CompDiff` (serial or parallel) and records
the operational signals the ROADMAP's scaling work needs: per-
implementation execution counts, compile-cache effectiveness, timeout
retries (the RQ6 path), and batch latency percentiles.  ``snapshot()``
emits the JSON-shaped schema documented in ``docs/PARALLELISM.md``.

Latency samples are observability only — no experiment verdict or test
assertion may depend on them (CONTRIBUTING.md rule 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Percentiles reported by ``snapshot()``/``render()``.
DEFAULT_PERCENTILES = (50.0, 90.0, 99.0)


@dataclass
class EngineStats:
    """Counters and latency samples for one engine's lifetime."""

    #: implementation name -> number of binary executions (retries included).
    exec_counts: dict[str, int] = field(default_factory=dict)
    #: Inputs pushed through the differential oracle.
    inputs_checked: int = 0
    #: Re-executions forced by partial timeouts (RQ6 retry path).
    timeout_retries: int = 0
    #: Compile-cache accounting, aggregated across parent and workers.
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    #: Interprocedural summary-cache accounting (UBOracle interproc mode).
    summary_hits: int = 0
    summary_misses: int = 0
    summary_invalidations: int = 0
    #: Scatter batches dispatched (1 per task in parallel mode).
    batches: int = 0
    #: Per-batch wall-clock durations in seconds (worker-measured).
    batch_latencies: list[float] = field(default_factory=list)
    #: Worker-pool hard restarts after a crash, hang, or corrupt reply.
    worker_restarts: int = 0
    #: Task re-dispatches after a worker fault (distinct from the RQ6
    #: fuel-escalation ``timeout_retries``).
    task_retries: int = 0
    #: Poison tasks pulled from the schedule after exhausting retries.
    quarantined: int = 0
    #: implementation name -> programs where it was dropped from the
    #: cross-check (k-1 graceful degradation).
    degraded: dict[str, int] = field(default_factory=dict)
    #: Shard worker processes killed and relaunched by the sharded
    #: campaign runtime (repro.campaigns.runtime) — the shard-level
    #: analogue of ``worker_restarts``.
    shard_restarts: int = 0
    #: Dead shards whose remaining seed ranges the supervisor re-adopted
    #: and processed in-process.
    shard_adoptions: int = 0
    #: Poison seeds recorded in the quarantine ledger and skipped.
    seeds_quarantined: int = 0
    #: Campaign checkpoints journaled to disk.
    checkpoints_written: int = 0
    #: Per-checkpoint write durations in seconds (observability only).
    checkpoint_latencies: list[float] = field(default_factory=list)
    #: pass name -> [applications, changes, seconds] aggregated over every
    #: fresh (non-cache-hit) compile this engine performed.  Parent-process
    #: compiles only: worker replies carry cache counters, not schedules.
    pass_timings: dict[str, list] = field(default_factory=dict)
    #: Executor accounting (the decode-once lockstep path, PERFORMANCE.md):
    #: executions served from decoded instruction tables vs the reference
    #: interpreter fallback (coverage/trace runs or REPRO_NO_LOCKSTEP=1).
    lockstep_runs: int = 0
    fallback_runs: int = 0
    #: Decode-cache accounting: a hit reuses a binary's DecodedProgram, a
    #: miss decodes the IR into flat tables (once per binary per process).
    decode_hits: int = 0
    decode_misses: int = 0
    #: Batched submission accounting: scatter units serviced and the total
    #: executions they carried (mean batch size = executions / batches).
    executor_batches: int = 0
    executor_batch_runs: int = 0

    # -------------------------------------------------------------- recording

    def record_exec(self, implementation: str, count: int = 1) -> None:
        self.exec_counts[implementation] = self.exec_counts.get(implementation, 0) + count

    def record_input(self, count: int = 1) -> None:
        self.inputs_checked += count

    def record_retry(self, count: int = 1) -> None:
        self.timeout_retries += count

    def record_cache(self, hits: int = 0, misses: int = 0, evictions: int = 0) -> None:
        self.cache_hits += hits
        self.cache_misses += misses
        self.cache_evictions += evictions

    def record_summary(
        self, hits: int = 0, misses: int = 0, invalidations: int = 0
    ) -> None:
        self.summary_hits += hits
        self.summary_misses += misses
        self.summary_invalidations += invalidations

    def record_summary_cache(self, cache) -> None:
        """Fold a :class:`~repro.static_analysis.summary_cache.SummaryCache`
        instance's counters in, then zero them so repeated folds don't
        double-count."""
        stats = cache.stats
        self.record_summary(stats.hits, stats.misses, stats.invalidations)
        stats.hits = stats.misses = stats.invalidations = 0

    def record_batch(self, seconds: float) -> None:
        self.batches += 1
        self.batch_latencies.append(seconds)

    def record_restart(self, count: int = 1) -> None:
        self.worker_restarts += count

    def record_task_retry(self, count: int = 1) -> None:
        self.task_retries += count

    def record_quarantine(self, count: int = 1) -> None:
        self.quarantined += count

    def record_degraded(self, implementation: str, count: int = 1) -> None:
        self.degraded[implementation] = self.degraded.get(implementation, 0) + count

    def record_shard_restart(self, count: int = 1) -> None:
        self.shard_restarts += count

    def record_shard_adoption(self, count: int = 1) -> None:
        self.shard_adoptions += count

    def record_seed_quarantine(self, count: int = 1) -> None:
        self.seeds_quarantined += count

    def record_checkpoint(self, seconds: float) -> None:
        self.checkpoints_written += 1
        self.checkpoint_latencies.append(seconds)

    def record_pass(
        self, name: str, applications: int = 1, changes: int = 0, seconds: float = 0.0
    ) -> None:
        row = self.pass_timings.setdefault(name, [0, 0, 0.0])
        row[0] += applications
        row[1] += changes
        row[2] += seconds

    def record_executor(
        self,
        lockstep: int = 0,
        fallback: int = 0,
        decode_hits: int = 0,
        decode_misses: int = 0,
        batches: int = 0,
        batch_runs: int = 0,
    ) -> None:
        """Fold executor counters in — called by stats-wired ForkServers on
        every run and by the parent when folding worker reply deltas."""
        self.lockstep_runs += lockstep
        self.fallback_runs += fallback
        self.decode_hits += decode_hits
        self.decode_misses += decode_misses
        self.executor_batches += batches
        self.executor_batch_runs += batch_runs

    def record_pass_report(self, report) -> None:
        """Fold one build's :class:`~repro.compiler.passes.manager.PipelineReport`
        into the per-pass aggregate."""
        if report is None:
            return
        for name, row in report.per_pass().items():
            self.record_pass(
                name, row["applications"], row["changes"], row["seconds"]
            )

    def restore(self, other: "EngineStats") -> None:
        """Overwrite every counter in place with *other*'s values.

        Used by checkpoint resume: engines share one stats instance by
        reference, so restoring must mutate rather than reassign.
        """
        self.exec_counts = dict(other.exec_counts)
        self.inputs_checked = other.inputs_checked
        self.timeout_retries = other.timeout_retries
        self.cache_hits = other.cache_hits
        self.cache_misses = other.cache_misses
        self.cache_evictions = other.cache_evictions
        self.summary_hits = other.summary_hits
        self.summary_misses = other.summary_misses
        self.summary_invalidations = other.summary_invalidations
        self.batches = other.batches
        self.batch_latencies = list(other.batch_latencies)
        self.worker_restarts = other.worker_restarts
        self.task_retries = other.task_retries
        self.quarantined = other.quarantined
        self.degraded = dict(other.degraded)
        self.shard_restarts = other.shard_restarts
        self.shard_adoptions = other.shard_adoptions
        self.seeds_quarantined = other.seeds_quarantined
        self.checkpoints_written = other.checkpoints_written
        self.checkpoint_latencies = list(other.checkpoint_latencies)
        self.pass_timings = {name: list(row) for name, row in other.pass_timings.items()}
        self.lockstep_runs = other.lockstep_runs
        self.fallback_runs = other.fallback_runs
        self.decode_hits = other.decode_hits
        self.decode_misses = other.decode_misses
        self.executor_batches = other.executor_batches
        self.executor_batch_runs = other.executor_batch_runs

    def merge(self, other: "EngineStats") -> None:
        """Fold another instance's counters into this one."""
        for name, count in other.exec_counts.items():
            self.record_exec(name, count)
        self.inputs_checked += other.inputs_checked
        self.timeout_retries += other.timeout_retries
        self.record_cache(other.cache_hits, other.cache_misses, other.cache_evictions)
        self.record_summary(
            other.summary_hits, other.summary_misses, other.summary_invalidations
        )
        self.batches += other.batches
        self.batch_latencies.extend(other.batch_latencies)
        self.worker_restarts += other.worker_restarts
        self.task_retries += other.task_retries
        self.quarantined += other.quarantined
        for name, count in other.degraded.items():
            self.record_degraded(name, count)
        self.shard_restarts += other.shard_restarts
        self.shard_adoptions += other.shard_adoptions
        self.seeds_quarantined += other.seeds_quarantined
        self.checkpoints_written += other.checkpoints_written
        self.checkpoint_latencies.extend(other.checkpoint_latencies)
        for name, row in other.pass_timings.items():
            self.record_pass(name, row[0], row[1], row[2])
        self.record_executor(
            lockstep=other.lockstep_runs,
            fallback=other.fallback_runs,
            decode_hits=other.decode_hits,
            decode_misses=other.decode_misses,
            batches=other.executor_batches,
            batch_runs=other.executor_batch_runs,
        )

    # ---------------------------------------------------------------- queries

    @property
    def total_executions(self) -> int:
        return sum(self.exec_counts.values())

    @property
    def cache_requests(self) -> int:
        return self.cache_hits + self.cache_misses

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.cache_requests if self.cache_requests else 0.0

    def latency_percentiles(
        self, percentiles: tuple[float, ...] = DEFAULT_PERCENTILES
    ) -> dict[float, float]:
        """Nearest-rank percentiles of the recorded batch latencies."""
        if not self.batch_latencies:
            return {p: 0.0 for p in percentiles}
        ordered = sorted(self.batch_latencies)
        out = {}
        for p in percentiles:
            rank = max(1, min(len(ordered), round(p / 100.0 * len(ordered) + 0.5)))
            out[p] = ordered[int(rank) - 1]
        return out

    # --------------------------------------------------------------- emitting

    def snapshot(self) -> dict:
        """The metrics schema (see docs/PARALLELISM.md §Metrics)."""
        return {
            "executions": {
                "per_implementation": dict(sorted(self.exec_counts.items())),
                "total": self.total_executions,
                "inputs_checked": self.inputs_checked,
            },
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "evictions": self.cache_evictions,
                "hit_rate": self.cache_hit_rate,
            },
            "summaries": {
                "hits": self.summary_hits,
                "misses": self.summary_misses,
                "invalidations": self.summary_invalidations,
            },
            "timeouts": {"retries": self.timeout_retries},
            "executor": {
                "lockstep_runs": self.lockstep_runs,
                "fallback_runs": self.fallback_runs,
                "decode_hits": self.decode_hits,
                "decode_misses": self.decode_misses,
                "batches": self.executor_batches,
                "batch_runs": self.executor_batch_runs,
                "mean_batch_size": (
                    self.executor_batch_runs / self.executor_batches
                    if self.executor_batches
                    else 0.0
                ),
            },
            "batches": {
                "dispatched": self.batches,
                "latency_percentiles": {
                    f"p{p:g}": value for p, value in self.latency_percentiles().items()
                },
            },
            "faults": {
                "worker_restarts": self.worker_restarts,
                "task_retries": self.task_retries,
                "quarantined": self.quarantined,
                "degraded": dict(sorted(self.degraded.items())),
            },
            "shards": {
                "restarts": self.shard_restarts,
                "adoptions": self.shard_adoptions,
                "seeds_quarantined": self.seeds_quarantined,
            },
            "checkpoints": {
                "written": self.checkpoints_written,
                "total_seconds": sum(self.checkpoint_latencies),
            },
            "passes": {
                name: {
                    "applications": row[0],
                    "changes": row[1],
                    "seconds": row[2],
                }
                for name, row in sorted(self.pass_timings.items())
            },
        }

    def render(self) -> str:
        """Human-readable one-screen summary."""
        snap = self.snapshot()
        lines = [
            f"executions: {snap['executions']['total']} "
            f"over {snap['executions']['inputs_checked']} inputs",
        ]
        for name, count in snap["executions"]["per_implementation"].items():
            lines.append(f"  {name:<12} {count}")
        cache = snap["cache"]
        lines.append(
            f"compile cache: {cache['hits']} hits / {cache['misses']} misses "
            f"({100 * cache['hit_rate']:.1f}% hit rate, {cache['evictions']} evicted)"
        )
        summaries = snap["summaries"]
        if summaries["hits"] or summaries["misses"]:
            lines.append(
                f"summary cache: {summaries['hits']} hits / "
                f"{summaries['misses']} misses "
                f"({summaries['invalidations']} invalidated)"
            )
        lines.append(f"timeout retries: {snap['timeouts']['retries']}")
        executor = snap["executor"]
        if executor["lockstep_runs"] or executor["fallback_runs"]:
            lines.append(
                f"executor: {executor['lockstep_runs']} lockstep / "
                f"{executor['fallback_runs']} fallback; decode cache "
                f"{executor['decode_hits']} hits / {executor['decode_misses']} misses"
            )
            if executor["batches"]:
                lines.append(
                    f"  batched submission: {executor['batches']} batches, "
                    f"mean size {executor['mean_batch_size']:.1f}"
                )
        percentiles = snap["batches"]["latency_percentiles"]
        lines.append(
            f"batches: {snap['batches']['dispatched']} dispatched; latency "
            + " ".join(f"{k}={1000 * v:.2f}ms" for k, v in percentiles.items())
        )
        faults = snap["faults"]
        lines.append(
            f"faults: {faults['worker_restarts']} pool restarts, "
            f"{faults['task_retries']} task retries, "
            f"{faults['quarantined']} quarantined"
        )
        if faults["degraded"]:
            dropped = ", ".join(
                f"{name} x{count}" for name, count in faults["degraded"].items()
            )
            lines.append(f"degraded (k-1 cross-checks): {dropped}")
        shards = snap["shards"]
        if any(shards.values()):
            lines.append(
                f"shards: {shards['restarts']} restarts, "
                f"{shards['adoptions']} ranges adopted, "
                f"{shards['seeds_quarantined']} seeds quarantined"
            )
        if snap["checkpoints"]["written"]:
            lines.append(
                f"checkpoints: {snap['checkpoints']['written']} written "
                f"in {snap['checkpoints']['total_seconds']:.3f}s"
            )
        if snap["passes"]:
            lines.append("pass pipeline (fresh compiles, parent process):")
            for name, row in snap["passes"].items():
                lines.append(
                    f"  {name:<16} x{row['applications']:<5} "
                    f"changes={row['changes']:<6} {1000 * row['seconds']:.2f}ms"
                )
        return "\n".join(lines)
