"""Supervised worker pool: deadlines, restarts, bounded retries, quarantine.

:class:`SupervisedPool` wraps a ``multiprocessing`` pool with the failure
handling a days-long campaign needs (ISSUE 3 / Table 4 scale):

* **wall-clock deadlines** — a dispatched wave that makes no progress for
  ``task_deadline`` seconds is declared stalled: whatever finished is
  harvested, the pool is torn down (reclaiming hung workers), and the
  unfinished tasks are re-dispatched.  This is the wall-clock complement
  to the VM's fuel budget: fuel bounds *guest* instructions, the deadline
  bounds *host* time (hung or silently-dead workers produce no fuel
  signal at all);
* **restart + bounded retry with exponential backoff** — failed tasks are
  re-submitted up to ``max_attempts`` times, sleeping
  ``backoff_base * backoff_factor**round`` between recovery rounds;
* **reply integrity** — every reply carries a checksum over its payload;
  a mismatch (corrupted IPC) is treated exactly like a lost task;
* **quarantine** — a task that exhausts its attempts (a *poison* task
  that keeps killing workers) is pulled from the schedule and reported to
  the caller, which degrades that program's cross-check to k-1
  implementations instead of aborting the campaign.

The pool is deliberately *task-agnostic*: tasks only need ``seq`` (a
unique, deterministic integer) and ``fault`` (the injection slot) fields.
Recovery never changes verdicts — a successfully retried task returns the
same reply a fault-free run would have produced, and the caller assembles
results keyed by ``(job, input, implementation)``, not by arrival order.

Fault injection (:mod:`repro.parallel.faults`) hooks in here: the parent
stamps each submission with the plan's decision for ``(seq, attempt)``,
keeping schedules deterministic regardless of worker interleaving.
"""

from __future__ import annotations

import atexit
import multiprocessing
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from repro.errors import EngineConfigError
from repro.parallel.faults import FaultPlan
from repro.parallel.stats import EngineStats


def backoff_delay(
    recovery_round: int, base: float, factor: float, cap: float
) -> float:
    """Exponential backoff with a cap: ``min(cap, base * factor**round)``.

    Shared by the task-level :class:`SupervisorPolicy` and the
    shard-level :class:`repro.campaigns.runtime.ShardPolicy` so both
    recovery layers pace their re-dispatches the same way.
    """
    return min(cap, base * factor**recovery_round)


@dataclass(frozen=True)
class SupervisorPolicy:
    """Recovery knobs for one :class:`SupervisedPool`."""

    #: Dispatch attempts per task before it is quarantined.
    max_attempts: int = 3
    #: Seconds a wave may go without any task completing before it is
    #: declared stalled (worker hang/death).  ``None`` disables deadlines.
    task_deadline: Optional[float] = 30.0
    #: Exponential backoff between recovery rounds, in seconds.
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    #: Readiness poll interval while waiting on a wave.
    poll_interval: float = 0.005

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise EngineConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.task_deadline is not None and self.task_deadline <= 0:
            raise EngineConfigError(
                f"task_deadline must be positive or None, got {self.task_deadline}"
            )

    def backoff(self, recovery_round: int) -> float:
        """Sleep before re-dispatching round *recovery_round* (0-based)."""
        return backoff_delay(
            recovery_round, self.backoff_base, self.backoff_factor, self.backoff_max
        )


@dataclass
class QuarantineEntry:
    """One poison task pulled from the schedule after exhausting retries."""

    seq: int
    label: str
    attempts: int
    reason: str


@dataclass
class _TaskState:
    task: object
    attempts: int = 0
    last_reason: str = ""


class SupervisedPool:
    """A restartable worker pool that survives crashes, hangs, and poison.

    The caller supplies the worker function, its initializer, and a
    ``validate(reply) -> str | None`` integrity check; ``run_tasks``
    returns ``(replies_by_seq, quarantined_by_seq)``.  Recovery accounting
    lands in the shared :class:`~repro.parallel.stats.EngineStats`.
    """

    def __init__(
        self,
        processes: int,
        worker_fn: Callable,
        initializer: Callable,
        initargs: tuple,
        policy: SupervisorPolicy | None = None,
        stats: EngineStats | None = None,
        fault_plan: FaultPlan | None = None,
        task_label: Callable[[object], str] = str,
    ) -> None:
        if processes < 1:
            raise EngineConfigError(f"processes must be >= 1, got {processes}")
        self.processes = processes
        self.worker_fn = worker_fn
        self.initializer = initializer
        self.initargs = initargs
        self.policy = policy if policy is not None else SupervisorPolicy()
        self.stats = stats if stats is not None else EngineStats()
        self.fault_plan = fault_plan
        self.task_label = task_label
        self._pool = None
        self._atexit_registered = False

    # ------------------------------------------------------------- lifecycle

    def _ensure_pool(self):
        if self._pool is None:
            methods = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in methods else "spawn"
            context = multiprocessing.get_context(method)
            self._pool = context.Pool(
                processes=self.processes,
                initializer=self.initializer,
                initargs=self.initargs,
            )
            if not self._atexit_registered:
                # Interrupted runs (SIGINT mid-campaign, sys.exit in a CLI
                # path) must not leak worker processes.
                atexit.register(self.close)
                self._atexit_registered = True
        return self._pool

    def close(self) -> None:
        """Terminate the pool (idempotent; safe to call from atexit)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        if self._atexit_registered:
            atexit.unregister(self.close)
            self._atexit_registered = False

    def _restart(self) -> None:
        """Hard-restart the pool, reclaiming hung or dead workers."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        self.stats.record_restart()

    # -------------------------------------------------------------- dispatch

    def run_tasks(
        self, tasks: list, validate: Callable[[object], Optional[str]] | None = None
    ) -> tuple[dict[int, object], dict[int, QuarantineEntry]]:
        """Run *tasks* to completion, recovering from worker faults.

        Returns replies keyed by task ``seq`` plus the quarantine map for
        tasks that exhausted ``max_attempts``.  Raises nothing for worker
        faults — only for caller bugs (duplicate seqs).
        """
        states: dict[int, _TaskState] = {}
        for task in tasks:
            if task.seq in states:
                raise EngineConfigError(f"duplicate task seq {task.seq}")
            states[task.seq] = _TaskState(task=task)
        replies: dict[int, object] = {}
        quarantined: dict[int, QuarantineEntry] = {}
        recovery_round = 0
        pending = set(states)
        while pending:
            wave = [states[seq] for seq in sorted(pending)]
            handles = {}
            pool = self._ensure_pool()
            for state in wave:
                task = state.task
                if self.fault_plan is not None:
                    task = replace(
                        task, fault=self.fault_plan.decide(task.seq, state.attempts)
                    )
                state.attempts += 1
                handles[state.task.seq] = pool.apply_async(self.worker_fn, (task,))
            done, failed = self._gather(handles, validate)
            for seq, reply in done.items():
                replies[seq] = reply
                pending.discard(seq)
            for seq, reason in failed.items():
                state = states[seq]
                state.last_reason = reason
                if state.attempts >= self.policy.max_attempts:
                    pending.discard(seq)
                    quarantined[seq] = QuarantineEntry(
                        seq=seq,
                        label=self.task_label(state.task),
                        attempts=state.attempts,
                        reason=reason,
                    )
                    self.stats.record_quarantine()
                else:
                    self.stats.record_task_retry()
            if failed:
                # A stalled wave may have left hung workers behind and a
                # crashed worker may have poisoned shared pool state;
                # restart unconditionally so the next wave starts clean.
                self._restart()
                if pending:
                    time.sleep(self.policy.backoff(recovery_round))
                    recovery_round += 1
        return replies, quarantined

    def _gather(
        self,
        handles: dict[int, multiprocessing.pool.AsyncResult],
        validate: Callable[[object], Optional[str]] | None,
    ) -> tuple[dict[int, object], dict[int, str]]:
        """Harvest one wave: ready replies, validation, stall detection.

        A worker that crashed mid-task leaves its handle forever
        unready (``multiprocessing.Pool`` respawns the process but drops
        the task), and a hung worker looks identical from the parent —
        both surface as a *stall*: no handle completing for
        ``task_deadline`` seconds.  Progress on any handle resets the
        clock, so deep queues behind a healthy pool never false-positive.
        """
        done: dict[int, object] = {}
        failed: dict[int, str] = {}
        remaining = dict(handles)
        last_progress = time.monotonic()
        while remaining:
            progressed = False
            for seq, handle in list(remaining.items()):
                if not handle.ready():
                    continue
                del remaining[seq]
                progressed = True
                try:
                    reply = handle.get()
                except BaseException as exc:  # worker-raised, re-raised here
                    failed[seq] = f"worker exception: {exc!r}"
                    continue
                reason = validate(reply) if validate is not None else None
                if reason is not None:
                    failed[seq] = reason
                    continue
                done[seq] = reply
            if not remaining:
                break
            now = time.monotonic()
            if progressed:
                last_progress = now
            elif (
                self.policy.task_deadline is not None
                and now - last_progress > self.policy.task_deadline
            ):
                for seq in remaining:
                    failed[seq] = (
                        "wall-clock deadline expired (worker hung or died)"
                    )
                break
            time.sleep(self.policy.poll_interval)
        return done, failed
