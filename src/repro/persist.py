"""Atomic, integrity-checked, durable persistence.

Two layers live here.  The low-level helpers (:func:`atomic_write_bytes`
and friends) implement the one durable-write discipline every on-disk
artifact in the repo is supposed to use: write to a ``.tmp`` file in the
same directory, flush + ``fsync`` the file, ``os.replace`` it over the
final name, then ``fsync`` the *directory* so the rename itself survives
a power cut.  A kill at any instant leaves either the old file or the
new one under the final name, never a torn hybrid.

On top of that, :func:`write_record`/:func:`read_record` define the
record shape every campaign checkpoint shares (the byte-input fuzzer in
:mod:`repro.fuzzing.checkpoint`, the generative campaign, the sanval
campaign, and the sharded runtime in :mod:`repro.campaigns.runtime`)::

    8 bytes   format magic (per record type)
    4 bytes   CRC32 (big-endian) over the payload
    N bytes   pickled object

A torn, truncated, or bit-flipped record fails the magic/CRC check on
load with a :class:`~repro.errors.CheckpointError` instead of resuming
from garbage.
"""

from __future__ import annotations

import json
import os
import pickle
import struct
import zlib
from typing import Any

from repro.errors import CheckpointError

#: Every record type's magic is exactly this long.
MAGIC_LENGTH = 8


def fsync_directory(directory: str) -> None:
    """Best-effort fsync of *directory* (durability of renames within it).

    Some filesystems (and non-POSIX platforms) refuse to fsync a
    directory fd; durability degrades gracefully there — the rename is
    still atomic, it just may not survive a power cut.
    """
    try:
        fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-specific
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-specific
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | os.PathLike, data: bytes) -> str:
    """Durably write *data* to *path*: tmp + fsync + rename + dir fsync."""
    path = os.fspath(path)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    fsync_directory(directory)
    return path


def atomic_write_text(path: str | os.PathLike, text: str) -> str:
    """Durably write *text* (UTF-8) to *path*."""
    return atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(path: str | os.PathLike, obj: Any) -> str:
    """Durably write *obj* as pretty-printed JSON to *path*."""
    return atomic_write_text(path, json.dumps(obj, indent=2) + "\n")


def write_record(path: str, magic: bytes, obj: Any) -> str:
    """Atomically persist *obj* as a magic+CRC+pickle record at *path*."""
    if len(magic) != MAGIC_LENGTH:
        raise ValueError(f"record magic must be {MAGIC_LENGTH} bytes, got {magic!r}")
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    record = magic + struct.pack(">I", zlib.crc32(payload)) + payload
    return atomic_write_bytes(path, record)


def read_record(path: str, magic: bytes, expected_type: type) -> Any:
    """Load and verify the record at *path*; must be an *expected_type*."""
    try:
        with open(path, "rb") as handle:
            record = handle.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
    if len(record) < len(magic) + 4 or not record.startswith(magic):
        raise CheckpointError(f"{path!r} is not a campaign checkpoint (bad magic)")
    (expected_crc,) = struct.unpack(">I", record[len(magic) : len(magic) + 4])
    payload = record[len(magic) + 4 :]
    if zlib.crc32(payload) != expected_crc:
        raise CheckpointError(
            f"{path!r} failed its integrity check (torn write or corruption)"
        )
    try:
        obj = pickle.loads(payload)
    except Exception as exc:
        raise CheckpointError(f"{path!r} cannot be unpickled: {exc}") from exc
    if not isinstance(obj, expected_type):
        raise CheckpointError(
            f"{path!r} holds a {type(obj).__name__}, not a {expected_type.__name__}"
        )
    return obj
