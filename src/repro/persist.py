"""Atomic, integrity-checked record persistence.

The on-disk shape both campaign checkpoints share (the byte-input fuzzer
in :mod:`repro.fuzzing.checkpoint` and the generative campaign in
:mod:`repro.generative.campaign`)::

    8 bytes   format magic (per record type)
    4 bytes   CRC32 (big-endian) over the payload
    N bytes   pickled object

Writes are atomic: the record goes to a ``.tmp`` file in the same
directory, is fsync'd, then ``os.replace``-d over the final name — a
kill mid-write leaves the previous record intact, and a torn or
bit-flipped record fails the CRC on load with a
:class:`~repro.errors.CheckpointError` instead of resuming from garbage.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from typing import Any

from repro.errors import CheckpointError

#: Every record type's magic is exactly this long.
MAGIC_LENGTH = 8


def write_record(path: str, magic: bytes, obj: Any) -> str:
    """Atomically persist *obj* as a magic+CRC+pickle record at *path*."""
    if len(magic) != MAGIC_LENGTH:
        raise ValueError(f"record magic must be {MAGIC_LENGTH} bytes, got {magic!r}")
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    record = magic + struct.pack(">I", zlib.crc32(payload)) + payload
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(record)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def read_record(path: str, magic: bytes, expected_type: type) -> Any:
    """Load and verify the record at *path*; must be an *expected_type*."""
    try:
        with open(path, "rb") as handle:
            record = handle.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
    if len(record) < len(magic) + 4 or not record.startswith(magic):
        raise CheckpointError(f"{path!r} is not a campaign checkpoint (bad magic)")
    (expected_crc,) = struct.unpack(">I", record[len(magic) : len(magic) + 4])
    payload = record[len(magic) + 4 :]
    if zlib.crc32(payload) != expected_crc:
        raise CheckpointError(
            f"{path!r} failed its integrity check (torn write or corruption)"
        )
    try:
        obj = pickle.loads(payload)
    except Exception as exc:
        raise CheckpointError(f"{path!r} cannot be unpickled: {exc}") from exc
    if not isinstance(obj, expected_type):
        raise CheckpointError(
            f"{path!r} holds a {type(obj).__name__}, not a {expected_type.__name__}"
        )
    return obj
