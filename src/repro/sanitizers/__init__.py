"""Sanitizer analogs (dynamic UB detectors).

Each sanitizer is an instrumented build of the target (the runtime checks
live in :mod:`repro.vm`) wrapped in the tool-style interface the
evaluation drivers consume.  Scopes follow the paper's Table 1:

* **ASan** — memory errors (stack/heap/global buffer overflow, use after
  free, double free, invalid free).
* **UBSan** — miscellaneous UBs (signed overflow, division by zero,
  invalid shifts, null dereference).
* **MSan** — uses of uninitialized memory, *only* when the value decides a
  branch (the paper's §2 Example 3 explains why value-flow uses are out of
  scope to avoid false positives).
"""

from repro.sanitizers.base import Sanitizer, SanitizerFinding
from repro.sanitizers.asan import AddressSanitizer
from repro.sanitizers.ubsan import UndefinedBehaviorSanitizer
from repro.sanitizers.msan import MemorySanitizer


def all_sanitizers() -> list[Sanitizer]:
    """The three sanitizers of the paper's evaluation, fresh instances."""
    return [AddressSanitizer(), UndefinedBehaviorSanitizer(), MemorySanitizer()]


__all__ = [
    "AddressSanitizer",
    "MemorySanitizer",
    "Sanitizer",
    "SanitizerFinding",
    "UndefinedBehaviorSanitizer",
    "all_sanitizers",
]
