"""AddressSanitizer analog: memory-error detection via redzones.

Scope (Table 1): buffer overflows (stack/heap/global), use after free,
double free, free of non-heap memory.  Like the real tool it cannot see
*intra-object* overflows (a write past one struct field into the next) or
overflows that jump clean over a redzone into another live object — which
is why its detection rate on the Juliet memory-error CWEs is high but not
total.
"""

from __future__ import annotations

from repro.sanitizers.base import Sanitizer


class AddressSanitizer(Sanitizer):
    """ASan analog: redzone-based memory-error detection."""

    name = "asan"
    detects = frozenset(
        {
            "stack-buffer-overflow",
            "heap-buffer-overflow",
            "global-buffer-overflow",
            "heap-use-after-free",
            "double-free",
            "bad-free",
            "memcpy-param-overlap",
        }
    )
