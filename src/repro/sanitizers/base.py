"""Common sanitizer interface."""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler import SANITIZER_CONFIG, CompiledBinary, compile_program
from repro.minic import ast as minic_ast
from repro.minic import load
from repro.vm import ForkServer
from repro.vm.machine import DEFAULT_FUEL


@dataclass(frozen=True)
class SanitizerFinding:
    """One sanitizer report on one input."""

    tool: str
    kind: str
    line: int
    detail: str
    input: bytes


class Sanitizer:
    """A dynamic checker: instrumented build + runtime checks.

    Subclasses set :attr:`name` (the VM check-suite id) and
    :attr:`detects` (report kinds this tool can emit, for scope queries).
    """

    name: str = ""
    detects: frozenset[str] = frozenset()

    def __init__(self, fuel: int = DEFAULT_FUEL) -> None:
        self.fuel = fuel

    def build(self, program: minic_ast.Program, name: str = "") -> ForkServer:
        """Compile *program* with instrumentation enabled."""
        binary: CompiledBinary = compile_program(
            program, SANITIZER_CONFIG, name=name, sanitizer=self.name
        )
        return ForkServer(binary, fuel=self.fuel)

    def check_all(
        self, program: minic_ast.Program, inputs: list[bytes], name: str = ""
    ) -> list[SanitizerFinding]:
        """Run every input under the sanitizer; return every finding.

        At most one finding per input — an instrumented run aborts at
        its first report, like the real tools without
        ``halt_on_error=0`` — but distinct inputs can each contribute
        one, which is what false-positive accounting needs.
        """
        server = self.build(program, name=name)
        findings: list[SanitizerFinding] = []
        for input_bytes in inputs:
            result = server.run(input_bytes)
            if result.sanitizer_report is not None:
                kind, line, detail = result.sanitizer_report
                findings.append(
                    SanitizerFinding(
                        tool=self.name, kind=kind, line=line, detail=detail, input=input_bytes
                    )
                )
        return findings

    def check(
        self, program: minic_ast.Program, inputs: list[bytes], name: str = ""
    ) -> SanitizerFinding | None:
        """Run *inputs* under the sanitizer; return the first finding."""
        findings = self.check_all(program, inputs, name=name)
        return findings[0] if findings else None

    def check_source(self, source: str, inputs: list[bytes]) -> SanitizerFinding | None:
        """Like :meth:`check`, from source text."""
        return self.check(load(source), inputs)
