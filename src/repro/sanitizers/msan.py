"""MemorySanitizer analog: uninitialized-memory use detection.

Scope (Table 1): uses of uninitialized values — but, following the real
tool's false-positive-avoidance design the paper highlights in §2
Example 3, a report fires only when an uninitialized value *decides a
branch*.  Copying, printing, or storing indeterminate bytes propagates
shadow but does not report, so Listing-4-style value flows are missed
(the 7% row of Table 3).
"""

from __future__ import annotations

from repro.sanitizers.base import Sanitizer


class MemorySanitizer(Sanitizer):
    """MSan analog: branch-scoped uninitialized-value detection."""

    name = "msan"
    detects = frozenset({"use-of-uninitialized-value"})
