"""UndefinedBehaviorSanitizer analog.

Scope (Table 1): miscellaneous UB with a local, checkable definition —
signed integer overflow, division by zero, invalid shift amounts, null
pointer dereference.  UB without a practical check (cross-object pointer
comparison, unsequenced side effects, pointer subtraction across objects)
is out of scope, exactly as the paper's §2 discusses.
"""

from __future__ import annotations

from repro.sanitizers.base import Sanitizer


class UndefinedBehaviorSanitizer(Sanitizer):
    """UBSan analog: checks for locally-definable UB."""

    name = "ubsan"
    detects = frozenset(
        {
            "signed-integer-overflow",
            "division-by-zero",
            "invalid-shift",
            "null-pointer-dereference",
            "function-type-mismatch",
        }
    )
