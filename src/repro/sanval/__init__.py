"""Sanitizer-implementation validation: turn the UB oracle on the checkers.

The UBfuzz workload (docs/SANVAL.md): generate semantically-equivalent
variants of UB programs that move the UB activation site across
function/loop/call boundaries, run every variant under the three
sanitizer analogs, and classify each outcome (TP/FN/FP/TN) against two
independent ground truths — the interprocedural UB oracle and the
ten-implementation differential verdict.  Confirmed sanitizer misses
(FN) and spurious reports (FP) are delta-debugged and banked with their
full evidence chains.  Entry point: ``repro sancheck``.
"""

from repro.sanval.bank import BankedFinding, FindingBank, finding_key
from repro.sanval.campaign import (
    SancheckCampaign,
    SancheckOptions,
    SancheckResult,
    SanSeed,
    corpus_seeds,
    fixture_seeds,
    generator_seeds,
)
from repro.sanval.relocate import (
    RELOCATION_KINDS,
    RelocatedVariant,
    relocate,
    relocation_variants,
)
from repro.sanval.verdict import (
    FN,
    FP,
    ORACLE_KIND_SCOPE,
    OUTCOMES,
    TN,
    TP,
    GroundTruth,
    SanitizerStillFires,
    SanitizerStillSilent,
    SanVerdict,
    VerdictEngine,
    expected_kinds,
)

__all__ = [
    "BankedFinding",
    "FindingBank",
    "FN",
    "FP",
    "GroundTruth",
    "ORACLE_KIND_SCOPE",
    "OUTCOMES",
    "RELOCATION_KINDS",
    "RelocatedVariant",
    "SanSeed",
    "SanVerdict",
    "SancheckCampaign",
    "SancheckOptions",
    "SancheckResult",
    "SanitizerStillFires",
    "SanitizerStillSilent",
    "TN",
    "TP",
    "VerdictEngine",
    "corpus_seeds",
    "expected_kinds",
    "finding_key",
    "fixture_seeds",
    "generator_seeds",
    "relocate",
    "relocation_variants",
]
