"""Finding bank for confirmed sanitizer FNs/FPs: reduced, deduped, on disk.

Mirrors the generative :class:`~repro.generative.bank.CorpusBank` layout
so tooling can treat both the same way::

    manifest.json        # SANVAL_BANK_VERSION + one record per finding
    programs/<key>.c     # reduced program that exhibits the FN/FP

Dedupe is by *evidence class*, not source text: the key hashes the
sanitizer, the outcome, the report kinds involved, the oracle checkers
and their fingerprints, and the implementation partition.  The same
miss rediscovered through a different relocation of the same seed (same
function, same oracle fingerprint) banks once; a miss that moved into a
different function (distinct fingerprint) is new evidence and banks
separately.

Manifest and program writes are atomic and durable (tmp + fsync +
``os.replace`` + directory fsync via :mod:`repro.persist`) and program
files land before the manifest references them, so a campaign killed
mid-bank leaves a loadable bank behind.  Banks corrupted anyway are
salvaged by ``repro bank fsck`` (:mod:`repro.campaigns.fsck`).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ReproError
from repro.persist import atomic_write_json, atomic_write_text

#: Manifest format version; bump on incompatible layout changes.
SANVAL_BANK_VERSION = 1


def finding_key(
    sanitizer: str,
    outcome: str,
    kinds: tuple[str, ...],
    checkers: tuple[str, ...],
    fingerprints: tuple[str, ...],
    partition: tuple[tuple[str, ...], ...],
) -> str:
    """Dedupe key of a finding's evidence class (16 hex chars)."""
    partition_sig = ";".join(",".join(group) for group in partition)
    blob = "#".join(
        (
            sanitizer,
            outcome,
            ",".join(sorted(kinds)),
            ",".join(sorted(checkers)),
            ",".join(sorted(fingerprints)),
            partition_sig,
        )
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


@dataclass
class BankedFinding:
    """One banked sanitizer defect: evidence chain + reduced repro."""

    key: str
    sanitizer: str
    #: "FN" or "FP".
    outcome: str
    #: Seed label and relocation kind that first exposed the defect.
    seed: str
    variant: str
    #: Report kinds: expected-but-missing (FN) or spuriously fired (FP).
    kinds: tuple[str, ...]
    #: Oracle side of the evidence chain (empty for FPs by construction).
    checkers: tuple[str, ...]
    oracle_fingerprints: tuple[str, ...]
    #: Differential side: partition + culprit pair ("" for stable FPs).
    partition: tuple[tuple[str, ...], ...]
    impl_ref: str
    impl_target: str
    #: Reduced program exhibiting the defect, and the inputs that drive it.
    source: str
    inputs: list[bytes]
    original_nodes: int = 0
    reduced_nodes: int = 0
    reduction_steps: int = 0
    reduction_tests: int = 0

    def to_json(self) -> dict:
        return {
            "key": self.key,
            "sanitizer": self.sanitizer,
            "outcome": self.outcome,
            "seed": self.seed,
            "variant": self.variant,
            "kinds": list(self.kinds),
            "checkers": list(self.checkers),
            "oracle_fingerprints": list(self.oracle_fingerprints),
            "partition": [list(group) for group in self.partition],
            "impl_ref": self.impl_ref,
            "impl_target": self.impl_target,
            "inputs_hex": [i.hex() for i in self.inputs],
            "original_nodes": self.original_nodes,
            "reduced_nodes": self.reduced_nodes,
            "reduction_steps": self.reduction_steps,
            "reduction_tests": self.reduction_tests,
        }

    @staticmethod
    def from_json(data: dict, source: str) -> "BankedFinding":
        return BankedFinding(
            key=data["key"],
            sanitizer=data["sanitizer"],
            outcome=data["outcome"],
            seed=data["seed"],
            variant=data["variant"],
            kinds=tuple(data["kinds"]),
            checkers=tuple(data["checkers"]),
            oracle_fingerprints=tuple(data["oracle_fingerprints"]),
            partition=tuple(tuple(group) for group in data["partition"]),
            impl_ref=data["impl_ref"],
            impl_target=data["impl_target"],
            source=source,
            inputs=[bytes.fromhex(i) for i in data["inputs_hex"]],
            original_nodes=data["original_nodes"],
            reduced_nodes=data["reduced_nodes"],
            reduction_steps=data["reduction_steps"],
            reduction_tests=data["reduction_tests"],
        )


class FindingBank:
    """A sanval bank directory: load, dedupe, append, persist."""

    MANIFEST = "manifest.json"
    PROGRAMS_DIR = "programs"

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self._findings: dict[str, BankedFinding] = {}
        if self.manifest_path.exists():
            self._load()

    # --------------------------------------------------------------- queries

    @property
    def manifest_path(self) -> Path:
        return self.root / self.MANIFEST

    @property
    def programs_dir(self) -> Path:
        return self.root / self.PROGRAMS_DIR

    def __len__(self) -> int:
        return len(self._findings)

    def __contains__(self, key: str) -> bool:
        return key in self._findings

    def __iter__(self):
        return iter(self.findings())

    def findings(self) -> list[BankedFinding]:
        """All banked findings, in key order (stable across runs)."""
        return [self._findings[key] for key in sorted(self._findings)]

    def keys(self) -> list[str]:
        return sorted(self._findings)

    def get(self, key: str) -> BankedFinding | None:
        return self._findings.get(key)

    # ------------------------------------------------------------ mutation

    def add(self, finding: BankedFinding) -> bool:
        """Bank *finding* unless its evidence class is already present."""
        if finding.key in self._findings:
            return False
        self.programs_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_text(self._source_path(finding.key), finding.source)
        self._findings[finding.key] = finding
        self._write_manifest()
        return True

    # ------------------------------------------------------------ internals

    def _source_path(self, key: str) -> Path:
        return self.programs_dir / f"{key}.c"

    def _write_manifest(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": SANVAL_BANK_VERSION,
            "findings": [self._findings[key].to_json() for key in sorted(self._findings)],
        }
        atomic_write_json(self.manifest_path, payload)

    def _load(self) -> None:
        try:
            data = json.loads(self.manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(
                f"sanval manifest {self.manifest_path} is unreadable: {exc} "
                f"(salvage with `repro bank fsck {self.root}`)"
            ) from exc
        if data.get("version") != SANVAL_BANK_VERSION:
            raise ReproError(
                f"sanval manifest version {data.get('version')!r}; "
                f"expected {SANVAL_BANK_VERSION}"
            )
        for record in data["findings"]:
            key = record["key"]
            try:
                source = self._source_path(key).read_text()
            except OSError as exc:
                raise ReproError(
                    f"sanval program for banked finding {key} is missing: {exc} "
                    f"(salvage with `repro bank fsck {self.root}`)"
                ) from exc
            self._findings[key] = BankedFinding.from_json(record, source)
