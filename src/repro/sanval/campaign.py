"""The sanitizer-validation campaign behind ``repro sancheck``.

One campaign sweeps a deterministic seed list through
relocation × sanitizer classification:

1. **seed** — UB programs come from three sources, in fixed order:
   a planted fixture corpus (``tests/fixtures/sanval``), the PR 6
   generative corpus bank, and fresh generator seeds from the ``ub``
   profile.  Each seed is a (bad, good-twin) pair; generator seeds are
   stabilized on the fly with the PR 6 single-step machinery.
2. **relocate** — the bad side fans out into identity + every
   applicable relocation (:mod:`repro.sanval.relocate`), each variant
   re-validated: a relocation that loses the oracle's *confirmed*
   verdict is dropped (and counted), never judged.
3. **judge** — every (sanitizer, variant) pair is classified TP/FN/FP/TN
   by the :class:`~repro.sanval.verdict.VerdictEngine` against the
   interprocedural oracle and the ten-implementation differential
   verdict.
4. **bank** — every FN and FP is delta-debugged under its pinning
   predicate (:class:`SanitizerStillSilent` / :class:`SanitizerStillFires`)
   and banked into a :class:`~repro.sanval.bank.FindingBank`, deduped
   by evidence class.

Determinism is a hard contract: the same options over the same seed
sources produce byte-identical verdict lists and scoreboards at any
worker count (the differential engine already guarantees byte-identical
verdicts; everything above it is sequential and sorted).  Campaigns
checkpoint at seed boundaries with the same atomic magic+CRC record as
the fuzzer and the generative campaign, and refuse to resume under
changed options.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from repro.campaigns.sigint import DeferredInterrupt
from repro.core.compdiff import CompDiff
from repro.errors import CheckpointError, ReproError
from repro.generative.generator import generate_program
from repro.generative.reducer import (
    DEFAULT_STEP_BUDGET,
    DEFAULT_TEST_BUDGET,
    Reducer,
    single_step_variants,
)
from repro.minic import count_nodes, load
from repro.persist import read_record, write_record
from repro.sanval.bank import BankedFinding, FindingBank, finding_key
from repro.sanval.relocate import RELOCATION_KINDS, relocation_variants
from repro.sanval.verdict import (
    FN,
    FP,
    OUTCOMES,
    GroundTruth,
    SanitizerStillFires,
    SanitizerStillSilent,
    SanVerdict,
    VerdictEngine,
)
from repro.static_analysis.ub_oracle import UBOracle

#: Checkpoint record magic (distinct from fuzzer/generative campaigns).
MAGIC = b"RPRSANC1"
#: Checkpoint file name inside the checkpoint directory.
CHECKPOINT_FILE = "sancheck.ckpt"

#: Fixture-corpus manifest version.
FIXTURES_VERSION = 1

#: The untransformed variant's kind label.
IDENTITY = "identity"

#: Scoreboard schema version (benchmarks/BENCH_sanval.json).
SCOREBOARD_VERSION = 1

#: Relocations applied to good twins.  ``carry`` is keyed to a UB site
#: and twins have none, so only the site-independent relocations run.
GOOD_RELOCATIONS = ("outline", "loop_shift")


@dataclass(frozen=True)
class SanSeed:
    """One campaign seed: a UB program and (optionally) its good twin."""

    label: str
    bad_source: str
    good_source: str | None
    inputs: tuple[bytes, ...]


@dataclass
class SancheckOptions:
    """Campaign configuration (everything verdict-relevant is digested)."""

    #: Planted fixture corpus directory (None = skip the source).
    fixtures: str | None = None
    #: PR 6 generative corpus bank directory (None = skip the source).
    corpus: str | None = None
    #: Generator seed range ``seed .. seed+budget-1`` (budget 0 = skip).
    seed: int = 0
    budget: int = 0
    profile: str = "ub"
    #: Inputs for generator-sourced seeds (fixtures/corpus carry their own).
    inputs: list[bytes] = field(default_factory=lambda: [b""])
    relocations: tuple[str, ...] = RELOCATION_KINDS
    #: Reduce banked FN/FP repros (disable to bank raw variants).
    reduce: bool = True
    step_budget: int = DEFAULT_STEP_BUDGET
    test_budget: int = DEFAULT_TEST_BUDGET
    #: Candidate cap for stabilizing generator seeds into good twins.
    stabilize_budget: int = 20
    #: Directory for progress checkpoints (None = no checkpointing).
    checkpoint_dir: str | None = None
    #: Checkpoint cadence in processed seeds.
    checkpoint_every: int = 1
    #: CompDiff worker processes (>1 = the supervised pool).
    workers: int = 1

    def digest(self) -> str:
        """Digest of every option that changes the verdict stream."""
        parts = (
            SCOREBOARD_VERSION,
            self.fixtures,
            self.corpus,
            self.seed,
            self.budget,
            self.profile,
            tuple(self.inputs),
            self.relocations,
            self.reduce,
            self.step_budget,
            self.test_budget,
            self.stabilize_budget,
        )
        return hashlib.sha256(repr(parts).encode("utf-8")).hexdigest()


@dataclass
class SancheckCheckpoint:
    """Campaign progress at a seed boundary."""

    options_digest: str
    #: Seeds ``0 .. offset-1`` of the seed list are fully processed.
    offset: int
    seeds: int
    variants: int
    dropped: int
    screened: int
    skipped: int
    banked_new: int
    duplicates: int
    verdicts: list[SanVerdict] = field(default_factory=list)


@dataclass
class SancheckResult:
    """Outcome of one campaign run."""

    #: Seeds judged (bad side reached classification).
    seeds: int = 0
    #: (sanitizer, variant) pairs classified, both roles.
    variants: int = 0
    #: Relocated bad variants dropped for losing the confirmed verdict.
    dropped: int = 0
    #: Good-twin variants rejected by the cleanliness screen.
    screened: int = 0
    #: Seeds skipped entirely (no oracle-confirmed UB on the bad side).
    skipped: int = 0
    #: FN/FP findings newly banked by this run.
    banked_new: int = 0
    #: FN/FP findings whose evidence class was already banked.
    duplicates: int = 0
    verdicts: list[SanVerdict] = field(default_factory=list)
    #: Bank size after the run (0 when no bank attached).
    bank_size: int = 0
    #: Seed offset this run resumed from (None = fresh start).
    resumed_at: int | None = None

    # ------------------------------------------------------------ scoreboard

    def counts(self) -> dict[str, dict[str, int]]:
        """Per-sanitizer outcome counts, fully populated, sorted keys."""
        table: dict[str, dict[str, int]] = {}
        for verdict in self.verdicts:
            row = table.setdefault(
                verdict.sanitizer, {outcome: 0 for outcome in OUTCOMES}
            )
            row[verdict.outcome] += 1
        return {name: table[name] for name in sorted(table)}

    def kind_counts(self) -> dict[str, dict[str, dict[str, int]]]:
        """Per-sanitizer per-report-kind outcome counts.

        FN rows tally the *expected* kinds (what went unreported); the
        other outcomes tally the kinds actually reported.
        """
        table: dict[str, dict[str, dict[str, int]]] = {}
        for verdict in self.verdicts:
            kinds = verdict.expected if verdict.outcome == FN else verdict.reported_kinds
            for kind in kinds:
                row = table.setdefault(verdict.sanitizer, {}).setdefault(
                    kind, {outcome: 0 for outcome in OUTCOMES}
                )
                row[verdict.outcome] += 1
        return {
            name: {kind: kinds[kind] for kind in sorted(kinds)}
            for name, kinds in sorted(table.items())
        }

    def findings(self) -> list[SanVerdict]:
        """The FN/FP verdicts, in judgment order."""
        return [v for v in self.verdicts if v.outcome in (FN, FP)]

    def to_json(self) -> dict:
        """The scoreboard document (benchmarks/BENCH_sanval.json shape)."""
        return {
            "version": SCOREBOARD_VERSION,
            "seeds": self.seeds,
            "variants": self.variants,
            "dropped": self.dropped,
            "screened": self.screened,
            "skipped": self.skipped,
            "per_sanitizer": self.counts(),
            "per_kind": self.kind_counts(),
            "findings": [v.to_json() for v in self.findings()],
        }

    def render(self) -> str:
        counts = self.counts()
        lines = [
            f"sancheck: {self.seeds} seeds, {self.variants} variants judged "
            f"({self.dropped} relocations dropped, {self.screened} twins "
            f"screened out, {self.skipped} seeds skipped)",
            f"{'sanitizer':<10} {'TP':>4} {'FN':>4} {'FP':>4} {'TN':>4}",
        ]
        for name, row in counts.items():
            lines.append(
                f"{name:<10} {row['TP']:>4} {row['FN']:>4} {row['FP']:>4} {row['TN']:>4}"
            )
        if self.bank_size:
            lines.append(
                f"bank: {self.banked_new} newly banked "
                f"({self.duplicates} duplicate classes), size {self.bank_size}"
            )
        if self.resumed_at is not None:
            lines.append(f"resumed at seed offset {self.resumed_at}")
        return "\n".join(lines)


# --------------------------------------------------------------------------
# Seed sources
# --------------------------------------------------------------------------


def fixture_seeds(fixtures_dir: str | os.PathLike) -> list[SanSeed]:
    """Load a planted fixture corpus, in manifest order.

    Manifest shape (``manifest.json``)::

        {"version": 1,
         "cases": [{"id": ..., "bad": "x.c", "good": "x.good.c",
                    "inputs_hex": [""]}, ...]}

    ``good`` is optional; ``inputs_hex`` defaults to the empty input.
    """
    root = Path(fixtures_dir)
    try:
        manifest = json.loads((root / "manifest.json").read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"sanval fixtures at {root} are unreadable: {exc}") from exc
    if manifest.get("version") != FIXTURES_VERSION:
        raise ReproError(
            f"sanval fixtures version {manifest.get('version')!r}; "
            f"expected {FIXTURES_VERSION}"
        )
    seeds = []
    for case in manifest["cases"]:
        good = case.get("good")
        inputs = tuple(bytes.fromhex(i) for i in case.get("inputs_hex", [""]))
        seeds.append(
            SanSeed(
                label=case["id"],
                bad_source=(root / case["bad"]).read_text(),
                good_source=(root / good).read_text() if good else None,
                inputs=inputs or (b"",),
            )
        )
    return seeds


def corpus_seeds(corpus_dir: str | os.PathLike) -> list[SanSeed]:
    """The PR 6 generative corpus bank as campaign seeds, key order."""
    from repro.generative.bank import CorpusBank

    seeds = []
    for repro in CorpusBank(corpus_dir):
        seeds.append(
            SanSeed(
                label=f"corpus-{repro.key}",
                bad_source=repro.source,
                good_source=repro.good_source,
                inputs=tuple(repro.inputs) or (b"",),
            )
        )
    return seeds


def generator_seeds(
    seed: int, budget: int, profile: str, inputs: list[bytes]
) -> list[SanSeed]:
    """Fresh generator programs as campaign seeds (twins come later)."""
    seeds = []
    for offset in range(budget):
        generated = generate_program(seed + offset, profile)
        seeds.append(
            SanSeed(
                label=f"gen-{profile}-{seed + offset}",
                bad_source=generated.source,
                good_source=None,
                inputs=tuple(inputs) or (b"",),
            )
        )
    return seeds


def build_seeds(options: SancheckOptions) -> list[SanSeed]:
    """The deterministic seed list *options* describes: fixtures, then
    corpus bank, then fresh generator seeds.

    Module-level (rather than only a campaign method) so the sharded
    runtime can size and label the list without spinning up a campaign's
    engine and oracle.
    """
    seeds: list[SanSeed] = []
    if options.fixtures:
        seeds.extend(fixture_seeds(options.fixtures))
    if options.corpus:
        seeds.extend(corpus_seeds(options.corpus))
    if options.budget > 0:
        seeds.extend(
            generator_seeds(
                options.seed, options.budget, options.profile, options.inputs
            )
        )
    return seeds


def seed_labels(options: SancheckOptions) -> list[str]:
    """Labels of the seed list, in offset order (quarantine ledger keys)."""
    return [seed.label for seed in build_seeds(options)]


# --------------------------------------------------------------------------
# Campaign
# --------------------------------------------------------------------------


class SancheckCampaign:
    """Drives seed → relocate → judge → bank for ``repro sancheck``.

    ``seed_slice``/``skip_offsets``/``progress``/``interruptible`` mirror
    :class:`~repro.generative.campaign.GenerativeCampaign`: a slice is a
    global ``[start, stop)`` window over the deterministic seed list
    (the sharded runtime's partitioning hook), skipped offsets are
    quarantined poison seeds, ``progress`` fires at each seed boundary
    before the seed runs, and shard workers disable the deferred-SIGINT
    handler so the supervisor owns interrupts.
    """

    def __init__(
        self,
        options: SancheckOptions,
        bank: FindingBank | None = None,
        engine: CompDiff | None = None,
        seed_slice: tuple[int, int] | None = None,
        skip_offsets: frozenset[int] = frozenset(),
        progress: Optional[Callable[[int], None]] = None,
        interruptible: bool = True,
    ) -> None:
        self.options = options
        self.bank = bank
        self.seed_slice = seed_slice
        self.skip_offsets = frozenset(skip_offsets)
        self.progress = progress
        self.interruptible = interruptible
        self._owns_engine = engine is None
        if engine is None:
            engine = CompDiff(workers=options.workers)
        self.engine = engine
        self.oracle = UBOracle(mode="interproc")
        self.verdicts = VerdictEngine(engine, oracle=self.oracle)

    def __enter__(self) -> "SancheckCampaign":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self._owns_engine:
            self.engine.close()

    # ------------------------------------------------------------- seed list

    def seeds(self) -> list[SanSeed]:
        """The campaign's full seed list, deterministic order."""
        return build_seeds(self.options)

    # --------------------------------------------------------------- campaign

    def run(self) -> SancheckResult:
        options = self.options
        result = SancheckResult()
        seeds = self.seeds()
        lo, hi = self.seed_slice if self.seed_slice is not None else (0, len(seeds))
        start = lo
        checkpoint = self._load_checkpoint()
        if checkpoint is not None:
            start = max(lo, checkpoint.offset)
            result.seeds = checkpoint.seeds
            result.variants = checkpoint.variants
            result.dropped = checkpoint.dropped
            result.screened = checkpoint.screened
            result.skipped = checkpoint.skipped
            result.banked_new = checkpoint.banked_new
            result.duplicates = checkpoint.duplicates
            result.verdicts = list(checkpoint.verdicts)
            result.resumed_at = start
        processed_through = start
        with DeferredInterrupt(enabled=self.interruptible) as intr:
            for offset in range(start, hi):
                if intr.pending:
                    if options.checkpoint_dir is not None:
                        self._save_checkpoint(processed_through, result)
                    raise KeyboardInterrupt(
                        "campaign interrupted; checkpoint flushed"
                    )
                if self.progress is not None:
                    self.progress(offset)
                if offset not in self.skip_offsets:
                    self._process(seeds[offset], result)
                processed_through = offset + 1
                if (
                    options.checkpoint_dir is not None
                    and (offset + 1 - start) % options.checkpoint_every == 0
                ):
                    self._save_checkpoint(processed_through, result)
        if options.checkpoint_dir is not None:
            self._save_checkpoint(processed_through, result)
        if self.bank is not None:
            result.bank_size = len(self.bank)
        return result

    # -------------------------------------------------------------- one seed

    def _process(self, seed: SanSeed, result: SancheckResult) -> None:
        options = self.options
        inputs = list(seed.inputs)
        name = f"sanval-{seed.label}"
        try:
            truth0 = self.verdicts.ground_truth(seed.bad_source, inputs, name=name)
        except ReproError:
            result.skipped += 1
            return
        if not truth0.confirmed_checkers:
            # Without a confirmed oracle verdict there is no FN ground
            # truth to validate sanitizers against; skip the seed.
            result.skipped += 1
            return
        result.seeds += 1

        variants: list[tuple[str, str, GroundTruth | None]] = [
            (IDENTITY, seed.bad_source, truth0)
        ]
        for relocated in relocation_variants(
            seed.bad_source, line=truth0.line, kinds=options.relocations
        ):
            variants.append((relocated.kind, relocated.source, None))

        pinned = set(truth0.confirmed_checkers)
        for kind, source, truth in variants:
            if truth is None:
                try:
                    truth = self.verdicts.ground_truth(source, inputs, name=name)
                except ReproError:  # pragma: no cover - relocate pre-validates
                    result.dropped += 1
                    continue
                if not (set(truth.confirmed_checkers) & pinned):
                    # The relocation lost the oracle's confirmed verdict;
                    # judging it would have no FN ground truth behind it.
                    result.dropped += 1
                    continue
            for verdict in self.verdicts.judge_bad(
                source, inputs, seed=seed.label, variant=kind, truth=truth, name=name
            ):
                result.variants += 1
                result.verdicts.append(verdict)
                if verdict.outcome == FN:
                    self._bank_finding(verdict, result)

        good = seed.good_source
        if good is None:
            good = self._stabilize(seed.bad_source, inputs, name=name)
        if good is None:
            return
        good_variants: list[tuple[str, str]] = [(IDENTITY, good)]
        good_kinds = tuple(k for k in options.relocations if k in GOOD_RELOCATIONS)
        for relocated in relocation_variants(good, kinds=good_kinds):
            good_variants.append((relocated.kind, relocated.source))
        for kind, source in good_variants:
            try:
                judged = self.verdicts.judge_good(
                    source, inputs, seed=seed.label, variant=kind, name=name
                )
            except ReproError:  # pragma: no cover - sources pre-validated
                result.screened += 1
                continue
            if judged is None:
                result.screened += 1
                continue
            for verdict in judged:
                result.variants += 1
                result.verdicts.append(verdict)
                if verdict.outcome == FP:
                    self._bank_finding(verdict, result)

    # ---------------------------------------------------------------- banking

    def _bank_finding(self, verdict: SanVerdict, result: SancheckResult) -> None:
        if self.bank is None:
            return
        kinds = verdict.expected if verdict.outcome == FN else verdict.reported_kinds
        key = finding_key(
            verdict.sanitizer,
            verdict.outcome,
            kinds,
            verdict.truth.confirmed_checkers,
            verdict.truth.oracle_fingerprints,
            verdict.truth.partition,
        )
        if key in self.bank:
            result.duplicates += 1
            return
        source = verdict.source
        original_nodes = count_nodes(load(source))
        reduced_nodes = original_nodes
        steps = tests = 0
        if self.options.reduce:
            reduction = self._reduce(verdict, source)
            if reduction is not None:
                source = reduction.reduced_source
                original_nodes = reduction.original_nodes
                reduced_nodes = reduction.reduced_nodes
                steps = len(reduction.steps)
                tests = reduction.tests_run
        banked = BankedFinding(
            key=key,
            sanitizer=verdict.sanitizer,
            outcome=verdict.outcome,
            seed=verdict.seed,
            variant=verdict.variant,
            kinds=kinds,
            checkers=verdict.truth.confirmed_checkers,
            oracle_fingerprints=verdict.truth.oracle_fingerprints,
            partition=verdict.truth.partition,
            impl_ref=verdict.truth.impl_ref,
            impl_target=verdict.truth.impl_target,
            source=source,
            inputs=list(verdict.inputs),
            original_nodes=original_nodes,
            reduced_nodes=reduced_nodes,
            reduction_steps=steps,
            reduction_tests=tests,
        )
        if self.bank.add(banked):
            result.banked_new += 1
        else:  # pragma: no cover - key checked above
            result.duplicates += 1

    def _reduce(self, verdict: SanVerdict, source: str):
        sanitizer = next(
            s for s in self.verdicts.sanitizers if s.name == verdict.sanitizer
        )
        inputs = list(verdict.inputs)
        if verdict.outcome == FN:
            predicate = SanitizerStillSilent(
                sanitizer=sanitizer,
                engine=self.engine,
                oracle=self.oracle,
                inputs=inputs,
                checkers=frozenset(verdict.truth.confirmed_checkers),
            )
        else:
            predicate = SanitizerStillFires(
                sanitizer=sanitizer,
                engine=self.engine,
                oracle=self.oracle,
                inputs=inputs,
                kind=verdict.reported_kinds[0],
            )
        reducer = Reducer(
            predicate,
            step_budget=self.options.step_budget,
            test_budget=self.options.test_budget,
        )
        try:
            return reducer.reduce(source)
        except ReproError:  # pragma: no cover - predicate held on the original
            return None

    # ------------------------------------------------------------- good twins

    def _stabilize(self, source: str, inputs: list[bytes], name: str) -> str | None:
        """A screened good twin for a generator seed, or None.

        Unlike the generative campaign's stabilizer this screens on the
        *confirmed* oracle verdict only (plus stability): a POSSIBLE
        warning on a stable neighbor is FP-measurement signal, not a
        disqualifier.
        """
        budget = self.options.stabilize_budget
        for candidate in single_step_variants(source):
            if budget <= 0:
                break
            budget -= 1
            try:
                truth = self.verdicts.ground_truth(candidate, inputs, name=f"{name}-good")
            except ReproError:
                continue
            if truth.divergent or truth.confirmed_checkers:
                continue
            return candidate
        return None

    # ---------------------------------------------------------- checkpoints

    def _checkpoint_path(self) -> str:
        assert self.options.checkpoint_dir is not None
        return os.path.join(self.options.checkpoint_dir, CHECKPOINT_FILE)

    def _save_checkpoint(self, offset: int, result: SancheckResult) -> None:
        write_record(
            self._checkpoint_path(),
            MAGIC,
            SancheckCheckpoint(
                options_digest=self.options.digest(),
                offset=offset,
                seeds=result.seeds,
                variants=result.variants,
                dropped=result.dropped,
                screened=result.screened,
                skipped=result.skipped,
                banked_new=result.banked_new,
                duplicates=result.duplicates,
                verdicts=list(result.verdicts),
            ),
        )

    def _load_checkpoint(self) -> SancheckCheckpoint | None:
        if self.options.checkpoint_dir is None:
            return None
        path = self._checkpoint_path()
        if not os.path.exists(path):
            return None
        checkpoint = read_record(path, MAGIC, SancheckCheckpoint)
        if checkpoint.options_digest != self.options.digest():
            raise CheckpointError(
                "sancheck checkpoint was written with different campaign "
                "options; refusing to resume (move or delete "
                f"{path!r} to start fresh)"
            )
        return checkpoint
