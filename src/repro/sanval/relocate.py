"""UB-site relocation: semantics-preserving variants that move UB activation.

UBfuzz's core observation (PAPERS.md) is that sanitizer implementations
are sensitive to *where* undefined behavior activates, not just whether
it does: an overflow a checker catches in straight-line ``main`` can go
unreported once the same overflow executes inside a callee, on a later
loop iteration, or after the poisoned value crossed a call boundary.
This module produces those variants over the MiniC AST:

* ``outline`` — move the whole body of ``main`` into a fresh callee
  (``__sv_outlined``) that ``main`` tail-calls, shifting the UB site
  across a **function boundary** (new frame, new stack layout, new
  redzone geometry);
* ``loop_shift`` — wrap the body in a two-iteration loop whose first
  iteration is a no-op, so the UB executes on a **different loop
  iteration** than in the original straight-line program;
* ``carry`` — route integer values at the UB site through per-type
  identity helpers (``__sv_carry_i32`` etc.), so the poisoned value
  crosses a **call boundary** via parameter and return.

Every variant is validated the same way the reducer validates its
candidates: print with :func:`repro.minic.to_source`, re-``load`` (parse
+ semantic check), and discard the variant on any failure.  Programs
already using the ``__sv_`` name prefix are refused outright — the
transformer must never capture or shadow user names.

Relocation preserves *defined* semantics by construction (an identity
call, a guarded loop, and function outlining are all behavior-neutral
for UB-free programs — ``tests/test_sanval_relocate.py`` checks this
byte-for-byte across all ten implementations).  What it deliberately
does **not** preserve is implementation-defined detail like frame
layout: that is the degree of freedom the sanitizer-validation campaign
exploits.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.errors import ReproError
from repro.minic import ast, load, to_source
from repro.minic.types import IntType

#: All relocation kinds, in campaign sweep order.
RELOCATION_KINDS = ("outline", "loop_shift", "carry")

#: Reserved name prefix for transformer-introduced functions/variables.
SV_PREFIX = "__sv_"

_INT = IntType(32, True)


@dataclass(frozen=True)
class RelocatedVariant:
    """One validated relocation of a seed program."""

    kind: str
    source: str


def relocate(source: str, kind: str, line: int | None = None) -> str | None:
    """Apply relocation *kind* to *source*; None when it does not apply.

    ``line`` focuses the ``carry`` relocation on the statements at that
    source line (typically the oracle-confirmed UB site); without it,
    every eligible statement is carried.  The result is guaranteed to
    re-parse and re-check; callers re-establish the semantic ground
    truth themselves (oracle + differential verdict) per variant.
    """
    if kind not in RELOCATION_KINDS:
        raise ValueError(f"unknown relocation kind {kind!r}")
    try:
        program = load(source)
    except ReproError:
        return None
    if _uses_sv_prefix(program):
        return None
    mutated = copy.deepcopy(program)
    applied = _TRANSFORMS[kind](mutated, line)
    if not applied:
        return None
    try:
        candidate = to_source(mutated)
        load(candidate)
    except ReproError:
        return None
    if candidate == source:
        return None
    return candidate


def relocation_variants(
    source: str, line: int | None = None, kinds: tuple[str, ...] = RELOCATION_KINDS
) -> list[RelocatedVariant]:
    """Every applicable relocation of *source*, in sweep order."""
    variants: list[RelocatedVariant] = []
    for kind in kinds:
        candidate = relocate(source, kind, line=line)
        if candidate is not None:
            variants.append(RelocatedVariant(kind=kind, source=candidate))
    return variants


# --------------------------------------------------------------------------
# Transforms (mutate a checked AST in place; return True when applied)
# --------------------------------------------------------------------------


def _outline(program: ast.Program, line: int | None) -> bool:
    """Move main's body into ``__sv_outlined``; main tail-calls it."""
    main = program.function("main")
    if main is None or main.params:
        return False
    if not main.body.body:
        return False
    outlined = ast.FuncDef(
        0,
        0,
        name=f"{SV_PREFIX}outlined",
        ret_type=main.ret_type,
        params=[],
        body=main.body,
    )
    call = ast.Call(0, 0, func=ast.Ident(0, 0, name=outlined.name), args=[])
    main.body = ast.Block(0, 0, body=[ast.Return(0, 0, value=call)])
    program.decls.insert(program.decls.index(main), outlined)
    return True


def _loop_shift(program: ast.Program, line: int | None) -> bool:
    """Run main's body on iteration 1 of a fresh two-iteration loop."""
    main = program.function("main")
    if main is None or not main.body.body:
        return False
    counter = f"{SV_PREFIX}i"
    ident = lambda: ast.Ident(0, 0, name=counter)  # noqa: E731 - local factory
    guard = ast.If(
        0,
        0,
        cond=ast.Binary(0, 0, op="==", lhs=ident(), rhs=ast.IntLit(0, 0, value=1)),
        then=ast.Block(0, 0, body=main.body.body),
        otherwise=None,
    )
    loop = ast.For(
        0,
        0,
        init=ast.VarDecl(0, 0, name=counter, var_type=_INT, init=ast.IntLit(0, 0, value=0)),
        cond=ast.Binary(0, 0, op="<", lhs=ident(), rhs=ast.IntLit(0, 0, value=2)),
        step=ast.Assign(
            0,
            0,
            op="=",
            target=ident(),
            value=ast.Binary(0, 0, op="+", lhs=ident(), rhs=ast.IntLit(0, 0, value=1)),
        ),
        body=ast.Block(0, 0, body=[guard]),
    )
    main.body = ast.Block(0, 0, body=[loop])
    return True


def _carry(program: ast.Program, line: int | None) -> bool:
    """Pass integer values at the UB site through identity helpers."""
    carried_types: set[IntType] = set()

    def wrap(expr: ast.Expr) -> ast.Expr:
        ty = expr.ty
        if not isinstance(ty, IntType):
            return expr
        carried_types.add(ty)
        return ast.Call(
            0, 0, func=ast.Ident(0, 0, name=_carry_name(ty)), args=[expr]
        )

    wrapped = 0
    for func in program.functions():
        for stmt in ast.walk_stmts(func.body):
            if line is not None and stmt.line != line:
                continue
            wrapped += _carry_stmt(stmt, wrap)
    if not wrapped:
        return False
    helpers = [_carry_helper(ty) for ty in sorted(carried_types, key=_carry_name)]
    program.decls[:0] = helpers
    return True


def _carry_stmt(stmt: ast.Stmt, wrap) -> int:
    """Wrap the carry-eligible expression slots of one statement."""
    before = _CarryCount()
    if isinstance(stmt, ast.ExprStmt):
        expr = stmt.expr
        if isinstance(expr, ast.Assign):
            expr.value = before.note(wrap(expr.value))
            if isinstance(expr.target, ast.Index):
                expr.target.index = before.note(wrap(expr.target.index))
        elif isinstance(expr, ast.Call):
            expr.args = [before.note(wrap(arg)) for arg in expr.args]
    elif isinstance(stmt, ast.VarDecl) and stmt.init is not None:
        stmt.init = before.note(wrap(stmt.init))
    elif isinstance(stmt, (ast.If, ast.While, ast.DoWhile, ast.Switch)):
        stmt.cond = before.note(wrap(stmt.cond))
    elif isinstance(stmt, ast.Return) and stmt.value is not None:
        stmt.value = before.note(wrap(stmt.value))
    return before.wrapped


class _CarryCount:
    """Counts how many slots :func:`_carry_stmt` actually rewrote."""

    def __init__(self) -> None:
        self.wrapped = 0

    def note(self, expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Ident):
            if expr.func.name.startswith(f"{SV_PREFIX}carry_"):
                self.wrapped += 1
        return expr


def _carry_name(ty: IntType) -> str:
    sign = "i" if ty.signed else "u"
    return f"{SV_PREFIX}carry_{sign}{ty.bits}"


def _carry_helper(ty: IntType) -> ast.FuncDef:
    param = ast.Param(0, 0, name=f"{SV_PREFIX}v", param_type=ty)
    body = ast.Block(0, 0, body=[ast.Return(0, 0, value=ast.Ident(0, 0, name=param.name))])
    return ast.FuncDef(0, 0, name=_carry_name(ty), ret_type=ty, params=[param], body=body)


def _uses_sv_prefix(program: ast.Program) -> bool:
    """True when any declared or referenced name collides with ours."""
    for decl in program.decls:
        name = getattr(decl, "name", "")
        if isinstance(name, str) and name.startswith(SV_PREFIX):
            return True
    for func in program.functions():
        for stmt in ast.walk_stmts(func.body):
            if isinstance(stmt, ast.VarDecl) and stmt.name.startswith(SV_PREFIX):
                return True
            for top in ast.statement_exprs(stmt):
                for expr in ast.walk_expr(top):
                    if isinstance(expr, ast.Ident) and expr.name.startswith(SV_PREFIX):
                        return True
    return False


_TRANSFORMS = {
    "outline": _outline,
    "loop_shift": _loop_shift,
    "carry": _carry,
}
