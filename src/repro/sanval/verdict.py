"""Verdict engine: classify sanitizer behavior against two ground truths.

A sanitizer's report on a program variant is judged against (1) the
interprocedural UB oracle and (2) the ten-implementation differential
verdict, never against intuition.  The classification per
``(sanitizer, variant)`` pair follows UBfuzz's taxonomy:

* **TP** — the sanitizer fired and the finding is corroborated (an
  oracle-confirmed checker in the sanitizer's scope, or the variant
  actually diverges across implementations);
* **FN** — the oracle *confirms* in-scope UB **and** the differential
  engine diverges on the variant, yet the sanitizer stays silent: a
  missed detection with double ground truth behind it;
* **FP** — the sanitizer fires on a screened good twin (no confirmed
  oracle finding, no divergence): a report with no UB behind it;
* **TN** — silence on a clean variant, or silence on UB outside the
  sanitizer's documented scope (ASan is not *wrong* for ignoring a
  signed overflow).

Scope is mediated by :data:`ORACLE_KIND_SCOPE`, the bridge between the
oracle's checker ids and the sanitizers' report kinds.  Every verdict
carries its full evidence chain — oracle diagnostic fingerprints, the
culprit implementation pair and partition from the differential engine,
and the sanitizer's own (bridged) diagnostics — so a banked FN/FP is
reproducible from the record alone.

The module also ships the two reduction predicates the campaign plugs
into the PR 6 delta-debugging reducer: :class:`SanitizerStillSilent`
pins an FN (oracle still confirms, engine still diverges, sanitizer
still silent) and :class:`SanitizerStillFires` pins an FP (sanitizer
still reports the same kind on a still-clean, still-stable program).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.bisect import choose_bisection_pair
from repro.core.compdiff import CompDiff
from repro.core.triage import signature_of
from repro.errors import ReproError
from repro.minic import load
from repro.sanitizers import Sanitizer, all_sanitizers
from repro.static_analysis.diagnostics import (
    Diagnostic,
    diagnostic_sort_key,
    from_sanitizer_finding,
    to_diagnostics,
)
from repro.static_analysis.ub_oracle import CONFIRMED, UBOracle

#: UB-oracle checker id -> sanitizer report kinds that cover it.  The
#: inverse direction (kind -> checker) is derivable; keys missing here
#: (eval_order, pointer_cmp, ...) have no sanitizer analog, matching the
#: paper's Table 1 scope discussion.
ORACLE_KIND_SCOPE = {
    "oob_access": (
        "stack-buffer-overflow",
        "heap-buffer-overflow",
        "global-buffer-overflow",
    ),
    "use_after_free": ("heap-use-after-free",),
    "double_free": ("double-free",),
    "bad_free": ("bad-free",),
    "signed_overflow": ("signed-integer-overflow",),
    "div_zero": ("division-by-zero",),
    "shift_ub": ("invalid-shift",),
    "null_deref": ("null-pointer-dereference",),
    "uninit_read": ("use-of-uninitialized-value",),
}

TP = "TP"
FN = "FN"
FP = "FP"
TN = "TN"

#: All outcomes in scoreboard column order.
OUTCOMES = (TP, FN, FP, TN)


def expected_kinds(confirmed_checkers, sanitizer: Sanitizer) -> tuple[str, ...]:
    """Report kinds *sanitizer* should emit for the confirmed checkers."""
    kinds = {
        kind
        for checker in confirmed_checkers
        for kind in ORACLE_KIND_SCOPE.get(checker, ())
        if kind in sanitizer.detects
    }
    return tuple(sorted(kinds))


@dataclass(frozen=True)
class GroundTruth:
    """Oracle + differential evidence for one program variant."""

    #: Engine verdict over the campaign inputs.
    divergent: bool
    #: Canonical implementation partition ((one group) when stable).
    partition: tuple[tuple[str, ...], ...]
    #: Culprit implementation pair of the divergence ("" when stable).
    impl_ref: str
    impl_target: str
    #: Oracle checkers confirmed on this variant, sorted.
    confirmed_checkers: tuple[str, ...]
    #: Fingerprints of the confirmed oracle diagnostics, sorted.
    oracle_fingerprints: tuple[str, ...]
    #: Line of the first confirmed finding (0 when clean) — the carry
    #: relocation focuses on this site.
    line: int
    #: False when the oracle's solver budget ran out somewhere.
    converged: bool

    def to_json(self) -> dict:
        return {
            "divergent": self.divergent,
            "partition": [list(group) for group in self.partition],
            "impl_ref": self.impl_ref,
            "impl_target": self.impl_target,
            "confirmed_checkers": list(self.confirmed_checkers),
            "oracle_fingerprints": list(self.oracle_fingerprints),
            "line": self.line,
            "converged": self.converged,
        }


@dataclass(frozen=True)
class SanVerdict:
    """One classified (sanitizer, variant) outcome with evidence."""

    sanitizer: str
    #: Seed label (fixture id, corpus key, or generator seed).
    seed: str
    #: Relocation kind ("identity" for the untransformed program).
    variant: str
    #: "bad" (UB side) or "good" (stabilized twin).
    role: str
    outcome: str
    #: Kinds the sanitizer was expected to report (FN evidence).
    expected: tuple[str, ...]
    #: What the sanitizer actually reported, bridged to Diagnostics.
    reported: tuple[Diagnostic, ...]
    truth: GroundTruth
    source: str
    #: Campaign inputs the variant was judged over (repro drivers).
    inputs: tuple[bytes, ...] = ()

    @property
    def reported_kinds(self) -> tuple[str, ...]:
        return tuple(sorted({d.checker for d in self.reported}))

    def to_json(self) -> dict:
        return {
            "sanitizer": self.sanitizer,
            "seed": self.seed,
            "variant": self.variant,
            "role": self.role,
            "outcome": self.outcome,
            "expected": list(self.expected),
            "reported": [d.to_json() for d in self.reported],
            "truth": self.truth.to_json(),
            "inputs_hex": [i.hex() for i in self.inputs],
        }

    def render(self) -> str:
        evidence = []
        if self.expected:
            evidence.append(f"expected {','.join(self.expected)}")
        if self.reported_kinds:
            evidence.append(f"reported {','.join(self.reported_kinds)}")
        if self.truth.impl_ref:
            evidence.append(f"culprits {self.truth.impl_ref} vs {self.truth.impl_target}")
        if self.truth.oracle_fingerprints:
            evidence.append(f"oracle {','.join(self.truth.oracle_fingerprints)}")
        detail = f" ({'; '.join(evidence)})" if evidence else ""
        return f"{self.outcome:<2} {self.sanitizer:<5} {self.seed}/{self.variant}{detail}"


class VerdictEngine:
    """Runs the sanitizers over variants and classifies each outcome."""

    def __init__(
        self,
        engine: CompDiff,
        oracle: UBOracle | None = None,
        sanitizers: list[Sanitizer] | None = None,
    ) -> None:
        self.engine = engine
        self.oracle = oracle if oracle is not None else UBOracle(mode="interproc")
        self.sanitizers = sanitizers if sanitizers is not None else all_sanitizers()

    # ------------------------------------------------------------ ground truth

    def ground_truth(self, source: str, inputs: list[bytes], name: str = "sanval") -> GroundTruth:
        """Establish both ground truths for one variant."""
        program = load(source)
        report = self.oracle.report(program, name=name)
        confirmed = [f for f in report.findings if f.confidence == CONFIRMED]
        diagnostics = to_diagnostics(confirmed)
        outcome = self.engine.check_source(source, inputs, name=name)
        if outcome.divergent:
            diff = next(d for d in outcome.diffs if d.divergent)
            partition = signature_of(diff).partition
            impl_ref, impl_target = choose_bisection_pair(diff)
        else:
            names = sorted(impl.name for impl in self.engine.implementations)
            partition = (tuple(names),)
            impl_ref = impl_target = ""
        line = min((d.line for d in diagnostics), default=0)
        return GroundTruth(
            divergent=outcome.divergent,
            partition=partition,
            impl_ref=impl_ref,
            impl_target=impl_target,
            confirmed_checkers=tuple(sorted({d.checker for d in diagnostics})),
            oracle_fingerprints=tuple(sorted(d.fingerprint for d in diagnostics)),
            line=line,
            converged=report.converged,
        )

    # ----------------------------------------------------------- classification

    def judge_bad(
        self,
        source: str,
        inputs: list[bytes],
        seed: str,
        variant: str = "identity",
        truth: GroundTruth | None = None,
        name: str = "sanval",
    ) -> list[SanVerdict]:
        """Classify every sanitizer on a UB-side variant."""
        if truth is None:
            truth = self.ground_truth(source, inputs, name=name)
        program = load(source)
        verdicts = []
        for sanitizer in self.sanitizers:
            findings = sanitizer.check_all(program, inputs, name=name)
            reported = tuple(
                sorted(
                    (from_sanitizer_finding(f) for f in findings),
                    key=diagnostic_sort_key,
                )
            )
            expected = expected_kinds(truth.confirmed_checkers, sanitizer)
            if reported:
                outcome = TP if (expected or truth.divergent) else FP
            else:
                outcome = FN if (expected and truth.divergent) else TN
            verdicts.append(
                SanVerdict(
                    sanitizer=sanitizer.name,
                    seed=seed,
                    variant=variant,
                    role="bad",
                    outcome=outcome,
                    expected=expected,
                    reported=reported,
                    truth=truth,
                    source=source,
                    inputs=tuple(inputs),
                )
            )
        return verdicts

    def judge_good(
        self,
        source: str,
        inputs: list[bytes],
        seed: str,
        variant: str = "identity",
        truth: GroundTruth | None = None,
        name: str = "sanval",
    ) -> list[SanVerdict] | None:
        """Classify every sanitizer on a good twin; None if it fails the screen.

        The twin must be genuinely clean — no *confirmed* oracle finding
        and no divergence — before sanitizer silence counts as TN and a
        report counts as FP.  (POSSIBLE-confidence findings do not fail
        the screen: a conservative warning on a stable, unconfirmed
        program is exactly what the FP column exists to measure.)
        """
        if truth is None:
            truth = self.ground_truth(source, inputs, name=name)
        if truth.confirmed_checkers or truth.divergent:
            return None
        program = load(source)
        verdicts = []
        for sanitizer in self.sanitizers:
            findings = sanitizer.check_all(program, inputs, name=name)
            reported = tuple(
                sorted(
                    (from_sanitizer_finding(f) for f in findings),
                    key=diagnostic_sort_key,
                )
            )
            verdicts.append(
                SanVerdict(
                    sanitizer=sanitizer.name,
                    seed=seed,
                    variant=variant,
                    role="good",
                    outcome=FP if reported else TN,
                    expected=(),
                    reported=reported,
                    truth=truth,
                    source=source,
                    inputs=tuple(inputs),
                )
            )
        return verdicts


# --------------------------------------------------------------------------
# Reduction predicates (plug into repro.generative.reducer.Reducer)
# --------------------------------------------------------------------------


@dataclass
class SanitizerStillSilent:
    """FN-pinning predicate: evidence chain intact, sanitizer still silent.

    A candidate stays interesting only while (1) the sanitizer emits no
    report on it, (2) the oracle still *confirms* at least one of the
    pinned checkers, and (3) the differential engine still diverges.
    Checks run cheapest-first; the ten-implementation diff is last.
    """

    sanitizer: Sanitizer
    engine: CompDiff
    oracle: UBOracle
    inputs: list[bytes]
    #: Oracle checkers pinned from the original FN (any one suffices).
    checkers: frozenset[str]
    name: str = "sanval-reduce"

    def __call__(self, source: str) -> bool:
        try:
            program = load(source)
        except ReproError:
            return False
        if self.sanitizer.check_all(program, self.inputs, name=self.name):
            return False
        report = self.oracle.report(program, name=self.name)
        confirmed = {f.checker for f in report.findings if f.confidence == CONFIRMED}
        if not (confirmed & self.checkers):
            return False
        return self.engine.check_source(source, self.inputs, name=self.name).divergent


@dataclass
class SanitizerStillFires:
    """FP-pinning predicate: still fires the kind on a still-clean program."""

    sanitizer: Sanitizer
    engine: CompDiff
    oracle: UBOracle
    inputs: list[bytes]
    #: The report kind pinned from the original FP.
    kind: str
    name: str = "sanval-reduce"

    def __call__(self, source: str) -> bool:
        try:
            program = load(source)
        except ReproError:
            return False
        findings = self.sanitizer.check_all(program, self.inputs, name=self.name)
        if not any(f.kind == self.kind for f in findings):
            return False
        report = self.oracle.report(program, name=self.name)
        if any(f.confidence == CONFIRMED for f in report.findings):
            return False
        return not self.engine.check_source(source, self.inputs, name=self.name).divergent
