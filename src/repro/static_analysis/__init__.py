"""Static-analyzer analogs: Coverity, Cppcheck, and Infer.

Each tool is a set of AST checkers over a shared lightweight abstract
interpreter (:mod:`repro.static_analysis.base`).  The tools differ in

* **value-flow capability** — which Juliet flow shapes their constant
  resolution sees through (Cppcheck is local/syntactic; Coverity tracks
  globals and loops; Infer follows calls and pointer aliases);
* **checker scope** — which bug families they attempt at all;
* **aggressiveness** — whether an unresolvable guard/index produces a
  "maybe" report (the mechanism behind their characteristic false
  positives on Juliet's deliberately confusing good variants).

These envelopes reproduce the structure of the paper's Table 3: nonzero
FP rates for every static tool, Coverity's wins on the UB/IntError/DivZero
rows, Cppcheck/Coverity's 100% on CWE-475/685, and Infer's strength on
null dereference and heap state.
"""

from repro.static_analysis.base import StaticAnalyzer, StaticFinding, dedupe_findings
from repro.static_analysis.coverity import Coverity
from repro.static_analysis.cppcheck import Cppcheck
from repro.static_analysis.diagnostics import (
    SANITIZER_KIND_CATEGORY,
    Baseline,
    Diagnostic,
    all_tool_diagnostics,
    diagnostic_sort_key,
    from_sanitizer_finding,
    to_diagnostics,
)
from repro.static_analysis.infer import Infer
from repro.static_analysis.interproc import (
    FunctionSummary,
    InterprocContext,
    summarize_module,
)
from repro.static_analysis.refine import refine_findings
from repro.static_analysis.sarif import to_sarif, validate_sarif
from repro.static_analysis.summary_cache import SummaryCache
from repro.static_analysis.ub_oracle import UBFinding, UBOracle, UBReport, flagged_blocks
from repro.static_analysis.triage import (
    TABLE5_CATEGORIES,
    TriageLabel,
    triage_diff,
    triage_divergence,
    triage_program,
)


def all_static_tools() -> list[StaticAnalyzer]:
    """The three baseline-tool analogs of Table 3.

    The IR-level :class:`UBOracle` is intentionally *not* part of this
    list: Table 3 compares CompDiff against the commercial-tool
    baselines, and adding a fourth tool would change those rows.  Use
    :class:`UBOracle` directly (or ``repro analyze``) for triage.
    """
    return [Coverity(), Cppcheck(), Infer()]


__all__ = [
    "Baseline",
    "SANITIZER_KIND_CATEGORY",
    "Coverity",
    "Cppcheck",
    "Diagnostic",
    "FunctionSummary",
    "Infer",
    "InterprocContext",
    "StaticAnalyzer",
    "StaticFinding",
    "SummaryCache",
    "TABLE5_CATEGORIES",
    "TriageLabel",
    "UBFinding",
    "UBOracle",
    "UBReport",
    "all_static_tools",
    "all_tool_diagnostics",
    "diagnostic_sort_key",
    "dedupe_findings",
    "flagged_blocks",
    "from_sanitizer_finding",
    "refine_findings",
    "summarize_module",
    "to_diagnostics",
    "to_sarif",
    "triage_diff",
    "triage_divergence",
    "triage_program",
    "validate_sarif",
]
