"""Shared machinery for the static-analyzer analogs.

A tiny flow-sensitive abstract interpreter produces, per function, a
linear *trace* of statements annotated with execution certainty and the
abstract environment before each statement.  Checkers consume the trace.

Abstract values (:class:`Value`):

* ``const`` — a known integer/float;
* ``taint`` — derived from external input (``input_size`` et al.) plus a
  known constant offset;
* ``uninit`` — declared but never assigned on the paths seen;
* ``maybe_init`` — assigned only under a guard the tool cannot resolve;
* ``unknown`` — anything else.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.minic import ast
from repro.minic import load
from repro.minic import types as ty

CAPS_ALL = frozenset({"const_true", "global_flag", "func", "ptr_alias", "loop"})


@dataclass(frozen=True)
class Value:
    kind: str  # "const" | "taint" | "uninit" | "maybe_init" | "unknown"
    value: float | int | None = None

    @property
    def is_const(self) -> bool:
        return self.kind == "const"


UNKNOWN = Value("unknown")
UNINIT = Value("uninit")
MAYBE_INIT = Value("maybe_init")


@dataclass
class TracePoint:
    stmt: ast.Stmt
    #: "taken" when the statement certainly executes, "maybe" under an
    #: unresolvable guard.
    certainty: str
    env: dict[str, Value]


@dataclass(frozen=True)
class StaticFinding:
    tool: str
    checker: str
    line: int
    message: str


def dedupe_findings(findings: list) -> list:
    """Drop exact duplicates and order findings deterministically.

    Sort key is (line, checker, message) so reports diff stably across
    runs, checker registration order, and worker counts.  Works for any
    finding type exposing those three attributes.
    """
    seen: set = set()
    ordered: list = []
    for finding in sorted(findings, key=lambda f: (f.line, f.checker, f.message)):
        if finding not in seen:
            seen.add(finding)
            ordered.append(finding)
    return ordered


@dataclass
class FunctionTrace:
    func: ast.FuncDef
    points: list[TracePoint] = field(default_factory=list)


class Analysis:
    """One program's parsed facts shared by all checkers of one tool."""

    def __init__(self, program: ast.Program, caps: frozenset[str]) -> None:
        self.program = program
        self.caps = caps
        self.functions = {f.name: f for f in program.functions()}
        #: Globals initialized to a nonzero constant (the global_flag cap).
        self.true_globals: set[str] = set()
        self.global_arrays: dict[str, int] = {}
        for decl in program.globals():
            if isinstance(decl.var_type, ty.ArrayType):
                self.global_arrays[decl.name] = decl.var_type.length
            if isinstance(decl.init, ast.IntLit) and decl.init.value != 0:
                self.true_globals.add(decl.name)
        #: Functions that just return a constant (the func cap).
        self.const_funcs: dict[str, int] = {}
        for func in program.functions():
            body = func.body.body
            if len(body) == 1 and isinstance(body[0], ast.Return):
                value = body[0].value
                if isinstance(value, ast.IntLit):
                    self.const_funcs[func.name] = value.value
        self.traces = {f.name: self._trace_function(f) for f in program.functions()}

    # ------------------------------------------------------------ tracing

    def _trace_function(self, func: ast.FuncDef) -> FunctionTrace:
        trace = FunctionTrace(func)
        env: dict[str, Value] = {}
        self._walk(func.body.body, env, "taken", trace)
        return trace

    def _walk(
        self, stmts: list[ast.Stmt], env: dict[str, Value], certainty: str, trace: FunctionTrace
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.For) and stmt.init is not None:
                # The init clause executes before the condition is ever
                # read; record it first so the For's env snapshot (used to
                # evaluate cond/step expressions) reflects it.
                self._walk([stmt.init], env, certainty, trace)
            trace.points.append(TracePoint(stmt, certainty, dict(env)))
            if isinstance(stmt, ast.VarDecl):
                self._apply_decl(stmt, env)
            elif isinstance(stmt, ast.ExprStmt):
                self._apply_expr_stmt(stmt.expr, env)
            elif isinstance(stmt, ast.Block):
                self._walk(stmt.body, env, certainty, trace)
            elif isinstance(stmt, ast.If):
                self._walk_if(stmt, env, certainty, trace)
            elif isinstance(stmt, ast.For):
                self._walk_for(stmt, env, certainty, trace)
            elif isinstance(stmt, (ast.While, ast.DoWhile)):
                self._havoc_assigned(stmt.body, env)
                self._walk(
                    [stmt.body] if not isinstance(stmt.body, ast.Block) else stmt.body.body,
                    env,
                    "maybe",
                    trace,
                )
            elif isinstance(stmt, ast.Switch):
                for case in stmt.cases:
                    for case_stmt in case.body:
                        self._havoc_assigned(case_stmt, env)
                for case in stmt.cases:
                    self._walk(case.body, dict(env), "maybe", trace)
            elif isinstance(stmt, ast.Return) and certainty == "taken":
                return

    def _walk_if(
        self, stmt: ast.If, env: dict[str, Value], certainty: str, trace: FunctionTrace
    ) -> None:
        cond = self.eval_expr(stmt.cond, env)
        branch: str | None = None
        if cond.is_const:
            branch = "then" if cond.value else "else"
        elif (
            "global_flag" in self.caps
            and isinstance(stmt.cond, ast.Ident)
            and stmt.cond.name in self.true_globals
        ):
            branch = "then"
        if branch == "then":
            self._walk(_as_list(stmt.then), env, certainty, trace)
            return
        if branch == "else":
            if stmt.otherwise is not None:
                self._walk(_as_list(stmt.otherwise), env, certainty, trace)
            return
        # Unresolvable guard: both arms are "maybe"; merged env degrades
        # assigned variables.
        then_env = dict(env)
        self._walk(_as_list(stmt.then), then_env, "maybe", trace)
        else_env = dict(env)
        if stmt.otherwise is not None:
            self._walk(_as_list(stmt.otherwise), else_env, "maybe", trace)
        for name in set(then_env) | set(else_env):
            before = env.get(name)
            after_then = then_env.get(name, before)
            after_else = else_env.get(name, before)
            if after_then == after_else:
                merged = after_then if after_then is not None else UNKNOWN
            elif before is not None and before.kind == "uninit":
                merged = MAYBE_INIT
            else:
                merged = UNKNOWN
            env[name] = merged

    def _walk_for(
        self, stmt: ast.For, env: dict[str, Value], certainty: str, trace: FunctionTrace
    ) -> None:
        counted = self._try_counted_loop(stmt, env) if "loop" in self.caps else None
        if counted is not None:
            name, total = counted
            base = env.get(name, UNKNOWN)
            if base.is_const:
                env[name] = Value("const", base.value + total)
            else:
                env[name] = UNKNOWN
            return
        self._havoc_assigned(stmt.body, env)
        # Bounded induction variable: for (i = ...; i < K; i++) gives i a
        # range fact that the bounds checkers can compare to buffer sizes.
        if (
            isinstance(stmt.cond, ast.Binary)
            and stmt.cond.op == "<"
            and isinstance(stmt.cond.lhs, ast.Ident)
        ):
            bound = self.eval_expr(stmt.cond.rhs, env)
            if bound.is_const:
                env[stmt.cond.lhs.name] = Value("bounded", bound.value)
        self._walk(_as_list(stmt.body), env, "maybe", trace)

    def _try_counted_loop(self, stmt: ast.For, env: dict[str, Value]):
        """Match ``for (i = 0; i < K; i++) { x++; }`` with resolvable K."""
        body = _as_list(stmt.body)
        if len(body) != 1 or not isinstance(body[0], ast.ExprStmt):
            return None
        inc = body[0].expr
        if not (isinstance(inc, ast.Unary) and inc.op in ("++", "p++")):
            return None
        if not isinstance(inc.operand, ast.Ident):
            return None
        cond = stmt.cond
        if not (isinstance(cond, ast.Binary) and cond.op == "<"):
            return None
        bound = self.eval_expr(cond.rhs, env)
        if not bound.is_const:
            return None
        return inc.operand.name, int(bound.value)

    def _havoc_assigned(self, stmt: ast.Stmt, env: dict[str, Value]) -> None:
        for inner in ast.walk_stmts(stmt):
            for expr in ast.statement_exprs(inner):
                for node in ast.walk_expr(expr):
                    if isinstance(node, ast.Assign) and isinstance(node.target, ast.Ident):
                        env[node.target.name] = UNKNOWN
                    if (
                        isinstance(node, ast.Unary)
                        and node.op in ("++", "--", "p++", "p--")
                        and isinstance(node.operand, ast.Ident)
                    ):
                        env[node.operand.name] = UNKNOWN

    # --------------------------------------------------------- transfer fns

    def _apply_decl(self, stmt: ast.VarDecl, env: dict[str, Value]) -> None:
        if stmt.init is None:
            env[stmt.name] = UNINIT if stmt.var_type.is_arithmetic else UNKNOWN
            return
        # Alias bookkeeping for the ptr_alias cap: `int *a = &real;`
        # snapshots real's current value under the key "&a"; the template
        # shape reads through the alias immediately afterwards.
        if (
            isinstance(stmt.init, ast.Unary)
            and stmt.init.op == "&"
            and isinstance(stmt.init.operand, ast.Ident)
        ):
            env[f"&{stmt.name}"] = env.get(stmt.init.operand.name, UNKNOWN)
        env[stmt.name] = self.eval_expr(stmt.init, env)

    def _apply_expr_stmt(self, expr: ast.Expr, env: dict[str, Value]) -> None:
        for node in ast.walk_expr(expr):
            if isinstance(node, ast.Assign):
                if isinstance(node.target, ast.Ident):
                    env[node.target.name] = (
                        self.eval_expr(node.value, env) if node.op == "=" else UNKNOWN
                    )
            elif isinstance(node, ast.Unary) and node.op in ("++", "--", "p++", "p--"):
                if isinstance(node.operand, ast.Ident):
                    base = env.get(node.operand.name, UNKNOWN)
                    if base.is_const:
                        delta = 1 if "+" in node.op else -1
                        env[node.operand.name] = Value("const", base.value + delta)
                    else:
                        env[node.operand.name] = UNKNOWN

    # ---------------------------------------------------------- evaluation

    def eval_expr(self, expr: ast.Expr, env: dict[str, Value]) -> Value:
        if isinstance(expr, (ast.IntLit, ast.CharLit)):
            return Value("const", expr.value)
        if isinstance(expr, ast.FloatLit):
            return Value("const", expr.value)
        if isinstance(expr, ast.NullLit):
            return Value("const", 0)
        if isinstance(expr, ast.Ident):
            return env.get(expr.name, UNKNOWN)
        if isinstance(expr, ast.Unary) and expr.op == "-":
            inner = self.eval_expr(expr.operand, env)
            if inner.is_const:
                return Value("const", -inner.value)
            return UNKNOWN
        if isinstance(expr, ast.Unary) and expr.op == "*" and "ptr_alias" in self.caps:
            # *alias where alias = &real resolves to real's value; the
            # template shape makes this a direct lookup.
            if isinstance(expr.operand, ast.Ident):
                target = env.get(f"&{expr.operand.name}")
                if target is not None:
                    return target
            return UNKNOWN
        if isinstance(expr, ast.Cast):
            return self.eval_expr(expr.operand, env)
        if isinstance(expr, ast.SizeofType):
            return Value("const", expr.target_type.size())
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Ident):
            name = expr.func.name
            if name in ("input_size", "input_byte", "read_input"):
                return Value("taint", 0)
            if "func" in self.caps and name in self.const_funcs:
                return Value("const", self.const_funcs[name])
            return UNKNOWN
        if isinstance(expr, ast.Unary) and expr.op == "&":
            if isinstance(expr.operand, ast.Ident):
                return Value("unknown", None)
            return UNKNOWN
        if isinstance(expr, ast.Binary):
            lhs = self.eval_expr(expr.lhs, env)
            rhs = self.eval_expr(expr.rhs, env)
            if lhs.is_const and rhs.is_const:
                return _fold(expr.op, lhs.value, rhs.value)
            # taint + 0 stays raw taint; taint + nonzero constant is an
            # adjusted (presumed-guarded) value.
            for a, b in ((lhs, rhs), (rhs, lhs)):
                if a.kind == "taint" and b.is_const and expr.op == "+":
                    return Value("taint", a.value + b.value)
            if "uninit" in (lhs.kind, rhs.kind):
                return UNINIT
            return UNKNOWN
        return UNKNOWN

def _as_list(stmt: ast.Stmt) -> list[ast.Stmt]:
    if isinstance(stmt, ast.Block):
        return stmt.body
    return [stmt]


def _fold(op: str, a, b) -> Value:
    try:
        if op == "+":
            return Value("const", a + b)
        if op == "-":
            return Value("const", a - b)
        if op == "*":
            return Value("const", a * b)
        if op == "/":
            if b == 0:
                return UNKNOWN
            return Value("const", a / b if isinstance(a, float) or isinstance(b, float) else a // b)
        if op == "%":
            if b == 0:
                return UNKNOWN
            return Value("const", a % b)
        if op in ("<", "<=", ">", ">=", "==", "!="):
            table = {
                "<": a < b,
                "<=": a <= b,
                ">": a > b,
                ">=": a >= b,
                "==": a == b,
                "!=": a != b,
            }
            return Value("const", int(table[op]))
    except TypeError:
        return UNKNOWN
    return UNKNOWN


class StaticAnalyzer:
    """Base class: a named tool with caps, policies, and checkers."""

    name: str = ""
    #: Flow shapes this tool's value-flow resolves.
    caps: frozenset[str] = frozenset()
    #: Checker names this tool runs (see repro.static_analysis.checks).
    checkers: tuple[str, ...] = ()
    #: Checkers that also report on unresolvable ("maybe") evidence.
    aggressive: frozenset[str] = frozenset()
    #: Tool-specific checker biases (see repro.static_analysis.checks).
    policies: frozenset[str] = frozenset()

    def analyze(self, program: ast.Program) -> list[StaticFinding]:
        from repro.static_analysis import checks

        analysis = Analysis(program, self.caps)
        findings: list[StaticFinding] = []
        for checker_name in self.checkers:
            checker = getattr(checks, f"check_{checker_name}")
            aggressive = checker_name in self.aggressive
            for line, message in checker(analysis, aggressive, self.policies):
                findings.append(
                    StaticFinding(tool=self.name, checker=checker_name, line=line, message=message)
                )
        return dedupe_findings(findings)

    def analyze_source(self, source: str) -> list[StaticFinding]:
        return self.analyze(load(source))

    def flags(self, program: ast.Program) -> bool:
        return bool(self.analyze(program))
